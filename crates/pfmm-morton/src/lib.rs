//! Morton (Z-order) octant keys and linear-octree primitives.
//!
//! This crate is the geometric substrate of the FMM reproduction: octant
//! keys with parent/child/ancestor algebra, colleague and adjacency queries
//! (Table I of the paper), and the linear-octree completion algorithms of
//! Sundar, Sampath & Biros (SIAM J. Sci. Comput. 30(5), 2008) that the
//! paper's `Points2Octree` tree construction builds on.
//!
//! # Representation
//!
//! An octant is identified by the integer coordinates of its lower corner
//! (the *anchor*) on the finest admissible grid (`2^MAX_DEPTH` cells per
//! side of the unit cube) plus its refinement level. The *rank* of an
//! octant is the 3-way bit interleave of its anchor, a `u128` with
//! `3 * MAX_DEPTH = 90` significant bits. An octant of level `l` covers the
//! contiguous rank interval `[rank, rank + 8^(MAX_DEPTH - l) - 1]`; nested
//! octants have nested, aligned intervals. All completion and partitioning
//! algorithms in this crate operate on those intervals.

pub mod key;
pub mod region;

pub use key::{MortonKey, Point3, MAX_DEPTH};
pub use region::{
    complete_octree, complete_region, cover_interval, is_complete_linear, linearize,
    linearize_keep_finest, RANK_SPAN,
};
