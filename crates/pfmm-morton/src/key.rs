//! The `MortonKey` octant identifier and its geometric algebra.

use std::cmp::Ordering;
use std::fmt;

/// Maximum refinement depth supported by the key encoding.
///
/// The paper's most adaptive tree spans levels 2–27; depth 30 gives
/// headroom while keeping the interleaved rank within 90 bits of a `u128`.
pub const MAX_DEPTH: u32 = 30;

/// A point in the unit cube.
pub type Point3 = [f64; 3];

/// Lookup table spreading one byte `b` so that bit `i` of `b` lands on bit
/// `3*i` of the result (two zero bits between consecutive payload bits).
const SPREAD3: [u32; 256] = build_spread3();

const fn build_spread3() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u32;
        let mut i = 0;
        while i < 8 {
            if b & (1 << i) != 0 {
                v |= 1 << (3 * i);
            }
            i += 1;
        }
        t[b] = v;
        b += 1;
    }
    t
}

/// Spread the low `MAX_DEPTH` bits of `x` so that bit `i` lands on bit `3*i`.
#[inline]
fn spread3(x: u32) -> u128 {
    (SPREAD3[(x & 0xff) as usize] as u128)
        | ((SPREAD3[((x >> 8) & 0xff) as usize] as u128) << 24)
        | ((SPREAD3[((x >> 16) & 0xff) as usize] as u128) << 48)
        | ((SPREAD3[((x >> 24) & 0xff) as usize] as u128) << 72)
}

/// Inverse of [`spread3`]: collect every third bit starting at bit 0.
#[inline]
fn compact3(code: u128) -> u32 {
    let mut x = 0u32;
    let mut i = 0;
    while i < MAX_DEPTH {
        if code & (1u128 << (3 * i)) != 0 {
            x |= 1 << i;
        }
        i += 1;
    }
    x
}

/// An octant of the unit cube, identified by its anchor (lower corner) on
/// the finest grid and its refinement level.
///
/// Keys order by the paper's Morton ordering: ranks compare first, and on a
/// tie (an octant and its first descendant share an anchor) the coarser
/// octant comes first, so ancestors precede descendants.
///
/// ```
/// use pfmm_morton::MortonKey;
///
/// let k = MortonKey::from_point(&[0.3, 0.7, 0.1], 4);
/// let parent = k.parent().unwrap();
/// assert!(parent.is_ancestor_of(&k));
/// assert!(parent < k); // ancestors precede descendants
/// assert_eq!(parent.child(k.child_index()), k);
/// assert_eq!(k.colleagues().len() + 1, 27); // interior octant
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct MortonKey {
    x: u32,
    y: u32,
    z: u32,
    level: u32,
}

impl fmt::Debug for MortonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oct(l{} @ {},{},{})", self.level, self.x, self.y, self.z)
    }
}

impl PartialOrd for MortonKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MortonKey {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank()
            .cmp(&other.rank())
            .then_with(|| self.level.cmp(&other.level))
    }
}

impl MortonKey {
    /// The root octant: the whole unit cube.
    pub const fn root() -> Self {
        MortonKey {
            x: 0,
            y: 0,
            z: 0,
            level: 0,
        }
    }

    /// Build a key from an anchor on the finest grid and a level.
    ///
    /// # Panics
    /// Panics if the level exceeds [`MAX_DEPTH`], a coordinate lies outside
    /// the grid, or the anchor is not aligned to the level's cell size.
    pub fn new(anchor: [u32; 3], level: u32) -> Self {
        assert!(level <= MAX_DEPTH, "level {level} > MAX_DEPTH");
        let side = 1u32 << MAX_DEPTH;
        let cell = 1u32 << (MAX_DEPTH - level);
        for &c in &anchor {
            assert!(c < side, "anchor coordinate {c} outside grid");
            assert!(c % cell == 0, "anchor {c} unaligned for level {level}");
        }
        MortonKey {
            x: anchor[0],
            y: anchor[1],
            z: anchor[2],
            level,
        }
    }

    /// The key of the level-`level` octant containing `p`.
    ///
    /// Coordinates are clamped into `[0, 1)`, so points exactly on the far
    /// boundary fall into the last cell.
    pub fn from_point(p: &Point3, level: u32) -> Self {
        assert!(level <= MAX_DEPTH);
        let side = (1u64 << MAX_DEPTH) as f64;
        let mask = !((1u32 << (MAX_DEPTH - level)) - 1);
        let mut a = [0u32; 3];
        for d in 0..3 {
            let c = (p[d] * side).floor();
            let c = c.clamp(0.0, side - 1.0) as u32;
            a[d] = c & mask;
        }
        MortonKey {
            x: a[0],
            y: a[1],
            z: a[2],
            level,
        }
    }

    /// The finest-level key containing `p` (used as a point's sort id).
    #[inline]
    pub fn finest_from_point(p: &Point3) -> Self {
        Self::from_point(p, MAX_DEPTH)
    }

    /// Anchor coordinates on the finest grid.
    #[inline]
    pub fn anchor(&self) -> [u32; 3] {
        [self.x, self.y, self.z]
    }

    /// Refinement level (0 = root).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Octant edge length in finest-grid units.
    #[inline]
    pub fn cell_units(&self) -> u32 {
        1 << (MAX_DEPTH - self.level)
    }

    /// Octant edge length in the unit cube.
    #[inline]
    pub fn side(&self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }

    /// Half the edge length (the octant "radius" used for FMM surfaces).
    #[inline]
    pub fn radius(&self) -> f64 {
        0.5 * self.side()
    }

    /// Lower corner in the unit cube.
    pub fn corner(&self) -> Point3 {
        let s = 1.0 / (1u64 << MAX_DEPTH) as f64;
        [self.x as f64 * s, self.y as f64 * s, self.z as f64 * s]
    }

    /// Center point in the unit cube.
    pub fn center(&self) -> Point3 {
        let c = self.corner();
        let r = self.radius();
        [c[0] + r, c[1] + r, c[2] + r]
    }

    /// Interleaved anchor: the rank of this octant's first finest-level
    /// descendant. See the crate docs for the rank-interval view.
    #[inline]
    pub fn rank(&self) -> u128 {
        (spread3(self.x) << 2) | (spread3(self.y) << 1) | spread3(self.z)
    }

    /// Packed total-order key: `(rank << 5) | level`. Compares exactly
    /// like [`Ord`] (rank first, level breaking the ancestor/descendant
    /// tie; `level <= MAX_DEPTH < 32` fits in 5 bits, and the rank's 90
    /// bits leave room for the shift) but as a single integer, so search
    /// loops over key arrays can compare precomputed `u128`s instead of
    /// re-deriving the rank interleave on every probe.
    #[inline]
    pub fn sort_key(&self) -> u128 {
        (self.rank() << 5) | self.level as u128
    }

    /// Number of finest-level cells this octant covers.
    #[inline]
    pub fn rank_extent(&self) -> u128 {
        1u128 << (3 * (MAX_DEPTH - self.level))
    }

    /// Last rank covered by this octant (inclusive).
    #[inline]
    pub fn rank_end(&self) -> u128 {
        self.rank() + (self.rank_extent() - 1)
    }

    /// Rebuild an octant from a rank and level.
    ///
    /// # Panics
    /// Panics if `rank` is not aligned to the octant size of `level`.
    pub fn from_rank(rank: u128, level: u32) -> Self {
        assert!(level <= MAX_DEPTH);
        assert!(
            rank.is_multiple_of(1u128 << (3 * (MAX_DEPTH - level))),
            "rank {rank} unaligned for level {level}"
        );
        MortonKey {
            x: compact3(rank >> 2),
            y: compact3(rank >> 1),
            z: compact3(rank),
            level,
        }
    }

    /// Parent octant, or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.level == 0 {
            return None;
        }
        let level = self.level - 1;
        let mask = !((1u32 << (MAX_DEPTH - level)) - 1);
        Some(MortonKey {
            x: self.x & mask,
            y: self.y & mask,
            z: self.z & mask,
            level,
        })
    }

    /// Index (0–7) of this octant among its parent's children.
    pub fn child_index(&self) -> usize {
        assert!(self.level > 0, "root has no child index");
        let bit = MAX_DEPTH - self.level;
        ((((self.x >> bit) & 1) << 2) | (((self.y >> bit) & 1) << 1) | ((self.z >> bit) & 1))
            as usize
    }

    /// The child with the given index (0–7, Morton order).
    pub fn child(&self, index: usize) -> Self {
        assert!(index < 8);
        assert!(self.level < MAX_DEPTH, "cannot refine below MAX_DEPTH");
        let level = self.level + 1;
        let h = 1u32 << (MAX_DEPTH - level);
        MortonKey {
            x: self.x + if index & 4 != 0 { h } else { 0 },
            y: self.y + if index & 2 != 0 { h } else { 0 },
            z: self.z + if index & 1 != 0 { h } else { 0 },
            level,
        }
    }

    /// All eight children, in Morton order.
    pub fn children(&self) -> [Self; 8] {
        std::array::from_fn(|i| self.child(i))
    }

    /// Ancestors from the parent up to the root (exclusive of `self`).
    pub fn ancestors(&self) -> Vec<Self> {
        let mut out = Vec::with_capacity(self.level as usize);
        let mut k = *self;
        while let Some(p) = k.parent() {
            out.push(p);
            k = p;
        }
        out
    }

    /// The ancestor of `self` at the given (coarser or equal) level.
    pub fn ancestor_at_level(&self, level: u32) -> Self {
        assert!(level <= self.level);
        let mask = if level == 0 {
            0
        } else {
            !((1u32 << (MAX_DEPTH - level)) - 1)
        };
        MortonKey {
            x: self.x & mask,
            y: self.y & mask,
            z: self.z & mask,
            level,
        }
    }

    /// True if `self` is a strict ancestor of `other`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &Self) -> bool {
        self.level < other.level && *self == other.ancestor_at_level(self.level)
    }

    /// True if `self` is an ancestor of `other` or equal to it.
    #[inline]
    pub fn contains(&self, other: &Self) -> bool {
        self.level <= other.level && *self == other.ancestor_at_level(self.level)
    }

    /// True if the point lies inside this octant (clamped as in
    /// [`MortonKey::from_point`]).
    pub fn contains_point(&self, p: &Point3) -> bool {
        self.contains(&Self::finest_from_point(p))
    }

    /// Nearest common ancestor of two octants.
    pub fn nearest_common_ancestor(&self, other: &Self) -> Self {
        let mut l = self.level.min(other.level);
        loop {
            let a = self.ancestor_at_level(l);
            let b = other.ancestor_at_level(l);
            if a == b {
                return a;
            }
            l -= 1;
        }
    }

    /// Same-level neighbor displaced by `(dx, dy, dz)` octant widths, or
    /// `None` if that would leave the unit cube.
    pub fn neighbor(&self, dx: i32, dy: i32, dz: i32) -> Option<Self> {
        let side = 1i64 << MAX_DEPTH;
        let step = self.cell_units() as i64;
        let nx = self.x as i64 + dx as i64 * step;
        let ny = self.y as i64 + dy as i64 * step;
        let nz = self.z as i64 + dz as i64 * step;
        if nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side {
            return None;
        }
        Some(MortonKey {
            x: nx as u32,
            y: ny as u32,
            z: nz as u32,
            level: self.level,
        })
    }

    /// Colleagues: same-level octants adjacent to `self` (Table I, C(β)).
    /// At most 26; fewer at the domain boundary. Excludes `self`.
    pub fn colleagues(&self) -> Vec<Self> {
        let mut out = Vec::with_capacity(26);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if let Some(n) = self.neighbor(dx, dy, dz) {
                        out.push(n);
                    }
                }
            }
        }
        out
    }

    /// Colleagues including `self` (the paper writes C(β) ∪ {β} in places).
    pub fn colleagues_and_self(&self) -> Vec<Self> {
        let mut v = self.colleagues();
        v.push(*self);
        v
    }

    /// Integer bounding box `[lo, hi]` (closed) in finest-grid units.
    #[inline]
    fn bbox(&self) -> ([u32; 3], [u32; 3]) {
        let s = self.cell_units();
        (
            [self.x, self.y, self.z],
            [self.x + s, self.y + s, self.z + s],
        )
    }

    /// True if the closures of the two octants intersect (they share at
    /// least a vertex, or one contains the other).
    pub fn touches(&self, other: &Self) -> bool {
        let (alo, ahi) = self.bbox();
        let (blo, bhi) = other.bbox();
        (0..3).all(|d| alo[d] <= bhi[d] && blo[d] <= ahi[d])
    }

    /// Adjacency in the paper's sense: the octants share a vertex, edge, or
    /// face but have disjoint interiors. An octant is *not* adjacent to
    /// itself or to its ancestors/descendants.
    pub fn is_adjacent(&self, other: &Self) -> bool {
        let (alo, ahi) = self.bbox();
        let (blo, bhi) = other.bbox();
        let closures_touch = (0..3).all(|d| alo[d] <= bhi[d] && blo[d] <= ahi[d]);
        let interiors_meet = (0..3).all(|d| alo[d] < bhi[d] && blo[d] < ahi[d]);
        closures_touch && !interiors_meet
    }

    /// Deepest first descendant: the finest-level octant at this octant's
    /// anchor.
    pub fn deepest_first_descendant(&self) -> Self {
        MortonKey {
            x: self.x,
            y: self.y,
            z: self.z,
            level: MAX_DEPTH,
        }
    }

    /// Deepest last descendant: the finest-level octant at the far corner.
    pub fn deepest_last_descendant(&self) -> Self {
        let off = self.cell_units() - 1;
        MortonKey {
            x: self.x + off,
            y: self.y + off,
            z: self.z + off,
            level: MAX_DEPTH,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_covers_everything() {
        let r = MortonKey::root();
        assert_eq!(r.rank(), 0);
        assert_eq!(r.rank_end(), (1u128 << (3 * MAX_DEPTH)) - 1);
        assert_eq!(r.side(), 1.0);
    }

    #[test]
    fn spread_compact_roundtrip() {
        for x in [
            0u32,
            1,
            2,
            255,
            1 << 20,
            (1 << MAX_DEPTH) - 1,
            0x2aaa_aaaa & ((1 << MAX_DEPTH) - 1),
        ] {
            assert_eq!(compact3(spread3(x)), x, "x={x}");
        }
    }

    #[test]
    fn rank_roundtrip() {
        let k = MortonKey::from_point(&[0.3, 0.7, 0.9], 9);
        assert_eq!(MortonKey::from_rank(k.rank(), k.level()), k);
    }

    #[test]
    fn children_partition_parent_ranks() {
        let k = MortonKey::from_point(&[0.26, 0.51, 0.77], 5);
        let ch = k.children();
        assert_eq!(ch[0].rank(), k.rank());
        for w in ch.windows(2) {
            assert_eq!(w[0].rank_end() + 1, w[1].rank());
        }
        assert_eq!(ch[7].rank_end(), k.rank_end());
    }

    #[test]
    fn parent_child_roundtrip() {
        let k = MortonKey::from_point(&[0.1, 0.2, 0.3], 7);
        for i in 0..8 {
            let c = k.child(i);
            assert_eq!(c.parent().unwrap(), k);
            assert_eq!(c.child_index(), i);
        }
    }

    #[test]
    fn ancestors_ordering() {
        let k = MortonKey::from_point(&[0.9, 0.1, 0.5], 6);
        for a in k.ancestors() {
            assert!(a.is_ancestor_of(&k));
            assert!(a < k, "ancestor precedes descendant in Morton order");
            assert!(a.contains(&k));
        }
        assert!(!k.is_ancestor_of(&k));
        assert!(k.contains(&k));
    }

    #[test]
    fn nca_of_siblings_is_parent() {
        let k = MortonKey::from_point(&[0.4, 0.4, 0.4], 4);
        let a = k.child(0);
        let b = k.child(7);
        assert_eq!(a.nearest_common_ancestor(&b), k);
        assert_eq!(a.nearest_common_ancestor(&a), a);
    }

    #[test]
    fn colleague_counts() {
        // An interior octant has 26 colleagues; a corner octant has 7.
        let interior = MortonKey::from_point(&[0.5, 0.5, 0.5], 3);
        assert_eq!(interior.colleagues().len(), 26);
        let corner = MortonKey::from_point(&[0.0, 0.0, 0.0], 3);
        assert_eq!(corner.colleagues().len(), 7);
    }

    #[test]
    fn adjacency_basics() {
        let k = MortonKey::from_point(&[0.5, 0.5, 0.5], 3);
        for c in k.colleagues() {
            assert!(k.is_adjacent(&c));
            assert!(c.is_adjacent(&k));
        }
        assert!(!k.is_adjacent(&k));
        let parent = k.parent().unwrap();
        assert!(!k.is_adjacent(&parent));
        // A fine octant touching a coarse one across a face is adjacent.
        let fine = k.neighbor(-1, 0, 0).unwrap().child(4).child(4);
        assert!(fine.is_adjacent(&k));
    }

    #[test]
    fn far_octants_not_adjacent() {
        let a = MortonKey::from_point(&[0.1, 0.1, 0.1], 4);
        let b = MortonKey::from_point(&[0.9, 0.9, 0.9], 4);
        assert!(!a.is_adjacent(&b));
        assert!(!a.touches(&b));
    }

    #[test]
    fn dfd_dld_bound_rank_interval() {
        let k = MortonKey::from_point(&[0.33, 0.66, 0.12], 5);
        assert_eq!(k.deepest_first_descendant().rank(), k.rank());
        assert_eq!(k.deepest_last_descendant().rank(), k.rank_end());
    }

    #[test]
    fn boundary_point_clamped() {
        let k = MortonKey::from_point(&[1.0, 1.0, 1.0], 2);
        assert_eq!(k.anchor(), [3 << (MAX_DEPTH - 2); 3]);
    }

    #[test]
    fn ordering_is_rank_then_level() {
        let k = MortonKey::from_point(&[0.2, 0.8, 0.4], 6);
        let c = k.child(0);
        assert!(k < c);
        let c7 = k.child(7);
        assert!(c < c7);
    }
}
