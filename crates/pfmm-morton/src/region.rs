//! Linear-octree completion algorithms in rank space.
//!
//! A *linear octree* is a Morton-sorted list of non-overlapping octants. A
//! *complete* linear octree covers the whole unit cube. Because an octant
//! of level `l` covers the aligned rank interval
//! `[rank, rank + 8^(MAX_DEPTH-l) - 1]`, completion reduces to covering a
//! rank interval greedily with the largest aligned octants that fit — a
//! rank-space reformulation of Algorithms 3 and 4 of Sundar et al. 2008.

use crate::key::{MortonKey, MAX_DEPTH};

/// Total number of finest-level cells (one past the largest rank).
pub const RANK_SPAN: u128 = 1u128 << (3 * MAX_DEPTH);

/// Remove duplicates and overlaps from a list of octants.
///
/// The result is Morton-sorted and no octant is an ancestor of another;
/// when an octant and its ancestor both appear, the ancestor is kept (it
/// covers the descendant). Matches DENDRO's `linearise` used before
/// completion.
pub fn linearize(mut keys: Vec<MortonKey>) -> Vec<MortonKey> {
    keys.sort_unstable();
    keys.dedup();
    let mut out: Vec<MortonKey> = Vec::with_capacity(keys.len());
    for k in keys {
        if let Some(last) = out.last() {
            if last.contains(&k) {
                continue;
            }
        }
        out.push(k);
    }
    out
}

/// Like [`linearize`], but with the opposite overlap resolution: when an
/// octant and its ancestor both appear, the *descendants* win and the
/// ancestor is dropped. This is the resolution 2:1 balancing needs
/// (refinements must never be swallowed by a coarser cell).
pub fn linearize_keep_finest(mut keys: Vec<MortonKey>) -> Vec<MortonKey> {
    keys.sort_unstable();
    keys.dedup();
    // Ancestors immediately precede their first present descendant in
    // Morton order, so one forward scan removes every proper ancestor.
    let mut out: Vec<MortonKey> = Vec::with_capacity(keys.len());
    for k in keys {
        while let Some(last) = out.last() {
            if last.is_ancestor_of(&k) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(k);
    }
    out
}

/// Cover the closed rank interval `[start, end]` with the minimal list of
/// aligned octants, coarsest-possible first at each step.
///
/// # Panics
/// Panics if `start > end` or `end` exceeds the rank span.
pub fn cover_interval(start: u128, end: u128) -> Vec<MortonKey> {
    assert!(start <= end, "empty interval");
    assert!(end < RANK_SPAN, "interval outside the unit cube");
    let mut out = Vec::new();
    let mut cur = start;
    while cur <= end {
        let remaining = end - cur + 1;
        // Largest octant aligned at `cur`: limited by both the alignment of
        // `cur` (trailing zero triples) and the remaining interval length.
        let align_levels = if cur == 0 {
            MAX_DEPTH
        } else {
            (cur.trailing_zeros() / 3).min(MAX_DEPTH)
        };
        let mut k = align_levels;
        while (1u128 << (3 * k)) > remaining {
            k -= 1;
        }
        let level = MAX_DEPTH - k;
        out.push(MortonKey::from_rank(cur, level));
        cur += 1u128 << (3 * k);
    }
    out
}

/// Minimal complete linear octree strictly between octants `a` and `b`
/// (Sundar et al., Algorithm 3): covers the ranks after `a`'s interval and
/// before `b`'s, excluding both.
///
/// Returns an empty list when the two intervals are contiguous.
///
/// # Panics
/// Panics if `b`'s interval does not lie strictly after `a`'s (overlapping
/// or out-of-order input).
pub fn complete_region(a: &MortonKey, b: &MortonKey) -> Vec<MortonKey> {
    let start = a
        .rank_end()
        .checked_add(1)
        .expect("a is the last octant; nothing after it");
    assert!(
        start <= b.rank(),
        "complete_region requires disjoint, ordered octants (got {a:?}, {b:?})"
    );
    if start == b.rank() {
        return Vec::new();
    }
    cover_interval(start, b.rank() - 1)
}

/// Complete a partial list of octants into a complete linear octree of the
/// unit cube (Sundar et al., Algorithm 4).
///
/// The input may contain duplicates and overlaps (it is linearized first).
/// The given octants all appear in the output, with gaps filled by the
/// coarsest octants that fit. An empty input yields the root.
pub fn complete_octree(seeds: Vec<MortonKey>) -> Vec<MortonKey> {
    let seeds = linearize(seeds);
    if seeds.is_empty() {
        return vec![MortonKey::root()];
    }
    let mut out = Vec::with_capacity(seeds.len() * 2);
    let first = seeds[0];
    if first.rank() > 0 {
        out.extend(cover_interval(0, first.rank() - 1));
    }
    for w in seeds.windows(2) {
        out.push(w[0]);
        out.extend(complete_region(&w[0], &w[1]));
    }
    let last = *seeds.last().expect("nonempty");
    out.push(last);
    if last.rank_end() + 1 < RANK_SPAN {
        out.extend(cover_interval(last.rank_end() + 1, RANK_SPAN - 1));
    }
    out
}

/// Verify that `keys` is a complete linear octree: Morton-sorted,
/// non-overlapping, and covering the whole cube. Used by tests and debug
/// assertions in the tree-construction pipeline.
pub fn is_complete_linear(keys: &[MortonKey]) -> bool {
    if keys.is_empty() {
        return false;
    }
    if keys[0].rank() != 0 {
        return false;
    }
    for w in keys.windows(2) {
        if w[0].rank_end() + 1 != w[1].rank() {
            return false;
        }
    }
    keys.last().expect("nonempty").rank_end() == RANK_SPAN - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Point3;

    #[test]
    fn cover_whole_cube_is_root() {
        let v = cover_interval(0, RANK_SPAN - 1);
        assert_eq!(v, vec![MortonKey::root()]);
    }

    #[test]
    fn cover_single_cell() {
        let k = MortonKey::from_point(&[0.123, 0.456, 0.789], MAX_DEPTH);
        let v = cover_interval(k.rank(), k.rank());
        assert_eq!(v, vec![k]);
    }

    #[test]
    fn linearize_keeps_ancestor() {
        let k = MortonKey::from_point(&[0.3, 0.3, 0.3], 4);
        let v = linearize(vec![k.child(3), k, k.child(0), k]);
        assert_eq!(v, vec![k]);
    }

    #[test]
    fn complete_region_between_siblings_is_empty() {
        let k = MortonKey::from_point(&[0.6, 0.2, 0.2], 3);
        assert!(complete_region(&k.child(0), &k.child(1)).is_empty());
    }

    #[test]
    fn complete_region_between_first_and_last_child() {
        let k = MortonKey::from_point(&[0.6, 0.2, 0.2], 3);
        let mid = complete_region(&k.child(0), &k.child(7));
        assert_eq!(mid.len(), 6);
        let mut all = vec![k.child(0)];
        all.extend(mid);
        all.push(k.child(7));
        for w in all.windows(2) {
            assert_eq!(w[0].rank_end() + 1, w[1].rank());
        }
    }

    #[test]
    fn complete_octree_empty_input() {
        assert_eq!(complete_octree(vec![]), vec![MortonKey::root()]);
    }

    #[test]
    fn complete_octree_is_complete_and_contains_seeds() {
        let pts: [Point3; 4] = [
            [0.01, 0.02, 0.03],
            [0.99, 0.98, 0.97],
            [0.5, 0.5, 0.5],
            [0.25, 0.75, 0.1],
        ];
        let seeds: Vec<_> = pts.iter().map(|p| MortonKey::from_point(p, 6)).collect();
        let tree = complete_octree(seeds.clone());
        assert!(is_complete_linear(&tree));
        for s in linearize(seeds) {
            assert!(tree.contains(&s));
        }
    }

    #[test]
    fn complete_octree_of_root_is_root() {
        assert_eq!(
            complete_octree(vec![MortonKey::root()]),
            vec![MortonKey::root()]
        );
    }
}
