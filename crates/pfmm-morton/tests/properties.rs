//! Property-based tests of the Morton/linear-octree algebra.

use proptest::prelude::*;

use pfmm_morton::{
    complete_octree, complete_region, cover_interval, is_complete_linear, linearize, MortonKey,
    MAX_DEPTH, RANK_SPAN,
};

fn arb_key(max_level: u32) -> impl Strategy<Value = MortonKey> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u32..=max_level)
        .prop_map(|(x, y, z, l)| MortonKey::from_point(&[x, y, z], l))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// cover_interval tiles exactly the requested rank interval, in order,
    /// with aligned octants.
    #[test]
    fn cover_interval_tiles_exactly(a in 0u128..1u128 << 60, len in 1u128..1u128 << 50) {
        let b = (a + len - 1).min(RANK_SPAN - 1);
        let cov = cover_interval(a, b);
        prop_assert_eq!(cov[0].rank(), a);
        prop_assert_eq!(cov.last().expect("nonempty").rank_end(), b);
        for w in cov.windows(2) {
            prop_assert_eq!(w[0].rank_end() + 1, w[1].rank());
        }
    }

    /// Region completion between two disjoint octants tiles the gap.
    #[test]
    fn complete_region_fills_gap(a in arb_key(10), b in arb_key(10)) {
        let (lo, hi) = if a.rank_end() < b.rank() {
            (a, b)
        } else if b.rank_end() < a.rank() {
            (b, a)
        } else {
            return Ok(()); // overlapping: precondition not met
        };
        let mid = complete_region(&lo, &hi);
        let mut all = vec![lo];
        all.extend(mid);
        all.push(hi);
        for w in all.windows(2) {
            prop_assert_eq!(w[0].rank_end() + 1, w[1].rank());
        }
    }

    /// Linearize is idempotent, sorted, and overlap-free.
    #[test]
    fn linearize_idempotent(keys in prop::collection::vec(arb_key(8), 0..64)) {
        let lin = linearize(keys);
        for w in lin.windows(2) {
            prop_assert!(w[0] < w[1]);
            prop_assert!(!w[0].contains(&w[1]));
        }
        let again = linearize(lin.clone());
        prop_assert_eq!(lin, again);
    }

    /// complete_octree always yields a complete linear octree containing
    /// the linearized seeds.
    #[test]
    fn complete_octree_complete(keys in prop::collection::vec(arb_key(7), 0..48)) {
        let tree = complete_octree(keys.clone());
        prop_assert!(is_complete_linear(&tree));
        for s in linearize(keys) {
            prop_assert!(tree.binary_search(&s).is_ok());
        }
    }

    /// Rank intervals and containment agree: a contains b iff b's interval
    /// nests in a's and a is no deeper.
    #[test]
    fn containment_matches_intervals(a in arb_key(12), b in arb_key(12)) {
        let by_interval = a.level() <= b.level()
            && a.rank() <= b.rank()
            && b.rank_end() <= a.rank_end();
        prop_assert_eq!(a.contains(&b), by_interval);
    }

    /// Adjacency is symmetric and disjoint from containment.
    #[test]
    fn adjacency_symmetric(a in arb_key(9), b in arb_key(9)) {
        prop_assert_eq!(a.is_adjacent(&b), b.is_adjacent(&a));
        if a.contains(&b) || b.contains(&a) {
            prop_assert!(!a.is_adjacent(&b));
        }
    }

    /// from_rank inverts (rank, level) for any valid key.
    #[test]
    fn rank_roundtrip(k in arb_key(MAX_DEPTH)) {
        prop_assert_eq!(MortonKey::from_rank(k.rank(), k.level()), k);
    }
}
