//! Interaction kernels for the FMM.
//!
//! The paper evaluates two kernels: the Laplace single layer (scalar, used
//! for the GPU experiments) and the Stokes single layer (a 3×3 tensor — the
//! "three unknowns per point" of the Kraken runs). The FMM core is
//! *kernel-independent*: everything it needs is the [`Kernel`] trait —
//! pointwise interaction blocks, the density/potential dimensions, and the
//! homogeneity degree used to rescale cached translation operators across
//! tree levels.

pub mod dipole;
pub mod direct;
pub mod kernel;
pub mod laplace;
pub mod stokes;
pub mod tile;
pub mod yukawa;

pub use dipole::LaplaceDipole;
pub use direct::{
    direct_eval, direct_eval_f32, direct_eval_f32_stokes, direct_eval_f32_yukawa, direct_eval_typed,
};
pub use kernel::{assemble, Kernel};
pub use laplace::Laplace;
pub use stokes::Stokes;
pub use tile::{TileKernel, Tiles, LANE};
pub use yukawa::Yukawa;

/// A point in the unit cube (re-exported convention shared with
/// `pfmm-morton`).
pub type Point3 = [f64; 3];
