//! Laplace double-layer (dipole) kernel:
//! `K(x, y)·d = (x−y)·d / (4π |x−y|³)` — the potential of a point dipole
//! with moment `d`.
//!
//! This is the kernel of double-layer boundary-integral formulations
//! (the usual well-conditioned form of Laplace BVPs). For the FMM it is
//! the interesting stress case: the source density has **three**
//! components while the potential has **one** (`source_dim ≠
//! target_dim`), and the homogeneity degree is **−2**, so it exercises
//! the rectangular translation operators and the non-unit scaling path
//! that the equal-dimension, degree −1 kernels never touch.

use crate::kernel::Kernel;
use crate::Point3;

const INV_4PI: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// The free-space Laplace dipole kernel.
#[derive(Copy, Clone, Debug, Default)]
pub struct LaplaceDipole;

impl Kernel for LaplaceDipole {
    fn source_dim(&self) -> usize {
        3
    }

    fn target_dim(&self) -> usize {
        1
    }

    #[inline]
    fn eval_block(&self, x: &Point3, y: &Point3, block: &mut [f64]) {
        let r = [x[0] - y[0], x[1] - y[1], x[2] - y[2]];
        let r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
        if r2 == 0.0 {
            block[..3].fill(0.0);
            return;
        }
        let c = INV_4PI / (r2 * r2.sqrt());
        block[0] = c * r[0];
        block[1] = c * r[1];
        block[2] = c * r[2];
    }

    fn homogeneity(&self) -> Option<f64> {
        // K(ax, ay) = a⁻² K(x, y): r scales linearly, r³ cubically.
        Some(-2.0)
    }

    fn flops_per_pair(&self) -> u64 {
        // diff (3), r² (5), rsqrt + r³ (≈6), 3 scaled components + dot
        // accumulate (≈9).
        25
    }

    fn name(&self) -> &'static str {
        "laplace-dipole"
    }

    fn as_tile_kernel(&self) -> Option<&dyn crate::tile::TileKernel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(x: &Point3, y: &Point3) -> [f64; 3] {
        let mut b = [0.0; 3];
        LaplaceDipole.eval_block(x, y, &mut b);
        b
    }

    #[test]
    fn axial_dipole_value() {
        // Dipole at the origin pointing +x, observed on the +x axis at
        // distance 2: potential = 1/(4π·4).
        let b = eval(&[2.0, 0.0, 0.0], &[0.0, 0.0, 0.0]);
        assert!((b[0] - INV_4PI / 4.0).abs() < 1e-15);
        assert_eq!(b[1], 0.0);
        assert_eq!(b[2], 0.0);
    }

    #[test]
    fn equatorial_component_vanishes() {
        // On the z axis, the x and y moment components contribute nothing.
        let b = eval(&[0.0, 0.0, 1.5], &[0.0, 0.0, 0.0]);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[1], 0.0);
        assert!(b[2] > 0.0);
    }

    #[test]
    fn antisymmetric_in_swap() {
        // K(x, y) = −K(y, x): the dipole potential is odd in r.
        let x = [0.2, 0.7, 0.4];
        let y = [0.9, 0.1, 0.6];
        let a = eval(&x, &y);
        let b = eval(&y, &x);
        for (p, q) in a.iter().zip(&b) {
            assert!((p + q).abs() < 1e-15);
        }
    }

    #[test]
    fn homogeneity_degree_minus_two() {
        let x = [0.1, 0.2, 0.3];
        let y = [0.6, 0.5, 0.9];
        let a = eval(&x, &y);
        let s = 3.0;
        let b = eval(
            &[s * x[0], s * x[1], s * x[2]],
            &[s * y[0], s * y[1], s * y[2]],
        );
        for (p, q) in a.iter().zip(&b) {
            assert!((p / (s * s) - q).abs() < 1e-15);
        }
    }

    #[test]
    fn self_interaction_zero() {
        let p = [0.4, 0.4, 0.4];
        assert_eq!(eval(&p, &p), [0.0; 3]);
    }

    #[test]
    fn matches_gradient_of_monopole() {
        // K_dipole(x, y)·d = d·∇_y (1/4π|x−y|) (since ∂/∂y_i |x−y|⁻¹ =
        // (x_i−y_i)/r³): check via finite differences of the Laplace
        // kernel.
        use crate::laplace::Laplace;
        let x = [0.8, 0.3, 0.5];
        let y = [0.2, 0.6, 0.1];
        let d = [0.3, -0.5, 0.7];
        let b = eval(&x, &y);
        let want_analytic: f64 = b.iter().zip(&d).map(|(k, m)| k * m).sum();
        let h = 1e-6;
        let lap = |yy: &Point3| {
            let mut v = [0.0];
            Laplace.eval_block(&x, yy, &mut v);
            v[0]
        };
        let mut fd = 0.0;
        for c in 0..3 {
            let mut yp = y;
            yp[c] += h;
            let mut ym = y;
            ym[c] -= h;
            fd += d[c] * (lap(&yp) - lap(&ym)) / (2.0 * h);
        }
        assert!((want_analytic - fd).abs() < 1e-8, "{want_analytic} vs {fd}");
    }
}
