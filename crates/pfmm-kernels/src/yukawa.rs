//! Yukawa (screened Coulomb / modified Laplace) kernel:
//! `K(x, y) = e^{−λ|x−y|} / (4π |x−y|)`.
//!
//! The classic *non-oscillatory* kernel beyond Laplace — the family the
//! kernel-independent FMM targets (paper §I: "particularly effective for
//! non-oscillatory kernels"). It is **not homogeneous** (the screening
//! length λ⁻¹ sets a scale), so it exercises the per-level
//! translation-operator path that homogeneous kernels bypass via
//! rescaling.

use crate::kernel::Kernel;
use crate::Point3;

const INV_4PI: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// The free-space Green's function of `(−Δ + λ²)u = f`.
#[derive(Copy, Clone, Debug)]
pub struct Yukawa {
    /// Screening parameter λ (inverse decay length).
    pub lambda: f64,
}

impl Default for Yukawa {
    fn default() -> Self {
        Yukawa { lambda: 1.0 }
    }
}

impl Kernel for Yukawa {
    fn source_dim(&self) -> usize {
        1
    }

    fn target_dim(&self) -> usize {
        1
    }

    #[inline]
    fn eval_block(&self, x: &Point3, y: &Point3, block: &mut [f64]) {
        let dx = x[0] - y[0];
        let dy = x[1] - y[1];
        let dz = x[2] - y[2];
        let r2 = dx * dx + dy * dy + dz * dz;
        block[0] = if r2 == 0.0 {
            0.0
        } else {
            let r = r2.sqrt();
            INV_4PI * (-self.lambda * r).exp() / r
        };
    }

    fn homogeneity(&self) -> Option<f64> {
        None
    }

    fn flops_per_pair(&self) -> u64 {
        // Laplace's ~20 plus an exponential (~10 on 2009 hardware).
        30
    }

    fn name(&self) -> &'static str {
        "yukawa"
    }

    fn as_tile_kernel(&self) -> Option<&dyn crate::tile::TileKernel> {
        Some(self)
    }

    fn eval_target(&self, x: &Point3, sources: &[Point3], densities: &[f64], out: &mut [f64]) {
        debug_assert_eq!(densities.len(), sources.len());
        let mut acc = 0.0;
        for (y, s) in sources.iter().zip(densities) {
            let dx = x[0] - y[0];
            let dy = x[1] - y[1];
            let dz = x[2] - y[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            if r2 > 0.0 {
                let r = r2.sqrt();
                acc += s * (-self.lambda * r).exp() / r;
            }
        }
        out[0] += acc * INV_4PI;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(k: &Yukawa, x: &Point3, y: &Point3) -> f64 {
        let mut b = [0.0];
        k.eval_block(x, y, &mut b);
        b[0]
    }

    #[test]
    fn reduces_to_laplace_at_zero_screening() {
        let y = Yukawa { lambda: 0.0 };
        let v = eval(&y, &[0.0; 3], &[0.5, 0.0, 0.0]);
        assert!((v - INV_4PI / 0.5).abs() < 1e-15);
    }

    #[test]
    fn screening_decays_faster_than_laplace() {
        let y = Yukawa { lambda: 4.0 };
        let near = eval(&y, &[0.0; 3], &[0.1, 0.0, 0.0]);
        let far = eval(&y, &[0.0; 3], &[1.0, 0.0, 0.0]);
        // Laplace ratio would be 10; screening multiplies by e^{-0.36·10}.
        let ratio = near / far;
        assert!(ratio > 10.0 * (4.0f64 * 0.9).exp() * 0.99, "ratio {ratio}");
    }

    #[test]
    fn self_interaction_zero() {
        let y = Yukawa::default();
        let p = [0.3, 0.7, 0.2];
        assert_eq!(eval(&y, &p, &p), 0.0);
    }

    #[test]
    fn not_homogeneous() {
        let y = Yukawa { lambda: 2.0 };
        assert_eq!(y.homogeneity(), None);
        // And indeed K(2x, 2y) != K(x,y)/2 for λ > 0.
        let a = eval(&y, &[0.0; 3], &[0.25, 0.0, 0.0]);
        let b = eval(&y, &[0.0; 3], &[0.5, 0.0, 0.0]);
        assert!((a / 2.0 - b).abs() > 1e-6);
    }

    #[test]
    fn fused_eval_matches_block_path() {
        let y = Yukawa { lambda: 1.5 };
        let x = [0.2, 0.4, 0.6];
        let srcs = vec![[0.9, 0.1, 0.3], [0.5, 0.5, 0.5], x];
        let dens = vec![1.0, -2.0, 5.0];
        let mut fused = [0.0];
        y.eval_target(&x, &srcs, &dens, &mut fused);
        let mut want = 0.0;
        for (s, d) in srcs.iter().zip(&dens) {
            want += eval(&y, &x, s) * d;
        }
        assert!((fused[0] - want).abs() < 1e-14);
    }
}
