//! Laplace single-layer kernel: `K(x, y) = 1 / (4π |x − y|)`.

use crate::kernel::Kernel;
use crate::Point3;

const INV_4PI: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// The free-space Green's function of the 3-D Laplacian (electrostatic /
/// gravitational potential). Scalar density, scalar potential.
#[derive(Copy, Clone, Debug, Default)]
pub struct Laplace;

impl Kernel for Laplace {
    fn source_dim(&self) -> usize {
        1
    }

    fn target_dim(&self) -> usize {
        1
    }

    #[inline]
    fn eval_block(&self, x: &Point3, y: &Point3, block: &mut [f64]) {
        let dx = x[0] - y[0];
        let dy = x[1] - y[1];
        let dz = x[2] - y[2];
        let r2 = dx * dx + dy * dy + dz * dz;
        block[0] = if r2 == 0.0 { 0.0 } else { INV_4PI / r2.sqrt() };
    }

    fn homogeneity(&self) -> Option<f64> {
        Some(-1.0)
    }

    fn flops_per_pair(&self) -> u64 {
        // diff (3), squares+adds (5), rsqrt (~4), scale+accumulate (~8):
        // the conventional 20 flops/interaction of N-body accounting.
        20
    }

    fn name(&self) -> &'static str {
        "laplace"
    }

    fn as_tile_kernel(&self) -> Option<&dyn crate::tile::TileKernel> {
        Some(self)
    }

    fn eval_target(&self, x: &Point3, sources: &[Point3], densities: &[f64], out: &mut [f64]) {
        debug_assert_eq!(densities.len(), sources.len());
        let mut acc = 0.0;
        for (y, s) in sources.iter().zip(densities) {
            let dx = x[0] - y[0];
            let dy = x[1] - y[1];
            let dz = x[2] - y[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            if r2 > 0.0 {
                acc += s / r2.sqrt();
            }
        }
        out[0] += acc * INV_4PI;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_distance() {
        let k = Laplace;
        let mut b = [0.0];
        k.eval_block(&[0.0, 0.0, 0.0], &[2.0, 0.0, 0.0], &mut b);
        assert!((b[0] - INV_4PI / 2.0).abs() < 1e-15);
    }

    #[test]
    fn self_interaction_is_zero() {
        let k = Laplace;
        let mut b = [f64::NAN];
        let p = [0.3, 0.3, 0.3];
        k.eval_block(&p, &p, &mut b);
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn symmetry() {
        let k = Laplace;
        let (mut a, mut b) = ([0.0], [0.0]);
        let x = [0.1, 0.9, 0.4];
        let y = [0.7, 0.2, 0.5];
        k.eval_block(&x, &y, &mut a);
        k.eval_block(&y, &x, &mut b);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn homogeneity_degree_minus_one() {
        let k = Laplace;
        let (mut a, mut b) = ([0.0], [0.0]);
        let x = [0.1, 0.2, 0.3];
        let y = [0.5, 0.6, 0.7];
        let a2 = |p: &Point3| [2.0 * p[0], 2.0 * p[1], 2.0 * p[2]];
        k.eval_block(&x, &y, &mut a);
        k.eval_block(&a2(&x), &a2(&y), &mut b);
        assert!((b[0] - a[0] / 2.0).abs() < 1e-15);
    }

    #[test]
    fn fused_eval_target_skips_self() {
        let k = Laplace;
        let x = [0.5, 0.5, 0.5];
        let srcs = vec![x, [0.25, 0.5, 0.5]];
        let mut out = [0.0];
        k.eval_target(&x, &srcs, &[5.0, 1.0], &mut out);
        assert!((out[0] - INV_4PI / 0.25).abs() < 1e-12);
    }
}
