//! Branch-free SoA tile microkernels for the near field (U-list).
//!
//! The paper's GPU U-list kernel (Algorithm 4) owes its throughput to two
//! ideas: a padded, coalescing-friendly point layout, and the branch-free
//! `max(NaN, x)` self-interaction trick. This module is the f64 CPU
//! analogue. Points and densities arrive as separate x/y/z/density
//! *planes* whose source length is a multiple of [`LANE`]; padding lanes
//! carry zero density at a far-away sentinel position (see
//! `pfmm-core::nearfield` and `pfmm-gpusim::layout`), so they contribute
//! exactly `0.0` without any branch. Each kernel body is monomorphized —
//! there is no `dyn` dispatch inside the tile loop; the single virtual
//! call happens once per U-edge through [`TileKernel::eval_tiles`].
//!
//! # The guarded reciprocal distance
//!
//! The hot loop computes `1/r` with a bit-hack Newton reciprocal square
//! root (no hardware `sqrt`/`div` in the dependent chain — on wide SIMD
//! the whole body compiles to pipelined FMAs), then applies the paper's
//! trick literally: one division produces `g = 1/r²`, which is `+∞` at a
//! coincident pair, `g − g` is then `NaN` there and `0.0` everywhere
//! else, and `max(NaN, 0.0) = 0.0` in IEEE arithmetic zeroes the self
//! term without a branch.

use crate::dipole::LaplaceDipole;
use crate::kernel::Kernel;
use crate::laplace::Laplace;
use crate::stokes::Stokes;
use crate::yukawa::Yukawa;

/// SIMD lane width the source planes are padded to (f64 lanes of one
/// AVX-512 register / two AVX2 registers).
pub const LANE: usize = 8;

const INV_4PI: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// One U-edge worth of SoA planes: `nt` targets against `ns` sources,
/// `ns` a multiple of [`LANE`].
///
/// `den` holds `source_dim` planes of `ns` entries each, back to back
/// (plane-major per box), so lane `l` of chunk `k` reads component `c`
/// at `den[c*ns + k*LANE + l]`.
#[derive(Clone, Copy)]
pub struct Tiles<'a> {
    /// Target x/y/z planes, `nt` entries each (targets are not padded —
    /// the outer loop walks real targets only).
    pub tx: &'a [f64],
    pub ty: &'a [f64],
    pub tz: &'a [f64],
    /// Source x/y/z planes, `ns` entries each, `ns % LANE == 0`; padding
    /// lanes sit at the sentinel position `(−1e9, −1e9, −1e9)`.
    pub sx: &'a [f64],
    pub sy: &'a [f64],
    pub sz: &'a [f64],
    /// `source_dim` density planes of `ns` entries; padding lanes are 0.
    pub den: &'a [f64],
}

impl Tiles<'_> {
    #[inline]
    fn check(&self, sd: usize, td: usize, out: &[f64]) {
        let (nt, ns) = (self.tx.len(), self.sx.len());
        debug_assert_eq!(ns % LANE, 0, "source planes padded to LANE");
        debug_assert!(self.ty.len() == nt && self.tz.len() == nt);
        debug_assert!(self.sy.len() == ns && self.sz.len() == ns);
        debug_assert_eq!(self.den.len(), sd * ns, "density plane packing");
        debug_assert_eq!(out.len(), nt * td, "output packing");
    }
}

/// A kernel that provides monomorphized SoA tile microkernels for the
/// near field. Obtained from a `&dyn Kernel` via
/// [`Kernel::as_tile_kernel`]; kernels without an implementation fall
/// back to the scalar U-list path.
pub trait TileKernel: Kernel {
    /// Accumulate `out += Σ K(x_i, y_j) s_j` over all (target,
    /// source-lane) pairs of one U-edge. `out` is packed `target_dim`
    /// per target point. Padding lanes contribute exactly `0.0`; a
    /// coincident target/source pair contributes exactly `0.0` (the
    /// `max(NaN, x)` trick), bitwise independent of how callers batch
    /// source boxes.
    fn eval_tiles(&self, t: Tiles<'_>, out: &mut [f64]);
}

/// Bit-hack Newton–Raphson reciprocal square root.
///
/// The magic-constant seed (Lomont's double-precision constant) is
/// accurate to ~3.4e-2; four Newton steps square that error down to a
/// couple of ulps (~1e-16 relative), well inside the near field's 1e-12
/// budget. Valid for normal `r2`; the FMM's unit-cube point sets produce
/// `r2 ≥ ~1e-32` (adjacent f64 coordinates), far from the subnormal
/// range where the exponent hack degrades.
#[inline(always)]
fn rsqrt_newton(r2: f64) -> f64 {
    let mut y = f64::from_bits(0x5FE6_EB50_C7B5_37A9u64.wrapping_sub(r2.to_bits() >> 1));
    y *= 1.5 - 0.5 * r2 * y * y;
    y *= 1.5 - 0.5 * r2 * y * y;
    y *= 1.5 - 0.5 * r2 * y * y;
    y *= 1.5 - 0.5 * r2 * y * y;
    y
}

/// Guarded reciprocal distance: `1/√r2` for `r2 > 0`, exactly `0.0` at
/// `r2 == 0` via the paper's `max(NaN, x)` idiom (see module docs).
#[inline(always)]
fn inv_r_guarded(r2: f64) -> f64 {
    let inv = rsqrt_newton(r2);
    let g = 1.0 / r2; // +∞ at a coincident pair
                      // Intentional self-subtraction: ∞ − ∞ = NaN, and max(NaN, 0) = 0
                      // suppresses the self term branch-free (finite g gives exactly 0).
    #[allow(clippy::eq_op)]
    let guard = g - g;
    (inv + guard).max(0.0)
}

/// Targets per register block: the Newton chain is a serial dependency
/// per lane vector, so a single target leaves the FMA pipeline mostly
/// idle; interleaving this many independent chains fills it. Per-target
/// accumulation order is unchanged by the blocking (each target owns its
/// accumulator and sees sources in the same sequence), so results are
/// bitwise identical to the unblocked loop.
const TB: usize = 4;

/// `K(x,y) = 1/(4π r)`, scalar density.
#[inline(always)]
fn laplace_tiles(t: Tiles<'_>, out: &mut [f64]) {
    let nt = out.len();
    let mut i = 0;
    while i + TB <= nt {
        let xs: [f64; TB] = t.tx[i..i + TB].try_into().expect("TB targets");
        let ys: [f64; TB] = t.ty[i..i + TB].try_into().expect("TB targets");
        let zs: [f64; TB] = t.tz[i..i + TB].try_into().expect("TB targets");
        let mut acc = [[0.0f64; LANE]; TB];
        for (((cx, cy), cz), cd) in
            t.sx.chunks_exact(LANE)
                .zip(t.sy.chunks_exact(LANE))
                .zip(t.sz.chunks_exact(LANE))
                .zip(t.den.chunks_exact(LANE))
        {
            for u in 0..TB {
                for l in 0..LANE {
                    let dx = xs[u] - cx[l];
                    let dy = ys[u] - cy[l];
                    let dz = zs[u] - cz[l];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    acc[u][l] += cd[l] * inv_r_guarded(r2);
                }
            }
        }
        for u in 0..TB {
            out[i + u] += acc[u].iter().sum::<f64>() * INV_4PI;
        }
        i += TB;
    }
    for (o, i) in out[i..].iter_mut().zip(i..nt) {
        let (x, y, z) = (t.tx[i], t.ty[i], t.tz[i]);
        let mut acc = [0.0f64; LANE];
        for (((cx, cy), cz), cd) in
            t.sx.chunks_exact(LANE)
                .zip(t.sy.chunks_exact(LANE))
                .zip(t.sz.chunks_exact(LANE))
                .zip(t.den.chunks_exact(LANE))
        {
            for l in 0..LANE {
                let dx = x - cx[l];
                let dy = y - cy[l];
                let dz = z - cz[l];
                let r2 = dx * dx + dy * dy + dz * dz;
                acc[l] += cd[l] * inv_r_guarded(r2);
            }
        }
        *o += acc.iter().sum::<f64>() * INV_4PI;
    }
}

/// `K(x,y) = e^{−λr}/(4π r)`, scalar density. The `exp` is a scalar
/// libm call per lane, so this body is exp-bound rather than FMA-bound;
/// the tile layout still wins the memory traffic.
#[inline(always)]
fn yukawa_tiles(lambda: f64, t: Tiles<'_>, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        let (x, y, z) = (t.tx[i], t.ty[i], t.tz[i]);
        let mut acc = [0.0f64; LANE];
        for (((cx, cy), cz), cd) in
            t.sx.chunks_exact(LANE)
                .zip(t.sy.chunks_exact(LANE))
                .zip(t.sz.chunks_exact(LANE))
                .zip(t.den.chunks_exact(LANE))
        {
            for l in 0..LANE {
                let dx = x - cx[l];
                let dy = y - cy[l];
                let dz = z - cz[l];
                let r2 = dx * dx + dy * dy + dz * dz;
                let inv = inv_r_guarded(r2);
                // r = r2·(1/r): exactly 0 at a self pair (inv = 0), so
                // exp(0)·inv = 0 keeps the suppression intact.
                let r = r2 * inv;
                acc[l] += cd[l] * (-lambda * r).exp() * inv;
            }
        }
        *o += acc.iter().sum::<f64>() * INV_4PI;
    }
}

/// Stokeslet: `u_i += c (f_i/r + r_i (f·r)/r³)`, 3-vector density and
/// potential, `c = 1/(8πμ)`.
#[inline(always)]
fn stokes_tiles(c: f64, t: Tiles<'_>, out: &mut [f64]) {
    let ns = t.sx.len();
    let (fx, rest) = t.den.split_at(ns);
    let (fy, fz) = rest.split_at(ns);
    for (i, o) in out.chunks_exact_mut(3).enumerate() {
        let (x, y, z) = (t.tx[i], t.ty[i], t.tz[i]);
        let mut ax = [0.0f64; LANE];
        let mut ay = [0.0f64; LANE];
        let mut az = [0.0f64; LANE];
        for (k, ((cx, cy), cz)) in
            t.sx.chunks_exact(LANE)
                .zip(t.sy.chunks_exact(LANE))
                .zip(t.sz.chunks_exact(LANE))
                .enumerate()
        {
            let b = k * LANE;
            for l in 0..LANE {
                let dx = x - cx[l];
                let dy = y - cy[l];
                let dz = z - cz[l];
                let r2 = dx * dx + dy * dy + dz * dz;
                let inv = inv_r_guarded(r2);
                let r3 = inv * inv * inv;
                let (gx, gy, gz) = (fx[b + l], fy[b + l], fz[b + l]);
                let fdr = (gx * dx + gy * dy + gz * dz) * r3;
                ax[l] += gx * inv + dx * fdr;
                ay[l] += gy * inv + dy * fdr;
                az[l] += gz * inv + dz * fdr;
            }
        }
        o[0] += ax.iter().sum::<f64>() * c;
        o[1] += ay.iter().sum::<f64>() * c;
        o[2] += az.iter().sum::<f64>() * c;
    }
}

/// Laplace dipole: `pot += (r·d)/(4π r³)`, 3-vector moment density,
/// scalar potential. Register-blocked like [`laplace_tiles`] (one
/// accumulator plane per target, FMA-bound body).
#[inline(always)]
fn dipole_tiles(t: Tiles<'_>, out: &mut [f64]) {
    let ns = t.sx.len();
    let (mx, rest) = t.den.split_at(ns);
    let (my, mz) = rest.split_at(ns);
    let nt = out.len();
    let mut i = 0;
    while i + TB <= nt {
        let xs: [f64; TB] = t.tx[i..i + TB].try_into().expect("TB targets");
        let ys: [f64; TB] = t.ty[i..i + TB].try_into().expect("TB targets");
        let zs: [f64; TB] = t.tz[i..i + TB].try_into().expect("TB targets");
        let mut acc = [[0.0f64; LANE]; TB];
        for (k, ((cx, cy), cz)) in
            t.sx.chunks_exact(LANE)
                .zip(t.sy.chunks_exact(LANE))
                .zip(t.sz.chunks_exact(LANE))
                .enumerate()
        {
            let b = k * LANE;
            for u in 0..TB {
                for l in 0..LANE {
                    let dx = xs[u] - cx[l];
                    let dy = ys[u] - cy[l];
                    let dz = zs[u] - cz[l];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    let inv = inv_r_guarded(r2);
                    let r3 = inv * inv * inv;
                    acc[u][l] += (dx * mx[b + l] + dy * my[b + l] + dz * mz[b + l]) * r3;
                }
            }
        }
        for u in 0..TB {
            out[i + u] += acc[u].iter().sum::<f64>() * INV_4PI;
        }
        i += TB;
    }
    for (o, i) in out[i..].iter_mut().zip(i..nt) {
        let (x, y, z) = (t.tx[i], t.ty[i], t.tz[i]);
        let mut acc = [0.0f64; LANE];
        for (k, ((cx, cy), cz)) in
            t.sx.chunks_exact(LANE)
                .zip(t.sy.chunks_exact(LANE))
                .zip(t.sz.chunks_exact(LANE))
                .enumerate()
        {
            let b = k * LANE;
            for l in 0..LANE {
                let dx = x - cx[l];
                let dy = y - cy[l];
                let dz = z - cz[l];
                let r2 = dx * dx + dy * dy + dz * dz;
                let inv = inv_r_guarded(r2);
                let r3 = inv * inv * inv;
                acc[l] += (dx * mx[b + l] + dy * my[b + l] + dz * mz[b + l]) * r3;
            }
        }
        *o += acc.iter().sum::<f64>() * INV_4PI;
    }
}

/// Generate the runtime feature dispatch for one tile body: the same
/// `#[inline(always)]` body is instantiated once per `#[target_feature]`
/// set so LLVM vectorizes the Newton chain with FMAs at full register
/// width, with a portable fallback. The detected tier is fixed per
/// process, so results stay run-to-run deterministic.
macro_rules! tile_dispatch {
    ($entry:ident, $body:ident, $avx2:ident, $avx512:ident $(, $p:ident)*) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $avx2($($p: f64,)* t: Tiles<'_>, out: &mut [f64]) {
            $body($($p,)* t, out)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx2,fma")]
        unsafe fn $avx512($($p: f64,)* t: Tiles<'_>, out: &mut [f64]) {
            $body($($p,)* t, out)
        }

        fn $entry($($p: f64,)* t: Tiles<'_>, out: &mut [f64]) {
            #[cfg(target_arch = "x86_64")]
            {
                let fma = std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma");
                if fma && std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: feature presence checked at runtime.
                    return unsafe { $avx512($($p,)* t, out) };
                }
                if fma {
                    // SAFETY: feature presence checked at runtime.
                    return unsafe { $avx2($($p,)* t, out) };
                }
            }
            $body($($p,)* t, out)
        }
    };
}

tile_dispatch!(laplace_eval, laplace_tiles, laplace_avx2, laplace_avx512);
tile_dispatch!(
    yukawa_eval,
    yukawa_tiles,
    yukawa_avx2,
    yukawa_avx512,
    lambda
);
tile_dispatch!(stokes_eval, stokes_tiles, stokes_avx2, stokes_avx512, c);
tile_dispatch!(dipole_eval, dipole_tiles, dipole_avx2, dipole_avx512);

impl TileKernel for Laplace {
    fn eval_tiles(&self, t: Tiles<'_>, out: &mut [f64]) {
        t.check(1, 1, out);
        laplace_eval(t, out);
    }
}

impl TileKernel for Yukawa {
    fn eval_tiles(&self, t: Tiles<'_>, out: &mut [f64]) {
        t.check(1, 1, out);
        yukawa_eval(self.lambda, t, out);
    }
}

impl TileKernel for Stokes {
    fn eval_tiles(&self, t: Tiles<'_>, out: &mut [f64]) {
        t.check(3, 3, out);
        stokes_eval(1.0 / (8.0 * std::f64::consts::PI * self.mu), t, out);
    }
}

impl TileKernel for LaplaceDipole {
    fn eval_tiles(&self, t: Tiles<'_>, out: &mut [f64]) {
        t.check(3, 1, out);
        dipole_eval(t, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_eval;
    use crate::Point3;

    /// Sentinel position of padding lanes (mirrors `pfmm-gpusim`'s
    /// `[-1e9; 3]` source padding in f64).
    const PAD_POS: f64 = -1.0e9;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / (1u64 << 53) as f64
    }

    /// Pack AoS points + per-point densities into padded SoA planes.
    fn pack(src: &[Point3], den: &[f64], sd: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let ns = src.len().div_ceil(LANE) * LANE;
        let mut sx = vec![PAD_POS; ns];
        let mut sy = vec![PAD_POS; ns];
        let mut sz = vec![PAD_POS; ns];
        let mut d = vec![0.0; sd * ns];
        for (j, p) in src.iter().enumerate() {
            sx[j] = p[0];
            sy[j] = p[1];
            sz[j] = p[2];
            for c in 0..sd {
                d[c * ns + j] = den[j * sd + c];
            }
        }
        (sx, sy, sz, d)
    }

    /// Clustered targets/sources with a coincident pair, evaluated both
    /// ways; `scale` normalizes the relative error.
    fn check_against_scalar<K: Kernel + TileKernel>(k: &K, tol: f64) {
        let (sd, td) = (k.source_dim(), k.target_dim());
        let mut st = 42u64;
        let mut tgts: Vec<Point3> = (0..13)
            .map(|_| [lcg(&mut st), lcg(&mut st), lcg(&mut st)])
            .collect();
        // Cluster half the sources tightly around the first target and
        // make one source exactly coincident with it.
        let mut srcs: Vec<Point3> = (0..21)
            .map(|i| {
                if i < 10 {
                    let c = tgts[0];
                    [
                        c[0] + 1e-4 * (lcg(&mut st) - 0.5),
                        c[1] + 1e-4 * (lcg(&mut st) - 0.5),
                        c[2] + 1e-4 * (lcg(&mut st) - 0.5),
                    ]
                } else {
                    [lcg(&mut st), lcg(&mut st), lcg(&mut st)]
                }
            })
            .collect();
        srcs[0] = tgts[0];
        tgts[7] = srcs[15];
        let den: Vec<f64> = (0..srcs.len() * sd).map(|_| lcg(&mut st) - 0.5).collect();

        let mut want = vec![0.0; tgts.len() * td];
        direct_eval(k, &tgts, &srcs, &den, &mut want);

        let (sx, sy, sz, d) = pack(&srcs, &den, sd);
        let tx: Vec<f64> = tgts.iter().map(|p| p[0]).collect();
        let ty: Vec<f64> = tgts.iter().map(|p| p[1]).collect();
        let tz: Vec<f64> = tgts.iter().map(|p| p[2]).collect();
        let mut got = vec![0.0; tgts.len() * td];
        k.eval_tiles(
            Tiles {
                tx: &tx,
                ty: &ty,
                tz: &tz,
                sx: &sx,
                sy: &sy,
                sz: &sz,
                den: &d,
            },
            &mut got,
        );

        let scale = want.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() <= tol * scale,
                "{}: {g} vs {w} (scale {scale})",
                k.name()
            );
        }
    }

    #[test]
    fn laplace_matches_scalar_with_coincident_pairs() {
        check_against_scalar(&Laplace, 1e-13);
    }

    #[test]
    fn yukawa_matches_scalar_with_coincident_pairs() {
        check_against_scalar(&Yukawa { lambda: 2.5 }, 1e-13);
    }

    #[test]
    fn stokes_matches_scalar_with_coincident_pairs() {
        check_against_scalar(&Stokes { mu: 0.7 }, 1e-13);
    }

    #[test]
    fn dipole_matches_scalar_with_coincident_pairs() {
        check_against_scalar(&LaplaceDipole, 1e-13);
    }

    #[test]
    fn padding_lanes_contribute_nothing() {
        // 3 real sources → 8 padded lanes; the padded evaluation must
        // equal the 3-source scalar sum exactly (padding density is 0).
        let tgts: Vec<Point3> = vec![[0.1, 0.2, 0.3], [0.9, 0.4, 0.6]];
        let srcs: Vec<Point3> = vec![[0.5, 0.5, 0.5], [0.2, 0.8, 0.1], [0.7, 0.3, 0.9]];
        let den = [1.0, -2.0, 0.5];
        let (sx, sy, sz, d) = pack(&srcs, &den, 1);
        assert_eq!(sx.len(), LANE);
        let tx: Vec<f64> = tgts.iter().map(|p| p[0]).collect();
        let ty: Vec<f64> = tgts.iter().map(|p| p[1]).collect();
        let tz: Vec<f64> = tgts.iter().map(|p| p[2]).collect();
        let mut padded = vec![0.0; 2];
        Laplace.eval_tiles(
            Tiles {
                tx: &tx,
                ty: &ty,
                tz: &tz,
                sx: &sx,
                sy: &sy,
                sz: &sz,
                den: &d,
            },
            &mut padded,
        );
        let mut want = vec![0.0; 2];
        direct_eval(&Laplace, &tgts, &srcs, &den, &mut want);
        for (p, w) in padded.iter().zip(&want) {
            assert!((p - w).abs() < 1e-13 * w.abs().max(1.0));
        }
    }

    #[test]
    fn coincident_tile_is_exactly_zero() {
        // A box interacting with itself through a single coincident
        // point: the NaN-max trick must produce exactly 0.0, not NaN.
        let p: Vec<Point3> = vec![[0.5, 0.5, 0.5]];
        let (sx, sy, sz, d) = pack(&p, &[7.0], 1);
        let mut out = vec![0.0; 1];
        Laplace.eval_tiles(
            Tiles {
                tx: &[0.5],
                ty: &[0.5],
                tz: &[0.5],
                sx: &sx,
                sy: &sy,
                sz: &sz,
                den: &d,
            },
            &mut out,
        );
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn accumulation_is_deterministic_across_calls() {
        // Splitting the sources over two eval_tiles calls in fixed order
        // must be bitwise equal to any rerun of the same split — the
        // property the executors rely on for barrier == graph.
        let mut st = 7u64;
        let srcs: Vec<Point3> = (0..20)
            .map(|_| [lcg(&mut st), lcg(&mut st), lcg(&mut st)])
            .collect();
        let den: Vec<f64> = (0..20).map(|_| lcg(&mut st) - 0.5).collect();
        let tgt = Tiles {
            tx: &[0.4],
            ty: &[0.5],
            tz: &[0.6],
            sx: &[],
            sy: &[],
            sz: &[],
            den: &[],
        };
        let eval_split = || {
            let mut out = vec![0.0; 1];
            for part in [&srcs[..8], &srcs[8..]] {
                let off = if part.len() == 8 { 0 } else { 8 };
                let (sx, sy, sz, d) = pack(part, &den[off..off + part.len()], 1);
                Laplace.eval_tiles(
                    Tiles {
                        sx: &sx,
                        sy: &sy,
                        sz: &sz,
                        den: &d,
                        ..tgt
                    },
                    &mut out,
                );
            }
            out[0]
        };
        assert_eq!(eval_split().to_bits(), eval_split().to_bits());
    }

    #[test]
    fn rsqrt_newton_is_accurate_over_wide_range() {
        // Covers the near field's whole dynamic range: adjacent unit-cube
        // coordinates (r2 ~ 1e-32) out to the padding sentinel (r2 ~ 1e19).
        for e in -32..=19 {
            for m in [1.0, 1.7, 3.2, 9.99] {
                let r2 = m * 10f64.powi(e);
                let got = rsqrt_newton(r2);
                let want = 1.0 / r2.sqrt();
                assert!(
                    ((got - want) / want).abs() < 1e-14,
                    "r2 = {r2}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn kernel_trait_exposes_tile_kernels() {
        let ks: [&dyn Kernel; 4] = [
            &Laplace,
            &Yukawa { lambda: 1.0 },
            &Stokes { mu: 1.0 },
            &LaplaceDipole,
        ];
        for k in ks {
            assert!(k.as_tile_kernel().is_some(), "{}", k.name());
        }
    }
}
