//! The kernel-independence boundary: everything the FMM knows about the
//! physics is this trait.

use crate::Point3;
use pfmm_linalg::Matrix;

/// A two-body interaction kernel `K(x, y)`.
///
/// A kernel maps a density with [`Kernel::source_dim`] components at a
/// source point `y` to a potential with [`Kernel::target_dim`] components
/// at a target point `x`. The self-interaction (`x == y`, where the kernels
/// here are singular) must evaluate to a zero block, matching the paper's
/// GPU `max(NaN, x)` convention.
///
/// ```
/// use pfmm_kernels::{Kernel, Laplace};
///
/// let mut block = [0.0];
/// Laplace.eval_block(&[0.0; 3], &[1.0, 0.0, 0.0], &mut block);
/// assert!((block[0] - 1.0 / (4.0 * std::f64::consts::PI)).abs() < 1e-15);
/// assert_eq!(Laplace.homogeneity(), Some(-1.0));
/// ```
pub trait Kernel: Send + Sync {
    /// Density components per source point (Laplace: 1, Stokes: 3).
    fn source_dim(&self) -> usize;

    /// Potential components per target point (Laplace: 1, Stokes: 3).
    fn target_dim(&self) -> usize;

    /// Write the `target_dim × source_dim` interaction block `K(x, y)`
    /// into `block`, row-major.
    ///
    /// # Panics
    /// Implementations may assume `block.len() == target_dim*source_dim`.
    fn eval_block(&self, x: &Point3, y: &Point3, block: &mut [f64]);

    /// Homogeneity degree `h` with `K(ax, ay) = a^h K(x, y)`, or `None`
    /// for non-homogeneous kernels. Laplace and Stokes single layers have
    /// `h = -1`; the FMM uses this to cache translation operators once and
    /// rescale per level.
    fn homogeneity(&self) -> Option<f64>;

    /// Floating-point operations per source/target pair, used for the
    /// paper's flop accounting (Table II, Fig. 5).
    fn flops_per_pair(&self) -> u64;

    /// Short display name.
    fn name(&self) -> &'static str;

    /// The tiled near-field evaluator for this kernel, if it provides
    /// monomorphized SoA microkernels (see [`crate::tile`]). Defaults to
    /// `None`, which makes unknown kernels fall back to the scalar
    /// U-list path; the built-in kernels all override it.
    fn as_tile_kernel(&self) -> Option<&dyn crate::tile::TileKernel> {
        None
    }

    /// Accumulate the potential at one target due to many sources:
    /// `out += Σ_j K(x, y_j) s_j` with `s` packed `source_dim` per point.
    ///
    /// The default loops over [`Kernel::eval_block`]; kernels override it
    /// with fused implementations (the hot path of the U-list).
    fn eval_target(&self, x: &Point3, sources: &[Point3], densities: &[f64], out: &mut [f64]) {
        let sd = self.source_dim();
        let td = self.target_dim();
        debug_assert_eq!(densities.len(), sources.len() * sd);
        debug_assert_eq!(out.len(), td);
        let mut block = vec![0.0; td * sd];
        for (j, y) in sources.iter().enumerate() {
            self.eval_block(x, y, &mut block);
            let s = &densities[j * sd..(j + 1) * sd];
            for t in 0..td {
                let row = &block[t * sd..(t + 1) * sd];
                let mut acc = 0.0;
                for (a, b) in row.iter().zip(s) {
                    acc += a * b;
                }
                out[t] += acc;
            }
        }
    }
}

/// Assemble the dense interaction matrix between target and source point
/// sets: `(targets.len() * target_dim) × (sources.len() * source_dim)`.
///
/// This is how every KIFMM translation operator is built (kernel
/// evaluations between check and equivalent surfaces).
pub fn assemble(kernel: &dyn Kernel, targets: &[Point3], sources: &[Point3]) -> Matrix {
    let td = kernel.target_dim();
    let sd = kernel.source_dim();
    let mut m = Matrix::zeros(targets.len() * td, sources.len() * sd);
    let mut block = vec![0.0; td * sd];
    for (i, x) in targets.iter().enumerate() {
        for (j, y) in sources.iter().enumerate() {
            kernel.eval_block(x, y, &mut block);
            for t in 0..td {
                for s in 0..sd {
                    m[(i * td + t, j * sd + s)] = block[t * sd + s];
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace::Laplace;

    #[test]
    fn assemble_shape() {
        let k = Laplace;
        let t = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let s = vec![[0.5, 0.5, 0.5]; 3];
        let m = assemble(&k, &t, &s);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn default_eval_target_matches_assemble() {
        let k = Laplace;
        let x = [0.1, 0.2, 0.3];
        let srcs = vec![[0.9, 0.8, 0.7], [0.4, 0.5, 0.6]];
        let dens = vec![2.0, -1.0];
        let mut out = vec![0.0];
        k.eval_target(&x, &srcs, &dens, &mut out);
        let m = assemble(&k, &[x], &srcs);
        let want = m.matvec(&dens);
        assert!((out[0] - want[0]).abs() < 1e-14);
    }
}
