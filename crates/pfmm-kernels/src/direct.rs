//! Direct O(N²) summation — the exact baseline every FMM result is
//! verified against, and the computation the GPU U-list kernel performs
//! per octant pair.

use crate::kernel::Kernel;
use crate::Point3;

/// Evaluate `f_i += Σ_j K(x_i, y_j) s_j` exactly.
///
/// `densities` is packed `source_dim` per source point; `out` is packed
/// `target_dim` per target point and is accumulated into.
///
/// # Panics
/// Panics on packed-length mismatches.
pub fn direct_eval(
    kernel: &dyn Kernel,
    targets: &[Point3],
    sources: &[Point3],
    densities: &[f64],
    out: &mut [f64],
) {
    direct_eval_typed(kernel, targets, sources, densities, out)
}

/// Monomorphized [`direct_eval`]: with a concrete `K` the per-target
/// `eval_target` calls inline and skip the vtable entirely; `direct_eval`
/// itself funnels through here with `K = dyn Kernel`.
pub fn direct_eval_typed<K: Kernel + ?Sized>(
    kernel: &K,
    targets: &[Point3],
    sources: &[Point3],
    densities: &[f64],
    out: &mut [f64],
) {
    let sd = kernel.source_dim();
    let td = kernel.target_dim();
    assert_eq!(densities.len(), sources.len() * sd, "density packing");
    assert_eq!(out.len(), targets.len() * td, "output packing");
    for (x, o) in targets.iter().zip(out.chunks_exact_mut(td)) {
        kernel.eval_target(x, sources, densities, o);
    }
}

/// Single-precision direct Laplace sum with the paper's `max(NaN, x)`
/// self-interaction trick (Algorithm 4, step 8 semantics).
///
/// In IEEE arithmetic `max(NaN, 0.0) = 0.0`, so a zero-distance pair
/// contributes nothing without a branch — exactly how the CUDA kernel
/// avoids the conditional. This is the reference the `pfmm-gpusim` U-list
/// kernel is tested against.
pub fn direct_eval_f32(targets: &[[f32; 3]], sources: &[[f32; 3]], densities: &[f32]) -> Vec<f32> {
    assert_eq!(sources.len(), densities.len());
    let c = 1.0f32 / (4.0 * std::f32::consts::PI);
    targets
        .iter()
        .map(|x| {
            let mut acc = 0.0f32;
            for (y, s) in sources.iter().zip(densities) {
                let dx = x[0] - y[0];
                let dy = x[1] - y[1];
                let dz = x[2] - y[2];
                let r2 = dx * dx + dy * dy + dz * dz;
                let inv = 1.0f32 / r2.sqrt(); // +∞ when r2 == 0
                                              // Intentional self-subtraction: ∞ − ∞ = NaN, and
                                              // max(NaN, 0) = 0 suppresses the self term branch-free.
                #[allow(clippy::eq_op)]
                let inv = (inv + (inv - inv)).max(0.0);
                acc += s * inv;
            }
            acc * c
        })
        .collect()
}

/// Single-precision direct Yukawa sum with the same `max(NaN, x)`
/// self-interaction trick as [`direct_eval_f32`] — the f32 reference for
/// a screened-Coulomb U-list kernel.
pub fn direct_eval_f32_yukawa(
    lambda: f32,
    targets: &[[f32; 3]],
    sources: &[[f32; 3]],
    densities: &[f32],
) -> Vec<f32> {
    assert_eq!(sources.len(), densities.len());
    let c = 1.0f32 / (4.0 * std::f32::consts::PI);
    targets
        .iter()
        .map(|x| {
            let mut acc = 0.0f32;
            for (y, s) in sources.iter().zip(densities) {
                let dx = x[0] - y[0];
                let dy = x[1] - y[1];
                let dz = x[2] - y[2];
                let r2 = dx * dx + dy * dy + dz * dz;
                let inv = 1.0f32 / r2.sqrt(); // +∞ when r2 == 0
                #[allow(clippy::eq_op)]
                let inv = (inv + (inv - inv)).max(0.0);
                // r = r2·(1/r) is exactly 0 at a self pair, so the factor
                // exp(0)·inv = 0 keeps the suppression intact.
                let r = r2 * inv;
                acc += s * (-lambda * r).exp() * inv;
            }
            acc * c
        })
        .collect()
}

/// Single-precision direct Stokeslet sum with the `max(NaN, x)`
/// self-interaction trick; `densities` is packed 3 per source point and
/// the result 3 per target point.
pub fn direct_eval_f32_stokes(
    mu: f32,
    targets: &[[f32; 3]],
    sources: &[[f32; 3]],
    densities: &[f32],
) -> Vec<f32> {
    assert_eq!(densities.len(), sources.len() * 3);
    let c = 1.0f32 / (8.0 * std::f32::consts::PI * mu);
    let mut out = Vec::with_capacity(targets.len() * 3);
    for x in targets {
        let (mut ux, mut uy, mut uz) = (0.0f32, 0.0f32, 0.0f32);
        for (y, f) in sources.iter().zip(densities.chunks_exact(3)) {
            let dx = x[0] - y[0];
            let dy = x[1] - y[1];
            let dz = x[2] - y[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            let inv = 1.0f32 / r2.sqrt(); // +∞ when r2 == 0
            #[allow(clippy::eq_op)]
            let inv = (inv + (inv - inv)).max(0.0);
            let r3 = inv * inv * inv;
            let fdr = (f[0] * dx + f[1] * dy + f[2] * dz) * r3;
            ux += f[0] * inv + dx * fdr;
            uy += f[1] * inv + dy * fdr;
            uz += f[2] * inv + dz * fdr;
        }
        out.push(ux * c);
        out.push(uy * c);
        out.push(uz * c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace::Laplace;
    use crate::stokes::Stokes;
    use crate::yukawa::Yukawa;

    #[test]
    fn two_body_laplace() {
        let t = vec![[0.0, 0.0, 0.0]];
        let s = vec![[1.0, 0.0, 0.0]];
        let mut out = vec![0.0];
        direct_eval(&Laplace, &t, &s, &[4.0 * std::f64::consts::PI], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn stokes_packing() {
        let t = vec![[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]];
        let s = vec![[1.0, 1.0, 1.0]];
        let mut out = vec![0.0; 6];
        direct_eval(&Stokes::default(), &t, &s, &[1.0, 2.0, 3.0], &mut out);
        assert!(out.iter().all(|v| v.is_finite() && *v != 0.0));
    }

    #[test]
    fn f32_matches_f64_away_from_singularity() {
        let t64: Vec<Point3> = vec![[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]];
        let s64: Vec<Point3> = vec![[0.5, 0.5, 0.5], [0.25, 0.75, 0.5]];
        let d = [1.5, -0.5];
        let mut want = vec![0.0; 2];
        direct_eval(&Laplace, &t64, &s64, &d, &mut want);
        let t32: Vec<[f32; 3]> = t64.iter().map(|p| p.map(|v| v as f32)).collect();
        let s32: Vec<[f32; 3]> = s64.iter().map(|p| p.map(|v| v as f32)).collect();
        let got = direct_eval_f32(&t32, &s32, &[1.5, -0.5]);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g as f64 - w).abs() < 1e-5);
        }
    }

    #[test]
    fn f32_nan_max_trick_skips_self() {
        let p = [[0.5f32, 0.5, 0.5]];
        let got = direct_eval_f32(&p, &p, &[7.0]);
        assert_eq!(got[0], 0.0, "self-interaction suppressed without branching");
    }

    #[test]
    fn typed_variant_matches_dyn() {
        let t = vec![[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]];
        let s = vec![[0.5, 0.5, 0.5], [0.25, 0.75, 0.5]];
        let d = [1.5, -0.5];
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        direct_eval(&Laplace, &t, &s, &d, &mut a);
        direct_eval_typed(&Laplace, &t, &s, &d, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn f32_yukawa_matches_f64_away_from_singularity() {
        let lambda = 1.5;
        let t64: Vec<Point3> = vec![[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]];
        let s64: Vec<Point3> = vec![[0.5, 0.5, 0.5], [0.25, 0.75, 0.5]];
        let d = [1.5, -0.5];
        let mut want = vec![0.0; 2];
        direct_eval(&Yukawa { lambda }, &t64, &s64, &d, &mut want);
        let t32: Vec<[f32; 3]> = t64.iter().map(|p| p.map(|v| v as f32)).collect();
        let s32: Vec<[f32; 3]> = s64.iter().map(|p| p.map(|v| v as f32)).collect();
        let got = direct_eval_f32_yukawa(lambda as f32, &t32, &s32, &[1.5, -0.5]);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g as f64 - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn f32_yukawa_nan_max_trick_skips_self() {
        let p = [[0.5f32, 0.5, 0.5]];
        let got = direct_eval_f32_yukawa(2.0, &p, &p, &[7.0]);
        assert_eq!(got[0], 0.0);
    }

    #[test]
    fn f32_stokes_matches_f64_away_from_singularity() {
        let mu = 0.8;
        let t64: Vec<Point3> = vec![[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]];
        let s64: Vec<Point3> = vec![[0.5, 0.5, 0.5], [0.25, 0.75, 0.5]];
        let d64 = [1.0, -2.0, 0.5, 0.25, 0.75, -1.5];
        let mut want = vec![0.0; 6];
        direct_eval(&Stokes { mu }, &t64, &s64, &d64, &mut want);
        let t32: Vec<[f32; 3]> = t64.iter().map(|p| p.map(|v| v as f32)).collect();
        let s32: Vec<[f32; 3]> = s64.iter().map(|p| p.map(|v| v as f32)).collect();
        let d32: Vec<f32> = d64.iter().map(|v| *v as f32).collect();
        let got = direct_eval_f32_stokes(mu as f32, &t32, &s32, &d32);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g as f64 - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn f32_stokes_nan_max_trick_skips_self() {
        let p = [[0.5f32, 0.5, 0.5]];
        let got = direct_eval_f32_stokes(1.0, &p, &p, &[3.0, -4.0, 5.0]);
        assert_eq!(got, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn f32_self_plus_other() {
        let t = [[0.5f32, 0.5, 0.5]];
        let s = [[0.5f32, 0.5, 0.5], [1.0, 0.5, 0.5]];
        let got = direct_eval_f32(&t, &s, &[9.0, 2.0]);
        let want = 2.0 / 0.5 / (4.0 * std::f32::consts::PI);
        assert!((got[0] - want).abs() < 1e-6);
    }
}
