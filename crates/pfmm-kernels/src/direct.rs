//! Direct O(N²) summation — the exact baseline every FMM result is
//! verified against, and the computation the GPU U-list kernel performs
//! per octant pair.

use crate::kernel::Kernel;
use crate::Point3;

/// Evaluate `f_i += Σ_j K(x_i, y_j) s_j` exactly.
///
/// `densities` is packed `source_dim` per source point; `out` is packed
/// `target_dim` per target point and is accumulated into.
///
/// # Panics
/// Panics on packed-length mismatches.
pub fn direct_eval(
    kernel: &dyn Kernel,
    targets: &[Point3],
    sources: &[Point3],
    densities: &[f64],
    out: &mut [f64],
) {
    let sd = kernel.source_dim();
    let td = kernel.target_dim();
    assert_eq!(densities.len(), sources.len() * sd, "density packing");
    assert_eq!(out.len(), targets.len() * td, "output packing");
    for (i, x) in targets.iter().enumerate() {
        kernel.eval_target(x, sources, densities, &mut out[i * td..(i + 1) * td]);
    }
}

/// Single-precision direct Laplace sum with the paper's `max(NaN, x)`
/// self-interaction trick (Algorithm 4, step 8 semantics).
///
/// In IEEE arithmetic `max(NaN, 0.0) = 0.0`, so a zero-distance pair
/// contributes nothing without a branch — exactly how the CUDA kernel
/// avoids the conditional. This is the reference the `pfmm-gpusim` U-list
/// kernel is tested against.
pub fn direct_eval_f32(targets: &[[f32; 3]], sources: &[[f32; 3]], densities: &[f32]) -> Vec<f32> {
    assert_eq!(sources.len(), densities.len());
    let c = 1.0f32 / (4.0 * std::f32::consts::PI);
    targets
        .iter()
        .map(|x| {
            let mut acc = 0.0f32;
            for (y, s) in sources.iter().zip(densities) {
                let dx = x[0] - y[0];
                let dy = x[1] - y[1];
                let dz = x[2] - y[2];
                let r2 = dx * dx + dy * dy + dz * dz;
                let inv = 1.0f32 / r2.sqrt(); // +∞ when r2 == 0
                                              // Intentional self-subtraction: ∞ − ∞ = NaN, and
                                              // max(NaN, 0) = 0 suppresses the self term branch-free.
                #[allow(clippy::eq_op)]
                let inv = (inv + (inv - inv)).max(0.0);
                acc += s * inv;
            }
            acc * c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace::Laplace;
    use crate::stokes::Stokes;

    #[test]
    fn two_body_laplace() {
        let t = vec![[0.0, 0.0, 0.0]];
        let s = vec![[1.0, 0.0, 0.0]];
        let mut out = vec![0.0];
        direct_eval(&Laplace, &t, &s, &[4.0 * std::f64::consts::PI], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn stokes_packing() {
        let t = vec![[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]];
        let s = vec![[1.0, 1.0, 1.0]];
        let mut out = vec![0.0; 6];
        direct_eval(&Stokes::default(), &t, &s, &[1.0, 2.0, 3.0], &mut out);
        assert!(out.iter().all(|v| v.is_finite() && *v != 0.0));
    }

    #[test]
    fn f32_matches_f64_away_from_singularity() {
        let t64: Vec<Point3> = vec![[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]];
        let s64: Vec<Point3> = vec![[0.5, 0.5, 0.5], [0.25, 0.75, 0.5]];
        let d = [1.5, -0.5];
        let mut want = vec![0.0; 2];
        direct_eval(&Laplace, &t64, &s64, &d, &mut want);
        let t32: Vec<[f32; 3]> = t64.iter().map(|p| p.map(|v| v as f32)).collect();
        let s32: Vec<[f32; 3]> = s64.iter().map(|p| p.map(|v| v as f32)).collect();
        let got = direct_eval_f32(&t32, &s32, &[1.5, -0.5]);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g as f64 - w).abs() < 1e-5);
        }
    }

    #[test]
    fn f32_nan_max_trick_skips_self() {
        let p = [[0.5f32, 0.5, 0.5]];
        let got = direct_eval_f32(&p, &p, &[7.0]);
        assert_eq!(got[0], 0.0, "self-interaction suppressed without branching");
    }

    #[test]
    fn f32_self_plus_other() {
        let t = [[0.5f32, 0.5, 0.5]];
        let s = [[0.5f32, 0.5, 0.5], [1.0, 0.5, 0.5]];
        let got = direct_eval_f32(&t, &s, &[9.0, 2.0]);
        let want = 2.0 / 0.5 / (4.0 * std::f32::consts::PI);
        assert!((got[0] - want).abs() < 1e-6);
    }
}
