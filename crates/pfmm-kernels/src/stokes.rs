//! Stokes single-layer kernel (the Stokeslet): the vector potential of the
//! paper's Kraken runs, three unknowns per point.
//!
//! `K_ij(x, y) = (1 / 8πμ) (δ_ij / r + r_i r_j / r³)`, `r = x − y`.

use crate::kernel::Kernel;
use crate::Point3;

/// The free-space Green's function of the Stokes equations.
#[derive(Copy, Clone, Debug)]
pub struct Stokes {
    /// Dynamic viscosity μ.
    pub mu: f64,
}

impl Default for Stokes {
    fn default() -> Self {
        Stokes { mu: 1.0 }
    }
}

impl Kernel for Stokes {
    fn source_dim(&self) -> usize {
        3
    }

    fn target_dim(&self) -> usize {
        3
    }

    #[inline]
    fn eval_block(&self, x: &Point3, y: &Point3, block: &mut [f64]) {
        let c = 1.0 / (8.0 * std::f64::consts::PI * self.mu);
        let r = [x[0] - y[0], x[1] - y[1], x[2] - y[2]];
        let r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
        if r2 == 0.0 {
            block[..9].fill(0.0);
            return;
        }
        let rinv = 1.0 / r2.sqrt();
        let r3inv = rinv / r2;
        for i in 0..3 {
            for j in 0..3 {
                let diag = if i == j { rinv } else { 0.0 };
                block[i * 3 + j] = c * (diag + r[i] * r[j] * r3inv);
            }
        }
    }

    fn homogeneity(&self) -> Option<f64> {
        Some(-1.0)
    }

    fn flops_per_pair(&self) -> u64 {
        // 3 diffs, r² (5), rsqrt + r³ (≈6), 9 tensor entries ≈ 3 flops each,
        // 9 multiply-accumulates against the density: ≈ 50.
        50
    }

    fn name(&self) -> &'static str {
        "stokes"
    }

    fn as_tile_kernel(&self) -> Option<&dyn crate::tile::TileKernel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(x: &Point3, y: &Point3) -> [f64; 9] {
        let mut b = [0.0; 9];
        Stokes::default().eval_block(x, y, &mut b);
        b
    }

    #[test]
    fn self_interaction_is_zero() {
        let p = [0.4, 0.4, 0.4];
        assert_eq!(eval(&p, &p), [0.0; 9]);
    }

    #[test]
    fn tensor_is_symmetric() {
        let b = eval(&[0.1, 0.5, 0.9], &[0.8, 0.2, 0.3]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((b[i * 3 + j] - b[j * 3 + i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn axis_aligned_value() {
        // x - y = (r, 0, 0): K = c * diag(2/r, 1/r, 1/r).
        let r = 0.5;
        let b = eval(&[0.75, 0.2, 0.2], &[0.25, 0.2, 0.2]);
        let c = 1.0 / (8.0 * std::f64::consts::PI);
        assert!((b[0] - c * 2.0 / r).abs() < 1e-14);
        assert!((b[4] - c / r).abs() < 1e-14);
        assert!((b[8] - c / r).abs() < 1e-14);
        assert!(b[1].abs() < 1e-15 && b[2].abs() < 1e-15 && b[5].abs() < 1e-15);
    }

    #[test]
    fn viscosity_scales_inverse() {
        let mut b1 = [0.0; 9];
        let mut b2 = [0.0; 9];
        let x = [0.9, 0.1, 0.4];
        let y = [0.3, 0.6, 0.2];
        Stokes { mu: 1.0 }.eval_block(&x, &y, &mut b1);
        Stokes { mu: 2.0 }.eval_block(&x, &y, &mut b2);
        for (a, b) in b1.iter().zip(&b2) {
            assert!((a - 2.0 * b).abs() < 1e-15);
        }
    }

    #[test]
    fn homogeneity_degree_minus_one() {
        let x = [0.1, 0.2, 0.3];
        let y = [0.5, 0.6, 0.7];
        let b1 = eval(&x, &y);
        let b2 = eval(
            &[3.0 * x[0], 3.0 * x[1], 3.0 * x[2]],
            &[3.0 * y[0], 3.0 * y[1], 3.0 * y[2]],
        );
        for (a, b) in b1.iter().zip(&b2) {
            assert!((a / 3.0 - b).abs() < 1e-15);
        }
    }
}
