//! Minimal `--key value` / `--key=value` argument parsing (no external
//! dependency; the option surface is small and fixed).

use std::collections::HashMap;

/// Parsed command line: a subcommand followed by `--key value` pairs.
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    opts: HashMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    /// Returns a message for a missing subcommand, a dangling `--key`, or
    /// a positional argument after the subcommand.
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let command = argv.next().ok_or("missing subcommand")?;
        if command.starts_with("--") {
            return Err(format!(
                "expected a subcommand before options, got {command}"
            ));
        }
        let mut opts = HashMap::new();
        while let Some(key) = argv.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {key}"));
            };
            // Both `--key value` and `--key=value` spellings are accepted.
            let (name, value) = match name.split_once('=') {
                Some((n, v)) => (n, v.to_string()),
                None => {
                    let v = argv
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    (name, v)
                }
            };
            opts.insert(name.to_string(), value);
        }
        Ok(Args { command, opts })
    }

    /// Look up a string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(|s| s.as_str())
    }

    /// Parse an option with a default.
    ///
    /// # Errors
    /// Returns a message when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opts.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }

    /// The option names that were provided (for unknown-flag checks).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.opts.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["run", "--n", "1000", "--kernel", "stokes"]).expect("parses");
        assert_eq!(a.command, "run");
        assert_eq!(a.get("kernel"), Some("stokes"));
        assert_eq!(a.get_or("n", 0usize).expect("number"), 1000);
        assert_eq!(a.get_or("q", 64usize).expect("default"), 64);
    }

    #[test]
    fn parses_equals_spelling() {
        let a =
            parse(&["run", "--n=1000", "--schedule=graph", "--kernel", "stokes"]).expect("parses");
        assert_eq!(a.get_or("n", 0usize).expect("number"), 1000);
        assert_eq!(a.get("schedule"), Some("graph"));
        assert_eq!(a.get("kernel"), Some("stokes"));
    }

    #[test]
    fn equals_value_may_contain_equals() {
        let a = parse(&["run", "--expr=a=b"]).expect("parses");
        assert_eq!(a.get("expr"), Some("a=b"));
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(parse(&["run", "--n"]).is_err());
    }

    #[test]
    fn rejects_missing_command() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--n", "5"]).is_err());
    }

    #[test]
    fn rejects_unparsable_value() {
        let a = parse(&["run", "--n", "abc"]).expect("parses structurally");
        assert!(a.get_or("n", 0usize).is_err());
    }

    #[test]
    fn rejects_stray_positional() {
        assert!(parse(&["run", "extra"]).is_err());
    }
}
