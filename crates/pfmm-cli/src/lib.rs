//! `pfmm` — command-line driver for the FMM library.
//!
//! Subcommands:
//!
//! - `run` — evaluate an N-body sum and report per-phase profile, tree
//!   shape, and (optionally) the sampled error vs the direct sum;
//! - `tune` — sweep points-per-box candidates and report the optimum;
//! - `gpu` — run the §IV GPU pipeline on the simulated device and report
//!   modeled per-phase times and speedup;
//! - `solve` — GMRES over one FMM plan for a second-kind system;
//! - `serve-sim` — closed-loop simulation of the batched evaluation
//!   service, with SLO tracking and an always-armed flight recorder.
//!
//! Run `pfmm help` for the options of each. The crate exposes
//! [`cli_main`] so both the workspace-root `pfmm` binary and the
//! `pfmm-cli` binary are one-line wrappers around the same dispatcher.

mod args;

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use args::Args;
use pfmm_core::distrib::{ellipsoid_1_1_4, plummer, randomize_densities, uniform_cube};
use pfmm_core::driver::gather_potentials;
use pfmm_core::profile::{Phase, ProfileSummary};
use pfmm_core::tune::tune_sweep;
use pfmm_core::verify::sampled_rel_error;
use pfmm_core::{
    Fmm, FmmConfig, M2lMode, Reduction, Schedule, SetupMode, SortKind, TranslateMode, UlistMode,
};
use pfmm_gpusim::{run_gpu_fmm, run_gpu_fmm_wx, DeviceSpec, GpuPhase};
use pfmm_kernels::{Kernel, Laplace, LaplaceDipole, Stokes, Yukawa};
use pfmm_metrics::{FlightConfig, Sampler, SloConfig};
use pfmm_trace::{TraceLevel, Tracer};
use pfmm_tree::PointRec;

const HELP: &str = "\
pfmm — parallel kernel-independent fast multipole method

USAGE: pfmm <run|tune|gpu|solve|serve-sim|help> [--key value | --key=value]...

common options:
  --n <int>            points (default 20000)
  --dist <uniform|ellipsoid|plummer>  particle distribution (default uniform)
  --kernel <laplace|stokes|yukawa|dipole>  (default laplace; run/tune only)
  --order <int>        surface order: accuracy (default 6)
  --q <int>            max points per leaf (default 100)
  --seed <int>         RNG seed (default 1)

run options:
  --ranks <int>        simulated MPI ranks (default 1)
  --threads <int>      intra-rank threads for the parallel phases (default 1)
  --m2l <fft-batched|fft|dense>  V-list mode (default fft-batched:
                       lock-free transfer-vector-bucketed half-spectrum
                       Hadamard; fft = per-edge spectral baseline;
                       dense = per-offset operator matrices)
  --sort <sample|bitonic>      parallel sort backend (default sample)
  --reduction <auto|hypercube|naive>  up-density reduction (default auto)
  --schedule <barrier|graph>   phase executor: bulk-synchronous barriers
                       or the dependency-graph scheduler with
                       comm/compute overlap (default barrier)
  --ulist <tiled|scalar>       near-field engine (default tiled: padded
                       SoA tiles with branch-free microkernels;
                       scalar = per-point reference path)
  --translate <gemm|matvec>    up/down translation engine (default gemm:
                       level-batched multi-RHS GEMM over shared-operator
                       groups; matvec = per-box reference path)
  --setup <parallel|serial>    setup engine (default parallel: threaded
                       LSD radix sort + parallel tree/list/plan
                       construction; serial = comparison-sort baseline)
  --balance <true|false>       work-weighted repartition (default true)
  --check <int>        verify every k-th point against the direct sum
                       (0 = skip; default 0)
  --trace <path.json>  write a Chrome/Perfetto trace of the run (load in
                       ui.perfetto.dev or chrome://tracing; also accepted
                       by `gpu` for the modeled device timeline)
  --trace-level <off|phase|task|comm>  trace detail: phase spans only,
                       + per-chunk task spans, + per-message comm events
                       with cross-rank flow arrows and the p×p byte
                       matrix (default comm when --trace is given)

metrics options (run and serve-sim):
  --metrics <path>     export the telemetry registry after the run:
                       Prometheus text at <path>, JSON snapshots at
                       <path>.json
  --metrics-interval <ms>  also sample the registry every <ms> ms on a
                       background thread; all sampled snapshots land in
                       the JSON export (default 0 = final snapshot only)

tune options:
  --candidates <q1,q2,...>     candidate q values (default 32,64,128,256,512)
  --sample <int>       subsample size for probing (default n/4)

gpu options:
  --gpu-q <int>        points per box on the device (default 400)
  --wx-on-gpu <true|false>     run W/X on the device too (default false)

solve options (second-kind system (I + c·K)σ = b, GMRES over one plan):
  --ranks <int>        simulated MPI ranks (default 2)
  --scale <float>      the coupling c (default 1/n)
  --tol <float>        GMRES relative tolerance (default 1e-10)

serve-sim options (closed-loop simulation of the pfmm-serve batched
evaluation service: plan caching, deadline admission, load shedding):
  --requests <int>     requests to issue (default 64)
  --n <int>            points per geometry (default 500)
  --hot-geoms <int>    distinct hot geometries (default 3)
  --cold-frac <float>  fraction of one-off cold geometries (default 0.15)
  --arrival <closed|open>      closed-loop client pool or open-loop
                       fixed-rate arrivals (default closed)
  --concurrency <int>  closed-loop in-flight cap (default 4)
  --rate <float>       open-loop arrivals per second (default 200)
  --deadline-us <int>  relative deadline per request, 0 = none (default 0)
  --priorities <int>   priority levels drawn uniformly (default 3)
  --max-batch <int>    batch size flush threshold (default 8)
  --max-linger-us <int>  batch age flush threshold (default 2000)
  --workers <int>      executor pool threads (default 2)
  --shed-high-us <int> backlog µs engaging load shedding (default 2000000)
  --shed-low-us <int>  backlog µs disengaging it (default 1000000)
  --cache-mb <int>     plan-cache budget in MiB, 0 = no caching (default 256)
  --slo-budget <float> deadline-miss error budget for the SLO report,
                       as a fraction of requests (default 0.01)
  --flight-recorder <dir>  arm the per-thread span ring; on a deadline
                       violation, shedding engagement, or phase anomaly
                       an incident file (Perfetto JSON + metrics
                       snapshot) is dumped into <dir>
  --exec-delay-us <int>  fault injection: stall every executor batch by
                       this much after admission (default 0; violations
                       under injection are reported, not fatal)
  --trace <path.json>  write per-request lifecycle spans (queue-wait /
                       batch-assembly / execute, one lane per request)
";

/// Parse `std::env::args` and run the selected subcommand; this is the
/// whole `main` of both `pfmm` binaries.
pub fn cli_main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match dispatch(argv.into_iter()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\nrun `pfmm help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Flags shared by every geometry-taking subcommand.
const COMMON_FLAGS: &[&str] = &["n", "dist", "seed"];
/// Flags consumed by `config_of` (run/tune/solve).
const CONFIG_FLAGS: &[&str] = &[
    "kernel",
    "order",
    "q",
    "m2l",
    "sort",
    "reduction",
    "schedule",
    "ulist",
    "translate",
    "balance",
    "threads",
    "setup",
];
const TRACE_FLAGS: &[&str] = &["trace", "trace-level"];
/// Flags consumed by `metrics_of` (run/serve-sim).
const METRICS_FLAGS: &[&str] = &["metrics", "metrics-interval"];

/// One subcommand: name, shared flag groups, command-specific flags.
type CommandSpec = (
    &'static str,
    &'static [&'static [&'static str]],
    &'static [&'static str],
);

/// Every subcommand with the exact flag set it accepts — misspellings
/// and flags of *other* subcommands are both rejected with a pointer.
const COMMANDS: &[CommandSpec] = &[
    (
        "run",
        &[COMMON_FLAGS, CONFIG_FLAGS, TRACE_FLAGS, METRICS_FLAGS],
        &["ranks", "check"],
    ),
    (
        "tune",
        &[COMMON_FLAGS, CONFIG_FLAGS],
        &["candidates", "sample"],
    ),
    (
        "gpu",
        &[COMMON_FLAGS, TRACE_FLAGS],
        &["order", "gpu-q", "wx-on-gpu"],
    ),
    (
        "solve",
        &[COMMON_FLAGS, CONFIG_FLAGS],
        &["ranks", "scale", "tol"],
    ),
    (
        "serve-sim",
        &[TRACE_FLAGS, METRICS_FLAGS],
        &[
            "kernel",
            "order",
            "q",
            "schedule",
            "seed",
            "n",
            "requests",
            "hot-geoms",
            "cold-frac",
            "arrival",
            "rate",
            "concurrency",
            "deadline-us",
            "priorities",
            "max-batch",
            "max-linger-us",
            "workers",
            "shed-high-us",
            "shed-low-us",
            "cache-mb",
            "slo-budget",
            "flight-recorder",
            "exec-delay-us",
        ],
    ),
];

/// Flags a subcommand accepts, or `None` for an unknown subcommand.
fn flags_of(command: &str) -> Option<Vec<&'static str>> {
    COMMANDS
        .iter()
        .find(|(c, _, _)| *c == command)
        .map(|(_, groups, own)| {
            let mut v: Vec<&'static str> = groups.iter().flat_map(|g| g.iter().copied()).collect();
            v.extend(own.iter().copied());
            v
        })
}

/// Levenshtein distance — small inputs, the O(a·b) table is fine.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The rejection message for `--unknown` under `command`: prefer a
/// close spelling from the command's own flags ("did you mean"), then
/// point at the subcommand that does accept the flag verbatim.
fn unknown_flag_error(command: &str, unknown: &str, known: &[&'static str]) -> String {
    let nearest = known
        .iter()
        .map(|k| (edit_distance(unknown, k), *k))
        .min()
        .filter(|(d, k)| *d <= 2.max(k.len() / 3))
        .map(|(_, k)| k);
    if let Some(k) = nearest {
        return format!("unknown option --{unknown} for '{command}' (did you mean --{k}?)");
    }
    let owner = COMMANDS
        .iter()
        .filter(|(c, _, _)| *c != command)
        .find(|(c, _, _)| flags_of(c).is_some_and(|f| f.contains(&unknown)))
        .map(|(c, _, _)| *c);
    if let Some(c) = owner {
        return format!("unknown option --{unknown} for '{command}' (it is a '{c}' option)");
    }
    format!("unknown option --{unknown} for '{command}'")
}

fn dispatch(argv: impl Iterator<Item = String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let known = flags_of(&args.command).ok_or_else(|| {
        let names: Vec<&str> = COMMANDS.iter().map(|(c, _, _)| *c).collect();
        format!(
            "unknown subcommand '{}' (expected one of {})",
            args.command,
            names.join(", ")
        )
    })?;
    let mut keys: Vec<&str> = args.keys().collect();
    keys.sort();
    if let Some(unknown) = keys.iter().find(|k| !known.contains(*k)) {
        return Err(unknown_flag_error(&args.command, unknown, &known));
    }
    match args.command.as_str() {
        "run" => cmd_run(&args),
        "tune" => cmd_tune(&args),
        "gpu" => cmd_gpu(&args),
        "solve" => cmd_solve(&args),
        "serve-sim" => cmd_serve_sim(&args),
        _ => unreachable!("flags_of accepted the command"),
    }
}

fn kernel_of(args: &Args) -> Result<Arc<dyn Kernel>, String> {
    Ok(match args.get("kernel").unwrap_or("laplace") {
        "laplace" => Arc::new(Laplace),
        "stokes" => Arc::new(Stokes::default()),
        "yukawa" => Arc::new(Yukawa::default()),
        "dipole" => Arc::new(LaplaceDipole),
        other => return Err(format!("unknown kernel '{other}'")),
    })
}

fn points_of(args: &Args, kdim: usize) -> Result<Vec<PointRec>, String> {
    let n: usize = args.get_or("n", 20_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut pts = match args.get("dist").unwrap_or("uniform") {
        "uniform" => uniform_cube(n, seed, 0),
        "ellipsoid" => ellipsoid_1_1_4(n, seed, 0),
        "plummer" => plummer(n, seed, 0),
        other => return Err(format!("unknown distribution '{other}'")),
    };
    randomize_densities(&mut pts, kdim, seed ^ 0x5a5a);
    Ok(pts)
}

fn config_of(args: &Args) -> Result<FmmConfig, String> {
    Ok(FmmConfig {
        order: args.get_or("order", 6)?,
        q: args.get_or("q", 100)?,
        m2l: match args.get("m2l").unwrap_or("fft-batched") {
            "fft-batched" => M2lMode::FftBatched,
            "fft" => M2lMode::Fft,
            "dense" => M2lMode::Dense,
            other => return Err(format!("unknown m2l mode '{other}'")),
        },
        balance: args.get_or("balance", true)?,
        reduction: match args.get("reduction").unwrap_or("auto") {
            "auto" => Reduction::Auto,
            "hypercube" => Reduction::Hypercube,
            "naive" => Reduction::Naive,
            other => return Err(format!("unknown reduction '{other}'")),
        },
        schedule: match args.get("schedule").unwrap_or("barrier") {
            "barrier" => Schedule::Barrier,
            "graph" => Schedule::Graph,
            other => return Err(format!("unknown schedule '{other}'")),
        },
        ulist: match args.get("ulist").unwrap_or("tiled") {
            "tiled" => UlistMode::Tiled,
            "scalar" => UlistMode::Scalar,
            other => return Err(format!("unknown ulist mode '{other}'")),
        },
        translate: match args.get("translate").unwrap_or("gemm") {
            "gemm" => TranslateMode::Gemm,
            "matvec" => TranslateMode::Matvec,
            other => return Err(format!("unknown translate mode '{other}'")),
        },
        threads: args.get_or("threads", 1)?,
        setup: match args.get("setup").unwrap_or("parallel") {
            "parallel" => SetupMode::Parallel,
            "serial" => SetupMode::Serial,
            other => return Err(format!("unknown setup engine '{other}'")),
        },
        sort: match args.get("sort").unwrap_or("sample") {
            "sample" => SortKind::Sample,
            "bitonic" => SortKind::Bitonic,
            other => return Err(format!("unknown sort backend '{other}'")),
        },
        ..Default::default()
    })
}

/// Parse `--trace` / `--trace-level` into a tracer and output path. The
/// level defaults to `comm` (full detail) when a path is given and `off`
/// otherwise; `--trace-level` without `--trace` is rejected since the
/// events would have nowhere to go.
fn tracer_of(args: &Args) -> Result<(Arc<Tracer>, Option<String>), String> {
    let path = args.get("trace").map(str::to_string);
    let level = match args.get("trace-level") {
        None => {
            if path.is_some() {
                TraceLevel::Comm
            } else {
                TraceLevel::Off
            }
        }
        Some(_) if path.is_none() => {
            return Err("--trace-level needs --trace <path.json>".into());
        }
        Some("off") => TraceLevel::Off,
        Some("phase") => TraceLevel::Phase,
        Some("task") => TraceLevel::Task,
        Some("comm") => TraceLevel::Comm,
        Some(other) => return Err(format!("unknown trace level '{other}'")),
    };
    Ok((Arc::new(Tracer::new(level)), path))
}

/// Validate, serialize, and write a drained trace; prints a one-line
/// summary of what landed in the file.
fn write_trace(tracer: &Tracer, path: &str) -> Result<(), String> {
    let events = tracer.drain();
    let stats = pfmm_trace::chrome::validate(&events)
        .map_err(|e| format!("internal error: recorded trace is malformed: {e}"))?;
    std::fs::write(path, pfmm_trace::chrome::to_json_string(&events))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "trace: {} spans, {} flow arrows, {} instants -> {path}",
        stats.spans, stats.flows, stats.instants
    );
    Ok(())
}

/// Parsed `--metrics` / `--metrics-interval`: the export path and the
/// optional background-sampler cadence. `--metrics-interval` without
/// `--metrics` is rejected since the snapshots would have nowhere to go.
struct MetricsOpts {
    path: Option<String>,
    interval_ms: u64,
}

fn metrics_of(args: &Args) -> Result<MetricsOpts, String> {
    let path = args.get("metrics").map(str::to_string);
    let interval_ms: u64 = args.get_or("metrics-interval", 0)?;
    if interval_ms > 0 && path.is_none() {
        return Err("--metrics-interval needs --metrics <path>".into());
    }
    Ok(MetricsOpts { path, interval_ms })
}

impl MetricsOpts {
    /// Start the background sampler over the global registry when both
    /// a path and a nonzero interval were requested.
    fn spawn_sampler(&self) -> Option<Sampler> {
        if self.path.is_some() && self.interval_ms > 0 {
            Some(Sampler::spawn(
                Arc::clone(pfmm_metrics::global()),
                Duration::from_millis(self.interval_ms),
                1024,
            ))
        } else {
            None
        }
    }

    /// Export the global registry: Prometheus text at `path`, JSON at
    /// `path.json` (every sampled snapshot, then a final scan).
    fn write(&self, sampler: Option<Sampler>) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let reg = pfmm_metrics::global();
        let last = reg.snapshot(pfmm_metrics::now_us());
        std::fs::write(path, pfmm_metrics::prometheus(&last))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let mut json = String::from("{\"snapshots\":[");
        let mut sampled = 0usize;
        if let Some(s) = sampler {
            for snap in s.stop().all() {
                pfmm_metrics::push_json_snapshot(&mut json, &snap);
                json.push(',');
                sampled += 1;
            }
        }
        pfmm_metrics::push_json_snapshot(&mut json, &last);
        json.push_str("]}\n");
        let jpath = format!("{path}.json");
        std::fs::write(&jpath, json).map_err(|e| format!("cannot write {jpath}: {e}"))?;
        println!(
            "metrics: {} series ({} sampled snapshots) -> {path} (+ {jpath})",
            last.entries.len(),
            sampled,
        );
        Ok(())
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let kernel = kernel_of(args)?;
    let cfg = config_of(args)?;
    let ranks: usize = args.get_or("ranks", 1)?;
    let check: usize = args.get_or("check", 0)?;
    let (tracer, trace_path) = tracer_of(args)?;
    let metrics = metrics_of(args)?;
    let kd = kernel.source_dim();
    let td = kernel.target_dim();
    let pts = points_of(args, kd)?;
    println!(
        "run: {} points, kernel {}, order {}, q {}, p {}, threads {}",
        pts.len(),
        kernel.name(),
        cfg.order,
        cfg.q,
        ranks,
        cfg.threads
    );

    let sampler = metrics.spawn_sampler();
    let fmm = Fmm::new(kernel.clone(), cfg);
    let out = pfmm_mpisim::run(ranks, |c| {
        let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(ranks).copied().collect();
        let res = fmm.evaluate_traced(c, mine, &tracer);
        (
            res.profile.clone(),
            res.info,
            gather_potentials(c, &res, td),
            c.stats(),
        )
    });

    let profiles: Vec<_> = out.iter().map(|(p, _, _, _)| p.clone()).collect();
    let info = out[0].1;
    println!(
        "tree: {} leaves, levels {}..{}",
        info.global_leaves, info.min_leaf_level, info.max_leaf_level
    );
    println!("{}", ProfileSummary::from_ranks(&profiles).render());
    let total_flops: u64 = profiles.iter().map(|p| p.total_flops()).sum();
    println!("total flops: {:.3e}", total_flops as f64);

    if tracer.enabled(TraceLevel::Comm) {
        let stats: Vec<_> = out.iter().map(|(_, _, _, s)| s.clone()).collect();
        let matrix = pfmm_mpisim::CommMatrix::from_stats(&stats);
        println!("\ncomm matrix (bytes):\n{}", matrix.render());
    }
    if let Some(path) = &trace_path {
        write_trace(&tracer, path)?;
    }
    metrics.write(sampler)?;

    if check > 0 {
        let err = sampled_rel_error(kernel.as_ref(), &pts, &out[0].2, check);
        println!("sampled relative l2 error vs direct sum (stride {check}): {err:.3e}");
    }
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let kernel = kernel_of(args)?;
    let cfg = config_of(args)?;
    let pts = points_of(args, kernel.source_dim())?;
    let candidates: Vec<usize> = args
        .get("candidates")
        .unwrap_or("32,64,128,256,512")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad candidate '{s}'")))
        .collect::<Result<_, _>>()?;
    let sample: usize = args.get_or("sample", pts.len() / 4)?;
    println!(
        "tune: {} candidates on a {}-point subsample ({} total)",
        candidates.len(),
        sample.min(pts.len()),
        pts.len()
    );
    let sweep = tune_sweep(
        |q| Fmm::new(kernel.clone(), FmmConfig { q, ..cfg }),
        &pts,
        &candidates,
        sample,
    );
    println!("{:>8} {:>12} {:>14}", "q", "wall (s)", "modeled (s)");
    for t in &sweep {
        println!("{:>8} {:>12.4} {:>14.4}", t.q, t.wall_secs, t.modeled_secs);
    }
    let best = sweep
        .iter()
        .min_by(|a, b| a.wall_secs.partial_cmp(&b.wall_secs).expect("finite"))
        .expect("candidates nonempty");
    println!("best (measured): q = {}", best.q);
    Ok(())
}

fn cmd_gpu(args: &Args) -> Result<(), String> {
    let order: usize = args.get_or("order", 4)?;
    let q: usize = args.get_or("gpu-q", 400)?;
    let wx: bool = args.get_or("wx-on-gpu", false)?;
    let (_, trace_path) = tracer_of(args)?;
    let pts = points_of(args, 1)?;
    let dev = DeviceSpec::tesla_s1070();
    println!(
        "gpu: {} points on {} (order {order}, q {q}, W/X on GPU: {wx})",
        pts.len(),
        dev.name
    );
    let rep = if wx {
        run_gpu_fmm_wx(pts, q, order, &dev, true)
    } else {
        run_gpu_fmm(pts, q, order, &dev, true)
    };
    println!(
        "{:<14} {:>12} {:>12}",
        "phase", "GPU/CPU (s)", "CPU-only (s)"
    );
    for (i, ph) in GpuPhase::ALL.iter().enumerate() {
        println!(
            "{:<14} {:>12.4} {:>12.4}",
            ph.label(),
            rep.gpu_secs[i],
            rep.cpu2009_secs[i]
        );
    }
    println!("{:<14} {:>12.4}", "PCIe transfer", rep.transfer_secs);
    println!(
        "{:<14} {:>12.4} {:>12.4}",
        "total",
        rep.total_gpu(),
        rep.total_cpu2009()
    );
    println!("layout translation (host): {:.4}s", rep.translate_secs);
    println!("modeled speedup: {:.1}x", rep.speedup());
    println!("f32 pipeline error vs f64: {:.2e}", rep.rel_err_vs_f64);
    if let Some(path) = &trace_path {
        let events = rep.trace_events(0, 0.0);
        std::fs::write(path, pfmm_trace::chrome::to_json_string(&events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace: modeled device timeline -> {path}");
    }
    let _ = Phase::ALL; // re-exported set used by `run`
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    use pfmm_core::solve::solve_second_kind;
    let kernel = kernel_of(args)?;
    if kernel.source_dim() != kernel.target_dim() {
        return Err("solve needs a square kernel (laplace/stokes/yukawa)".into());
    }
    let cfg = config_of(args)?;
    let ranks: usize = args.get_or("ranks", 2)?;
    let pts = points_of(args, kernel.source_dim())?;
    let n = pts.len();
    let scale: f64 = args.get_or("scale", 1.0 / n as f64)?;
    let tol: f64 = args.get_or("tol", 1e-10)?;
    println!(
        "solve: (I + {scale:.2e}·K)σ = b, kernel {}, {} points, p {ranks}",
        kernel.name(),
        n
    );
    let kd = kernel.source_dim();
    let fmm = Fmm::new(kernel, cfg);
    let outs = pfmm_mpisim::run(ranks, |c| {
        let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(ranks).copied().collect();
        let mut plan = fmm.plan(c, mine);
        let b: Vec<f64> = plan
            .owned_gids()
            .iter()
            .flat_map(|g| (0..kd).map(move |d| 1.0 + ((*g as f64 + d as f64) * 0.013).sin()))
            .collect();
        match solve_second_kind(&fmm, c, &mut plan, &b, scale, tol, 200) {
            Ok((_, rep)) => (true, rep.matvecs, rep.final_residual()),
            Err(rep) => (false, rep.matvecs, rep.final_residual()),
        }
    });
    let (ok, matvecs, res) = outs[0];
    if ok {
        println!("converged in {matvecs} FMM applications, residual {res:.2e}");
        Ok(())
    } else {
        Err(format!(
            "GMRES stalled after {matvecs} applications at residual {res:.2e}"
        ))
    }
}

fn cmd_serve_sim(args: &Args) -> Result<(), String> {
    use pfmm_serve::{run_sim, Arrival, ObsConfig, ServiceConfig, SimConfig, WorkloadConfig};

    let kernel = kernel_of(args)?;
    let cfg = FmmConfig {
        order: args.get_or("order", 4)?,
        q: args.get_or("q", 60)?,
        schedule: match args.get("schedule").unwrap_or("barrier") {
            "barrier" => Schedule::Barrier,
            "graph" => Schedule::Graph,
            other => return Err(format!("unknown schedule '{other}'")),
        },
        ..Default::default()
    };
    let arrival = match args.get("arrival").unwrap_or("closed") {
        "closed" => Arrival::Closed {
            concurrency: args.get_or("concurrency", 4)?,
        },
        "open" => Arrival::Open {
            rate_per_s: args.get_or("rate", 200.0)?,
        },
        other => return Err(format!("unknown arrival mode '{other}'")),
    };
    let slo_budget: f64 = args.get_or("slo-budget", 0.01)?;
    if !(slo_budget > 0.0 && slo_budget <= 1.0) {
        return Err(format!("--slo-budget must be in (0, 1], got {slo_budget}"));
    }
    let exec_delay_us: u64 = args.get_or("exec-delay-us", 0)?;
    let flight_dir = args.get("flight-recorder").map(str::to_string);
    let metrics = metrics_of(args)?;
    let sim = SimConfig {
        workload: WorkloadConfig {
            seed: args.get_or("seed", 1)?,
            requests: args.get_or("requests", 64)?,
            n_points: args.get_or("n", 500)?,
            hot_geometries: args.get_or("hot-geoms", 3)?,
            cold_fraction: args.get_or("cold-frac", 0.15)?,
            arrival,
            deadline_us: args.get_or("deadline-us", 0)?,
            priority_levels: args.get_or("priorities", 3)?,
        },
        service: ServiceConfig {
            max_batch: args.get_or("max-batch", 8)?,
            max_linger_us: args.get_or("max-linger-us", 2_000)?,
            workers: args.get_or("workers", 2)?,
            shed_high_us: args.get_or("shed-high-us", 2_000_000)?,
            shed_low_us: args.get_or("shed-low-us", 1_000_000)?,
        },
        cache_budget_bytes: args.get_or("cache-mb", 256usize)? << 20,
        keep_potentials: false,
        obs: ObsConfig {
            registry: None, // the always-on global registry
            slo: Some(SloConfig {
                budget: slo_budget,
                ..SloConfig::default()
            }),
            flight: flight_dir.map(|dir| FlightConfig {
                dir: dir.into(),
                ..FlightConfig::default()
            }),
            exec_delay_us,
        },
    };
    let (tracer, trace_path) = tracer_of(args)?;
    println!(
        "serve-sim: {} requests over {} hot geometries ({} pts, kernel {}), \
         cache {} MiB, batch ≤{} / {} µs linger, {} workers",
        sim.workload.requests,
        sim.workload.hot_geometries,
        sim.workload.n_points,
        kernel.name(),
        sim.cache_budget_bytes >> 20,
        sim.service.max_batch,
        sim.service.max_linger_us,
        sim.service.workers,
    );
    let sampler = metrics.spawn_sampler();
    let name = kernel.name();
    let report = run_sim(Arc::new(Fmm::new(kernel, cfg)), name, sim, tracer.clone());

    println!("\n{}", report.summary());
    println!(
        "\n{:<14} {:>10} {:>10} {:>10} {:>10}",
        "span (µs)", "p50", "p95", "p99", "mean"
    );
    for (label, h) in [
        ("latency", &report.latency_us),
        ("queue-wait", &report.queue_wait_us),
        ("execute", &report.execute_us),
    ] {
        println!(
            "{:<14} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            label,
            h.p50(),
            h.p95(),
            h.p99(),
            h.mean()
        );
    }
    let c = &report.cache;
    println!(
        "\ncache: {} hits / {} misses (rate {:.2}), {} evictions, {} resident plans, {:.1} MiB",
        c.hits,
        c.misses,
        c.hit_rate(),
        c.evictions,
        c.resident_plans,
        c.resident_bytes as f64 / (1 << 20) as f64
    );
    if !report.rejections.is_empty() {
        let parts: Vec<String> = report
            .rejections
            .iter()
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        println!("rejections: {}", parts.join(", "));
    }
    if let Some(slo) = &report.slo {
        println!(
            "\nSLO: error budget {:.2}% of requests | {} violations / {} completed \
             (ratio {:.4}) | budget remaining {:.0}% | {}",
            slo.budget * 100.0,
            slo.violations,
            slo.total,
            slo.ratio,
            slo.budget_remaining * 100.0,
            if slo.healthy() { "healthy" } else { "BURNED" },
        );
        println!(
            "{:<12} {:>10} {:>12} {:>10}",
            "window (s)", "requests", "violations", "burn"
        );
        for w in &slo.windows {
            println!(
                "{:<12} {:>10} {:>12} {:>10.2}",
                w.window_us as f64 / 1e6,
                w.total,
                w.violations,
                w.burn
            );
        }
    }
    for d in &report.incident_dumps {
        println!("flight recorder: incident dump -> {}", d.display());
    }
    if let Some(path) = &trace_path {
        write_trace(&tracer, path)?;
    }
    metrics.write(sampler)?;
    if report.deadline_violations > 0 {
        // Under explicit fault injection the violations are the point
        // of the exercise (they arm the flight recorder); report them
        // without failing so the incident files can be inspected.
        if exec_delay_us > 0 {
            println!(
                "note: {} deadline violations under --exec-delay-us={exec_delay_us} fault injection",
                report.deadline_violations
            );
        } else {
            return Err(format!(
                "{} requests completed past their deadline",
                report.deadline_violations
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn kernel_selection() {
        assert_eq!(
            kernel_of(&args(&["run"])).expect("default").name(),
            "laplace"
        );
        assert_eq!(
            kernel_of(&args(&["run", "--kernel", "yukawa"]))
                .expect("yukawa")
                .name(),
            "yukawa"
        );
        assert!(kernel_of(&args(&["run", "--kernel", "nope"])).is_err());
    }

    #[test]
    fn config_round_trips() {
        let cfg = config_of(&args(&[
            "run",
            "--order",
            "4",
            "--q",
            "33",
            "--m2l",
            "dense",
            "--sort",
            "bitonic",
            "--reduction",
            "naive",
            "--schedule=graph",
            "--threads",
            "3",
            "--balance",
            "false",
            "--ulist",
            "scalar",
            "--setup",
            "serial",
        ]))
        .expect("valid");
        assert_eq!(cfg.order, 4);
        assert_eq!(cfg.q, 33);
        assert_eq!(cfg.m2l, M2lMode::Dense);
        assert_eq!(cfg.sort, SortKind::Bitonic);
        assert_eq!(cfg.reduction, Reduction::Naive);
        assert_eq!(cfg.schedule, Schedule::Graph);
        assert_eq!(cfg.threads, 3);
        assert!(!cfg.balance);
        assert_eq!(cfg.ulist, UlistMode::Scalar);
        assert_eq!(cfg.setup, SetupMode::Serial);
    }

    #[test]
    fn setup_mode_selection() {
        assert_eq!(
            config_of(&args(&["run"])).expect("default").setup,
            SetupMode::Parallel
        );
        assert_eq!(
            config_of(&args(&["run", "--setup=parallel"]))
                .expect("parallel")
                .setup,
            SetupMode::Parallel
        );
        assert_eq!(
            config_of(&args(&["run", "--setup", "serial"]))
                .expect("serial")
                .setup,
            SetupMode::Serial
        );
        assert!(config_of(&args(&["run", "--setup", "nope"])).is_err());
    }

    #[test]
    fn ulist_mode_selection() {
        assert_eq!(
            config_of(&args(&["run"])).expect("default").ulist,
            UlistMode::Tiled
        );
        assert_eq!(
            config_of(&args(&["run", "--ulist=tiled"]))
                .expect("tiled")
                .ulist,
            UlistMode::Tiled
        );
        assert_eq!(
            config_of(&args(&["run", "--ulist", "scalar"]))
                .expect("scalar")
                .ulist,
            UlistMode::Scalar
        );
        assert!(config_of(&args(&["run", "--ulist", "nope"])).is_err());
    }

    #[test]
    fn translate_mode_selection() {
        assert_eq!(
            config_of(&args(&["run"])).expect("default").translate,
            TranslateMode::Gemm
        );
        assert_eq!(
            config_of(&args(&["run", "--translate=gemm"]))
                .expect("gemm")
                .translate,
            TranslateMode::Gemm
        );
        assert_eq!(
            config_of(&args(&["run", "--translate", "matvec"]))
                .expect("matvec")
                .translate,
            TranslateMode::Matvec
        );
        assert!(config_of(&args(&["run", "--translate", "nope"])).is_err());
    }

    #[test]
    fn m2l_mode_selection() {
        assert_eq!(
            config_of(&args(&["run"])).expect("default").m2l,
            M2lMode::FftBatched
        );
        assert_eq!(
            config_of(&args(&["run", "--m2l", "fft-batched"]))
                .expect("batched")
                .m2l,
            M2lMode::FftBatched
        );
        assert_eq!(
            config_of(&args(&["run", "--m2l", "fft"])).expect("fft").m2l,
            M2lMode::Fft
        );
        assert!(config_of(&args(&["run", "--m2l", "nope"])).is_err());
    }

    #[test]
    fn run_command_end_to_end() {
        // Small end-to-end exercise through the real dispatcher.
        dispatch(
            [
                "run", "--n", "1500", "--order", "4", "--q", "40", "--ranks", "2", "--check", "97",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("run succeeds");
    }

    #[test]
    fn run_command_graph_schedule() {
        dispatch(
            [
                "run",
                "--n=1500",
                "--order=4",
                "--q=40",
                "--ranks=4",
                "--schedule=graph",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("graph-scheduled run succeeds");
    }

    #[test]
    fn bad_distribution_is_an_error() {
        assert!(dispatch(["run", "--dist", "torus"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn solve_command_end_to_end() {
        dispatch(
            [
                "solve", "--n", "1200", "--order", "4", "--q", "40", "--ranks", "2",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("solve succeeds");
    }

    #[test]
    fn plummer_distribution_accepted() {
        dispatch(
            [
                "run", "--n", "900", "--dist", "plummer", "--order", "4", "--q", "30",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("plummer run succeeds");
    }

    #[test]
    fn gpu_command_end_to_end() {
        dispatch(
            [
                "gpu",
                "--n",
                "1500",
                "--order",
                "4",
                "--gpu-q",
                "150",
                "--wx-on-gpu",
                "true",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("gpu succeeds");
    }

    #[test]
    fn tune_command_end_to_end() {
        dispatch(
            [
                "tune",
                "--n",
                "1500",
                "--order",
                "4",
                "--candidates",
                "20,200",
                "--sample",
                "700",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("tune succeeds");
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(dispatch(["run", "--frobnicate", "1"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn misspelled_flag_gets_a_suggestion() {
        let err = dispatch(["run", "--shedule", "graph"].iter().map(|s| s.to_string()))
            .expect_err("misspelling rejected");
        assert!(
            err.contains("did you mean --schedule"),
            "suggestion missing: {err}"
        );
        let err = dispatch(["run", "--kernal=stokes"].iter().map(|s| s.to_string()))
            .expect_err("misspelling rejected");
        assert!(err.contains("did you mean --kernel"), "{err}");
    }

    #[test]
    fn other_commands_flag_is_rejected_with_a_pointer() {
        // Before per-command flag sets, `run --gpu-q` was silently
        // accepted and ignored; now it is an error naming the owner.
        let err = dispatch(["run", "--gpu-q", "150"].iter().map(|s| s.to_string()))
            .expect_err("wrong-command flag rejected");
        assert!(err.contains("'gpu' option"), "owner missing: {err}");
        let err = dispatch(["tune", "--check=5"].iter().map(|s| s.to_string()))
            .expect_err("wrong-command flag rejected");
        assert!(err.contains("'run' option"), "owner missing: {err}");
    }

    #[test]
    fn unknown_subcommand_lists_the_valid_ones() {
        let err = dispatch(["serve", "--n=10"].iter().map(|s| s.to_string()))
            .expect_err("unknown subcommand");
        assert!(err.contains("serve-sim"), "candidates missing: {err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("schedule", "shedule"), 1);
        assert_eq!(edit_distance("kernel", "kernal"), 1);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("q", "gpu-q"), 4);
    }

    #[test]
    fn serve_sim_end_to_end() {
        dispatch(
            [
                "serve-sim",
                "--requests=10",
                "--n=150",
                "--order=3",
                "--q=40",
                "--hot-geoms=2",
                "--cold-frac=0.2",
                "--concurrency=3",
                "--max-batch=4",
                "--max-linger-us=500",
                "--workers=2",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("serve-sim succeeds");
    }

    #[test]
    fn serve_sim_writes_a_valid_lifecycle_trace() {
        let path = std::env::temp_dir().join("pfmm_serve_sim_trace_test.json");
        let path_s = path.to_str().expect("utf-8 temp path").to_string();
        dispatch(
            [
                "serve-sim",
                "--requests=6",
                "--n=120",
                "--order=3",
                "--q=40",
                "--trace",
                &path_s,
                "--trace-level=phase",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("traced serve-sim succeeds");
        let json = std::fs::read_to_string(&path).expect("trace file written");
        let events = pfmm_trace::chrome::parse(&json).expect("trace parses");
        let st = pfmm_trace::chrome::validate(&events).expect("trace is well-formed");
        // 6 requests × 3 lifecycle spans each.
        assert!(st.spans >= 18, "lifecycle spans recorded: {}", st.spans);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_level_selection() {
        let (t, path) = tracer_of(&args(&["run"])).expect("default off");
        assert!(!t.enabled(TraceLevel::Phase));
        assert!(path.is_none());
        let (t, path) = tracer_of(&args(&["run", "--trace", "out.json"])).expect("default comm");
        assert!(t.enabled(TraceLevel::Comm));
        assert_eq!(path.as_deref(), Some("out.json"));
        let (t, _) = tracer_of(&args(&["run", "--trace=o.json", "--trace-level=phase"]))
            .expect("explicit phase");
        assert!(t.enabled(TraceLevel::Phase));
        assert!(!t.enabled(TraceLevel::Task));
        assert!(tracer_of(&args(&["run", "--trace-level=comm"])).is_err());
        assert!(tracer_of(&args(&["run", "--trace=o.json", "--trace-level=verbose"])).is_err());
    }

    #[test]
    fn run_command_writes_a_loadable_trace() {
        let path = std::env::temp_dir().join("pfmm_cli_trace_test.json");
        let path_s = path.to_str().expect("utf-8 temp path").to_string();
        dispatch(
            [
                "run",
                "--n=1500",
                "--order=4",
                "--q=40",
                "--ranks=2",
                "--schedule=graph",
                "--trace",
                &path_s,
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("traced run succeeds");
        let json = std::fs::read_to_string(&path).expect("trace file written");
        let events = pfmm_trace::chrome::parse(&json).expect("trace parses");
        let st = pfmm_trace::chrome::validate(&events).expect("trace is well-formed");
        assert!(st.spans > 0, "spans recorded");
        assert!(st.flows > 0, "cross-rank flow arrows recorded");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_flag_selection() {
        let m = metrics_of(&args(&["run"])).expect("defaults");
        assert!(m.path.is_none());
        assert_eq!(m.interval_ms, 0);
        let m = metrics_of(&args(&["run", "--metrics=out.prom"])).expect("path only");
        assert_eq!(m.path.as_deref(), Some("out.prom"));
        let m = metrics_of(&args(&["run", "--metrics=o.prom", "--metrics-interval=5"]))
            .expect("path + interval");
        assert_eq!(m.interval_ms, 5);
        assert!(metrics_of(&args(&["run", "--metrics-interval=5"])).is_err());
    }

    #[test]
    fn serve_sim_writes_metrics_exports() {
        let path = std::env::temp_dir().join("pfmm_serve_sim_metrics_test.prom");
        let path_s = path.to_str().expect("utf-8 temp path").to_string();
        dispatch(
            [
                "serve-sim",
                "--requests=8",
                "--n=120",
                "--order=3",
                "--q=40",
                "--metrics",
                &path_s,
                "--metrics-interval=2",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("serve-sim with metrics succeeds");
        let prom = std::fs::read_to_string(&path).expect("prometheus file written");
        assert!(
            prom.contains("# TYPE pfmm_serve_offered_total counter"),
            "offered counter exported:\n{prom}"
        );
        assert!(
            prom.contains("pfmm_serve_latency_us{kernel=\"laplace\",quantile=\"0.99\"}"),
            "latency summary exported"
        );
        let jpath = format!("{path_s}.json");
        let json = std::fs::read_to_string(&jpath).expect("json file written");
        let v = pfmm_trace::json::parse(&json).expect("json export parses");
        let snaps = v
            .get("snapshots")
            .and_then(|s| s.as_arr())
            .expect("snapshots array");
        assert!(!snaps.is_empty(), "at least the final snapshot present");
        for s in snaps {
            assert!(s.get("entries").and_then(|e| e.as_arr()).is_some());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&jpath);
    }

    #[test]
    fn serve_sim_fault_injection_dumps_an_incident() {
        let dir = std::env::temp_dir().join("pfmm_cli_flight_test");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().expect("utf-8 temp path").to_string();
        // The deadline must clear the admission estimate (which cannot
        // see the injected delay) while the delay pushes every actual
        // completion past it: generous 800 ms deadline, 1 s injection.
        dispatch(
            [
                "serve-sim",
                "--requests=6",
                "--n=120",
                "--order=3",
                "--q=40",
                "--deadline-us=800000",
                "--exec-delay-us=1000000",
                &format!("--flight-recorder={dir_s}"),
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("fault-injected serve-sim succeeds (violations non-fatal under injection)");
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .expect("incident dir created")
            .map(|e| e.expect("dir entry").path())
            .collect();
        assert_eq!(dumps.len(), 1, "exactly one incident dump: {dumps:?}");
        let json = std::fs::read_to_string(&dumps[0]).expect("dump readable");
        let events = pfmm_trace::chrome::parse(&json).expect("dump parses as a trace");
        pfmm_trace::chrome::validate(&events).expect("dump spans well-formed");
        let v = pfmm_trace::json::parse(&json).expect("dump parses as json");
        assert!(v.get("incident").is_some(), "incident member present");
        assert!(v.get("metrics").is_some(), "metrics snapshot present");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
