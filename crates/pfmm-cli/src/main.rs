//! `pfmm-cli` binary — thin wrapper over [`pfmm_cli::cli_main`] (the
//! workspace root ships the same entry point as the `pfmm` binary).

use std::process::ExitCode;

fn main() -> ExitCode {
    pfmm_cli::cli_main()
}
