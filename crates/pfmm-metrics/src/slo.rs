//! SLO accounting: deadline-violation error budget and burn rates over
//! sliding windows.
//!
//! The objective is expressed as an allowed violation *fraction*
//! (`budget`, e.g. 0.01 = 99% of requests meet their deadline). Each
//! resolved request is recorded as met/violated with its resolution
//! timestamp; the tracker maintains event history long enough to cover
//! the largest configured window and reports, per window, the observed
//! violation fraction and the burn rate `observed / budget` — burn 1.0
//! means the budget is being consumed exactly as provisioned, >1 means
//! the SLO will be exhausted early (the standard multi-window burn-rate
//! alerting setup).

use std::collections::VecDeque;

/// Configuration for an [`SloTracker`].
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Allowed violation fraction in (0, 1]; e.g. 0.01 for a 99% SLO.
    pub budget: f64,
    /// Sliding windows (µs) to report burn rates over, e.g. a fast
    /// window for paging and a slow one for ticket-level alerts.
    pub windows_us: Vec<u64>,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            budget: 0.01,
            // 1 s fast window, 10 s slow window — sized for simulated
            // runs rather than wall-clock ops practice.
            windows_us: vec![1_000_000, 10_000_000],
        }
    }
}

/// Burn-rate report for one sliding window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBurn {
    pub window_us: u64,
    /// Requests resolved inside the window.
    pub total: u64,
    /// Deadline violations inside the window.
    pub violations: u64,
    /// `violations / total` (0 when the window is empty).
    pub ratio: f64,
    /// `ratio / budget` — 1.0 consumes the budget exactly on schedule.
    pub burn: f64,
}

/// Lifetime + per-window summary, cheap to embed in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    pub budget: f64,
    pub total: u64,
    pub violations: u64,
    /// Lifetime violation fraction.
    pub ratio: f64,
    /// Remaining error budget fraction: `1 - ratio / budget`, clamped
    /// at 0 (negative would mean the budget is already blown).
    pub budget_remaining: f64,
    pub windows: Vec<WindowBurn>,
}

impl SloReport {
    pub fn healthy(&self) -> bool {
        self.budget_remaining > 0.0
    }

    /// Worst (largest) burn rate across the configured windows.
    pub fn max_burn(&self) -> f64 {
        self.windows.iter().fold(0.0, |m, w| m.max(w.burn))
    }
}

/// Sliding-window deadline-violation tracker. Not thread-safe by
/// itself — the serve loop owns it; concurrent consumers read the
/// mirrored registry counters instead.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    /// `(t_us, violated)` events, oldest first, pruned to the largest
    /// window behind the latest recorded time.
    events: VecDeque<(f64, bool)>,
    total: u64,
    violations: u64,
}

impl SloTracker {
    pub fn new(cfg: SloConfig) -> SloTracker {
        assert!(cfg.budget > 0.0 && cfg.budget <= 1.0, "budget in (0,1]");
        SloTracker {
            cfg,
            events: VecDeque::new(),
            total: 0,
            violations: 0,
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Record one resolved request at `t_us`.
    pub fn record(&mut self, t_us: f64, violated: bool) {
        self.total += 1;
        self.violations += u64::from(violated);
        self.events.push_back((t_us, violated));
        let horizon = self.cfg.windows_us.iter().copied().max().unwrap_or(0) as f64;
        while let Some(&(t0, _)) = self.events.front() {
            if t0 < t_us - horizon {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Summarize as of `now_us`.
    pub fn report(&self, now_us: f64) -> SloReport {
        let ratio = if self.total > 0 {
            self.violations as f64 / self.total as f64
        } else {
            0.0
        };
        let windows = self
            .cfg
            .windows_us
            .iter()
            .map(|&w_us| {
                let cutoff = now_us - w_us as f64;
                let (mut total, mut violations) = (0u64, 0u64);
                for &(t, v) in self.events.iter().rev() {
                    if t < cutoff {
                        break;
                    }
                    total += 1;
                    violations += u64::from(v);
                }
                let r = if total > 0 {
                    violations as f64 / total as f64
                } else {
                    0.0
                };
                WindowBurn {
                    window_us: w_us,
                    total,
                    violations,
                    ratio: r,
                    burn: r / self.cfg.budget,
                }
            })
            .collect();
        SloReport {
            budget: self.cfg.budget,
            total: self.total,
            violations: self.violations,
            ratio,
            budget_remaining: (1.0 - ratio / self.cfg.budget).max(0.0),
            windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            budget: 0.1,
            windows_us: vec![1_000, 10_000],
        }
    }

    #[test]
    fn empty_tracker_is_healthy() {
        let t = SloTracker::new(cfg());
        let r = t.report(0.0);
        assert!(r.healthy());
        assert_eq!(r.max_burn(), 0.0);
        assert_eq!(r.budget_remaining, 1.0);
    }

    #[test]
    fn burn_rates_are_per_window() {
        let mut t = SloTracker::new(cfg());
        // 20 old requests, all good, ending at t=5_000.
        for i in 0..20 {
            t.record(i as f64 * 250.0, false);
        }
        // Recent burst: 4 requests in the last 1 ms, 2 violated.
        for (dt, v) in [(0.0, true), (200.0, false), (400.0, true), (600.0, false)] {
            t.record(9_400.0 + dt, v);
        }
        let r = t.report(10_000.0);
        assert_eq!(r.total, 24);
        assert_eq!(r.violations, 2);
        let fast = &r.windows[0];
        assert_eq!((fast.total, fast.violations), (4, 2));
        assert_eq!(fast.ratio, 0.5);
        assert_eq!(fast.burn, 5.0);
        let slow = &r.windows[1];
        assert_eq!((slow.total, slow.violations), (24, 2));
        assert!(slow.burn < fast.burn);
        assert_eq!(r.max_burn(), 5.0);
    }

    #[test]
    fn budget_exhaustion_flips_healthy() {
        let mut t = SloTracker::new(cfg());
        for i in 0..10 {
            t.record(i as f64, i % 2 == 0); // 50% violations vs 10% budget
        }
        let r = t.report(10.0);
        assert!(!r.healthy());
        assert_eq!(r.budget_remaining, 0.0);
    }

    #[test]
    fn pruning_keeps_only_horizon() {
        let mut t = SloTracker::new(cfg());
        for i in 0..1000 {
            t.record(i as f64 * 100.0, false);
        }
        // Horizon is the 10_000 µs window → at most ~101 retained events.
        assert!(t.events.len() <= 102, "retained {}", t.events.len());
        assert_eq!(t.total(), 1000);
    }
}
