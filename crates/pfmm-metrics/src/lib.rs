//! Always-on telemetry for the pfmm stack.
//!
//! `pfmm-trace` answers "what happened during that one run" with post-hoc
//! span traces; this crate answers "what is happening right now" with
//! production-style instruments that are cheap enough to leave armed in
//! every build:
//!
//! - [`registry`] — a registry of named [`Counter`]s, [`Gauge`]s, and
//!   [`AtomicHistogram`]s with `kernel`/`phase`/`rank`/`schedule`-style
//!   labels. Hot-path updates are single relaxed atomic operations; the
//!   registry lock is taken only when an instrument handle is first
//!   created (call sites cache the returned `Arc`).
//! - [`snapshot`] — point-in-time [`Snapshot`]s of every instrument, a
//!   bounded [`SnapshotRing`], a background [`Sampler`] thread, and
//!   exporters (Prometheus text + JSON) plus a delta/rate view over the
//!   last snapshot window.
//! - [`slo`] — [`SloTracker`]: deadline-violation error budget with
//!   burn rates over configurable sliding windows.
//! - [`flight`] — an always-armed flight recorder: fixed-size
//!   per-thread rings of recent spans, dumped together with the current
//!   metrics snapshot as a Perfetto-compatible incident file when a
//!   trigger (deadline violation, shedding, phase anomaly) fires.
//!
//! The histogram shares its bucket layout and quantile code with
//! `pfmm_trace::metrics::Histogram` — snapshots rehydrate through
//! [`pfmm_trace::metrics::Histogram::from_parts`], so the two can never
//! drift.

pub mod flight;
pub mod registry;
pub mod slo;
pub mod snapshot;

pub use flight::{FlightConfig, FlightRecorder, PhaseWatch};
pub use registry::{AtomicHistogram, Counter, Gauge, MetricsRegistry};
pub use slo::{SloConfig, SloReport, SloTracker};
pub use snapshot::{
    delta, json_snapshot, prometheus, push_json_snapshot, Entry, Sampler, Snapshot, SnapshotRing,
    Value,
};

use std::sync::{Arc, OnceLock};

/// Process-wide registry. Library layers record here by default so a
/// single scrape sees the whole stack; tests construct their own
/// [`MetricsRegistry`] for isolation.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// Microseconds since an arbitrary process-wide epoch (first call).
/// Snapshot and incident timestamps use this clock unless the caller
/// supplies one aligned with a tracer epoch.
pub fn now_us() -> f64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_secs_f64()
        * 1e6
}
