//! Instrument registry: named counters, gauges, and atomic histograms.
//!
//! Design rules, in priority order:
//!
//! 1. **Hot paths touch only their own cache line.** `inc`/`set`/
//!    `record` are relaxed atomic ops on an `Arc`'d instrument the call
//!    site obtained once; no lock, no hash lookup.
//! 2. **Registration is rare and may lock.** `counter()`/`gauge()`/
//!    `histogram()` take a mutex to find-or-create the instrument;
//!    callers are expected to cache the handle outside loops.
//! 3. **Reads are approximate but self-consistent.** A snapshot loads
//!    each atomic individually; cross-instrument skew is bounded by the
//!    time the scan takes (microseconds), and a histogram's `count` is
//!    derived from its bucket array so it always equals the bucket sum.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pfmm_trace::metrics::Histogram;

/// Monotonic counter. Relaxed increments; totals only ever grow.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64` as its bit pattern.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `d` to the gauge (CAS loop; gauges are low-rate by design).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Concurrent log-bucketed histogram sharing the exact bucket layout of
/// [`pfmm_trace::metrics::Histogram`]. Recording is one relaxed
/// `fetch_add` on the bucket plus CAS updates of sum/min/max;
/// [`AtomicHistogram::materialize`] rehydrates a plain `Histogram`
/// through [`Histogram::from_parts`] so quantile math lives in exactly
/// one place.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> AtomicHistogram {
        let mut counts = Vec::with_capacity(Histogram::num_buckets());
        counts.resize_with(Histogram::num_buckets(), || AtomicU64::new(0));
        AtomicHistogram {
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    #[inline]
    pub fn record(&self, v: f64) {
        self.counts[Histogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.sum_bits, |s| s + v);
        cas_f64(&self.min_bits, |m| m.min(v));
        cas_f64(&self.max_bits, |m| m.max(v));
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Load every bucket into a plain (single-threaded) histogram with
    /// identical layout, on which quantiles can be computed.
    pub fn materialize(&self) -> Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        // ±inf sentinels while empty match Histogram::new() exactly.
        Histogram::from_parts(
            counts,
            f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        )
    }
}

fn cas_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// `(name, sorted labels)` — the identity of one instrument.
pub type InstrumentKey = (String, Vec<(String, String)>);

#[derive(Clone)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

/// Registry of named instruments. See the module docs for the
/// locking/consistency contract.
pub struct MetricsRegistry {
    enabled: AtomicBool,
    inner: Mutex<HashMap<InstrumentKey, Instrument>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Always-on by default; disabling lets the overhead benchmark
    /// measure a true no-telemetry baseline and lets embedders opt out.
    /// Wiring call sites check this once per run, not per sample.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Find-or-create the counter `name{labels}`.
    ///
    /// Panics if the same key is already registered as a different
    /// instrument type (a naming bug worth failing loudly on).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = key_of(name, labels);
        let mut map = lock(&self.inner);
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = key_of(name, labels);
        let mut map = lock(&self.inner);
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicHistogram> {
        let key = key_of(name, labels);
        let mut map = lock(&self.inner);
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Arc::new(AtomicHistogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone the instrument table (cheap: `Arc`s only) so readers can
    /// load values without holding the registry lock.
    pub(crate) fn instruments(&self) -> Vec<(InstrumentKey, Instrument)> {
        lock(&self.inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Fetch the current value of counter `name{labels}` if it exists
    /// (test/assertion helper; not a hot path).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match lock(&self.inner).get(&key_of(name, labels)) {
            Some(Instrument::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match lock(&self.inner).get(&key_of(name, labels)) {
            Some(Instrument::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> InstrumentKey {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    (name.to_string(), ls)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_key_and_label_order_is_canonical() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &[("kernel", "laplace"), ("rank", "0")]);
        let b = reg.counter("x_total", &[("rank", "0"), ("kernel", "laplace")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.len(), 1);
        assert_eq!(
            reg.counter_value("x_total", &[("kernel", "laplace"), ("rank", "0")]),
            Some(4)
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[]);
        reg.gauge("m", &[]);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn atomic_histogram_matches_plain_recording() {
        let ah = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for i in 0..1000 {
            let v = 1.0 + (i as f64) * 3.7;
            ah.record(v);
            plain.record(v);
        }
        let m = ah.materialize();
        assert_eq!(m.count(), plain.count());
        assert_eq!(m.sum(), plain.sum());
        assert_eq!(m.min(), plain.min());
        assert_eq!(m.max(), plain.max());
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(m.quantile(q), plain.quantile(q));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let ah = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ah = Arc::clone(&ah);
                std::thread::spawn(move || {
                    for i in 0..5000u64 {
                        ah.record((t * 5000 + i) as f64 + 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let m = ah.materialize();
        assert_eq!(m.count(), 20_000);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 20_000.0);
    }

    #[test]
    fn empty_atomic_histogram_materializes_like_empty_plain() {
        let m = AtomicHistogram::new().materialize();
        let plain = Histogram::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.min(), plain.min());
        assert_eq!(m.max(), plain.max());
        assert_eq!(m.quantile(0.5), plain.quantile(0.5));
    }
}
