//! Flight recorder: an always-armed, fixed-size ring of recently
//! completed spans, dumped as a Perfetto-compatible incident file when
//! a trigger fires.
//!
//! Recording is designed to be left on in production: each completed
//! span is one push into a sharded ring (threads are assigned shards
//! round-robin on first use, so in steady state a shard's mutex is
//! touched by a single thread and is effectively uncontended). Nothing
//! is serialized until a trigger — deadline violation, shedding
//! engagement, or a phase-anomaly from [`PhaseWatch`] — asks for a
//! dump, at which point the last `window_us` of spans plus the current
//! metrics snapshot are written as one JSON document:
//!
//! ```text
//! {"incident":{"reason":..,"t_us":..,"window_us":..,"lane":..,"seq":..},
//!  "metrics":{..snapshot..},
//!  "traceEvents":[..Chrome/Perfetto events..]}
//! ```
//!
//! `pfmm_trace::chrome::parse` ignores unknown top-level members, so
//! the file loads in Perfetto *and* round-trips through the existing
//! trace tooling; `trace_check --incident` validates the envelope.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pfmm_trace::{chrome, Event, EventKind};

use crate::registry::MetricsRegistry;
use crate::snapshot::push_json_snapshot;

/// Shard count for the span rings. More than enough for the simulated
/// worker counts; collisions only add benign mutex sharing.
const SHARDS: usize = 16;

#[derive(Debug, Clone)]
struct SpanRec {
    rank: u32,
    tid: u32,
    name: String,
    cat: String,
    t0_us: f64,
    t1_us: f64,
}

/// Flight-recorder configuration.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Directory incident files are written into (created on demand).
    pub dir: PathBuf,
    /// How far back a dump reaches: spans whose *end* falls within the
    /// last `window_us` before the trigger are included.
    pub window_us: f64,
    /// Ring capacity per shard (per steady-state thread).
    pub capacity_per_thread: usize,
    /// Minimum spacing between dumps; triggers inside the cooldown are
    /// counted but produce no file.
    pub cooldown_us: f64,
    /// Hard cap on files written over the recorder's lifetime.
    pub max_dumps: u64,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            dir: PathBuf::from("incidents"),
            window_us: 50_000.0,
            capacity_per_thread: 4096,
            cooldown_us: 1_000_000.0,
            max_dumps: 1,
        }
    }
}

/// Outcome of a trigger that produced a file.
#[derive(Debug, Clone)]
pub struct IncidentDump {
    pub path: PathBuf,
    pub seq: u64,
    pub spans: usize,
}

/// See the module docs. All methods are `&self`; the recorder is
/// shared behind an `Arc` across the serve loop and its executors.
pub struct FlightRecorder {
    cfg: FlightConfig,
    registry: Arc<MetricsRegistry>,
    shards: Vec<Mutex<VecDeque<SpanRec>>>,
    next_shard: AtomicUsize,
    triggers: AtomicU64,
    dumps: AtomicU64,
    /// Bit pattern of the f64 trigger time of the last written dump.
    last_dump_us: AtomicU64,
}

thread_local! {
    static MY_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

impl FlightRecorder {
    pub fn new(cfg: FlightConfig, registry: Arc<MetricsRegistry>) -> FlightRecorder {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || Mutex::new(VecDeque::new()));
        FlightRecorder {
            cfg,
            registry,
            shards,
            next_shard: AtomicUsize::new(0),
            triggers: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            last_dump_us: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// Record one completed span. Hot path: a push (plus a pop at
    /// capacity) on the calling thread's shard.
    pub fn record_span(&self, rank: u32, tid: u32, name: &str, cat: &str, t0_us: f64, t1_us: f64) {
        let idx = MY_SHARD.with(|s| match s.get() {
            Some(i) => i,
            None => {
                let i = self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
                s.set(Some(i));
                i
            }
        });
        let mut ring = lock(&self.shards[idx]);
        if ring.len() >= self.cfg.capacity_per_thread {
            ring.pop_front();
        }
        ring.push_back(SpanRec {
            rank,
            tid,
            name: name.to_string(),
            cat: cat.to_string(),
            t0_us,
            t1_us,
        });
    }

    /// Triggers seen (including ones suppressed by cooldown/cap).
    pub fn triggers(&self) -> u64 {
        self.triggers.load(Ordering::Relaxed)
    }

    /// Incident files written.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Fire a trigger at `now_us` attributed to lane `lane` (the tid
    /// the triggering event lives on). Returns the dump descriptor if
    /// a file was written; `None` when suppressed by the cooldown or
    /// the `max_dumps` cap.
    pub fn trigger(&self, reason: &str, now_us: f64, lane: u32) -> Option<IncidentDump> {
        self.triggers.fetch_add(1, Ordering::Relaxed);
        self.registry
            .counter("pfmm_flight_triggers_total", &[("reason", reason)])
            .inc();

        // Claim a dump slot: respect the lifetime cap first...
        let seq = {
            let mut claimed = None;
            let _ = self
                .dumps
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| {
                    if d < self.cfg.max_dumps {
                        claimed = Some(d);
                        Some(d + 1)
                    } else {
                        claimed = None;
                        None
                    }
                });
            claimed?
        };
        // ...then the cooldown (racy reads are fine: worst case two
        // near-simultaneous triggers both dump, still under the cap).
        let last = f64::from_bits(self.last_dump_us.load(Ordering::Acquire));
        if now_us - last < self.cfg.cooldown_us {
            // Give the claimed slot back; this trigger is suppressed.
            self.dumps.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        self.last_dump_us.store(now_us.to_bits(), Ordering::Release);

        let spans = self.window_spans(now_us);
        let path = self.write_dump(reason, now_us, lane, seq, &spans);
        self.registry
            .counter("pfmm_flight_dumps_total", &[("reason", reason)])
            .inc();
        Some(IncidentDump {
            path,
            seq,
            spans: spans.len(),
        })
    }

    /// Spans whose end falls within the recorder window before `now_us`,
    /// in `(rank, tid, t0)` order.
    fn window_spans(&self, now_us: f64) -> Vec<SpanRec> {
        let cutoff = now_us - self.cfg.window_us;
        let mut out = Vec::new();
        for shard in &self.shards {
            for s in lock(shard).iter() {
                if s.t1_us >= cutoff && s.t1_us <= now_us {
                    out.push(s.clone());
                }
            }
        }
        out.sort_by(|a, b| {
            (a.rank, a.tid)
                .cmp(&(b.rank, b.tid))
                .then(a.t0_us.total_cmp(&b.t0_us))
        });
        out
    }

    fn write_dump(
        &self,
        reason: &str,
        now_us: f64,
        lane: u32,
        seq: u64,
        spans: &[SpanRec],
    ) -> PathBuf {
        // Each span becomes an adjacent B/E pair, which is trivially
        // LIFO-valid per lane; Perfetto orders by timestamp on load.
        let mut events = Vec::with_capacity(spans.len() * 2);
        for s in spans {
            let mut b = Event::new(EventKind::Begin, "", "");
            b.name = Cow::Owned(s.name.clone());
            b.cat = Cow::Owned(s.cat.clone());
            b.rank = s.rank;
            b.tid = s.tid;
            b.ts_us = s.t0_us;
            let mut e = Event::new(EventKind::End, "", "");
            e.cat = Cow::Owned(s.cat.clone());
            e.rank = s.rank;
            e.tid = s.tid;
            e.ts_us = s.t1_us;
            events.push(b);
            events.push(e);
        }
        let chrome_doc = chrome::to_json_string(&events);
        // Splice the incident header and metrics snapshot in front of
        // the traceEvents member; chrome::parse tolerates the extras.
        let mut out = String::with_capacity(chrome_doc.len() + 4096);
        out.push_str("{\"incident\":{\"reason\":");
        pfmm_trace::json::push_escaped(&mut out, reason);
        out.push_str(&format!(
            ",\"t_us\":{now_us},\"window_us\":{},\"lane\":{lane},\"seq\":{seq}}},",
            self.cfg.window_us
        ));
        out.push_str("\"metrics\":");
        push_json_snapshot(&mut out, &self.registry.snapshot(now_us));
        out.push(',');
        out.push_str(
            chrome_doc
                .strip_prefix('{')
                .expect("chrome doc is an object"),
        );

        let _ = std::fs::create_dir_all(&self.cfg.dir);
        let path = self
            .cfg
            .dir
            .join(format!("incident-{seq:03}-{reason}.json"));
        std::fs::write(&path, out).expect("write incident dump");
        path
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Phase-anomaly detector: flags a sample exceeding a configurable
/// multiple of the trailing median for that phase name.
#[derive(Debug)]
pub struct PhaseWatch {
    mult: f64,
    min_samples: usize,
    history: Mutex<HashMap<String, VecDeque<f64>>>,
}

impl PhaseWatch {
    /// `mult`: anomaly threshold as a multiple of the trailing median.
    /// `min_samples`: history required before anything can fire (cold
    /// phases never alarm).
    pub fn new(mult: f64, min_samples: usize) -> PhaseWatch {
        PhaseWatch {
            mult,
            min_samples: min_samples.max(1),
            history: Mutex::new(HashMap::new()),
        }
    }

    /// Observe one duration for `name`; returns `true` when the sample
    /// is anomalous against the trailing median *before* this sample.
    pub fn observe(&self, name: &str, dur_us: f64) -> bool {
        let mut map = lock(&self.history);
        let hist = map.entry(name.to_string()).or_default();
        let anomalous = hist.len() >= self.min_samples && {
            let mut sorted: Vec<f64> = hist.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            dur_us > self.mult * median
        };
        if hist.len() >= 64 {
            hist.pop_front();
        }
        hist.push_back(dur_us);
        anomalous
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pfmm-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn recorder(tag: &str, max_dumps: u64) -> (FlightRecorder, PathBuf) {
        let dir = tmp_dir(tag);
        let cfg = FlightConfig {
            dir: dir.clone(),
            window_us: 1_000.0,
            capacity_per_thread: 64,
            cooldown_us: 0.0,
            max_dumps,
        };
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("pfmm_demo_total", &[]).add(5);
        (FlightRecorder::new(cfg, reg), dir)
    }

    #[test]
    fn dump_contains_window_spans_and_parses() {
        let (rec, dir) = recorder("window", 8);
        // In-window spans on two lanes, plus one stale span.
        rec.record_span(0, 4001, "execute", "serve", 9_500.0, 9_800.0);
        rec.record_span(0, 4002, "queue-wait", "serve", 9_600.0, 9_900.0);
        rec.record_span(0, 4000, "old", "serve", 100.0, 200.0);
        let dump = rec
            .trigger("deadline_violation", 10_000.0, 4001)
            .expect("dump");
        assert_eq!(dump.spans, 2, "stale span excluded");
        let text = std::fs::read_to_string(&dump.path).unwrap();
        let events = chrome::parse(&text).expect("chrome-parseable");
        chrome::validate(&events).expect("valid nesting");
        let doc = pfmm_trace::json::parse(&text).unwrap();
        let inc = doc.get("incident").expect("incident member");
        assert_eq!(
            inc.get("reason").and_then(|r| r.as_str()),
            Some("deadline_violation")
        );
        assert_eq!(inc.get("lane").and_then(|l| l.as_num()), Some(4001.0));
        let metrics = doc.get("metrics").expect("metrics member");
        assert!(metrics.get("entries").is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn max_dumps_cap_holds_across_triggers() {
        let (rec, dir) = recorder("cap", 1);
        rec.record_span(0, 0, "a", "serve", 0.0, 1.0);
        assert!(rec.trigger("shedding", 10.0, 0).is_some());
        assert!(rec.trigger("shedding", 20.0, 0).is_none());
        assert!(rec.trigger("deadline_violation", 30.0, 0).is_none());
        assert_eq!(rec.dumps(), 1);
        assert_eq!(rec.triggers(), 3);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cooldown_suppresses_but_counts() {
        let dir = tmp_dir("cooldown");
        let cfg = FlightConfig {
            dir: dir.clone(),
            window_us: 1_000.0,
            capacity_per_thread: 16,
            cooldown_us: 5_000.0,
            max_dumps: 10,
        };
        let rec = FlightRecorder::new(cfg, Arc::new(MetricsRegistry::new()));
        assert!(rec.trigger("shedding", 0.0, 0).is_some());
        assert!(
            rec.trigger("shedding", 1_000.0, 0).is_none(),
            "inside cooldown"
        );
        assert!(
            rec.trigger("shedding", 6_000.0, 0).is_some(),
            "past cooldown"
        );
        assert_eq!(rec.dumps(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let (rec, dir) = recorder("evict", 8);
        for i in 0..200 {
            let t = 9_000.0 + i as f64;
            rec.record_span(0, 0, "s", "serve", t, t + 0.5);
        }
        // Capacity 64 on this thread's shard → only the newest 64 remain.
        let dump = rec.trigger("phase_anomaly", 10_000.0, 0).unwrap();
        assert_eq!(dump.spans, 64);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn phase_watch_flags_only_warm_outliers() {
        let w = PhaseWatch::new(3.0, 4);
        for _ in 0..3 {
            assert!(!w.observe("ulist", 100.0), "cold: never anomalous");
        }
        assert!(!w.observe("ulist", 1_000.0), "still below min_samples");
        // History now [100,100,100,1000]; median 100 (upper mid of 4).
        assert!(!w.observe("ulist", 250.0));
        assert!(w.observe("ulist", 400.0), "4x median fires");
        assert!(!w.observe("vlist", 1e9), "separate phase is cold");
    }
}
