//! Snapshots, the bounded snapshot ring, the background sampler, and
//! the Prometheus/JSON exporters.
//!
//! Consistency model: a snapshot is a *scan*, not a transaction. Each
//! instrument is loaded with relaxed atomics while writers keep
//! running, so values may skew by however long the scan takes
//! (microseconds); within one histogram the count always equals the
//! bucket-array total because it is derived from the same loads.
//! Counters are monotonic, so deltas between two snapshots are exact
//! over the window they bracket.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pfmm_trace::json::push_escaped;
use pfmm_trace::metrics::Histogram;

use crate::registry::{Instrument, MetricsRegistry};

/// Point-in-time value of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Counter(u64),
    Gauge(f64),
    /// Materialized histogram (exact buckets, not just summaries) so a
    /// delta view can subtract windows.
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
pub struct Entry {
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    pub value: Value,
}

/// One materialized scan of a registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Timestamp of the scan, µs on the caller's clock.
    pub t_us: f64,
    /// Entries sorted by `(name, labels)` — deterministic export order.
    pub entries: Vec<Entry>,
}

impl MetricsRegistry {
    /// Materialize every instrument. `t_us` is caller-supplied so
    /// embedders can stamp snapshots on a tracer-aligned clock.
    pub fn snapshot(&self, t_us: f64) -> Snapshot {
        let mut entries: Vec<Entry> = self
            .instruments()
            .into_iter()
            .map(|((name, labels), inst)| Entry {
                name,
                labels,
                value: match inst {
                    Instrument::Counter(c) => Value::Counter(c.get()),
                    Instrument::Gauge(g) => Value::Gauge(g.get()),
                    Instrument::Histogram(h) => Value::Histogram(h.materialize()),
                },
            })
            .collect();
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { t_us, entries }
    }
}

impl Snapshot {
    /// Look up an entry by name + sorted labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Value> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.entries
            .iter()
            .find(|e| e.name == name && e.labels == want)
            .map(|e| &e.value)
    }
}

/// Per-counter rate between two snapshots of the same registry.
#[derive(Debug, Clone)]
pub struct Rate {
    pub name: String,
    pub labels: Vec<(String, String)>,
    /// Increase over the window (counters and histogram counts).
    pub delta: f64,
    /// `delta / window`; 0 when the window is degenerate.
    pub per_sec: f64,
}

/// Delta view: counter increases (and histogram count increases)
/// between `prev` and `cur`, as rates over the bracketing window.
/// Gauges are omitted — a gauge has no meaningful rate.
pub fn delta(prev: &Snapshot, cur: &Snapshot) -> Vec<Rate> {
    let window_s = ((cur.t_us - prev.t_us) / 1e6).max(0.0);
    let mut out = Vec::new();
    for e in &cur.entries {
        let before = prev
            .entries
            .iter()
            .find(|p| p.name == e.name && p.labels == e.labels);
        let d = match (&e.value, before.map(|p| &p.value)) {
            (Value::Counter(c), Some(Value::Counter(p))) => c.saturating_sub(*p) as f64,
            (Value::Counter(c), None) => *c as f64,
            (Value::Histogram(h), Some(Value::Histogram(p))) => {
                h.count().saturating_sub(p.count()) as f64
            }
            (Value::Histogram(h), None) => h.count() as f64,
            _ => continue,
        };
        out.push(Rate {
            name: e.name.clone(),
            labels: e.labels.clone(),
            delta: d,
            per_sec: if window_s > 0.0 { d / window_s } else { 0.0 },
        });
    }
    out
}

/// Bounded ring of recent snapshots (oldest evicted first).
pub struct SnapshotRing {
    cap: usize,
    ring: Mutex<VecDeque<Arc<Snapshot>>>,
}

impl SnapshotRing {
    pub fn new(cap: usize) -> SnapshotRing {
        SnapshotRing {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, s: Snapshot) {
        let mut r = lock(&self.ring);
        if r.len() == self.cap {
            r.pop_front();
        }
        r.push_back(Arc::new(s));
    }

    pub fn latest(&self) -> Option<Arc<Snapshot>> {
        lock(&self.ring).back().cloned()
    }

    /// Oldest-first copy of the ring contents.
    pub fn all(&self) -> Vec<Arc<Snapshot>> {
        lock(&self.ring).iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        lock(&self.ring).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rate view over the last snapshot window (the two most recent
    /// snapshots), if the ring holds at least two.
    pub fn last_window_rates(&self) -> Option<Vec<Rate>> {
        let r = lock(&self.ring);
        let n = r.len();
        if n < 2 {
            return None;
        }
        Some(delta(&r[n - 2], &r[n - 1]))
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Background thread that scans `registry` every `interval` into a
/// shared [`SnapshotRing`]. Stops (and joins) on drop.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    ring: Arc<SnapshotRing>,
}

impl Sampler {
    pub fn spawn(registry: Arc<MetricsRegistry>, interval: Duration, ring_cap: usize) -> Sampler {
        Sampler::spawn_with_clock(registry, interval, ring_cap, crate::now_us)
    }

    /// As [`Sampler::spawn`], stamping snapshots with a caller-supplied
    /// clock (e.g. one aligned with a tracer epoch).
    pub fn spawn_with_clock(
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        ring_cap: usize,
        clock: impl Fn() -> f64 + Send + 'static,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let ring = Arc::new(SnapshotRing::new(ring_cap));
        let (stop2, ring2) = (Arc::clone(&stop), Arc::clone(&ring));
        let handle = std::thread::Builder::new()
            .name("pfmm-metrics-sampler".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    ring2.push(registry.snapshot(clock()));
                    std::thread::sleep(interval);
                }
                // Final scan so the ring always ends with a snapshot
                // taken at (or after) the moment sampling stopped.
                ring2.push(registry.snapshot(clock()));
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
            ring,
        }
    }

    pub fn ring(&self) -> &Arc<SnapshotRing> {
        &self.ring
    }

    /// Stop the thread and return the ring (also runs on drop).
    pub fn stop(mut self) -> Arc<SnapshotRing> {
        self.shutdown();
        Arc::clone(&self.ring)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

fn prom_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push('=');
        // push_escaped emits the quoted string; Prometheus escapes
        // match JSON's for ", \ and newline.
        push_escaped(out, v);
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

/// Render a snapshot in the Prometheus text exposition format.
/// Histograms export as summaries: `{quantile="..."}` series plus
/// `_sum` and `_count`.
pub fn prometheus(s: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();
    for e in &s.entries {
        let kind = match e.value {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "summary",
        };
        if last_typed != e.name {
            out.push_str("# TYPE ");
            out.push_str(&e.name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_typed = e.name.clone();
        }
        match &e.value {
            Value::Counter(c) => {
                out.push_str(&e.name);
                prom_labels(&mut out, &e.labels, None);
                out.push(' ');
                out.push_str(&c.to_string());
                out.push('\n');
            }
            Value::Gauge(g) => {
                out.push_str(&e.name);
                prom_labels(&mut out, &e.labels, None);
                out.push(' ');
                out.push_str(&format_f64(*g));
                out.push('\n');
            }
            Value::Histogram(h) => {
                for (q, v) in [
                    ("0.5", h.quantile(0.5)),
                    ("0.95", h.quantile(0.95)),
                    ("0.99", h.quantile(0.99)),
                    ("0.999", h.p999()),
                ] {
                    out.push_str(&e.name);
                    prom_labels(&mut out, &e.labels, Some(("quantile", q)));
                    out.push(' ');
                    out.push_str(&format_f64(v));
                    out.push('\n');
                }
                out.push_str(&e.name);
                out.push_str("_sum");
                prom_labels(&mut out, &e.labels, None);
                out.push(' ');
                out.push_str(&format_f64(h.sum()));
                out.push('\n');
                out.push_str(&e.name);
                out.push_str("_count");
                prom_labels(&mut out, &e.labels, None);
                out.push(' ');
                out.push_str(&h.count().to_string());
                out.push('\n');
            }
        }
    }
    out
}

fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Inf; clamp to null-adjacent sentinels.
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Append the JSON object for one snapshot to `out` (no trailing
/// newline). Shape:
/// `{"t_us":..,"entries":[{"name":..,"labels":{..},"type":..,...}]}`.
pub fn push_json_snapshot(out: &mut String, s: &Snapshot) {
    out.push_str("{\"t_us\":");
    out.push_str(&json_f64(s.t_us));
    out.push_str(",\"entries\":[");
    for (i, e) in s.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_escaped(out, &e.name);
        out.push_str(",\"labels\":{");
        for (j, (k, v)) in e.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_escaped(out, k);
            out.push(':');
            push_escaped(out, v);
        }
        out.push_str("},");
        match &e.value {
            Value::Counter(c) => {
                out.push_str("\"type\":\"counter\",\"value\":");
                out.push_str(&c.to_string());
            }
            Value::Gauge(g) => {
                out.push_str("\"type\":\"gauge\",\"value\":");
                out.push_str(&json_f64(*g));
            }
            Value::Histogram(h) => {
                out.push_str("\"type\":\"histogram\",\"count\":");
                out.push_str(&h.count().to_string());
                out.push_str(",\"sum\":");
                out.push_str(&json_f64(h.sum()));
                out.push_str(",\"min\":");
                out.push_str(&json_f64(h.min()));
                out.push_str(",\"max\":");
                out.push_str(&json_f64(h.max()));
                for (label, v) in [
                    ("p50", h.quantile(0.5)),
                    ("p95", h.quantile(0.95)),
                    ("p99", h.quantile(0.99)),
                    ("p999", h.p999()),
                ] {
                    out.push_str(",\"");
                    out.push_str(label);
                    out.push_str("\":");
                    out.push_str(&json_f64(v));
                }
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// Render a snapshot as a standalone JSON document.
pub fn json_snapshot(s: &Snapshot) -> String {
    let mut out = String::new();
    push_json_snapshot(&mut out, s);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("pfmm_demo_total", &[("phase", "ulist")]).add(7);
        reg.gauge("pfmm_demo_backlog", &[]).set(1.25);
        let h = reg.histogram("pfmm_demo_latency_us", &[("kernel", "laplace")]);
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = demo_registry();
        let s = reg.snapshot(123.0);
        assert_eq!(s.entries.len(), 3);
        let names: Vec<&str> = s.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        match s.get("pfmm_demo_total", &[("phase", "ulist")]) {
            Some(Value::Counter(7)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = demo_registry();
        let text = prometheus(&reg.snapshot(0.0));
        assert!(text.contains("# TYPE pfmm_demo_total counter"));
        assert!(text.contains("pfmm_demo_total{phase=\"ulist\"} 7"));
        assert!(text.contains("# TYPE pfmm_demo_backlog gauge"));
        assert!(text.contains("pfmm_demo_backlog 1.25"));
        assert!(text.contains("# TYPE pfmm_demo_latency_us summary"));
        assert!(text.contains("pfmm_demo_latency_us{kernel=\"laplace\",quantile=\"0.5\"}"));
        assert!(text.contains("pfmm_demo_latency_us_sum{kernel=\"laplace\"} 60"));
        assert!(text.contains("pfmm_demo_latency_us_count{kernel=\"laplace\"} 3"));
        // Every non-comment line is `name_or_labels value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn json_export_parses_with_trace_parser() {
        let reg = demo_registry();
        let doc = json_snapshot(&reg.snapshot(55.5));
        let v = pfmm_trace::json::parse(&doc).expect("valid json");
        assert_eq!(v.get("t_us").and_then(|t| t.as_num()), Some(55.5));
        let entries = v.get("entries").and_then(|e| e.as_arr()).expect("entries");
        assert_eq!(entries.len(), 3);
        let hist = entries
            .iter()
            .find(|e| e.get("type").and_then(|t| t.as_str()) == Some("histogram"))
            .expect("histogram entry");
        assert_eq!(hist.get("count").and_then(|c| c.as_num()), Some(3.0));
        assert_eq!(hist.get("sum").and_then(|c| c.as_num()), Some(60.0));
    }

    #[test]
    fn delta_rates_cover_counters_and_histograms() {
        let reg = demo_registry();
        let s0 = reg.snapshot(0.0);
        reg.counter("pfmm_demo_total", &[("phase", "ulist")])
            .add(13);
        reg.histogram("pfmm_demo_latency_us", &[("kernel", "laplace")])
            .record(40.0);
        let s1 = reg.snapshot(2e6); // 2 seconds later
        let rates = delta(&s0, &s1);
        let c = rates
            .iter()
            .find(|r| r.name == "pfmm_demo_total")
            .expect("counter rate");
        assert_eq!(c.delta, 13.0);
        assert_eq!(c.per_sec, 6.5);
        let h = rates
            .iter()
            .find(|r| r.name == "pfmm_demo_latency_us")
            .expect("histogram rate");
        assert_eq!(h.delta, 1.0);
        assert!(
            rates.iter().all(|r| r.name != "pfmm_demo_backlog"),
            "gauges have no rate"
        );
    }

    #[test]
    fn ring_bounds_and_window_rates() {
        let ring = SnapshotRing::new(3);
        let reg = demo_registry();
        for i in 0..5 {
            reg.counter("pfmm_demo_total", &[("phase", "ulist")]).inc();
            ring.push(reg.snapshot(i as f64 * 1e6));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.latest().unwrap().t_us, 4e6);
        let rates = ring.last_window_rates().unwrap();
        let c = rates.iter().find(|r| r.name == "pfmm_demo_total").unwrap();
        assert_eq!(c.delta, 1.0);
        assert_eq!(c.per_sec, 1.0);
    }

    #[test]
    fn sampler_fills_ring_and_stops() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("ticks_total", &[]).inc();
        let sampler = Sampler::spawn(Arc::clone(&reg), Duration::from_millis(1), 64);
        std::thread::sleep(Duration::from_millis(20));
        let ring = sampler.stop();
        assert!(ring.len() >= 2, "sampler produced {} snapshots", ring.len());
        let snaps = ring.all();
        for w in snaps.windows(2) {
            assert!(w[0].t_us <= w[1].t_us, "snapshots in time order");
        }
    }
}
