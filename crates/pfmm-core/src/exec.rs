//! The evaluation phases of Algorithm 1, shared by [`Fmm::evaluate`] and
//! the reusable [`crate::plan::FmmPlan`].
//!
//! [`EvalData`] caches the per-leaf point geometry and level buckets of a
//! LET; [`run_phases`] executes S2U, U2U, the reduce-and-scatter, V, X,
//! D2D + D2T, W and the direct U-list against it, accumulating per-phase
//! times and flops. The densities live in `EvalData` and can be replaced
//! between runs without rebuilding anything else.
//!
//! With `FmmConfig::threads > 1` the per-octant phases (S2U, V, X, D2T,
//! W, U — the set §IV of the paper identifies as parallel) fan out over a
//! host thread pool via [`crate::par`]. The U2U/D2D traversals default to
//! the paper's sequential form; `FmmConfig::traversal_threads > 1` enables
//! the level-synchronous parallel variant the paper lists as unexploited
//! future work ("the U2U and D2D steps can be also executed in
//! parallel").

use std::sync::Arc;

use pfmm_fft::Complex;
use pfmm_kernels::{direct_eval, Point3};
use pfmm_mpisim::{Comm, CommStats};
use pfmm_morton::MortonKey;
use pfmm_tree::{Let, Lists};

use crate::driver::{Fmm, M2lMode, Reduction};
use crate::par::{par_map, par_windows};
use crate::profile::{Phase, Profile};
use crate::reduce::{reduce_scatter_hypercube, reduce_scatter_naive};

/// Per-LET evaluation workspace: leaf geometry, packed densities, and the
/// level ordering of the up/down traversals.
pub struct EvalData {
    /// Positions per octant (nonempty only for point-carrying leaves).
    pub leaf_pos: Vec<Vec<Point3>>,
    /// Packed densities per octant, `source_dim` per point.
    pub leaf_den: Vec<Vec<f64>>,
    /// Local octant indices grouped by level.
    pub by_level: Vec<Vec<u32>>,
    /// Deepest level present in the LET.
    pub max_level: u32,
}

impl EvalData {
    /// Extract the evaluation workspace from a LET; densities are taken
    /// from the point records (replace them later via `leaf_den`).
    pub fn new(l: &Let, sd: usize) -> EvalData {
        let noct = l.len();
        let mut leaf_pos: Vec<Vec<Point3>> = vec![Vec::new(); noct];
        let mut leaf_den: Vec<Vec<f64>> = vec![Vec::new(); noct];
        for i in 0..noct {
            let pts = l.points_of(i);
            if pts.is_empty() {
                continue;
            }
            leaf_pos[i] = pts.iter().map(|p| p.pos).collect();
            let mut den = Vec::with_capacity(pts.len() * sd);
            for p in pts {
                den.extend_from_slice(&p.den[..sd]);
            }
            leaf_den[i] = den;
        }
        let max_level = l.octs.iter().map(|o| o.level()).max().unwrap_or(0);
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
        for i in 0..noct {
            if l.local[i] {
                by_level[l.octs[i].level() as usize].push(i as u32);
            }
        }
        EvalData { leaf_pos, leaf_den, by_level, max_level }
    }
}

/// Offset of the target `beta` relative to the source `alpha` in units of
/// the octant side — the argument convention of `Ops::m2l` and
/// `FftM2l::kernel_spectrum` (both build the operator with the source
/// centered at the origin and the target displaced by `offset · 2r`).
fn offset_of(alpha: &MortonKey, beta: &MortonKey) -> [i8; 3] {
    debug_assert_eq!(alpha.level(), beta.level());
    let cu = beta.cell_units() as i64;
    let a = alpha.anchor();
    let b = beta.anchor();
    [
        ((b[0] as i64 - a[0] as i64) / cu) as i8,
        ((b[1] as i64 - a[1] as i64) / cu) as i8,
        ((b[2] as i64 - a[2] as i64) / cu) as i8,
    ]
}

/// Execute the FMM evaluation phases. Returns the potentials packed
/// `target_dim` per point, aligned with `l`'s point storage, plus the
/// Comm-phase traffic delta.
pub fn run_phases(
    fmm: &Fmm,
    c: &Comm,
    l: &Let,
    lists: &Lists,
    data: &EvalData,
    prof: &mut Profile,
) -> (Vec<f64>, CommStats) {
    let kernel = fmm.kernel();
    let ops = fmm.ops();
    let fft = fmm.fft();
    let cfg = fmm.config();
    let threads = cfg.threads.max(1);
    let sd = kernel.source_dim();
    let td = kernel.target_dim();
    let noct = l.len();
    let ulen = ops.density_len();
    let clen = ops.check_len();
    let leaf_pos = &data.leaf_pos;
    let leaf_den = &data.leaf_den;
    let by_level = &data.by_level;
    let max_level = data.max_level;
    let flops_pair = kernel.flops_per_pair();

    let mut u = vec![0.0f64; noct * ulen];
    let mut has_up = vec![false; noct];

    // (1) S2U and (2) U2U — the upward pass. S2U is per-leaf parallel.
    prof.timed(Phase::Upward, |prof| {
        let flops = par_windows(threads, noct, &mut u, &|i| i * ulen, |range, window, base| {
            let mut fl = 0u64;
            let mut ucheck = vec![0.0f64; clen];
            for i in range {
                if !l.owned[i] || leaf_pos[i].is_empty() {
                    continue;
                }
                let key = l.octs[i];
                let uc = ops.up_check_surface(&key.center(), key.radius());
                ucheck.fill(0.0);
                direct_eval(kernel, &uc, &leaf_pos[i], &leaf_den[i], &mut ucheck);
                let (m, s) = ops.uc2e(key.level());
                m.matvec_acc_scaled(&ucheck, &mut window[i * ulen - base..(i + 1) * ulen - base], s);
                fl += leaf_pos[i].len() as u64 * uc.len() as u64 * flops_pair
                    + 2 * (ulen * clen) as u64;
            }
            fl
        });
        prof.add_flops(Phase::Upward, flops);
        for i in 0..noct {
            has_up[i] = l.owned[i] && !leaf_pos[i].is_empty();
        }
        // U2U, level-synchronous. The paper keeps this sequential ("the
        // U2U and D2D steps can be also executed in parallel using Euler
        // tours ... our current implementation does not support such
        // parallelism"); with `traversal_threads > 1` we implement that
        // future work level by level: child contributions are computed in
        // parallel into a disjoint staging buffer, then scatter-added to
        // the parents (the cheap, conflict-carrying part) sequentially.
        let tt = cfg.traversal_threads.max(1);
        for level in (1..=max_level).rev() {
            let active: Vec<usize> = by_level[level as usize]
                .iter()
                .map(|&iu| iu as usize)
                .filter(|&i| has_up[i])
                .collect();
            if active.is_empty() {
                continue;
            }
            let u_ro = &u;
            let contribs: Vec<(usize, Vec<f64>)> = crate::par::par_map(tt, &active, |i| {
                let key = l.octs[i];
                let parent = key.parent().expect("level >= 1");
                let pi = l.find(&parent).expect("parent of a local octant is local");
                let (m, s) = ops.u2u(level, key.child_index());
                let mut contrib = vec![0.0f64; ulen];
                m.matvec_acc_scaled(&u_ro[i * ulen..(i + 1) * ulen], &mut contrib, s);
                (pi, contrib)
            });
            for (pi, contrib) in contribs {
                for (a, b) in u[pi * ulen..(pi + 1) * ulen].iter_mut().zip(&contrib) {
                    *a += b;
                }
                has_up[pi] = true;
                prof.add_flops(Phase::Upward, 2 * (ulen * ulen) as u64);
            }
        }
    });

    // Reduce-and-scatter of shared upward densities (Algorithm 3).
    let comm_before = c.stats();
    prof.timed(Phase::Comm, |_| {
        if c.size() > 1 {
            let hypercube = match cfg.reduction {
                Reduction::Auto => c.size().is_power_of_two(),
                Reduction::Hypercube => true,
                Reduction::Naive => false,
            };
            if hypercube {
                reduce_scatter_hypercube(c, l, ulen, &mut u);
            } else {
                reduce_scatter_naive(c, l, ulen, &mut u);
            }
        }
    });
    let comm_after = c.stats();
    let comm_reduce = CommStats {
        sent_msgs: comm_after.sent_msgs - comm_before.sent_msgs,
        sent_bytes: comm_after.sent_bytes - comm_before.sent_bytes,
        recv_msgs: comm_after.recv_msgs - comm_before.recv_msgs,
        recv_bytes: comm_after.recv_bytes - comm_before.recv_bytes,
    };
    // Ghost densities may have arrived: refresh occupancy.
    for i in 0..noct {
        if !has_up[i] {
            has_up[i] = u[i * ulen..(i + 1) * ulen].iter().any(|&v| v != 0.0);
        }
    }
    let u = &u; // read-only from here on
    let has_up = &has_up;

    let mut dcheck = vec![0.0f64; noct * clen];

    // (3a) V-list, parallel over target octants.
    prof.timed(Phase::VList, |prof| match cfg.m2l {
        M2lMode::Dense => {
            let flops =
                par_windows(threads, noct, &mut dcheck, &|i| i * clen, |range, window, base| {
                    let mut fl = 0u64;
                    for bi in range {
                        if !l.local[bi] {
                            continue;
                        }
                        let beta = l.octs[bi];
                        for &ai in lists.v.row(bi) {
                            let ai = ai as usize;
                            if !has_up[ai] {
                                continue;
                            }
                            let alpha = l.octs[ai];
                            let (m, s) = ops.m2l(beta.level(), offset_of(&alpha, &beta));
                            m.matvec_acc_scaled(
                                &u[ai * ulen..(ai + 1) * ulen],
                                &mut window[bi * clen - base..(bi + 1) * clen - base],
                                s,
                            );
                            fl += 2 * (clen * ulen) as u64;
                        }
                    }
                    fl
                });
            prof.add_flops(Phase::VList, flops);
        }
        M2lMode::Fft => {
            let g = fft.grid_len();
            // Pass 1: forward-transform every V-list source once, in
            // parallel.
            let mut needed = vec![false; noct];
            for bi in 0..noct {
                if !l.local[bi] {
                    continue;
                }
                for &ai in lists.v.row(bi) {
                    if has_up[ai as usize] {
                        needed[ai as usize] = true;
                    }
                }
            }
            let sources: Vec<usize> = (0..noct).filter(|&i| needed[i]).collect();
            let spectra = par_map(threads, &sources, |ai| {
                Arc::new(fft.source_spectrum(&u[ai * ulen..(ai + 1) * ulen]))
            });
            let mut uhat: Vec<Option<Arc<Vec<Complex>>>> = vec![None; noct];
            for (ai, spec) in sources.iter().zip(spectra) {
                uhat[*ai] = Some(spec);
            }
            prof.add_flops(
                Phase::VList,
                (sources.len() * 5 * g * (g.ilog2() as usize) * sd) as u64,
            );
            // Pass 2: accumulate and inverse-transform per target.
            let uhat = &uhat;
            let flops =
                par_windows(threads, noct, &mut dcheck, &|i| i * clen, |range, window, base| {
                    let mut fl = 0u64;
                    for bi in range {
                        if !l.local[bi] || lists.v.row(bi).is_empty() {
                            continue;
                        }
                        let beta = l.octs[bi];
                        let mut acc = fft.new_accumulator();
                        let mut any = false;
                        for &ai in lists.v.row(bi) {
                            let ai = ai as usize;
                            if !has_up[ai] {
                                continue;
                            }
                            let alpha = l.octs[ai];
                            let (khat, s) =
                                fft.kernel_spectrum(beta.level(), offset_of(&alpha, &beta));
                            let src = uhat[ai].as_ref().expect("transformed in pass 1");
                            fft.accumulate(&mut acc, &khat, src, s);
                            fl += (8 * g * sd * td) as u64;
                            any = true;
                        }
                        if any {
                            fft.finish(acc, &mut window[bi * clen - base..(bi + 1) * clen - base]);
                            fl += (5 * g * (g.ilog2() as usize) * td) as u64;
                        }
                    }
                    fl
                });
            prof.add_flops(Phase::VList, flops);
        }
    });

    // (3b) X-list: sources of big adjacent leaves onto our downward check
    // surfaces; parallel over target octants.
    prof.timed(Phase::XList, |prof| {
        let flops =
            par_windows(threads, noct, &mut dcheck, &|i| i * clen, |range, window, base| {
                let mut fl = 0u64;
                for bi in range {
                    if !l.local[bi] || lists.x.row(bi).is_empty() {
                        continue;
                    }
                    let key = l.octs[bi];
                    let dc = ops.down_check_surface(&key.center(), key.radius());
                    for &ai in lists.x.row(bi) {
                        let ai = ai as usize;
                        if leaf_pos[ai].is_empty() {
                            continue;
                        }
                        direct_eval(
                            kernel,
                            &dc,
                            &leaf_pos[ai],
                            &leaf_den[ai],
                            &mut window[bi * clen - base..(bi + 1) * clen - base],
                        );
                        fl += leaf_pos[ai].len() as u64 * dc.len() as u64 * flops_pair;
                    }
                }
                fl
            });
        prof.add_flops(Phase::XList, flops);
    });
    let dcheck = &dcheck;

    // (4) D2D + (5b) D2T — the downward pass. D2D stays sequential
    // (§IV); D2T is per-leaf parallel.
    let mut f = vec![0.0f64; l.pts.len() * td];
    let pt_base = &|i: usize| l.pt_off[i.min(noct)] * td;
    let mut d = vec![0.0f64; noct * ulen];
    prof.timed(Phase::Downward, |prof| {
        // D2D, level-synchronous (see the U2U comment: the paper's
        // sequential traversal, parallelized per level as its stated
        // future work when `traversal_threads > 1`). At each level the
        // parents are final, so every child's update is independent.
        let tt = cfg.traversal_threads.max(1);
        for level in 0..=max_level {
            let active: Vec<usize> =
                by_level[level as usize].iter().map(|&iu| iu as usize).collect();
            if active.is_empty() {
                continue;
            }
            let d_ro = &d;
            let updates: Vec<(usize, Vec<f64>)> = crate::par::par_map(tt, &active, |i| {
                let key = l.octs[i];
                let (dc2e, s) = ops.dc2e(level);
                let mut di = vec![0.0f64; ulen];
                dc2e.matvec_acc_scaled(&dcheck[i * clen..(i + 1) * clen], &mut di, s);
                if level > 0 {
                    let parent = key.parent().expect("level >= 1");
                    if let Some(pi) = l.find(&parent) {
                        let (m, s) = ops.d2d(level, key.child_index());
                        m.matvec_acc_scaled(&d_ro[pi * ulen..(pi + 1) * ulen], &mut di, s);
                    }
                }
                (i, di)
            });
            for (i, di) in updates {
                d[i * ulen..(i + 1) * ulen].copy_from_slice(&di);
                prof.add_flops(Phase::Downward, 2 * (ulen * clen) as u64 + 2 * (ulen * ulen) as u64);
            }
        }
        // D2T: downward equivalent densities to owned targets.
        let d = &d;
        let flops = par_windows(threads, noct, &mut f, pt_base, |range, window, base| {
            let mut fl = 0u64;
            for i in range {
                if !l.owned[i] || leaf_pos[i].is_empty() {
                    continue;
                }
                let key = l.octs[i];
                let de = ops.down_equiv_surface(&key.center(), key.radius());
                let (off, n) = (l.pt_off[i], leaf_pos[i].len());
                direct_eval(
                    kernel,
                    &leaf_pos[i],
                    &de,
                    &d[i * ulen..(i + 1) * ulen],
                    &mut window[off * td - base..(off + n) * td - base],
                );
                fl += n as u64 * de.len() as u64 * flops_pair;
            }
            fl
        });
        prof.add_flops(Phase::Downward, flops);
    });

    // (5a) W-list: multipoles of small far leaves directly to targets;
    // parallel over target leaves.
    prof.timed(Phase::WList, |prof| {
        let flops = par_windows(threads, noct, &mut f, pt_base, |range, window, base| {
            let mut fl = 0u64;
            for bi in range {
                if !l.owned[bi] || lists.w.row(bi).is_empty() || leaf_pos[bi].is_empty() {
                    continue;
                }
                let (off, n) = (l.pt_off[bi], leaf_pos[bi].len());
                for &ai in lists.w.row(bi) {
                    let ai = ai as usize;
                    if !has_up[ai] {
                        continue;
                    }
                    let alpha = l.octs[ai];
                    let ue = ops.up_equiv_surface(&alpha.center(), alpha.radius());
                    direct_eval(
                        kernel,
                        &leaf_pos[bi],
                        &ue,
                        &u[ai * ulen..(ai + 1) * ulen],
                        &mut window[off * td - base..(off + n) * td - base],
                    );
                    fl += n as u64 * ue.len() as u64 * flops_pair;
                }
            }
            fl
        });
        prof.add_flops(Phase::WList, flops);
    });

    // Direct interactions (U-list); parallel over target leaves.
    prof.timed(Phase::UList, |prof| {
        let flops = par_windows(threads, noct, &mut f, pt_base, |range, window, base| {
            let mut fl = 0u64;
            for bi in range {
                if !l.owned[bi] || leaf_pos[bi].is_empty() {
                    continue;
                }
                let (off, n) = (l.pt_off[bi], leaf_pos[bi].len());
                for &ai in lists.u.row(bi) {
                    let ai = ai as usize;
                    if leaf_pos[ai].is_empty() {
                        continue;
                    }
                    direct_eval(
                        kernel,
                        &leaf_pos[bi],
                        &leaf_pos[ai],
                        &leaf_den[ai],
                        &mut window[off * td - base..(off + n) * td - base],
                    );
                    fl += (n * leaf_pos[ai].len()) as u64 * flops_pair;
                }
            }
            fl
        });
        prof.add_flops(Phase::UList, flops);
    });

    (f, comm_reduce)
}
