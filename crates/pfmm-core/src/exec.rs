//! The evaluation phases of Algorithm 1, shared by [`Fmm::evaluate`] and
//! the reusable [`crate::plan::FmmPlan`].
//!
//! [`EvalData`] caches the per-leaf point geometry and level buckets of a
//! LET; [`run_phases`] executes S2U, U2U, the reduce-and-scatter, the
//! U/V/W/X lists and the downward pass against it, accumulating per-phase
//! times and flops. The densities live in `EvalData` and can be replaced
//! between runs without rebuilding anything else.
//!
//! Two executors share the same per-octant kernels (the `Ctx` methods):
//!
//! * **Barrier** ([`run_phases_barrier`]): bulk-synchronous phases in the
//!   canonical order Upward → Comm → U → X → V → Downward → W. With
//!   `FmmConfig::threads > 1` the per-octant phases fan out over a host
//!   thread pool via [`crate::par`]; the rank blocks inside Comm.
//! * **Graph** ([`run_phases_graph`]): the phases are emitted as a
//!   `pfmm-sched` task graph over octant chunks, with the
//!   reduce-and-scatter as a *comm task* polling non-blocking requests.
//!   The U- and X-lists need no remote upward densities (their sources'
//!   point densities arrive with the LET), so their chunks execute while
//!   the reduction is in flight — the paper's §III motivation for
//!   overlapping the direct interactions with communication.
//!
//! Both executors accumulate into each output slice in the same order
//! (`f`: U, then D2T, then W; `dcheck`: X, then V; `u`: S2U, then U2U in
//! level/index order, then the reduction write-back), and the hypercube
//! reduction folds rounds identically in its blocking and poll-driven
//! forms, so the two schedules produce bitwise-identical potentials.
//!
//! The U2U/D2D traversals default to the paper's sequential form;
//! `FmmConfig::traversal_threads > 1` enables the level-synchronous
//! parallel variant the paper lists as unexploited future work ("the U2U
//! and D2D steps can be also executed in parallel").

use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use pfmm_fft::Complex;
use pfmm_kernels::{direct_eval, Kernel, Point3, TileKernel, Tiles, LANE};
use pfmm_morton::MortonKey;
use pfmm_mpisim::{Comm, CommStats};
use pfmm_sched::{CommPoll, Graph, GraphBuf, Slot, TraceCtx};
use pfmm_trace::{tid_worker, TraceLevel, Tracer, TID_MAIN};
use pfmm_tree::{Let, Lists};

use crate::driver::{Fmm, M2lMode, Reduction, Schedule, TranslateMode, UlistMode};
use crate::nearfield::NearField;
use crate::translate::TranslatePlan;

/// V-list source spectra, shared between the FFT pass-1 task and the
/// per-chunk pass-2 tasks.
type Spectra = Arc<Vec<Option<Arc<Vec<Complex>>>>>;
/// Batched-mode pass-1 product: the split-complex source spectra (the
/// kernel-spectrum table lives in the workspace since it is
/// density-independent).
type BatchedSpectra = Arc<SourceSpectra>;
use crate::m2l_batched::{offset_slot, FftBatchedM2l, SourceSpectra, SpectraTable, SpectraTmp};
use crate::m2l_fft::FftM2l;
use crate::ops::Ops;
use crate::par::{par_map, par_map_n, par_windows, par_windows_weighted, weighted_cuts, SetupPar};
use crate::profile::{flop_model, Phase, Profile};
use crate::reduce::{reduce_scatter_hypercube, reduce_scatter_naive, HypercubeReduceAsync};
use crate::workspace::{EvalWorkspace, WorkerScratch};

/// Per-LET evaluation workspace: leaf geometry, packed densities, and the
/// level ordering of the up/down traversals.
pub struct EvalData {
    /// Positions per octant (nonempty only for point-carrying leaves).
    pub leaf_pos: Vec<Vec<Point3>>,
    /// Packed densities per octant, `source_dim` per point.
    pub leaf_den: Vec<Vec<f64>>,
    /// Local octant indices grouped by level.
    pub by_level: Vec<Vec<u32>>,
    /// Deepest level present in the LET.
    pub max_level: u32,
    /// Plan-time `(level, operator-class)` grouping of the up/down
    /// translations (geometry-only; replayed as-is by `Fmm::apply`).
    pub translate: TranslatePlan,
}

impl EvalData {
    /// Extract the evaluation workspace from a LET; densities are taken
    /// from the point records (replace them later via `leaf_den`).
    pub fn new(l: &Let, sd: usize) -> EvalData {
        EvalData::new_with(l, sd, SetupPar::Serial)
    }

    /// [`EvalData::new`] with the per-octant geometry/density extraction
    /// and the translate grouping parallelized under `par`. Every
    /// per-octant result is reassembled in octant order, so the
    /// workspace is identical to the serial build.
    pub fn new_with(l: &Let, sd: usize, par: SetupPar) -> EvalData {
        let noct = l.len();
        let filled: Vec<(Vec<Point3>, Vec<f64>)> = par_map_n(par.threads(), noct, |i| {
            let pts = l.points_of(i);
            if pts.is_empty() {
                return (Vec::new(), Vec::new());
            }
            let pos = pts.iter().map(|p| p.pos).collect();
            let mut den = Vec::with_capacity(pts.len() * sd);
            for p in pts {
                den.extend_from_slice(&p.den[..sd]);
            }
            (pos, den)
        });
        let (leaf_pos, leaf_den): (Vec<Vec<Point3>>, Vec<Vec<f64>>) = filled.into_iter().unzip();
        let max_level = l.octs.iter().map(|o| o.level()).max().unwrap_or(0);
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
        for i in 0..noct {
            if l.local[i] {
                by_level[l.octs[i].level() as usize].push(i as u32);
            }
        }
        let occupied: Vec<bool> = (0..noct)
            .map(|i| l.owned[i] && !leaf_pos[i].is_empty())
            .collect();
        let translate = TranslatePlan::build_with(l, &by_level, &occupied, par);
        EvalData {
            leaf_pos,
            leaf_den,
            by_level,
            max_level,
            translate,
        }
    }

    /// Heap bytes held by the workspace (element counts × element sizes;
    /// feeds the serve-layer plan-cache budget accounting).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let nested = |vv: &Vec<Vec<f64>>| {
            vv.iter().map(|v| v.len() * size_of::<f64>()).sum::<usize>()
                + vv.len() * size_of::<Vec<f64>>()
        };
        self.leaf_pos
            .iter()
            .map(|v| v.len() * size_of::<Point3>())
            .sum::<usize>()
            + self.leaf_pos.len() * size_of::<Vec<Point3>>()
            + nested(&self.leaf_den)
            + self
                .by_level
                .iter()
                .map(|v| v.len() * size_of::<u32>())
                .sum::<usize>()
            + self.by_level.len() * size_of::<Vec<u32>>()
            + self.translate.memory_bytes()
    }
}

/// Offset of the target `beta` relative to the source `alpha` in units of
/// the octant side — the argument convention of `Ops::m2l` and
/// `FftM2l::kernel_spectrum` (both build the operator with the source
/// centered at the origin and the target displaced by `offset · 2r`).
pub(crate) fn offset_of(alpha: &MortonKey, beta: &MortonKey) -> [i8; 3] {
    debug_assert_eq!(alpha.level(), beta.level());
    let cu = beta.cell_units() as i64;
    let a = alpha.anchor();
    let b = beta.anchor();
    [
        ((b[0] as i64 - a[0] as i64) / cu) as i8,
        ((b[1] as i64 - a[1] as i64) / cu) as i8,
        ((b[2] as i64 - a[2] as i64) / cu) as i8,
    ]
}

/// Reusable SoA scratch for routing per-box point↔surface direct evals
/// (S2U check potentials, D2T, W, X) through the branch-free tile
/// microkernels instead of the scalar per-target `direct_eval` loop. At
/// practical leaf occupancies the scalar path is call-overhead bound
/// (one virtual `eval_target` per surface point over a handful of
/// sources); packing both sides as planes and making a single
/// monomorphized `eval_tiles` call per box amortizes that away and lets
/// the kernel body vectorize.
///
/// Both translate modes and both executors share this path, so it leaves
/// every bitwise-equality invariant intact (`eval_tiles` keeps one
/// accumulator per target output walking sources in order; padding lanes
/// contribute exactly `0.0`).
#[derive(Default)]
pub(crate) struct TileEval {
    tx: Vec<f64>,
    ty: Vec<f64>,
    tz: Vec<f64>,
    sx: Vec<f64>,
    sy: Vec<f64>,
    sz: Vec<f64>,
    den: Vec<f64>,
}

impl TileEval {
    /// Heap bytes held (allocated capacities; workspace accounting).
    pub(crate) fn memory_bytes(&self) -> usize {
        (self.tx.capacity()
            + self.ty.capacity()
            + self.tz.capacity()
            + self.sx.capacity()
            + self.sy.capacity()
            + self.sz.capacity()
            + self.den.capacity())
            * std::mem::size_of::<f64>()
    }

    /// `out += Σ_j K(x_i, y_j) s_j`, via `tk` when the kernel provides
    /// tile microkernels and the scalar `direct_eval` otherwise.
    pub(crate) fn eval(
        &mut self,
        tk: Option<&dyn TileKernel>,
        kernel: &dyn Kernel,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        out: &mut [f64],
    ) {
        let Some(tk) = tk else {
            direct_eval(kernel, targets, sources, densities, out);
            return;
        };
        let sd = kernel.source_dim();
        let nsp = sources.len().div_ceil(LANE) * LANE;
        self.tx.clear();
        self.ty.clear();
        self.tz.clear();
        for p in targets {
            self.tx.push(p[0]);
            self.ty.push(p[1]);
            self.tz.push(p[2]);
        }
        self.sx.clear();
        self.sy.clear();
        self.sz.clear();
        for p in sources {
            self.sx.push(p[0]);
            self.sy.push(p[1]);
            self.sz.push(p[2]);
        }
        self.sx.resize(nsp, crate::nearfield::PAD_POS);
        self.sy.resize(nsp, crate::nearfield::PAD_POS);
        self.sz.resize(nsp, crate::nearfield::PAD_POS);
        self.den.clear();
        self.den.resize(sd * nsp, 0.0);
        for (j, d) in densities.chunks_exact(sd).enumerate() {
            for (c, &v) in d.iter().enumerate() {
                self.den[c * nsp + j] = v;
            }
        }
        tk.eval_tiles(
            Tiles {
                tx: &self.tx,
                ty: &self.ty,
                tz: &self.tz,
                sx: &self.sx,
                sy: &self.sy,
                sz: &self.sz,
                den: &self.den,
            },
            out,
        );
    }
}

/// Borrowed evaluation context shared by every chunk kernel; both
/// executors call the same methods so the per-octant arithmetic (and its
/// floating-point order) is identical by construction.
struct Ctx<'a> {
    kernel: &'a dyn Kernel,
    ops: &'a Ops,
    fft: &'a FftM2l,
    fftb: &'a FftBatchedM2l,
    l: &'a Let,
    lists: &'a Lists,
    leaf_pos: &'a [Vec<Point3>],
    leaf_den: &'a [Vec<f64>],
    /// Tiled near-field layout + microkernels; `None` runs the scalar
    /// U-list path (`--ulist=scalar`, or a kernel without tile support).
    nf: Option<&'a NearField>,
    /// Workspace-owned batched-M2L kernel-spectrum table (fft-batched
    /// mode; a superset of every key an apply can need).
    btable: Option<&'a SpectraTable>,
    tk: Option<&'a dyn TileKernel>,
    /// Tile microkernels for the per-box point↔surface direct evals
    /// (S2U check, D2T, W, X) — unlike `tk`, not gated on the near-field
    /// layout; `None` falls back to the scalar `direct_eval`.
    tkd: Option<&'a dyn TileKernel>,
    ulen: usize,
    clen: usize,
    td: usize,
    flops_pair: u64,
    /// Threads for the level-synchronous U2U/D2D traversals.
    tt: usize,
    /// Plan-time translation grouping (`--translate=gemm` engine).
    tp: &'a TranslatePlan,
    /// Groups below this many right-hand sides use the per-box matvec
    /// fallback (bitwise identical — the break-even is numerics-free).
    gemm_min: usize,
}

impl Ctx<'_> {
    fn new<'a>(
        fmm: &'a Fmm,
        l: &'a Let,
        lists: &'a Lists,
        data: &'a EvalData,
        nf: Option<&'a NearField>,
        btable: Option<&'a SpectraTable>,
    ) -> Ctx<'a> {
        Ctx {
            kernel: fmm.kernel(),
            ops: fmm.ops(),
            fft: fmm.fft(),
            fftb: fmm.fft_batched(),
            l,
            lists,
            leaf_pos: &data.leaf_pos,
            leaf_den: &data.leaf_den,
            nf,
            btable,
            tk: nf.and(fmm.kernel().as_tile_kernel()),
            tkd: fmm.kernel().as_tile_kernel(),
            ulen: fmm.ops().density_len(),
            clen: fmm.ops().check_len(),
            td: fmm.kernel().target_dim(),
            flops_pair: fmm.kernel().flops_per_pair(),
            tt: fmm.config().traversal_threads.max(1),
            tp: &data.translate,
            gemm_min: crate::tune::translate_breakeven_boxes(),
        }
    }

    /// (1) S2U for octants in `range`; `window` is the matching slice of
    /// the upward-density array (element 0 at global offset `base`).
    fn s2u_range(
        &self,
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
        sc: &mut WorkerScratch,
    ) -> u64 {
        let (l, ops, ulen) = (self.l, self.ops, self.ulen);
        let mut fl = 0u64;
        sc.check.clear();
        sc.check.resize(self.clen, 0.0);
        for i in range {
            if !l.owned[i] || self.leaf_pos[i].is_empty() {
                continue;
            }
            let key = l.octs[i];
            ops.up_check_surface_into(&key.center(), key.radius(), &mut sc.surf);
            sc.check.fill(0.0);
            sc.te.eval(
                self.tkd,
                self.kernel,
                &sc.surf,
                &self.leaf_pos[i],
                &self.leaf_den[i],
                &mut sc.check,
            );
            let (m, s) = ops.uc2e(key.level());
            m.matvec_acc_scaled(
                &sc.check,
                &mut window[i * ulen - base..(i + 1) * ulen - base],
                s,
            );
            fl += self.leaf_pos[i].len() as u64 * sc.surf.len() as u64 * self.flops_pair
                + 2 * (ulen * self.clen) as u64;
        }
        fl
    }

    /// Initial upward occupancy for octants in `range` (`window[0]`
    /// corresponds to octant `range.start`).
    fn mark_has_up_range(&self, range: Range<usize>, window: &mut [bool]) {
        let base = range.start;
        for i in range {
            window[i - base] = self.l.owned[i] && !self.leaf_pos[i].is_empty();
        }
    }

    /// (2) One U2U level, level-synchronous: child contributions are
    /// computed (in parallel with `tt > 1`) into disjoint staging
    /// buffers, then scatter-added to the parents in `by_level` order —
    /// the fixed merge order both executors share.
    fn u2u_level(
        &self,
        by_level: &[Vec<u32>],
        level: u32,
        u: &mut [f64],
        has_up: &mut [bool],
    ) -> u64 {
        let (l, ops, ulen) = (self.l, self.ops, self.ulen);
        let active: Vec<usize> = by_level[level as usize]
            .iter()
            .map(|&iu| iu as usize)
            .filter(|&i| has_up[i])
            .collect();
        if active.is_empty() {
            return 0;
        }
        let contribs: Vec<(usize, Vec<f64>)> = {
            let u_ro = &*u;
            par_map(self.tt, &active, |i| {
                let key = l.octs[i];
                let parent = key.parent().expect("level >= 1");
                let pi = l.find(&parent).expect("parent of a local octant is local");
                let (m, s) = ops.u2u(level, key.child_index());
                let mut contrib = vec![0.0f64; ulen];
                m.matvec_acc_scaled(&u_ro[i * ulen..(i + 1) * ulen], &mut contrib, s);
                (pi, contrib)
            })
        };
        let mut fl = 0u64;
        for (pi, contrib) in contribs {
            for (a, b) in u[pi * ulen..(pi + 1) * ulen].iter_mut().zip(&contrib) {
                *a += b;
            }
            has_up[pi] = true;
            fl += 2 * (ulen * ulen) as u64;
        }
        fl
    }

    /// (1a, gemm) S2U check potentials only: sources evaluated onto the
    /// up-check surface for owned leaves in `range`, written into the
    /// matching slice of the check buffer (zero on entry, like the scalar
    /// path's per-leaf `ucheck.fill(0.0)`). The per-level uc2e solves run
    /// afterwards as level-batched GEMMs ([`Ctx::s2u_solve_levels`]).
    fn s2u_check_range(
        &self,
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
        sc: &mut WorkerScratch,
    ) -> u64 {
        let (l, ops, clen) = (self.l, self.ops, self.clen);
        let mut fl = 0u64;
        for i in range {
            if !l.owned[i] || self.leaf_pos[i].is_empty() {
                continue;
            }
            let key = l.octs[i];
            ops.up_check_surface_into(&key.center(), key.radius(), &mut sc.surf);
            sc.te.eval(
                self.tkd,
                self.kernel,
                &sc.surf,
                &self.leaf_pos[i],
                &self.leaf_den[i],
                &mut window[i * clen - base..(i + 1) * clen - base],
            );
            fl += self.leaf_pos[i].len() as u64 * sc.surf.len() as u64 * self.flops_pair;
        }
        fl
    }

    /// (1b, gemm) Per-level uc2e solves, one batched group per level:
    /// gather the occupied leaves' check potentials as RHS columns, solve
    /// them together, scatter into the upward densities. Per box this is
    /// `u += s * (uc2e · ucheck)` with the scalar path's accumulation
    /// order, so the result is bitwise identical to `s2u_range`.
    fn s2u_solve_levels(&self, ucheck: &[f64], u: &mut [f64], sc: &mut WorkerScratch) -> u64 {
        let (ops, ulen, clen) = (self.ops, self.ulen, self.clen);
        let sc = &mut sc.tsc;
        let mut fl = 0u64;
        for (lev, g) in self.tp.s2u.iter().enumerate() {
            if g.is_empty() {
                continue;
            }
            let (m, s) = ops.uc2e(lev as u32);
            g.pack(clen, ucheck, sc);
            g.apply(&m, s, clen, ulen, self.gemm_min, sc, u);
            fl += g.len() as u64 * 2 * (ulen * clen) as u64;
        }
        fl
    }

    /// (2', gemm) One U2U level as up to 8 class-grouped GEMMs. Children
    /// of one parent arrive in ascending child-index order — the same
    /// per-parent merge order as the scalar `u2u_level` — so the upward
    /// densities stay bitwise identical.
    fn u2u_level_gemm(
        &self,
        level: u32,
        u: &mut [f64],
        has_up: &mut [bool],
        sc: &mut WorkerScratch,
    ) -> u64 {
        let ulen = self.ulen;
        let sc = &mut sc.tsc;
        let mut fl = 0u64;
        for (ci, g) in self.tp.u2u[level as usize].iter().enumerate() {
            if g.is_empty() {
                continue;
            }
            let (m, s) = self.ops.u2u(level, ci);
            g.pack(ulen, u, sc);
            g.apply(&m, s, ulen, ulen, self.gemm_min, sc, u);
            for &pi in &g.dst {
                has_up[pi as usize] = true;
            }
            fl += g.len() as u64 * 2 * (ulen * ulen) as u64;
        }
        fl
    }

    /// (4', gemm) D2D over the whole LET: per level one batched dc2e
    /// solve over every local octant, then up to 8 class-grouped L2L
    /// GEMMs gathering the (already final) parent densities. Per octant
    /// the accumulation order is `d = s₁·(dc2e·dcheck) + s₂·(d2d·parent)`
    /// — the scalar `d2d_levels` order — so `d` stays bitwise identical.
    fn d2d_levels_gemm(
        &self,
        max_level: u32,
        dcheck: &[f64],
        d: &mut [f64],
        sc: &mut WorkerScratch,
    ) -> u64 {
        let (ops, ulen, clen) = (self.ops, self.ulen, self.clen);
        let sc = &mut sc.tsc;
        let mut fl = 0u64;
        for level in 0..=max_level {
            let lv = level as usize;
            let g = &self.tp.dc2e[lv];
            if g.is_empty() {
                continue;
            }
            let (dm, s) = ops.dc2e(level);
            g.pack(clen, dcheck, sc);
            g.apply(&dm, s, clen, ulen, self.gemm_min, sc, d);
            // Charged like the scalar path: solve + translation per box
            // (whether or not the parent is present), keeping the two
            // modes' profile totals identical.
            fl += g.len() as u64 * (2 * (ulen * clen) as u64 + 2 * (ulen * ulen) as u64);
            if level == 0 {
                continue;
            }
            for (ci, cg) in self.tp.d2d[lv].iter().enumerate() {
                if cg.is_empty() {
                    continue;
                }
                let (m, s) = ops.d2d(level, ci);
                cg.pack(ulen, d, sc);
                cg.apply(&m, s, ulen, ulen, self.gemm_min, sc, d);
            }
        }
        fl
    }

    /// Direct near-field interactions (U-list) for target leaves in
    /// `range`; `window` is the matching point-potential slice. With a
    /// tiled layout present this dispatches to the SoA microkernels —
    /// same target boxes, same per-target accumulation order (CSR rows
    /// sorted by source box), so both executors stay bitwise identical.
    fn uli_range(&self, range: Range<usize>, window: &mut [f64], base: usize) -> u64 {
        if let (Some(nf), Some(tk)) = (self.nf, self.tk) {
            return nf.eval_range(tk, self.td, self.flops_pair, range, window, base);
        }
        let (l, td) = (self.l, self.td);
        let mut fl = 0u64;
        for bi in range {
            if !l.owned[bi] || self.leaf_pos[bi].is_empty() {
                continue;
            }
            let (off, n) = (l.pt_off[bi], self.leaf_pos[bi].len());
            for &ai in self.lists.u.row(bi) {
                let ai = ai as usize;
                if self.leaf_pos[ai].is_empty() {
                    continue;
                }
                direct_eval(
                    self.kernel,
                    &self.leaf_pos[bi],
                    &self.leaf_pos[ai],
                    &self.leaf_den[ai],
                    &mut window[off * td - base..(off + n) * td - base],
                );
                fl += (n * self.leaf_pos[ai].len()) as u64 * self.flops_pair;
            }
        }
        fl
    }

    /// (3b) X-list for target octants in `range`; `window` is the
    /// matching downward-check slice.
    fn xli_range(
        &self,
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
        sc: &mut WorkerScratch,
    ) -> u64 {
        let (l, clen) = (self.l, self.clen);
        let mut fl = 0u64;
        for bi in range {
            if !l.local[bi] || self.lists.x.row(bi).is_empty() {
                continue;
            }
            let key = l.octs[bi];
            self.ops
                .down_check_surface_into(&key.center(), key.radius(), &mut sc.surf);
            for &ai in self.lists.x.row(bi) {
                let ai = ai as usize;
                if self.leaf_pos[ai].is_empty() {
                    continue;
                }
                sc.te.eval(
                    self.tkd,
                    self.kernel,
                    &sc.surf,
                    &self.leaf_pos[ai],
                    &self.leaf_den[ai],
                    &mut window[bi * clen - base..(bi + 1) * clen - base],
                );
                fl += self.leaf_pos[ai].len() as u64 * sc.surf.len() as u64 * self.flops_pair;
            }
        }
        fl
    }

    /// (3a) V-list via dense per-offset operators.
    fn vli_dense_range(
        &self,
        has_up: &[bool],
        u: &[f64],
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
    ) -> u64 {
        let (l, ops, ulen, clen) = (self.l, self.ops, self.ulen, self.clen);
        let mut fl = 0u64;
        for bi in range {
            if !l.local[bi] {
                continue;
            }
            let beta = l.octs[bi];
            for &ai in self.lists.v.row(bi) {
                let ai = ai as usize;
                if !has_up[ai] {
                    continue;
                }
                let alpha = l.octs[ai];
                let (m, s) = ops.m2l(beta.level(), offset_of(&alpha, &beta));
                m.matvec_acc_scaled(
                    &u[ai * ulen..(ai + 1) * ulen],
                    &mut window[bi * clen - base..(bi + 1) * clen - base],
                    s,
                );
                fl += flop_model::m2l_dense_edge(clen, ulen);
            }
        }
        fl
    }

    /// Mark every V-list source with upward data and list them in octant
    /// order, reusing the workspace-owned flag/index buffers.
    fn vli_mark_sources(&self, has_up: &[bool], needed: &mut Vec<bool>, sources: &mut Vec<usize>) {
        let l = self.l;
        let noct = l.len();
        needed.clear();
        needed.resize(noct, false);
        for bi in 0..noct {
            if !l.local[bi] {
                continue;
            }
            for &ai in self.lists.v.row(bi) {
                if has_up[ai as usize] {
                    needed[ai as usize] = true;
                }
            }
        }
        sources.clear();
        sources.extend((0..noct).filter(|&i| needed[i]));
    }

    /// V-list FFT pass 1: forward-transform every V-list source once.
    /// The `uhat` option table is epoch-cleared and reused; the spectra
    /// themselves are freshly `Arc`'d (the fft mode is an ablation path,
    /// outside the zero-allocation guarantee).
    fn vli_fft_spectra_into(
        &self,
        has_up: &[bool],
        u: &[f64],
        threads: usize,
        needed: &mut Vec<bool>,
        sources: &mut Vec<usize>,
        uhat: &mut Vec<Option<Arc<Vec<Complex>>>>,
    ) -> u64 {
        let (fft, ulen) = (self.fft, self.ulen);
        let noct = self.l.len();
        let g = fft.grid_len();
        self.vli_mark_sources(has_up, needed, sources);
        let spectra = par_map(threads, sources, |ai| {
            Arc::new(fft.source_spectrum(&u[ai * ulen..(ai + 1) * ulen]))
        });
        uhat.clear();
        uhat.resize(noct, None);
        for (ai, spec) in sources.iter().zip(spectra) {
            uhat[*ai] = Some(spec);
        }
        let sd = self.kernel.source_dim();
        sources.len() as u64 * flop_model::fft_c2c(g) * sd as u64
    }

    /// Allocating wrapper for the graph executor's pass-1 task.
    fn vli_fft_spectra(
        &self,
        has_up: &[bool],
        u: &[f64],
        threads: usize,
    ) -> (Vec<Option<Arc<Vec<Complex>>>>, u64) {
        let (mut needed, mut sources, mut uhat) = (Vec::new(), Vec::new(), Vec::new());
        let fl =
            self.vli_fft_spectra_into(has_up, u, threads, &mut needed, &mut sources, &mut uhat);
        (uhat, fl)
    }

    /// V-list FFT pass 2: accumulate and inverse-transform per target.
    fn vli_fft_range(
        &self,
        has_up: &[bool],
        uhat: &[Option<Arc<Vec<Complex>>>],
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
    ) -> u64 {
        let (l, fft, clen) = (self.l, self.fft, self.clen);
        let g = fft.grid_len();
        let (sd, td) = (self.kernel.source_dim(), self.td);
        let mut fl = 0u64;
        for bi in range {
            if !l.local[bi] || self.lists.v.row(bi).is_empty() {
                continue;
            }
            let beta = l.octs[bi];
            let mut acc = fft.new_accumulator();
            let mut any = false;
            for &ai in self.lists.v.row(bi) {
                let ai = ai as usize;
                if !has_up[ai] {
                    continue;
                }
                let alpha = l.octs[ai];
                let (khat, s) = fft.kernel_spectrum(beta.level(), offset_of(&alpha, &beta));
                let src = uhat[ai].as_ref().expect("transformed in pass 1");
                fft.accumulate(&mut acc, &khat, src, s);
                fl += flop_model::hadamard_edge(g, sd, td);
                any = true;
            }
            if any {
                fft.finish(acc, &mut window[bi * clen - base..(bi + 1) * clen - base]);
                fl += flop_model::fft_c2c(g) * td as u64;
            }
        }
        fl
    }

    /// V-list batched pass 1: half-spectrum transform every V-list
    /// source once into the workspace-owned spectra. The kernel-spectrum
    /// table is *not* built here — it lives in the workspace
    /// (density-independent; built once at workspace creation).
    #[allow(clippy::too_many_arguments)]
    fn vli_batched_spectra_into(
        &self,
        has_up: &[bool],
        u: &[f64],
        threads: usize,
        needed: &mut Vec<bool>,
        sources: &mut Vec<usize>,
        tmp: &mut SpectraTmp,
        out: &mut SourceSpectra,
    ) -> u64 {
        let (fftb, ulen) = (self.fftb, self.ulen);
        let noct = self.l.len();
        self.vli_mark_sources(has_up, needed, sources);
        let fl = sources.len() as u64 * fftb.flops_forward();
        fftb.source_spectra_into(sources, noct, u, ulen, threads, tmp, out);
        fl
    }

    /// Allocating wrapper for the graph executor's pass-1 task.
    fn vli_batched_spectra(&self, has_up: &[bool], u: &[f64]) -> (SourceSpectra, u64) {
        let (mut needed, mut sources) = (Vec::new(), Vec::new());
        let mut tmp = SpectraTmp::default();
        let mut out = SourceSpectra::empty();
        let fl = self.vli_batched_spectra_into(
            has_up,
            u,
            1,
            &mut needed,
            &mut sources,
            &mut tmp,
            &mut out,
        );
        (out, fl)
    }

    /// V-list batched pass 2: targets are processed in small batches
    /// whose edges are bucketed by (level, transfer vector); each
    /// bucket's kernel spectrum is resolved once from the immutable
    /// table (no lock) and streamed against the bucket's sources into
    /// reusable scratch accumulators. Per target the buckets arrive in
    /// ascending slot order — independent of batch and chunk boundaries,
    /// so both executors accumulate identically.
    #[allow(clippy::too_many_arguments)]
    fn vli_batched_range(
        &self,
        has_up: &[bool],
        table: &SpectraTable,
        src: &SourceSpectra,
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
        sc: &mut WorkerScratch,
    ) -> u64 {
        const BATCH: usize = 32;
        let (l, fftb, clen) = (self.l, self.fftb, self.clen);
        let mut fl = 0u64;
        let WorkerScratch {
            batch,
            targets,
            edges,
            ..
        } = sc;
        let scratch = batch.get_or_insert_with(|| fftb.new_scratch(BATCH));
        targets.clear();
        targets.extend(range.filter(|&bi| l.local[bi] && !self.lists.v.row(bi).is_empty()));
        // (level<<9 | slot, target slot, source octant) per edge.
        for chunk in targets.chunks(BATCH) {
            edges.clear();
            for (t, &bi) in chunk.iter().enumerate() {
                let beta = l.octs[bi];
                for &ai in self.lists.v.row(bi) {
                    let ai = ai as usize;
                    if !has_up[ai] {
                        continue;
                    }
                    let slot = offset_slot(offset_of(&l.octs[ai], &beta));
                    edges.push((((beta.level()) << 9) | slot as u32, t as u32, ai as u32));
                }
            }
            if edges.is_empty() {
                continue;
            }
            edges.sort_unstable();
            scratch.reset(chunk.len());
            let mut any = [false; BATCH];
            let mut i = 0;
            while i < edges.len() {
                let key = edges[i].0;
                let (k, scale) = table.get(key >> 9, (key & 0x1ff) as usize);
                while i < edges.len() && edges[i].0 == key {
                    let (_, t, ai) = edges[i];
                    let (sre, sim) = src.planes(ai as usize);
                    fftb.accumulate(scratch, t as usize, k, sre, sim, scale);
                    any[t as usize] = true;
                    fl += fftb.flops_edge();
                    i += 1;
                }
            }
            for (t, &bi) in chunk.iter().enumerate() {
                if any[t] {
                    fftb.finish(
                        scratch,
                        t,
                        &mut window[bi * clen - base..(bi + 1) * clen - base],
                    );
                    fl += fftb.flops_inverse();
                }
            }
        }
        fl
    }

    /// (4) D2D, level-synchronous over the whole LET (see the U2U
    /// comment); at each level the parents are final, so every child's
    /// update is independent.
    fn d2d_levels(
        &self,
        by_level: &[Vec<u32>],
        max_level: u32,
        dcheck: &[f64],
        d: &mut [f64],
    ) -> u64 {
        let (l, ops, ulen, clen) = (self.l, self.ops, self.ulen, self.clen);
        let mut fl = 0u64;
        for level in 0..=max_level {
            let active: Vec<usize> = by_level[level as usize]
                .iter()
                .map(|&iu| iu as usize)
                .collect();
            if active.is_empty() {
                continue;
            }
            let updates: Vec<(usize, Vec<f64>)> = {
                let d_ro = &*d;
                par_map(self.tt, &active, |i| {
                    let key = l.octs[i];
                    let (dc2e, s) = ops.dc2e(level);
                    let mut di = vec![0.0f64; ulen];
                    dc2e.matvec_acc_scaled(&dcheck[i * clen..(i + 1) * clen], &mut di, s);
                    if level > 0 {
                        let parent = key.parent().expect("level >= 1");
                        if let Some(pi) = l.find(&parent) {
                            let (m, s) = ops.d2d(level, key.child_index());
                            m.matvec_acc_scaled(&d_ro[pi * ulen..(pi + 1) * ulen], &mut di, s);
                        }
                    }
                    (i, di)
                })
            };
            for (i, di) in updates {
                d[i * ulen..(i + 1) * ulen].copy_from_slice(&di);
                fl += 2 * (ulen * clen) as u64 + 2 * (ulen * ulen) as u64;
            }
        }
        fl
    }

    /// (5b) D2T for owned leaves in `range`.
    fn d2t_range(
        &self,
        d: &[f64],
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
        sc: &mut WorkerScratch,
    ) -> u64 {
        let (l, ops, ulen, td) = (self.l, self.ops, self.ulen, self.td);
        let mut fl = 0u64;
        for i in range {
            if !l.owned[i] || self.leaf_pos[i].is_empty() {
                continue;
            }
            let key = l.octs[i];
            ops.down_equiv_surface_into(&key.center(), key.radius(), &mut sc.surf);
            let (off, n) = (l.pt_off[i], self.leaf_pos[i].len());
            sc.te.eval(
                self.tkd,
                self.kernel,
                &self.leaf_pos[i],
                &sc.surf,
                &d[i * ulen..(i + 1) * ulen],
                &mut window[off * td - base..(off + n) * td - base],
            );
            fl += n as u64 * sc.surf.len() as u64 * self.flops_pair;
        }
        fl
    }

    /// (5a) W-list for owned target leaves in `range`.
    #[allow(clippy::too_many_arguments)]
    fn wli_range(
        &self,
        has_up: &[bool],
        u: &[f64],
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
        sc: &mut WorkerScratch,
    ) -> u64 {
        let (l, ops, ulen, td) = (self.l, self.ops, self.ulen, self.td);
        let mut fl = 0u64;
        for bi in range {
            if !l.owned[bi] || self.lists.w.row(bi).is_empty() || self.leaf_pos[bi].is_empty() {
                continue;
            }
            let (off, n) = (l.pt_off[bi], self.leaf_pos[bi].len());
            for &ai in self.lists.w.row(bi) {
                let ai = ai as usize;
                if !has_up[ai] {
                    continue;
                }
                let alpha = l.octs[ai];
                ops.up_equiv_surface_into(&alpha.center(), alpha.radius(), &mut sc.surf);
                sc.te.eval(
                    self.tkd,
                    self.kernel,
                    &self.leaf_pos[bi],
                    &sc.surf,
                    &u[ai * ulen..(ai + 1) * ulen],
                    &mut window[off * td - base..(off + n) * td - base],
                );
                fl += n as u64 * sc.surf.len() as u64 * self.flops_pair;
            }
        }
        fl
    }
}

/// Ghost octants receive their densities in the reduction; mark the ones
/// that arrived so the V/W lists use them.
fn refresh_ghost_has_up(ulen: usize, u: &[f64], has_up: &mut [bool]) {
    for (i, h) in has_up.iter_mut().enumerate() {
        if !*h {
            *h = u[i * ulen..(i + 1) * ulen].iter().any(|&v| v != 0.0);
        }
    }
}

fn stats_delta(before: &CommStats, after: &CommStats) -> CommStats {
    after.delta_since(before)
}

/// Span recorder for the barrier executor: whole-phase spans on the
/// driver lane at [`TraceLevel::Phase`], plus one span per parallel chunk
/// at [`TraceLevel::Task`]. Chunk lanes are handed out from a counter
/// that resets per phase, so every span gets a lane of its own and the
/// Chrome nesting invariant holds trivially. Recording happens strictly
/// *around* the chunk closures — the arithmetic, its ordering, and the
/// `Profile` timings are untouched, preserving the bitwise barrier==graph
/// guarantee at every trace level.
struct PhaseTrace<'a> {
    tracer: &'a Tracer,
    rank: u32,
    lane: AtomicU32,
}

impl PhaseTrace<'_> {
    fn new<'a>(tracer: &'a Tracer, c: &Comm) -> PhaseTrace<'a> {
        PhaseTrace {
            tracer,
            rank: c.rank() as u32,
            lane: AtomicU32::new(0),
        }
    }

    /// Whole-phase span (driver lane, cat `"phase"`); resets the chunk
    /// lane counter so each phase's chunks start at worker lane 0.
    fn phase<T>(&self, ph: Phase, f: impl FnOnce() -> T) -> T {
        if !self.tracer.enabled(TraceLevel::Phase) {
            return f();
        }
        self.lane.store(0, Ordering::Relaxed);
        let t0 = self.tracer.now_us();
        let out = f();
        let t1 = self.tracer.now_us();
        self.tracer
            .record_span(self.rank, TID_MAIN, ph.label(), "phase", t0, t1, &[]);
        out
    }

    /// Per-chunk span (next free worker lane, cat `"task"`).
    fn chunk(&self, ph: Phase, f: impl FnOnce() -> u64) -> u64 {
        if !self.tracer.enabled(TraceLevel::Task) {
            return f();
        }
        let t0 = self.tracer.now_us();
        let fl = f();
        let t1 = self.tracer.now_us();
        let lane = self.lane.fetch_add(1, Ordering::Relaxed) as usize;
        self.tracer
            .record_span(self.rank, tid_worker(lane), ph.label(), "task", t0, t1, &[]);
        fl
    }
}

/// Execute the FMM evaluation phases with the configured executor
/// against the workspace's reusable buffers. The potentials (packed
/// `target_dim` per point, aligned with `l`'s point storage) are left in
/// `ws.f`; the return value is the Comm-phase traffic delta.
#[allow(clippy::too_many_arguments)]
pub fn run_phases(
    fmm: &Fmm,
    c: &Comm,
    l: &Let,
    lists: &Lists,
    data: &EvalData,
    ws: &mut EvalWorkspace,
    prof: &mut Profile,
    tracer: &Tracer,
) -> CommStats {
    // The tiled near-field layout is shared by both executors: built on
    // the workspace's first run, density-refreshed in place afterwards.
    // Both costs are charged to the U-list phase, the same way the GPU
    // pipeline charges its data-structure translation.
    if fmm.config().ulist == UlistMode::Tiled && fmm.kernel().as_tile_kernel().is_some() {
        match ws.nf.as_mut() {
            Some(nf) => {
                let t0 = std::time::Instant::now();
                nf.refresh_densities(&data.leaf_den);
                let secs = t0.elapsed().as_secs_f64();
                prof.add_secs(Phase::UList, secs);
                prof.nf_build_secs += secs;
            }
            None => {
                let nf = NearField::build_with(
                    l,
                    lists,
                    &data.leaf_pos,
                    &data.leaf_den,
                    fmm.kernel().source_dim(),
                    fmm.setup_par(),
                );
                prof.add_secs(Phase::UList, nf.build_secs);
                prof.nf_build_secs += nf.build_secs;
                ws.nf = Some(nf);
            }
        }
    }
    // U-list chunk weights, cached on first use: tiled chunks are
    // weighted by padded pairs (wall time follows the lanes actually
    // evaluated), scalar chunks by real pairs.
    if ws.uli_weights.is_empty() {
        ws.uli_weights = match ws.nf.as_ref() {
            Some(nf) => nf.oct_weights().to_vec(),
            None => (0..l.len())
                .map(|bi| {
                    if !l.owned[bi] || data.leaf_pos[bi].is_empty() {
                        return 0;
                    }
                    let n = data.leaf_pos[bi].len() as u64;
                    lists
                        .u
                        .row(bi)
                        .iter()
                        .map(|&ai| n * data.leaf_pos[ai as usize].len() as u64)
                        .sum()
                })
                .collect(),
        };
    }
    // Zero the phase accumulators (sized once at workspace creation).
    ws.u.fill(0.0);
    ws.has_up.fill(false);
    ws.ucheck.fill(0.0);
    ws.dcheck.fill(0.0);
    ws.d.fill(0.0);
    ws.f.fill(0.0);

    let workers = fmm.config().threads.max(1);
    match fmm.config().schedule {
        // A single-worker, single-rank graph run schedules the exact
        // barrier order (same chunk kernels, bitwise identical by the
        // module invariant) with pure task bookkeeping on top of it —
        // delegate, unless a phase-level tracer wants real graph spans.
        Schedule::Graph if workers > 1 || c.size() > 1 || tracer.enabled(TraceLevel::Phase) => {
            run_phases_graph(fmm, c, l, lists, data, ws, prof, tracer)
        }
        _ => run_phases_barrier(fmm, c, l, lists, data, ws, prof, tracer),
    }
}

/// The bulk-synchronous executor (the reference path).
#[allow(clippy::too_many_arguments)]
fn run_phases_barrier(
    fmm: &Fmm,
    c: &Comm,
    l: &Let,
    lists: &Lists,
    data: &EvalData,
    ws: &mut EvalWorkspace,
    prof: &mut Profile,
    tracer: &Tracer,
) -> CommStats {
    let cfg = fmm.config();
    // Disjoint borrows of the workspace fields, so the context can hold
    // the near field and spectrum table while the phase buffers are
    // written and worker scratch is checked out of the pool.
    let EvalWorkspace {
        ref nf,
        ref btable,
        ref pool,
        ref uli_weights,
        ref vli_weights,
        ref mut u,
        ref mut has_up,
        ref mut ucheck,
        ref mut dcheck,
        ref mut d,
        ref mut f,
        ref mut needed,
        ref mut sources,
        ref mut uhat,
        ref mut src,
        ..
    } = *ws;
    let cx = Ctx::new(fmm, l, lists, data, nf.as_ref(), btable.as_ref());
    let threads = cfg.threads.max(1);
    let noct = l.len();
    let (ulen, clen, td) = (cx.ulen, cx.clen, cx.td);
    let by_level = &data.by_level;
    let max_level = data.max_level;
    let cxr = &cx;
    let pt = PhaseTrace::new(tracer, c);
    let pt = &pt;

    // (1) S2U and (2) U2U — the upward pass. S2U is per-leaf parallel.
    // In gemm mode the per-leaf pass computes only the check potentials;
    // the uc2e solves and the U2U translations then run as level-batched
    // multi-RHS GEMMs over the plan-time groups (bitwise identical to the
    // scalar path — see `crate::translate`).
    pt.phase(Phase::Upward, || {
        prof.timed(Phase::Upward, |prof| match cfg.translate {
            TranslateMode::Gemm => {
                let flops = par_windows(
                    threads,
                    noct,
                    ucheck,
                    &|i| i * clen,
                    |range, window, base| {
                        pt.chunk(Phase::Upward, || {
                            pool.with(|sc| cxr.s2u_check_range(range, window, base, sc))
                        })
                    },
                );
                prof.add_flops(Phase::Upward, flops);
                cx.mark_has_up_range(0..noct, has_up);
                let fl = pt.chunk(Phase::Upward, || {
                    pool.with(|sc| cx.s2u_solve_levels(ucheck, u, sc))
                });
                prof.add_flops(Phase::Upward, fl);
                for level in (1..=max_level).rev() {
                    let fl = pt.chunk(Phase::Upward, || {
                        pool.with(|sc| cx.u2u_level_gemm(level, u, has_up, sc))
                    });
                    prof.add_flops(Phase::Upward, fl);
                }
            }
            TranslateMode::Matvec => {
                let flops = par_windows(threads, noct, u, &|i| i * ulen, |range, window, base| {
                    pt.chunk(Phase::Upward, || {
                        pool.with(|sc| cxr.s2u_range(range, window, base, sc))
                    })
                });
                prof.add_flops(Phase::Upward, flops);
                cx.mark_has_up_range(0..noct, has_up);
                for level in (1..=max_level).rev() {
                    let fl = pt.chunk(Phase::Upward, || cx.u2u_level(by_level, level, u, has_up));
                    prof.add_flops(Phase::Upward, fl);
                }
            }
        })
    });

    // Reduce-and-scatter of shared upward densities (Algorithm 3). A
    // single rank exchanges nothing, so skip the snapshots entirely —
    // `Comm::stats` clones the per-peer breakdown map, which would be
    // the only steady-state allocation left in a warm apply.
    let comm_before = (c.size() > 1).then(|| c.stats());
    pt.phase(Phase::Comm, || {
        prof.timed(Phase::Comm, |_| {
            if c.size() > 1 {
                let hypercube = match cfg.reduction {
                    Reduction::Auto => c.size().is_power_of_two(),
                    Reduction::Hypercube => true,
                    Reduction::Naive => false,
                };
                if hypercube {
                    reduce_scatter_hypercube(c, l, ulen, u);
                } else {
                    reduce_scatter_naive(c, l, ulen, u);
                }
            }
        })
    });
    let comm_reduce = match comm_before {
        Some(b) => stats_delta(&b, &c.stats()),
        None => CommStats::default(),
    };
    // Ghost densities may have arrived: refresh occupancy.
    refresh_ghost_has_up(ulen, u, has_up);
    let u: &[f64] = u; // read-only from here on
    let has_up: &[bool] = has_up;

    // Direct interactions (U-list); parallel over target leaves, with
    // ranges cut by interaction count (source·target point products) —
    // adaptive trees concentrate the near-field work in the refined
    // regions, which starves count-based chunks. Runs first among the
    // potential writers so the per-point accumulation order (U, D2T, W)
    // matches the graph executor's chunk chains.
    let pt_base = &|i: usize| l.pt_off[i.min(noct)] * td;
    pt.phase(Phase::UList, || {
        prof.timed(Phase::UList, |prof| {
            let flops =
                par_windows_weighted(threads, uli_weights, f, pt_base, |range, window, base| {
                    pt.chunk(Phase::UList, || cxr.uli_range(range, window, base))
                });
            prof.add_flops(Phase::UList, flops);
        })
    });

    // (3b) X-list: sources of big adjacent leaves onto our downward check
    // surfaces; before V for the same accumulation-order reason.
    pt.phase(Phase::XList, || {
        prof.timed(Phase::XList, |prof| {
            let flops = par_windows(
                threads,
                noct,
                dcheck,
                &|i| i * clen,
                |range, window, base| {
                    pt.chunk(Phase::XList, || {
                        pool.with(|sc| cxr.xli_range(range, window, base, sc))
                    })
                },
            );
            prof.add_flops(Phase::XList, flops);
        })
    });

    // (3a) V-list, parallel over target octants with edge-count-weighted
    // range cuts (every V edge costs the same within a mode).
    pt.phase(Phase::VList, || {
        prof.timed(Phase::VList, |prof| match cfg.m2l {
            M2lMode::Dense => {
                let flops = par_windows_weighted(
                    threads,
                    vli_weights,
                    dcheck,
                    &|i| i * clen,
                    |range, window, base| {
                        pt.chunk(Phase::VList, || {
                            cxr.vli_dense_range(has_up, u, range, window, base)
                        })
                    },
                );
                prof.add_flops(Phase::VList, flops);
            }
            M2lMode::Fft => {
                let fl = cx.vli_fft_spectra_into(has_up, u, threads, needed, sources, uhat);
                prof.add_flops(Phase::VList, fl);
                let uhat: &[Option<Arc<Vec<Complex>>>] = uhat;
                let flops = par_windows_weighted(
                    threads,
                    vli_weights,
                    dcheck,
                    &|i| i * clen,
                    |range, window, base| {
                        pt.chunk(Phase::VList, || {
                            cxr.vli_fft_range(has_up, uhat, range, window, base)
                        })
                    },
                );
                prof.add_flops(Phase::VList, flops);
            }
            M2lMode::FftBatched => {
                let table = btable
                    .as_ref()
                    .expect("spectrum table built at workspace creation");
                let fl = pool.with(|sc| {
                    cx.vli_batched_spectra_into(
                        has_up,
                        u,
                        threads,
                        needed,
                        sources,
                        &mut sc.tmp,
                        src,
                    )
                });
                prof.add_flops(Phase::VList, fl);
                let src: &SourceSpectra = src;
                let flops = par_windows_weighted(
                    threads,
                    vli_weights,
                    dcheck,
                    &|i| i * clen,
                    |range, window, base| {
                        pt.chunk(Phase::VList, || {
                            pool.with(|sc| {
                                cxr.vli_batched_range(has_up, table, src, range, window, base, sc)
                            })
                        })
                    },
                );
                prof.add_flops(Phase::VList, flops);
            }
        })
    });
    let dcheck: &[f64] = dcheck;

    // (4) D2D + (5b) D2T — the downward pass.
    pt.phase(Phase::Downward, || {
        prof.timed(Phase::Downward, |prof| {
            let fl = pt.chunk(Phase::Downward, || match cfg.translate {
                TranslateMode::Gemm => pool.with(|sc| cx.d2d_levels_gemm(max_level, dcheck, d, sc)),
                TranslateMode::Matvec => cx.d2d_levels(by_level, max_level, dcheck, d),
            });
            prof.add_flops(Phase::Downward, fl);
            let d: &[f64] = d;
            let flops = par_windows(threads, noct, f, pt_base, |range, window, base| {
                pt.chunk(Phase::Downward, || {
                    pool.with(|sc| cxr.d2t_range(d, range, window, base, sc))
                })
            });
            prof.add_flops(Phase::Downward, flops);
        })
    });

    // (5a) W-list: multipoles of small far leaves directly to targets.
    pt.phase(Phase::WList, || {
        prof.timed(Phase::WList, |prof| {
            let flops = par_windows(threads, noct, f, pt_base, |range, window, base| {
                pt.chunk(Phase::WList, || {
                    pool.with(|sc| cxr.wli_range(has_up, u, range, window, base, sc))
                })
            });
            prof.add_flops(Phase::WList, flops);
        })
    });

    comm_reduce
}

/// The task-graph executor: octant-chunk tasks with explicit data
/// dependencies, the reduce-and-scatter as a polled comm task, and the
/// comm-independent U/X chunks overlapping it.
#[allow(clippy::too_many_arguments)]
fn run_phases_graph(
    fmm: &Fmm,
    c: &Comm,
    l: &Let,
    lists: &Lists,
    data: &EvalData,
    ws: &mut EvalWorkspace,
    prof: &mut Profile,
    tracer: &Tracer,
) -> CommStats {
    let cfg = fmm.config();
    let EvalWorkspace {
        ref nf,
        ref btable,
        ref pool,
        ref mut u,
        ref mut has_up,
        ref mut ucheck,
        ref mut dcheck,
        ref mut d,
        ref mut f,
        ..
    } = *ws;
    let cx = Ctx::new(fmm, l, lists, data, nf.as_ref(), btable.as_ref());
    let workers = cfg.threads.max(1);
    let noct = l.len();
    let (ulen, clen, td) = (cx.ulen, cx.clen, cx.td);
    let by_level = &data.by_level;
    let max_level = data.max_level;

    // Octant chunking: enough chunks to keep the workers fed while the
    // comm task is in flight, without drowning small problems in task
    // overhead. Chunk boundaries are cut by interaction count (one weight
    // serves every list phase — the U/V/W/X degree dominates an octant's
    // work) and do not affect the numerics (every task writes per-octant
    // slices).
    let nchunks = noct.min((workers * 4).max(4));
    let chunk_weights: Vec<u64> = (0..noct).map(|i| 1 + lists.degree(i) as u64).collect();
    let cuts: Vec<usize> = weighted_cuts(nchunks, &chunk_weights);
    let oct_base = |i: usize| i * ulen;
    let chk_base = |i: usize| i * clen;
    let pt_base = |i: usize| l.pt_off[i.min(noct)] * td;

    let gemm = cfg.translate == TranslateMode::Gemm;
    // The graph temporarily owns the workspace's pre-zeroed phase
    // buffers (GraphBuf wants ownership); they are restored below after
    // the run so later applies reuse the allocations. `ucheck` is sized
    // `noct * clen` only in gemm mode and empty otherwise, matching its
    // use as the S2U check staging buffer.
    let ub = GraphBuf::new(std::mem::take(u));
    let hub = GraphBuf::new(std::mem::take(has_up));
    let dcb = GraphBuf::new(std::mem::take(dcheck));
    let fb = GraphBuf::new(std::mem::take(f));
    let db = GraphBuf::new(std::mem::take(d));
    let ucb = GraphBuf::new(std::mem::take(ucheck));
    let flops: Vec<AtomicU64> = (0..Phase::ALL.len()).map(|_| AtomicU64::new(0)).collect();
    let comm_delta: Slot<CommStats> = Slot::new();
    let spectra: Slot<Spectra> = Slot::new();
    let bspectra: Slot<BatchedSpectra> = Slot::new();

    let cxr = &cx;
    let (ur, hur, dcr, fr, dbr, ucr) = (&ub, &hub, &dcb, &fb, &db, &ucb);
    let flr = &flops;
    let cdr = &comm_delta;
    let sp = &spectra;
    let bsp = &bspectra;

    let mut g = Graph::new();

    // S2U chunks: disjoint slices of `u` (matvec mode) or of the check
    // staging buffer (gemm mode), plus this chunk's `has_up` slice.
    let s2u_ids: Vec<_> = (0..nchunks)
        .map(|k| {
            let (lo, hi) = (cuts[k], cuts[k + 1]);
            g.task(Phase::Upward.label(), &[], move || {
                // Safety: chunk ranges are disjoint; U2U tasks depend on
                // every S2U chunk before touching `u`/`has_up` globally.
                let fl = if gemm {
                    let w = unsafe { ucr.slice_mut(chk_base(lo), chk_base(hi) - chk_base(lo)) };
                    pool.with(|sc| cxr.s2u_check_range(lo..hi, w, chk_base(lo), sc))
                } else {
                    let w = unsafe { ur.slice_mut(oct_base(lo), oct_base(hi) - oct_base(lo)) };
                    pool.with(|sc| cxr.s2u_range(lo..hi, w, oct_base(lo), sc))
                };
                let hw = unsafe { hur.slice_mut(lo, hi - lo) };
                cxr.mark_has_up_range(lo..hi, hw);
                flr[Phase::Upward as usize].fetch_add(fl, Ordering::Relaxed);
            })
        })
        .collect();

    // Gemm mode inserts the level-batched uc2e solve between the check
    // chunks and the U2U chain: one task, the sole writer of `u`.
    let mut upward_tail = s2u_ids;
    if gemm {
        let t = g.task(Phase::Upward.label(), &upward_tail, move || {
            // Safety: all S2U check chunks completed (dependencies); the
            // U2U chain is behind this task.
            let uc = unsafe { ucr.as_slice() };
            let uw = unsafe { ur.slice_mut(0, ur.len()) };
            let fl = pool.with(|sc| cxr.s2u_solve_levels(uc, uw, sc));
            flr[Phase::Upward as usize].fetch_add(fl, Ordering::Relaxed);
        });
        upward_tail = vec![t];
    }

    // U2U levels, chained deepest-first (each level reads children and
    // writes parents anywhere in the LET, so levels serialize).
    for level in (1..=max_level).rev() {
        let t = g.task(Phase::Upward.label(), &upward_tail, move || {
            // Safety: sole writer of `u`/`has_up` at this point in the
            // chain (all S2U chunks and shallower levels completed).
            let uw = unsafe { ur.slice_mut(0, ur.len()) };
            let hw = unsafe { hur.slice_mut(0, noct) };
            let fl = if gemm {
                pool.with(|sc| cxr.u2u_level_gemm(level, uw, hw, sc))
            } else {
                cxr.u2u_level(by_level, level, uw, hw)
            };
            flr[Phase::Upward as usize].fetch_add(fl, Ordering::Relaxed);
        });
        upward_tail = vec![t];
    }

    // The reduce-and-scatter as a comm task: non-blocking hypercube
    // rounds polled on the driver thread (the naive fallback completes
    // inside one poll — its collectives cannot deadlock on buffered
    // sends, and the workers keep computing U/X chunks meanwhile).
    let mut before: Option<CommStats> = None;
    let mut reducer: Option<HypercubeReduceAsync> = None;
    let comm_id = g.comm(Phase::Comm.label(), &upward_tail, move || {
        // Skip the stats snapshots at size 1 (nothing is exchanged, and
        // `Comm::stats` clones the per-peer map — an allocation).
        if before.is_none() && c.size() > 1 {
            before = Some(c.stats());
        }
        if c.size() > 1 {
            let hypercube = match cfg.reduction {
                Reduction::Auto => c.size().is_power_of_two(),
                Reduction::Hypercube => true,
                Reduction::Naive => false,
            };
            if hypercube {
                if reducer.is_none() {
                    // Safety: the upward chain completed (dependency) and
                    // nothing else touches `u` until this task finishes.
                    let u_ro = unsafe { ur.as_slice() };
                    reducer = Some(HypercubeReduceAsync::begin(c, l, ulen, u_ro));
                }
                if !reducer.as_mut().expect("begun above").poll(c, l) {
                    return CommPoll::Pending;
                }
                let uw = unsafe { ur.slice_mut(0, ur.len()) };
                reducer.take().expect("polled to done").finish(l, ulen, uw);
            } else {
                let uw = unsafe { ur.slice_mut(0, ur.len()) };
                reduce_scatter_naive(c, l, ulen, uw);
            }
        }
        let u_ro = unsafe { ur.as_slice() };
        let hw = unsafe { hur.slice_mut(0, noct) };
        refresh_ghost_has_up(ulen, u_ro, hw);
        cdr.put(match before.as_ref() {
            Some(b) => stats_delta(b, &c.stats()),
            None => CommStats::default(),
        });
        CommPoll::Ready
    });

    // U-list chunks: no dependencies at all — their sources' point
    // densities came with the LET, so they overlap the reduction.
    let uli_ids: Vec<_> = (0..nchunks)
        .map(|k| {
            let (lo, hi) = (cuts[k], cuts[k + 1]);
            g.task(Phase::UList.label(), &[], move || {
                // Safety: first writer of this chunk's potential slice;
                // D2T/W for the same chunk are chained behind it.
                let w = unsafe { fr.slice_mut(pt_base(lo), pt_base(hi) - pt_base(lo)) };
                let fl = cxr.uli_range(lo..hi, w, pt_base(lo));
                flr[Phase::UList as usize].fetch_add(fl, Ordering::Relaxed);
            })
        })
        .collect();

    // X-list chunks: also comm-independent (leaf sources, not upward
    // densities); first writers of their dcheck slices.
    let xli_ids: Vec<_> = (0..nchunks)
        .map(|k| {
            let (lo, hi) = (cuts[k], cuts[k + 1]);
            g.task(Phase::XList.label(), &[], move || {
                // Safety: V for the same chunk is chained behind X.
                let w = unsafe { dcr.slice_mut(chk_base(lo), chk_base(hi) - chk_base(lo)) };
                let fl = pool.with(|sc| cxr.xli_range(lo..hi, w, chk_base(lo), sc));
                flr[Phase::XList as usize].fetch_add(fl, Ordering::Relaxed);
            })
        })
        .collect();

    // V-list chunks: need the completed upward densities (Comm) and
    // chain behind the same chunk's X task (shared dcheck slice). The
    // FFT path inserts the shared forward-transform pass in between.
    let v_dep = match cfg.m2l {
        M2lMode::Dense => comm_id,
        M2lMode::Fft => g.task(Phase::VList.label(), &[comm_id], move || {
            let u_ro = unsafe { ur.as_slice() };
            let hu = unsafe { hur.as_slice() };
            let (uhat, fl) = cxr.vli_fft_spectra(hu, u_ro, 1);
            sp.put(Arc::new(uhat));
            flr[Phase::VList as usize].fetch_add(fl, Ordering::Relaxed);
        }),
        M2lMode::FftBatched => g.task(Phase::VList.label(), &[comm_id], move || {
            let u_ro = unsafe { ur.as_slice() };
            let hu = unsafe { hur.as_slice() };
            let (src, fl) = cxr.vli_batched_spectra(hu, u_ro);
            bsp.put(Arc::new(src));
            flr[Phase::VList as usize].fetch_add(fl, Ordering::Relaxed);
        }),
    };
    let vli_ids: Vec<_> = (0..nchunks)
        .map(|k| {
            let (lo, hi) = (cuts[k], cuts[k + 1]);
            let m2l = cfg.m2l;
            g.task(Phase::VList.label(), &[v_dep, xli_ids[k]], move || {
                let u_ro = unsafe { ur.as_slice() };
                let hu = unsafe { hur.as_slice() };
                let w = unsafe { dcr.slice_mut(chk_base(lo), chk_base(hi) - chk_base(lo)) };
                let fl = match m2l {
                    M2lMode::Dense => cxr.vli_dense_range(hu, u_ro, lo..hi, w, chk_base(lo)),
                    M2lMode::Fft => {
                        let uhat = sp.with(Arc::clone);
                        cxr.vli_fft_range(hu, &uhat, lo..hi, w, chk_base(lo))
                    }
                    M2lMode::FftBatched => {
                        let b = bsp.with(Arc::clone);
                        let table = cxr
                            .btable
                            .expect("spectrum table built at workspace creation");
                        pool.with(|sc| {
                            cxr.vli_batched_range(hu, table, &b, lo..hi, w, chk_base(lo), sc)
                        })
                    }
                };
                flr[Phase::VList as usize].fetch_add(fl, Ordering::Relaxed);
            })
        })
        .collect();

    // D2D: one level-synchronous task over the whole LET once dcheck is
    // complete (every V chunk implies its X chunk).
    let d2d_id = g.task(Phase::Downward.label(), &vli_ids, move || {
        let dc = unsafe { dcr.as_slice() };
        let dw = unsafe { dbr.slice_mut(0, dbr.len()) };
        let fl = if gemm {
            pool.with(|sc| cxr.d2d_levels_gemm(max_level, dc, dw, sc))
        } else {
            cxr.d2d_levels(by_level, max_level, dc, dw)
        };
        flr[Phase::Downward as usize].fetch_add(fl, Ordering::Relaxed);
    });

    // D2T chunk k continues chunk k's potential slice after U-list; W
    // chunk k finishes it (and needs the ghost upward densities).
    for k in 0..nchunks {
        let (lo, hi) = (cuts[k], cuts[k + 1]);
        let d2t = g.task(Phase::Downward.label(), &[d2d_id, uli_ids[k]], move || {
            let d_ro = unsafe { dbr.as_slice() };
            let w = unsafe { fr.slice_mut(pt_base(lo), pt_base(hi) - pt_base(lo)) };
            let fl = pool.with(|sc| cxr.d2t_range(d_ro, lo..hi, w, pt_base(lo), sc));
            flr[Phase::Downward as usize].fetch_add(fl, Ordering::Relaxed);
        });
        g.task(Phase::WList.label(), &[d2t, comm_id], move || {
            let u_ro = unsafe { ur.as_slice() };
            let hu = unsafe { hur.as_slice() };
            let w = unsafe { fr.slice_mut(pt_base(lo), pt_base(hi) - pt_base(lo)) };
            let fl = pool.with(|sc| cxr.wli_range(hu, u_ro, lo..hi, w, pt_base(lo), sc));
            flr[Phase::WList as usize].fetch_add(fl, Ordering::Relaxed);
        });
    }

    // Trace emission is synthesized by the scheduler *after* the graph
    // completes, from interval records it keeps anyway — a traced graph
    // run schedules identically to an untraced one.
    let tc = tracer.enabled(TraceLevel::Phase).then_some(TraceCtx {
        tracer,
        rank: c.rank() as u32,
    });
    let rep = pfmm_sched::run_with(g, workers, tc).expect("the FMM task graph is acyclic");

    for ph in Phase::ALL {
        if let Some(&s) = rep.phase_secs.get(ph.label()) {
            prof.add_secs(ph, s);
        }
        prof.add_flops(ph, flops[ph as usize].load(Ordering::Relaxed));
    }
    prof.overlap_secs += rep.overlap_secs;
    prof.critical_path_secs += rep.critical_path_secs;

    // Hand the phase buffers back to the workspace for the next apply.
    *u = ub.into_inner();
    *has_up = hub.into_inner();
    *dcheck = dcb.into_inner();
    *f = fb.into_inner();
    *d = db.into_inner();
    *ucheck = ucb.into_inner();

    comm_delta.take()
}
