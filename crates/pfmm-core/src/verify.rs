//! Verification against the exact direct sum.
//!
//! An FMM without an error check is a random-number generator; this
//! module provides the standard sampled verification used by the
//! examples, tests, and harnesses: evaluate the O(N²) sum exactly at a
//! strided subsample of targets and compare.

use std::collections::HashMap;

use pfmm_kernels::{direct_eval, Kernel, Point3};
use pfmm_tree::PointRec;

/// Relative ℓ² error of FMM potentials against the exact direct sum, on
/// every `stride`-th point (`stride = 1` checks everything).
///
/// `results` holds `(gid, potential)` pairs (as returned by
/// `gather_potentials`); `points` is the full input cloud the potentials
/// were computed from. Sampled targets still interact with *all* points,
/// so the check costs `O(N²/stride)`.
///
/// # Panics
/// Panics if a sampled gid is missing from `results`, if `stride` is
/// zero, or if the potential packing disagrees with the kernel's
/// `target_dim`.
pub fn sampled_rel_error(
    kernel: &dyn Kernel,
    points: &[PointRec],
    results: &[(u64, Vec<f64>)],
    stride: usize,
) -> f64 {
    assert!(stride > 0, "stride must be positive");
    let sd = kernel.source_dim();
    let td = kernel.target_dim();
    let pos: Vec<Point3> = points.iter().map(|p| p.pos).collect();
    let mut den = Vec::with_capacity(points.len() * sd);
    for p in points {
        den.extend_from_slice(&p.den[..sd]);
    }
    let by_gid: HashMap<u64, &Vec<f64>> = results.iter().map(|(g, v)| (*g, v)).collect();

    let mut num = 0.0f64;
    let mut dnm = 0.0f64;
    for p in points.iter().step_by(stride) {
        let mut exact = vec![0.0f64; td];
        direct_eval(kernel, &[p.pos], &pos, &den, &mut exact);
        let got = by_gid
            .get(&p.gid)
            .unwrap_or_else(|| panic!("no potential returned for gid {}", p.gid));
        assert_eq!(got.len(), td, "potential packing");
        for t in 0..td {
            num += (got[t] - exact[t]).powi(2);
            dnm += exact[t] * exact[t];
        }
    }
    if dnm == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / dnm).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::{randomize_densities, uniform_cube};
    use crate::driver::{gather_potentials, Fmm, FmmConfig};
    use pfmm_kernels::Laplace;
    use pfmm_mpisim::run;
    use std::sync::Arc;

    fn results_for(pts: &[PointRec], order: usize) -> Vec<(u64, Vec<f64>)> {
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order,
                q: 40,
                ..Default::default()
            },
        );
        run(1, |c| {
            let res = fmm.evaluate(c, pts.to_vec());
            gather_potentials(c, &res, 1)
        })
        .pop()
        .expect("one rank")
    }

    #[test]
    fn fmm_verifies_small() {
        let mut pts = uniform_cube(600, 71, 0);
        randomize_densities(&mut pts, 1, 3);
        let res = results_for(&pts, 6);
        let err = sampled_rel_error(&Laplace, &pts, &res, 7);
        assert!(err < 1e-4, "{err}");
    }

    #[test]
    fn detects_corruption() {
        let mut pts = uniform_cube(400, 73, 0);
        randomize_densities(&mut pts, 1, 5);
        let mut res = results_for(&pts, 4);
        // Corrupt one potential; the strided check must notice when it
        // samples that gid.
        res[0].1[0] += 100.0;
        let err = sampled_rel_error(&Laplace, &pts, &res, 1);
        assert!(err > 1.0, "corruption visible: {err}");
    }

    #[test]
    fn stride_subsamples() {
        let mut pts = uniform_cube(500, 79, 0);
        randomize_densities(&mut pts, 1, 7);
        let res = results_for(&pts, 4);
        let full = sampled_rel_error(&Laplace, &pts, &res, 1);
        let sub = sampled_rel_error(&Laplace, &pts, &res, 13);
        // Both estimates sit at the same truncation scale.
        assert!(
            sub < 10.0 * full.max(1e-12) && full < 1e-3,
            "{full} vs {sub}"
        );
    }
}
