//! Up-density communication: the paper's Algorithm 3 (hypercube
//! reduce-and-scatter) and the owner-based scheme it replaced.
//!
//! After the local upward pass, each rank holds *partial* upward densities
//! for the octants it shares with other ranks (partial = contributions of
//! its own leaves only). Algorithm 3 simultaneously (a) sums the partials
//! and (b) delivers the complete densities to every rank that uses the
//! octant, in `log p` hypercube rounds with per-rank traffic
//! `O(m (3√p − 2))` — the bound derived in §III-C.
//!
//! The owner-based scheme ("each octant was assigned an owner, the owner
//! received partials and sent the result to each user") is kept as
//! [`reduce_scatter_naive`]: it is the fallback for non-power-of-two
//! communicators and the baseline of the communication ablation bench —
//! the paper reports it "worked well up to 32K processes, but failed in
//! the 64K case".

use pfmm_morton::{MortonKey, RANK_SPAN};
use pfmm_mpisim::collectives::alltoallv;
use pfmm_mpisim::{CollectiveKind, Comm};
use pfmm_tree::Let;

/// The rank-space intervals of the "user region" of an octant: its
/// parent's colleagues-and-self (the area whose owners may appear in an
/// interaction list involving β). Root-adjacent octants are used
/// everywhere.
fn halo_intervals(key: &MortonKey) -> Vec<(u128, u128)> {
    match key.parent() {
        None => vec![(0, RANK_SPAN - 1)],
        Some(par) => par
            .colleagues_and_self()
            .iter()
            .map(|c| (c.rank(), c.rank_end()))
            .collect(),
    }
}

fn intervals_overlap_range(intervals: &[(u128, u128)], lo: u128, hi: u128) -> bool {
    lo < hi && intervals.iter().any(|&(a, b)| a < hi && lo <= b)
}

/// Ranks whose regions intersect the halo of `key`.
fn halo_ranks(key: &MortonKey, region: &[u128]) -> Vec<usize> {
    let p = region.len() - 1;
    let mut out = Vec::new();
    for &(a, b) in &halo_intervals(key) {
        let lo = region[1..p].partition_point(|&s| s <= a);
        let hi = region[1..p].partition_point(|&s| s <= b);
        out.extend(lo..=hi);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// True if more than one rank contributes to or uses `key` — the paper's
/// "shared octant" predicate.
pub fn is_shared(key: &MortonKey, region: &[u128]) -> bool {
    halo_ranks(key, region).len() > 1
}

/// One entry of the circulating working set.
struct SharedEntry {
    key: MortonKey,
    halo: Vec<(u128, u128)>,
    dens: Vec<f64>,
}

/// Gather this rank's shared octants with their partial densities.
fn collect_shared(l: &Let, ulen: usize, u: &[f64]) -> Vec<SharedEntry> {
    let mut out = Vec::new();
    for i in 0..l.len() {
        if !l.local[i] {
            continue;
        }
        let key = l.octs[i];
        if halo_ranks(&key, &l.region).len() < 2 {
            continue;
        }
        out.push(SharedEntry {
            key,
            halo: halo_intervals(&key),
            dens: u[i * ulen..(i + 1) * ulen].to_vec(),
        });
    }
    out
}

/// Merge-by-key, summing densities of duplicates (Algorithm 3 steps
/// 9–10).
fn merge_entries(mut entries: Vec<SharedEntry>) -> Vec<SharedEntry> {
    entries.sort_by_key(|e| e.key);
    let mut out: Vec<SharedEntry> = Vec::with_capacity(entries.len());
    for e in entries {
        match out.last_mut() {
            Some(last) if last.key == e.key => {
                for (a, b) in last.dens.iter_mut().zip(&e.dens) {
                    *a += b;
                }
            }
            _ => out.push(e),
        }
    }
    out
}

/// Write completed densities back into the rank's density array.
fn write_back(l: &Let, ulen: usize, u: &mut [f64], entries: &[SharedEntry]) -> usize {
    let mut updated = 0;
    for e in entries {
        if let Some(i) = l.find(&e.key) {
            u[i * ulen..(i + 1) * ulen].copy_from_slice(&e.dens);
            updated += 1;
        }
    }
    updated
}

const TAG_HC_KEYS: u32 = 0x10;
const TAG_HC_DENS: u32 = 0x11;

/// Algorithm 3: hypercube reduce-and-scatter of shared upward densities.
///
/// `u` is the packed per-octant density array (stride `ulen`, aligned
/// with `l.octs`); on return, every octant this rank uses holds its
/// complete (globally summed) density. Requires a power-of-two
/// communicator, like the paper ("we assume that the size of the MPI
/// communicator is a power of two").
///
/// Returns the number of octants whose density was updated.
///
/// # Panics
/// Panics if `c.size()` is not a power of two.
pub fn reduce_scatter_hypercube(c: &Comm, l: &Let, ulen: usize, u: &mut [f64]) -> usize {
    let p = c.size();
    assert!(
        p.is_power_of_two(),
        "Algorithm 3 requires a power-of-two communicator"
    );
    if p == 1 {
        return 0;
    }
    let r = c.rank();
    let d = p.trailing_zeros() as usize;
    let mut set = collect_shared(l, ulen, u);

    for i in (0..d).rev() {
        let bit = 1usize << i;
        let s = r ^ bit;
        // Destination range: the sub-cube containing s reachable in the
        // remaining rounds (steps 2–3).
        let u_s = s & (p - bit);
        let u_e = s | (bit - 1);
        let dest_lo = l.region[u_s];
        let dest_hi = l.region[u_e + 1];
        let mut keys = Vec::new();
        let mut dens = Vec::new();
        for e in &set {
            if intervals_overlap_range(&e.halo, dest_lo, dest_hi) {
                keys.push(e.key);
                dens.extend_from_slice(&e.dens);
            }
        }
        c.collective(CollectiveKind::HypercubeReduce, || {
            c.send_vec(s, TAG_HC_KEYS, keys);
            c.send_vec(s, TAG_HC_DENS, dens);
        });

        // Prune entries useless to our own remaining sub-cube (steps 5–7).
        let q_s = r & (p - bit);
        let q_e = r | (bit - 1);
        let keep_lo = l.region[q_s];
        let keep_hi = l.region[q_e + 1];
        set.retain(|e| intervals_overlap_range(&e.halo, keep_lo, keep_hi));

        // Receive and fold in the partner's contribution (steps 8–10).
        let rkeys = c.recv::<MortonKey>(s, TAG_HC_KEYS);
        let rdens = c.recv::<f64>(s, TAG_HC_DENS);
        debug_assert_eq!(rdens.len(), rkeys.len() * ulen);
        for (j, key) in rkeys.into_iter().enumerate() {
            set.push(SharedEntry {
                key,
                halo: halo_intervals(&key),
                dens: rdens[j * ulen..(j + 1) * ulen].to_vec(),
            });
        }
        set = merge_entries(set);
    }
    write_back(l, ulen, u, &set)
}

/// In-flight receives of one hypercube round.
struct RoundPending {
    partner: usize,
    kreq: pfmm_mpisim::RecvReq<MortonKey>,
    dreq: pfmm_mpisim::RecvReq<f64>,
    keys: Option<Vec<MortonKey>>,
    dens: Option<Vec<f64>>,
}

/// Poll-driven version of [`reduce_scatter_hypercube`] for the graph
/// scheduler's comm task: identical rounds and fold order (so the result
/// is bitwise-equal to the blocking version), but each round's receives
/// are posted as non-blocking requests and advanced by [`Self::poll`] —
/// the caller's compute tasks proceed while partners are still busy.
///
/// Lifecycle: [`Self::begin`] captures the shared partials and posts the
/// first round; call [`Self::poll`] until it returns `true`; then
/// [`Self::finish`] writes the completed densities back.
pub struct HypercubeReduceAsync {
    set: Vec<SharedEntry>,
    ulen: usize,
    /// Round index, counting down; meaningful only while `pending`.
    round: usize,
    pending: Option<RoundPending>,
    done: bool,
}

impl HypercubeReduceAsync {
    /// Snapshot the shared partial densities from `u` and post the first
    /// round.
    ///
    /// # Panics
    /// Panics if `c.size()` is not a power of two.
    pub fn begin(c: &Comm, l: &Let, ulen: usize, u: &[f64]) -> HypercubeReduceAsync {
        let p = c.size();
        assert!(
            p.is_power_of_two(),
            "Algorithm 3 requires a power-of-two communicator"
        );
        let mut st = HypercubeReduceAsync {
            set: collect_shared(l, ulen, u),
            ulen,
            round: 0,
            pending: None,
            done: p == 1,
        };
        if !st.done {
            st.round = p.trailing_zeros() as usize - 1;
            st.start_round(c, l);
        }
        st
    }

    /// Send this round's selection to the partner, prune the working set,
    /// and post the receives (Algorithm 3 steps 2–7).
    fn start_round(&mut self, c: &Comm, l: &Let) {
        let p = c.size();
        let r = c.rank();
        let bit = 1usize << self.round;
        let s = r ^ bit;
        let u_s = s & (p - bit);
        let u_e = s | (bit - 1);
        let dest_lo = l.region[u_s];
        let dest_hi = l.region[u_e + 1];
        let mut keys = Vec::new();
        let mut dens = Vec::new();
        for e in &self.set {
            if intervals_overlap_range(&e.halo, dest_lo, dest_hi) {
                keys.push(e.key);
                dens.extend_from_slice(&e.dens);
            }
        }
        c.collective(CollectiveKind::HypercubeReduce, || {
            c.isend(s, TAG_HC_KEYS, keys).wait();
            c.isend(s, TAG_HC_DENS, dens).wait();
        });

        let q_s = r & (p - bit);
        let q_e = r | (bit - 1);
        let keep_lo = l.region[q_s];
        let keep_hi = l.region[q_e + 1];
        self.set
            .retain(|e| intervals_overlap_range(&e.halo, keep_lo, keep_hi));

        self.pending = Some(RoundPending {
            partner: s,
            kreq: c.irecv::<MortonKey>(s, TAG_HC_KEYS),
            dreq: c.irecv::<f64>(s, TAG_HC_DENS),
            keys: None,
            dens: None,
        });
    }

    /// Advance in-flight receives; fold and start the next round when a
    /// round completes. Returns `true` once every round has finished.
    /// Never blocks.
    pub fn poll(&mut self, c: &Comm, l: &Let) -> bool {
        while !self.done {
            let pend = self.pending.as_mut().expect("rounds outstanding");
            debug_assert_eq!(pend.partner, c.rank() ^ (1 << self.round));
            if pend.keys.is_none() {
                pend.keys = pend.kreq.test(c);
            }
            if pend.dens.is_none() {
                pend.dens = pend.dreq.test(c);
            }
            if pend.keys.is_none() || pend.dens.is_none() {
                return false;
            }
            // Fold in the partner's contribution (steps 8–10), exactly
            // as the blocking version does.
            let pend = self.pending.take().expect("checked above");
            let rkeys = pend.keys.expect("received");
            let rdens = pend.dens.expect("received");
            debug_assert_eq!(rdens.len(), rkeys.len() * self.ulen);
            for (j, key) in rkeys.into_iter().enumerate() {
                self.set.push(SharedEntry {
                    key,
                    halo: halo_intervals(&key),
                    dens: rdens[j * self.ulen..(j + 1) * self.ulen].to_vec(),
                });
            }
            self.set = merge_entries(std::mem::take(&mut self.set));
            if self.round == 0 {
                self.done = true;
            } else {
                self.round -= 1;
                self.start_round(c, l);
            }
        }
        true
    }

    /// Write the completed densities back; returns the number of octants
    /// updated.
    ///
    /// # Panics
    /// Panics if called before [`Self::poll`] returned `true`.
    pub fn finish(self, l: &Let, ulen: usize, u: &mut [f64]) -> usize {
        assert!(self.done, "finish before all rounds completed");
        debug_assert_eq!(ulen, self.ulen);
        write_back(l, ulen, u, &self.set)
    }
}

/// The owner-based reduction the paper replaced: contributors send
/// partials to each shared octant's owner (the rank whose region contains
/// its anchor), the owner sums and sends the result to every user.
///
/// Works for any communicator size; used as the non-power-of-two fallback
/// and as the ablation baseline (its aggregate message count grows like
/// the user counts, which for coarse octants approach `p`).
pub fn reduce_scatter_naive(c: &Comm, l: &Let, ulen: usize, u: &mut [f64]) -> usize {
    let p = c.size();
    if p == 1 {
        return 0;
    }
    let r = c.rank();
    let owner_of =
        |key: &MortonKey| -> usize { l.region[1..p].partition_point(|&s| s <= key.rank()) };

    // Phase 1: partials to owners.
    let set = collect_shared(l, ulen, u);
    let mut out_keys: Vec<Vec<MortonKey>> = vec![Vec::new(); p];
    let mut out_dens: Vec<Vec<f64>> = vec![Vec::new(); p];
    for e in &set {
        let o = owner_of(&e.key);
        out_keys[o].push(e.key);
        out_dens[o].extend_from_slice(&e.dens);
    }
    let in_keys = alltoallv(c, out_keys);
    let in_dens = alltoallv(c, out_dens);

    // Owner sums.
    let mut owned: Vec<SharedEntry> = Vec::new();
    for (keys, dens) in in_keys.into_iter().zip(in_dens) {
        for (j, key) in keys.into_iter().enumerate() {
            owned.push(SharedEntry {
                key,
                halo: halo_intervals(&key),
                dens: dens[j * ulen..(j + 1) * ulen].to_vec(),
            });
        }
    }
    let owned = merge_entries(owned);

    // Phase 2: complete densities to users.
    let mut out_keys: Vec<Vec<MortonKey>> = vec![Vec::new(); p];
    let mut out_dens: Vec<Vec<f64>> = vec![Vec::new(); p];
    for e in &owned {
        debug_assert_eq!(owner_of(&e.key), r);
        for k in halo_ranks(&e.key, &l.region) {
            out_keys[k].push(e.key);
            out_dens[k].extend_from_slice(&e.dens);
        }
    }
    let in_keys = alltoallv(c, out_keys);
    let in_dens = alltoallv(c, out_dens);
    let mut complete = Vec::new();
    for (keys, dens) in in_keys.into_iter().zip(in_dens) {
        for (j, key) in keys.into_iter().enumerate() {
            complete.push(SharedEntry {
                key,
                halo: Vec::new(),
                dens: dens[j * ulen..(j + 1) * ulen].to_vec(),
            });
        }
    }
    write_back(l, ulen, u, &complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::uniform_cube;
    use pfmm_mpisim::collectives::allgatherv;
    use pfmm_mpisim::run;
    use pfmm_tree::{build_let, points_to_octree};

    /// Fill per-octant "densities" deterministically from the key so each
    /// rank's partial is identifiable: partial(β, rank) = hash(β) + rank.
    fn fill_partials(l: &Let, ulen: usize, rank: usize) -> Vec<f64> {
        let mut u = vec![0.0; l.len() * ulen];
        for i in 0..l.len() {
            if !l.local[i] {
                continue;
            }
            let h = (l.octs[i].rank() % 1000) as f64;
            for j in 0..ulen {
                u[i * ulen + j] = h + rank as f64 + j as f64 * 0.5;
            }
        }
        u
    }

    /// Reference: gather everything, sum by key globally.
    fn global_sums(
        c: &Comm,
        l: &Let,
        ulen: usize,
        u: &[f64],
    ) -> std::collections::HashMap<MortonKey, Vec<f64>> {
        let mut keys = Vec::new();
        let mut dens = Vec::new();
        for i in 0..l.len() {
            if l.local[i] {
                keys.push(l.octs[i]);
                dens.extend_from_slice(&u[i * ulen..(i + 1) * ulen]);
            }
        }
        let all_keys = allgatherv(c, &keys);
        let all_dens = allgatherv(c, &dens);
        let mut map: std::collections::HashMap<MortonKey, Vec<f64>> = Default::default();
        for (j, k) in all_keys.into_iter().enumerate() {
            let slice = &all_dens[j * ulen..(j + 1) * ulen];
            map.entry(k)
                .and_modify(|v| v.iter_mut().zip(slice).for_each(|(a, b)| *a += b))
                .or_insert_with(|| slice.to_vec());
        }
        map
    }

    fn check_scheme(p: usize, hypercube: bool) {
        let ulen = 3usize;
        let oks = run(p, |c| {
            let pts = uniform_cube(300, 7 + c.rank() as u64, (c.rank() * 300) as u64);
            let t = points_to_octree(c, pts, 8);
            let l = build_let(c, &t);
            let mut u = fill_partials(&l, ulen, c.rank());
            let want = global_sums(c, &l, ulen, &u);
            if hypercube {
                reduce_scatter_hypercube(c, &l, ulen, &mut u);
            } else {
                reduce_scatter_naive(c, &l, ulen, &mut u);
            }
            // Every octant this rank *uses* (it is in the LET) that is
            // shared must now hold the global sum; non-shared local
            // octants keep their local value.
            let mut checked = 0;
            for i in 0..l.len() {
                let key = l.octs[i];
                let complete = &u[i * ulen..(i + 1) * ulen];
                if is_shared(&key, &l.region) {
                    // Ghosts in the LET are exactly the used octants.
                    let w = want.get(&key).map(|v| v.as_slice());
                    if let Some(w) = w {
                        for (a, b) in complete.iter().zip(w) {
                            assert!(
                                (a - b).abs() < 1e-9,
                                "rank {} octant {key:?}: {a} vs {b}",
                                c.rank()
                            );
                        }
                        checked += 1;
                    }
                } else if l.local[i] {
                    let w = want.get(&key).expect("local octant is global");
                    for (a, b) in complete.iter().zip(w) {
                        assert!((a - b).abs() < 1e-12);
                    }
                }
            }
            checked
        });
        assert!(
            oks.iter().sum::<usize>() > 0,
            "some shared octants were exercised"
        );
    }

    #[test]
    fn hypercube_p2() {
        check_scheme(2, true);
    }

    #[test]
    fn hypercube_p4() {
        check_scheme(4, true);
    }

    #[test]
    fn hypercube_p8() {
        check_scheme(8, true);
    }

    #[test]
    fn naive_p3() {
        check_scheme(3, false);
    }

    #[test]
    fn naive_p4() {
        check_scheme(4, false);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn hypercube_rejects_non_power_of_two() {
        run(3, |c| {
            let pts = uniform_cube(30, 1, c.rank() as u64 * 30);
            let t = points_to_octree(c, pts, 8);
            let l = build_let(c, &t);
            let mut u = vec![0.0; l.len()];
            reduce_scatter_hypercube(c, &l, 1, &mut u);
        });
    }

    /// The poll-driven hypercube must fold rounds in exactly the order of
    /// the blocking one — the graph executor's bitwise-equivalence
    /// guarantee rests on this.
    fn check_async_matches_blocking(p: usize) {
        let ulen = 3usize;
        run(p, |c| {
            let pts = uniform_cube(300, 7 + c.rank() as u64, (c.rank() * 300) as u64);
            let t = points_to_octree(c, pts, 8);
            let l = build_let(c, &t);
            let base = fill_partials(&l, ulen, c.rank());

            let mut sync = base.clone();
            reduce_scatter_hypercube(c, &l, ulen, &mut sync);

            let mut asy = base;
            let mut red = HypercubeReduceAsync::begin(c, &l, ulen, &asy);
            while !red.poll(c, &l) {
                std::thread::yield_now();
            }
            red.finish(&l, ulen, &mut asy);

            for (i, (a, b)) in sync.iter().zip(&asy).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "rank {} elem {i}: sync {a} != async {b}",
                    c.rank()
                );
            }
        });
    }

    #[test]
    fn async_hypercube_matches_blocking_bitwise_p2() {
        check_async_matches_blocking(2);
    }

    #[test]
    fn async_hypercube_matches_blocking_bitwise_p4() {
        check_async_matches_blocking(4);
    }

    #[test]
    fn async_hypercube_matches_blocking_bitwise_p8() {
        check_async_matches_blocking(8);
    }

    /// §III-C derives per-rank reduce-and-scatter traffic `O(m(3√p − 2))`
    /// where `m` is the size of a rank's shared-octant data. Check the
    /// measured per-peer traffic (attributed to the HypercubeReduce
    /// class) against that bound, with a 2× allowance for the
    /// implementation constant (keys ride along with the densities) —
    /// and check that *all* of the reduction's traffic carries the
    /// HypercubeReduce attribution.
    #[test]
    fn hypercube_volume_within_paper_bound() {
        let ulen = 3usize;
        let p = 16usize;
        run(p, |c| {
            let pts = uniform_cube(400, 11 + c.rank() as u64, (c.rank() * 400) as u64);
            let t = points_to_octree(c, pts, 8);
            let l = build_let(c, &t);
            let mut u = fill_partials(&l, ulen, c.rank());
            // m: bytes of this rank's shared partials (key + densities
            // per entry), maxed over ranks — the paper's per-rank m.
            let entry_bytes = (std::mem::size_of::<MortonKey>() + ulen * 8) as u64;
            let m_local = collect_shared(&l, ulen, &u).len() as u64 * entry_bytes;
            let m = pfmm_mpisim::collectives::allreduce(c, vec![m_local], std::cmp::max)[0];

            let before = c.stats();
            reduce_scatter_hypercube(c, &l, ulen, &mut u);
            let delta = c.stats().delta_since(&before);
            let hc = delta.kind_totals(CollectiveKind::HypercubeReduce);

            assert!(hc.sent_msgs > 0, "rank {} sent nothing", c.rank());
            assert_eq!(
                hc.sent_bytes, delta.sent_bytes,
                "all reduction traffic is attributed to HypercubeReduce"
            );
            let bound = 2.0 * m as f64 * (3.0 * (p as f64).sqrt() - 2.0);
            assert!(
                (hc.sent_bytes as f64) <= bound,
                "rank {}: sent {} bytes > bound {bound} (m = {m})",
                c.rank(),
                hc.sent_bytes
            );
        });
    }

    #[test]
    fn single_rank_is_noop() {
        run(1, |c| {
            let pts = uniform_cube(50, 2, 0);
            let t = points_to_octree(c, pts, 8);
            let l = build_let(c, &t);
            let mut u = fill_partials(&l, 2, 0);
            let before = u.clone();
            assert_eq!(reduce_scatter_hypercube(c, &l, 2, &mut u), 0);
            assert_eq!(u, before);
        });
    }
}
