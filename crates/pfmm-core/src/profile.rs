//! Per-phase wall-clock and flop accounting, mirroring the rows of the
//! paper's Table II.

use std::time::Instant;

/// The instrumented phases of one FMM evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// S2U + U2U (the paper's "Upward").
    Upward,
    /// Up-density reduce-and-scatter + ghost density exchange.
    Comm,
    /// Direct near-field interactions.
    UList,
    /// Multipole-to-local translations.
    VList,
    /// Multipole-to-target contributions.
    WList,
    /// Source-to-local contributions.
    XList,
    /// D2D + D2T (the paper's "Downward").
    Downward,
}

impl Phase {
    /// All phases, in the paper's reporting order.
    pub const ALL: [Phase; 7] = [
        Phase::Upward,
        Phase::Comm,
        Phase::UList,
        Phase::VList,
        Phase::WList,
        Phase::XList,
        Phase::Downward,
    ];

    /// Row label as printed in Table II.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Upward => "Upward",
            Phase::Comm => "Comm.",
            Phase::UList => "U-list",
            Phase::VList => "V-list",
            Phase::WList => "W-list",
            Phase::XList => "X-list",
            Phase::Downward => "Downward",
        }
    }
}

/// Flop models of the V-list building blocks, shared by the executors'
/// accounting and the modeled autotuner so every path charges the same
/// arithmetic for the same work.
pub mod flop_model {
    /// Complex-to-complex 3-D FFT over `g` grid points (`5·g·log₂g`).
    #[inline]
    pub fn fft_c2c(g: usize) -> u64 {
        (5 * g * g.ilog2() as usize) as u64
    }

    /// Real-input forward / real-output inverse transform: Hermitian
    /// symmetry halves the complex cost.
    #[inline]
    pub fn fft_real(g: usize) -> u64 {
        fft_c2c(g) / 2
    }

    /// One dense M2L edge (`clen×ulen` mat-vec).
    #[inline]
    pub fn m2l_dense_edge(clen: usize, ulen: usize) -> u64 {
        2 * (clen * ulen) as u64
    }

    /// One spectral Hadamard edge over `nf` retained frequencies:
    /// `td·sd` complex multiply-accumulates of 8 flops each. Pass the
    /// full grid for the complex path, `n²·(n/2+1)` for the half-spectrum
    /// batched path.
    #[inline]
    pub fn hadamard_edge(nf: usize, sd: usize, td: usize) -> u64 {
        (8 * nf * sd * td) as u64
    }

    /// One U-list edge: `nt` targets against `ns` **real** sources at the
    /// kernel's per-pair cost. Both the scalar and the tiled near-field
    /// paths charge real pairs (padding lanes are wasted work, not
    /// arithmetic the paper's accounting would count), so the two modes'
    /// GFLOP/s rates are directly comparable.
    #[inline]
    pub fn ulist_edge(nt: usize, ns: usize, flops_pair: u64) -> u64 {
        (nt * ns) as u64 * flops_pair
    }

    /// One level-batched translation group: `m` right-hand sides through
    /// a `rows×cols` operator. Identical to `m` per-box matvecs — the
    /// GEMM reorganizes data movement, not arithmetic — so the gemm and
    /// matvec translate modes charge the same flops and their reported
    /// rates are directly comparable.
    #[inline]
    pub fn translate_group(rows: usize, cols: usize, m: usize) -> u64 {
        2 * (rows * cols) as u64 * m as u64
    }

    /// Bytes moved by one grouped translation: the operator panel is
    /// streamed once per [`pfmm_linalg::GEMM_NR`] right-hand sides, plus
    /// the gather/compute/scatter traffic of the input and output panels
    /// (each touched twice: pack + read, write + scatter).
    #[inline]
    pub fn translate_group_bytes(rows: usize, cols: usize, m: usize) -> u64 {
        let panels = m.div_ceil(pfmm_linalg::GEMM_NR);
        8 * (rows * cols * panels + 2 * m * (rows + cols)) as u64
    }

    /// Bytes moved by `m` per-box matvecs of the same operator: the
    /// operator is re-streamed from memory once per box.
    #[inline]
    pub fn translate_matvec_bytes(rows: usize, cols: usize, m: usize) -> u64 {
        8 * (m * (rows * cols + rows + cols)) as u64
    }
}

/// Accumulated seconds and flops per phase for one rank's evaluation.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    secs: [f64; 7],
    flops: [u64; 7],
    /// Wall-clock seconds of the whole evaluation.
    pub total_secs: f64,
    /// Wall-clock seconds of the setup (tree + LET + lists + balance).
    pub setup_secs: f64,
    /// Seconds of setup spent in the point sort.
    pub sort_secs: f64,
    /// Seconds of setup spent building the octree and the LET (including
    /// the post-balance rebuild).
    pub tree_secs: f64,
    /// Seconds of setup spent building the U/V/W/X interaction lists
    /// (including the post-balance rebuild).
    pub lists_secs: f64,
    /// Seconds of setup spent in the plan precompute: evaluation
    /// workspace extraction, translate grouping, operator warm-up.
    pub plan_secs: f64,
    /// Compute-task seconds that executed while communication was in
    /// flight (graph executor only; 0 under the barrier executor, which
    /// blocks in Comm). This is wall-clock the overlap *hid* — the §III
    /// "overlapping communication with computation" win.
    pub overlap_secs: f64,
    /// Seconds spent building the tiled near-field layout. Both executors
    /// fold this into the U-list phase (it is charged once, before either
    /// dispatches); kept separately so the attribution is testable.
    pub nf_build_secs: f64,
    /// Longest dependency chain of the task graph, weighted by measured
    /// task durations (graph executor only; 0 under the barrier
    /// executor). A lower bound on the wall-clock of any schedule of the
    /// same graph.
    pub critical_path_secs: f64,
}

impl Profile {
    /// Time a closure and charge it to `phase`.
    pub fn timed<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = Instant::now();
        let out = f(self);
        self.secs[phase as usize] += t0.elapsed().as_secs_f64();
        out
    }

    /// Charge flops to a phase.
    #[inline]
    pub fn add_flops(&mut self, phase: Phase, flops: u64) {
        self.flops[phase as usize] += flops;
    }

    /// Charge pre-measured seconds to a phase (used by the graph
    /// executor, which times tasks itself and attributes them here).
    #[inline]
    pub fn add_secs(&mut self, phase: Phase, secs: f64) {
        self.secs[phase as usize] += secs;
    }

    /// Seconds charged to a phase.
    pub fn secs(&self, phase: Phase) -> f64 {
        self.secs[phase as usize]
    }

    /// Flops charged to a phase.
    pub fn flops(&self, phase: Phase) -> u64 {
        self.flops[phase as usize]
    }

    /// Total flops across phases.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Compute-only seconds (everything but Comm) — the paper's "Comp".
    pub fn comp_secs(&self) -> f64 {
        Phase::ALL
            .iter()
            .filter(|p| !matches!(p, Phase::Comm))
            .map(|p| self.secs(*p))
            .sum()
    }
}

/// Max/avg summary of many ranks' profiles — the two columns of Table II.
pub struct ProfileSummary {
    /// (max over ranks, avg over ranks) seconds per phase.
    pub secs: Vec<(Phase, f64, f64)>,
    /// (max, avg) flops per phase.
    pub flops: Vec<(Phase, u64, u64)>,
    /// (max, avg) total evaluation seconds.
    pub total: (f64, f64),
    /// (max, avg) total flops.
    pub total_flops: (u64, u64),
    /// (max, avg) compute seconds hidden behind communication.
    pub overlap: (f64, f64),
    /// (max, avg) total setup seconds.
    pub setup: (f64, f64),
    /// (max, avg) per setup stage, in pipeline order: sort, tree+LET,
    /// lists, plan precompute.
    pub setup_split: Vec<(&'static str, f64, f64)>,
}

impl ProfileSummary {
    /// Summarize per-rank profiles.
    pub fn from_ranks(profiles: &[Profile]) -> ProfileSummary {
        let n = profiles.len().max(1) as f64;
        let mut secs = Vec::new();
        let mut flops = Vec::new();
        for ph in Phase::ALL {
            let s_max = profiles.iter().map(|p| p.secs(ph)).fold(0.0, f64::max);
            let s_avg = profiles.iter().map(|p| p.secs(ph)).sum::<f64>() / n;
            secs.push((ph, s_max, s_avg));
            let f_max = profiles.iter().map(|p| p.flops(ph)).max().unwrap_or(0);
            let f_avg = (profiles.iter().map(|p| p.flops(ph)).sum::<u64>() as f64 / n) as u64;
            flops.push((ph, f_max, f_avg));
        }
        let total = (
            profiles.iter().map(|p| p.total_secs).fold(0.0, f64::max),
            profiles.iter().map(|p| p.total_secs).sum::<f64>() / n,
        );
        let total_flops = (
            profiles.iter().map(|p| p.total_flops()).max().unwrap_or(0),
            (profiles.iter().map(|p| p.total_flops()).sum::<u64>() as f64 / n) as u64,
        );
        let overlap = (
            profiles.iter().map(|p| p.overlap_secs).fold(0.0, f64::max),
            profiles.iter().map(|p| p.overlap_secs).sum::<f64>() / n,
        );
        let maxavg = |get: fn(&Profile) -> f64| {
            (
                profiles.iter().map(get).fold(0.0, f64::max),
                profiles.iter().map(get).sum::<f64>() / n,
            )
        };
        let setup = maxavg(|p| p.setup_secs);
        let setup_split = vec![
            (
                "· sort",
                maxavg(|p| p.sort_secs).0,
                maxavg(|p| p.sort_secs).1,
            ),
            (
                "· tree",
                maxavg(|p| p.tree_secs).0,
                maxavg(|p| p.tree_secs).1,
            ),
            (
                "· lists",
                maxavg(|p| p.lists_secs).0,
                maxavg(|p| p.lists_secs).1,
            ),
            (
                "· plan",
                maxavg(|p| p.plan_secs).0,
                maxavg(|p| p.plan_secs).1,
            ),
        ];
        ProfileSummary {
            secs,
            flops,
            total,
            total_flops,
            overlap,
            setup,
            setup_split,
        }
    }

    /// Render in the layout of the paper's Table II.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<12} {:>10} {:>10} {:>12} {:>12}\n",
            "Event", "Max. Time", "Avg. Time", "Max. Flops", "Avg. Flops"
        ));
        s.push_str(&format!(
            "{:<12} {:>10.2e} {:>10.2e} {:>12.2e} {:>12.2e}\n",
            "Total eval",
            self.total.0,
            self.total.1,
            self.total_flops.0 as f64,
            self.total_flops.1 as f64
        ));
        // Setup family (sort / tree / lists / plan), mirroring the
        // paper's separate setup accounting alongside Table II.
        if self.setup.0 > 0.0 {
            s.push_str(&format!(
                "{:<12} {:>10.2e} {:>10.2e}\n",
                "Setup", self.setup.0, self.setup.1
            ));
            for (label, smax, savg) in &self.setup_split {
                s.push_str(&format!("{label:<12} {smax:>10.2e} {savg:>10.2e}\n"));
            }
        }
        for ((ph, smax, savg), (_, fmax, favg)) in self.secs.iter().zip(&self.flops) {
            s.push_str(&format!(
                "{:<12} {:>10.2e} {:>10.2e} {:>12.2e} {:>12.2e}\n",
                ph.label(),
                smax,
                savg,
                *fmax as f64,
                *favg as f64
            ));
        }
        if self.overlap.0 > 0.0 {
            s.push_str(&format!(
                "{:<12} {:>10.2e} {:>10.2e}\n",
                "Overlap", self.overlap.0, self.overlap.1
            ));
            // Fraction of the Comm phase hidden behind compute.
            let (_, cmax, cavg) = self.secs[Phase::Comm as usize];
            if cmax > 0.0 {
                s.push_str(&format!(
                    "{:<12} {:>10.1} {:>10.1}\n",
                    "Overlap %",
                    100.0 * self.overlap.0 / cmax,
                    if cavg > 0.0 {
                        100.0 * self.overlap.1 / cavg
                    } else {
                        0.0
                    }
                ));
            }
        }
        // Achieved near-field rate (the phase the tiled engine targets):
        // flops here are real pairs via `flop_model::ulist_edge`, so the
        // row reports a rate, not just a speedup ratio.
        let (_, smax, savg) = self.secs[Phase::UList as usize];
        let (_, fmax, favg) = self.flops[Phase::UList as usize];
        if smax > 0.0 && fmax > 0 {
            // An avg of exactly 0 s with nonzero flops is an artifact of
            // coarse clocks, not an infinite (or zero) rate — print `-`.
            let avg_cell = if savg > 0.0 {
                format!("{:.2}", favg as f64 / savg / 1e9)
            } else {
                "-".to_string()
            };
            s.push_str(&format!(
                "{:<12} {:>10.2} {:>10}\n",
                "U-list GF/s",
                fmax as f64 / smax / 1e9,
                avg_cell
            ));
        }
        // Achieved up/down translation rate (the phases the level-batched
        // GEMM engine targets): both translate modes charge identical
        // flops via `flop_model::translate_group`, so the rate compares
        // directly across `--translate={gemm,matvec}`.
        let (_, us, ua) = self.secs[Phase::Upward as usize];
        let (_, ds, da) = self.secs[Phase::Downward as usize];
        let (_, uf, ufa) = self.flops[Phase::Upward as usize];
        let (_, df, dfa) = self.flops[Phase::Downward as usize];
        let (smax, savg, fmax, favg) = (us + ds, ua + da, uf + df, ufa + dfa);
        if smax > 0.0 && fmax > 0 {
            let avg_cell = if savg > 0.0 {
                format!("{:.2}", favg as f64 / savg / 1e9)
            } else {
                "-".to_string()
            };
            s.push_str(&format!(
                "{:<12} {:>10.2} {:>10}\n",
                "Up/Down GF/s",
                fmax as f64 / smax / 1e9,
                avg_cell
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut p = Profile::default();
        p.timed(Phase::UList, |_| {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        assert!(p.secs(Phase::UList) >= 0.004);
        assert_eq!(p.secs(Phase::VList), 0.0);
    }

    #[test]
    fn flop_accounting() {
        let mut p = Profile::default();
        p.add_flops(Phase::VList, 100);
        p.add_flops(Phase::VList, 50);
        p.add_flops(Phase::UList, 7);
        assert_eq!(p.flops(Phase::VList), 150);
        assert_eq!(p.total_flops(), 157);
    }

    #[test]
    fn summary_max_avg() {
        let mut a = Profile::default();
        a.add_flops(Phase::UList, 100);
        a.total_secs = 2.0;
        let mut b = Profile::default();
        b.add_flops(Phase::UList, 300);
        b.total_secs = 4.0;
        let s = ProfileSummary::from_ranks(&[a, b]);
        assert_eq!(s.total, (4.0, 3.0));
        let (_, fmax, favg) = s.flops[Phase::UList as usize];
        let _ = favg;
        assert_eq!(fmax, 300);
        let rendered = s.render();
        assert!(rendered.contains("U-list"));
        assert!(rendered.contains("Total eval"));
        // No U-list seconds recorded → no rate row.
        assert!(!rendered.contains("U-list GF/s"));
    }

    #[test]
    fn summary_reports_ulist_rate() {
        let mut p = Profile::default();
        p.add_flops(Phase::UList, 2_000_000_000);
        p.add_secs(Phase::UList, 1.0);
        let s = ProfileSummary::from_ranks(&[p]);
        let rendered = s.render();
        assert!(rendered.contains("U-list GF/s"), "{rendered}");
        assert!(rendered.contains("2.00"), "{rendered}");
    }

    /// Nonzero flops with a 0.0-second average must render `-`, not a
    /// bogus 0.0 rate (max column still prints normally).
    #[test]
    fn zero_avg_seconds_renders_dash_not_zero_rate() {
        let mut a = Profile::default();
        a.add_flops(Phase::UList, 1_000_000_000);
        a.add_secs(Phase::UList, 0.5);
        let mut b = Profile::default();
        b.add_flops(Phase::UList, 1_000_000_000);
        // b records flops but no seconds; with enough such ranks the avg
        // rounds to 0.0 while favg stays > 0. Force the edge directly:
        let mut s = ProfileSummary::from_ranks(&[a, b]);
        s.secs[Phase::UList as usize].2 = 0.0; // savg == 0.0, favg > 0
        let rendered = s.render();
        let rate_line = rendered
            .lines()
            .find(|l| l.starts_with("U-list GF/s"))
            .expect("rate row present");
        assert!(rate_line.trim_end().ends_with('-'), "{rate_line:?}");
    }

    #[test]
    fn overlap_percent_row_reports_comm_fraction() {
        let mut p = Profile::default();
        p.add_secs(Phase::Comm, 2.0);
        p.overlap_secs = 1.0;
        let s = ProfileSummary::from_ranks(&[p]);
        let rendered = s.render();
        let line = rendered
            .lines()
            .find(|l| l.starts_with("Overlap %"))
            .expect("overlap % row present");
        assert!(line.contains("50.0"), "{line:?}");
    }

    #[test]
    fn ulist_edge_model_counts_real_pairs() {
        assert_eq!(flop_model::ulist_edge(10, 7, 20), 1400);
        assert_eq!(flop_model::ulist_edge(0, 7, 20), 0);
    }

    /// Combined Upward+Downward rate row: 4 GFLOP in 1 s → 4.00 GF/s.
    #[test]
    fn summary_reports_updown_rate() {
        let mut p = Profile::default();
        p.add_flops(Phase::Upward, 1_000_000_000);
        p.add_secs(Phase::Upward, 0.5);
        p.add_flops(Phase::Downward, 3_000_000_000);
        p.add_secs(Phase::Downward, 0.5);
        let s = ProfileSummary::from_ranks(&[p]);
        let rendered = s.render();
        let line = rendered
            .lines()
            .find(|l| l.starts_with("Up/Down GF/s"))
            .expect("up/down rate row present");
        assert!(line.contains("4.00"), "{line:?}");
        // No translation seconds recorded → no rate row.
        let empty = ProfileSummary::from_ranks(&[Profile::default()]).render();
        assert!(!empty.contains("Up/Down GF/s"));
    }

    /// The grouped-translation byte model must show the BLAS-3 win: for a
    /// full group the operator is streamed once per GEMM_NR columns, so
    /// traffic drops well below the per-box matvec path; flops stay equal.
    #[test]
    fn translate_group_model_amortizes_operator_traffic() {
        let (rows, cols, m) = (152, 152, 512);
        assert_eq!(
            flop_model::translate_group(rows, cols, m),
            m as u64 * flop_model::translate_group(rows, cols, 1)
        );
        let grouped = flop_model::translate_group_bytes(rows, cols, m);
        let matvec = flop_model::translate_matvec_bytes(rows, cols, m);
        assert!(
            (grouped as f64) < 0.3 * matvec as f64,
            "grouped {grouped} vs matvec {matvec}"
        );
        // A single-column "group" has no amortization to offer.
        assert!(
            flop_model::translate_group_bytes(rows, cols, 1)
                >= flop_model::translate_matvec_bytes(rows, cols, 1)
        );
    }
}
