//! The paper's two particle distributions (§V): uniform random sampling
//! of the unit cube, and points on the surface of a 1:1:4 ellipsoid
//! ("uniform distribution of angle spacing in spherical coordinates"),
//! which produces the highly adaptive trees of the nonuniform
//! experiments.

use pfmm_tree::PointRec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform random points in the unit cube, unit scalar density.
pub fn uniform_cube(n: usize, seed: u64, gid_base: u64) -> Vec<PointRec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            PointRec::scalar(
                [
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                ],
                1.0,
                gid_base + i as u64,
            )
        })
        .collect()
}

/// Points on a 1:1:4 ellipsoid surface with uniform angular spacing —
/// the paper's nonuniform distribution. The ellipsoid is inscribed in the
/// unit cube (semi-axes 0.12 : 0.12 : 0.48 around the center), so points
/// cluster heavily at the poles and the octree becomes deep and
/// unbalanced.
pub fn ellipsoid_1_1_4(n: usize, seed: u64, gid_base: u64) -> Vec<PointRec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let theta: f64 = rng.random::<f64>() * std::f64::consts::PI;
            let phi: f64 = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
            let x = 0.5 + 0.12 * theta.sin() * phi.cos();
            let y = 0.5 + 0.12 * theta.sin() * phi.sin();
            let z = 0.5 + 0.48 * theta.cos();
            PointRec::scalar(
                [
                    x.clamp(0.0, 0.999_999),
                    y.clamp(0.0, 0.999_999),
                    z.clamp(0.0, 0.999_999),
                ],
                1.0,
                gid_base + i as u64,
            )
        })
        .collect()
}

/// A Plummer-model cluster (the standard astrophysical N-body density,
/// `ρ(r) ∝ (1 + r²/a²)^{-5/2}`), scaled and clipped into the unit cube —
/// a third adaptivity profile between the paper's two: radially
/// concentrated like the ellipsoid poles but volumetric like the cube.
pub fn plummer(n: usize, seed: u64, gid_base: u64) -> Vec<PointRec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = 0.05; // core radius in cube units
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    while out.len() < n {
        // Inverse-CDF sample of the Plummer radius.
        let m: f64 = rng.random::<f64>() * 0.999 + 1e-9;
        let r = a / (m.powf(-2.0 / 3.0) - 1.0).sqrt();
        let cos_t: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let sin_t = (1.0 - cos_t * cos_t).sqrt();
        let phi: f64 = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
        let p = [
            0.5 + r * sin_t * phi.cos(),
            0.5 + r * sin_t * phi.sin(),
            0.5 + r * cos_t,
        ];
        // The Plummer profile has unbounded support; clip the rare far
        // tail to keep everything in the cube.
        if p.iter().all(|c| (0.0..1.0).contains(c)) {
            out.push(PointRec::scalar(p, 1.0, gid_base + i));
            i += 1;
        }
    }
    out
}

/// Attach random densities in `[-1, 1)` (per used component) to existing
/// points — evaluation inputs with sign changes exercise cancellation.
pub fn randomize_densities(pts: &mut [PointRec], kdim: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for p in pts {
        for d in 0..3 {
            p.den[d] = if d < kdim {
                rng.random::<f64>() * 2.0 - 1.0
            } else {
                0.0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_cube() {
        let pts = uniform_cube(1000, 1, 0);
        assert_eq!(pts.len(), 1000);
        for p in &pts {
            for d in 0..3 {
                assert!(p.pos[d] >= 0.0 && p.pos[d] < 1.0);
            }
        }
        // gids unique and sequential.
        assert_eq!(pts[999].gid, 999);
    }

    #[test]
    fn ellipsoid_on_surface() {
        let pts = ellipsoid_1_1_4(1000, 2, 0);
        for p in &pts {
            let dx = (p.pos[0] - 0.5) / 0.12;
            let dy = (p.pos[1] - 0.5) / 0.12;
            let dz = (p.pos[2] - 0.5) / 0.48;
            let r = dx * dx + dy * dy + dz * dz;
            assert!((r - 1.0).abs() < 1e-9, "on the ellipsoid surface");
        }
    }

    #[test]
    fn ellipsoid_is_nonuniform() {
        // Pole clustering: the top and bottom z-slabs hold far more
        // points than a uniform surface density would give them.
        let pts = ellipsoid_1_1_4(4000, 3, 0);
        let near_poles = pts.iter().filter(|p| (p.pos[2] - 0.5).abs() > 0.45).count();
        assert!(
            near_poles > 400,
            "angular spacing piles points at the poles: {near_poles}"
        );
    }

    #[test]
    fn densities_randomized_only_in_kdim() {
        let mut pts = uniform_cube(10, 4, 0);
        randomize_densities(&mut pts, 1, 9);
        for p in &pts {
            assert!(p.den[0] != 1.0);
            assert_eq!(p.den[1], 0.0);
            assert_eq!(p.den[2], 0.0);
        }
    }

    #[test]
    fn plummer_is_centrally_concentrated() {
        let pts = plummer(4000, 11, 0);
        assert_eq!(pts.len(), 4000);
        let r2 = |p: &crate::distrib::PointRec| {
            (p.pos[0] - 0.5).powi(2) + (p.pos[1] - 0.5).powi(2) + (p.pos[2] - 0.5).powi(2)
        };
        let inside_core = pts.iter().filter(|p| r2(p) < 0.05f64.powi(2)).count();
        // Half the mass lies within ~1.3 core radii for a Plummer model.
        assert!(inside_core > 800, "core concentration: {inside_core}");
        for p in &pts {
            for c in p.pos {
                assert!((0.0..1.0).contains(&c));
            }
        }
        // gids sequential despite rejection sampling.
        assert_eq!(pts.last().expect("nonempty").gid, 3999);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(uniform_cube(5, 7, 0), uniform_cube(5, 7, 0));
        assert_ne!(uniform_cube(5, 7, 0), uniform_cube(5, 8, 0));
    }
}
