//! The translation-operator cache.
//!
//! All KIFMM translations are dense matrices built from kernel
//! evaluations between equivalent and check surfaces:
//!
//! - `UC2E` — upward check potential → upward equivalent density (the
//!   regularized pseudo-inverse solve of Ying et al. §3)
//! - `U2U(i)` — child-i equivalent density → parent equivalent density
//! - `DC2E` — downward check potential → downward equivalent density
//! - `D2D(i)` — parent downward density → child-i downward density
//! - `M2L(o)` — source equivalent density → target downward *check*
//!   potential, for each of the ≤316 V-list offsets `o`
//!
//! Operators depend only on the tree level (translation invariance), and
//! for homogeneous kernels (`K(ax, ay) = a^h K(x, y)`; Laplace and Stokes
//! have `h = −1`) they are computed once at a reference level and
//! *rescaled* per level — the cache returns `(matrix, scale)` pairs so the
//! caller can fold the scale into the accumulate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use pfmm_kernels::{assemble, Kernel, Point3};
use pfmm_linalg::{pinv, Matrix};

use crate::par::par_map_n;
use crate::surface::{
    surface_points, surface_points_into, surface_size, surface_template, RAD_INNER, RAD_OUTER,
};
use pfmm_tree::SetupPar;

/// Half-width of a level-`l` octant of the unit cube.
#[inline]
pub fn level_radius(level: u32) -> f64 {
    0.5 / (1u64 << level) as f64
}

/// Center offset of child `i` relative to its parent's center, in units
/// of the child half-width.
#[inline]
fn child_offset(i: usize) -> [f64; 3] {
    [
        if i & 4 != 0 { 1.0 } else { -1.0 },
        if i & 2 != 0 { 1.0 } else { -1.0 },
        if i & 1 != 0 { 1.0 } else { -1.0 },
    ]
}

/// A cached translation operator and the per-level scale to apply with it.
pub type ScaledOp = (Arc<Matrix>, f64);

/// Double-checked cache lookup: probe under the lock, assemble outside it
/// so concurrent first touches (of the same or distinct keys) don't
/// serialize on the matrix build, then re-check insert — a racing
/// duplicate build is dropped in favor of the first inserted value.
fn cached<K, T>(cache: &Mutex<HashMap<K, Arc<T>>>, key: K, build: impl FnOnce() -> T) -> Arc<T>
where
    K: Eq + std::hash::Hash + Copy,
{
    if let Some(m) = cache.lock().get(&key).cloned() {
        return m;
    }
    let built = Arc::new(build());
    cache.lock().entry(key).or_insert(built).clone()
}

/// Cache keyed by (level, V-list offset).
type OffsetCache<T> = Mutex<HashMap<(u32, [i8; 3]), Arc<T>>>;

/// The operator cache for one kernel and surface order.
pub struct Ops {
    kernel: Arc<dyn Kernel>,
    order: usize,
    rel_tol: f64,
    homogeneity: Option<f64>,
    /// Unit surface node coordinates, stamped per box by the `_into`
    /// surface methods (the executor's per-box hot paths).
    template: Vec<Point3>,
    uc2e: Mutex<HashMap<u32, Arc<Matrix>>>,
    dc2e: Mutex<HashMap<u32, Arc<Matrix>>>,
    u2u: Mutex<HashMap<(u32, usize), Arc<Matrix>>>,
    d2d: Mutex<HashMap<(u32, usize), Arc<Matrix>>>,
    m2l: OffsetCache<Matrix>,
}

impl Ops {
    /// Create a cache for `kernel` at surface order `order`, truncating
    /// pseudo-inverse singular values below `rel_tol` (relative).
    pub fn new(kernel: Arc<dyn Kernel>, order: usize, rel_tol: f64) -> Ops {
        assert!(order >= 2, "surface order must be at least 2");
        let homogeneity = kernel.homogeneity();
        Ops {
            kernel,
            order,
            rel_tol,
            homogeneity,
            template: surface_template(order),
            uc2e: Mutex::new(HashMap::new()),
            dc2e: Mutex::new(HashMap::new()),
            u2u: Mutex::new(HashMap::new()),
            d2d: Mutex::new(HashMap::new()),
            m2l: Mutex::new(HashMap::new()),
        }
    }

    /// The kernel this cache serves.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Surface order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Points on each surface.
    pub fn n_surf(&self) -> usize {
        surface_size(self.order)
    }

    /// Length of an upward/downward equivalent density vector.
    pub fn density_len(&self) -> usize {
        self.n_surf() * self.kernel.source_dim()
    }

    /// Length of a check potential vector.
    pub fn check_len(&self) -> usize {
        self.n_surf() * self.kernel.target_dim()
    }

    /// Upward equivalent surface of an octant (`center`, half-width `r`).
    pub fn up_equiv_surface(&self, center: &Point3, r: f64) -> Vec<Point3> {
        surface_points(self.order, center, r, RAD_INNER)
    }

    /// Upward check surface.
    pub fn up_check_surface(&self, center: &Point3, r: f64) -> Vec<Point3> {
        surface_points(self.order, center, r, RAD_OUTER)
    }

    /// Downward check surface.
    pub fn down_check_surface(&self, center: &Point3, r: f64) -> Vec<Point3> {
        surface_points(self.order, center, r, RAD_INNER)
    }

    /// Downward equivalent surface.
    pub fn down_equiv_surface(&self, center: &Point3, r: f64) -> Vec<Point3> {
        surface_points(self.order, center, r, RAD_OUTER)
    }

    /// Allocation-free [`Ops::up_equiv_surface`] into a scratch buffer
    /// (bitwise-identical points).
    pub fn up_equiv_surface_into(&self, center: &Point3, r: f64, out: &mut Vec<Point3>) {
        surface_points_into(&self.template, center, r, RAD_INNER, out);
    }

    /// Allocation-free [`Ops::up_check_surface`] into a scratch buffer.
    pub fn up_check_surface_into(&self, center: &Point3, r: f64, out: &mut Vec<Point3>) {
        surface_points_into(&self.template, center, r, RAD_OUTER, out);
    }

    /// Allocation-free [`Ops::down_check_surface`] into a scratch buffer.
    pub fn down_check_surface_into(&self, center: &Point3, r: f64, out: &mut Vec<Point3>) {
        surface_points_into(&self.template, center, r, RAD_INNER, out);
    }

    /// Allocation-free [`Ops::down_equiv_surface`] into a scratch buffer.
    pub fn down_equiv_surface_into(&self, center: &Point3, r: f64, out: &mut Vec<Point3>) {
        surface_points_into(&self.template, center, r, RAD_OUTER, out);
    }

    /// The level at which an operator is actually computed, and the
    /// homogeneous rescale factor for use at `level`.
    fn base_level_scale(&self, level: u32, pinv_side: bool) -> (u32, f64) {
        match self.homogeneity {
            Some(h) => {
                // Computed at level 0; K scales by (r_l / r_0)^h, its
                // pseudo-inverse by the reciprocal power.
                let ratio = level_radius(level) / level_radius(0);
                let e = if pinv_side { -h } else { h };
                (0, ratio.powf(e))
            }
            None => (level, 1.0),
        }
    }

    /// Upward check-to-equivalent solve operator at `level`.
    pub fn uc2e(&self, level: u32) -> ScaledOp {
        let (base, scale) = self.base_level_scale(level, true);
        let m = cached(&self.uc2e, base, || {
            let r = level_radius(base);
            let c = [0.0, 0.0, 0.0];
            let k = assemble(
                self.kernel.as_ref(),
                &self.up_check_surface(&c, r),
                &self.up_equiv_surface(&c, r),
            );
            pinv(&k, self.rel_tol)
        });
        (m, scale)
    }

    /// Downward check-to-equivalent solve operator at `level`.
    pub fn dc2e(&self, level: u32) -> ScaledOp {
        let (base, scale) = self.base_level_scale(level, true);
        let m = cached(&self.dc2e, base, || {
            let r = level_radius(base);
            let c = [0.0, 0.0, 0.0];
            let k = assemble(
                self.kernel.as_ref(),
                &self.down_check_surface(&c, r),
                &self.down_equiv_surface(&c, r),
            );
            pinv(&k, self.rel_tol)
        });
        (m, scale)
    }

    /// Child-to-parent multipole translation; `child_level >= 1`,
    /// `child_index` in 0..8. Maps the child's equivalent density directly
    /// to a parent equivalent-density contribution (UC2E folded in), so it
    /// is scale-invariant for homogeneous kernels.
    pub fn u2u(&self, child_level: u32, child_index: usize) -> ScaledOp {
        assert!(child_level >= 1 && child_index < 8);
        let base = if self.homogeneity.is_some() {
            1
        } else {
            child_level
        };
        let m = cached(&self.u2u, (base, child_index), || {
            let rc = level_radius(base);
            let rp = 2.0 * rc;
            let off = child_offset(child_index);
            let cc = [off[0] * rc, off[1] * rc, off[2] * rc];
            let k = assemble(
                self.kernel.as_ref(),
                &self.up_check_surface(&[0.0; 3], rp),
                &self.up_equiv_surface(&cc, rc),
            );
            let (uc2e_par, s) = self.uc2e(base - 1);
            debug_assert_eq!(s, 1.0, "base-level uc2e is unscaled at level 0");
            let mut folded = uc2e_par.matmul(&k);
            folded.scale(s);
            folded
        });
        (m, 1.0)
    }

    /// Parent-to-child local translation (DC2E folded in); scale-invariant
    /// for homogeneous kernels.
    pub fn d2d(&self, child_level: u32, child_index: usize) -> ScaledOp {
        assert!(child_level >= 1 && child_index < 8);
        let base = if self.homogeneity.is_some() {
            1
        } else {
            child_level
        };
        let m = cached(&self.d2d, (base, child_index), || {
            let rc = level_radius(base);
            let rp = 2.0 * rc;
            let off = child_offset(child_index);
            let cc = [off[0] * rc, off[1] * rc, off[2] * rc];
            let k = assemble(
                self.kernel.as_ref(),
                &self.down_check_surface(&cc, rc),
                &self.down_equiv_surface(&[0.0; 3], rp),
            );
            let (dc2e_child, s) = self.dc2e(base);
            let mut folded = dc2e_child.matmul(&k);
            folded.scale(s);
            folded
        });
        (m, 1.0)
    }

    /// Dense M2L: source upward-equivalent density → target downward
    /// *check* potential, for a V-list offset (in units of the octant
    /// side, each component in −3..=3, ∞-norm ≥ 2).
    pub fn m2l(&self, level: u32, offset: [i8; 3]) -> ScaledOp {
        debug_assert!(
            offset.iter().any(|o| o.abs() >= 2),
            "V-list offsets are non-adjacent"
        );
        let (base, scale) = self.base_level_scale(level, false);
        let m = cached(&self.m2l, (base, offset), || {
            let r = level_radius(base);
            let tc = [
                offset[0] as f64 * 2.0 * r,
                offset[1] as f64 * 2.0 * r,
                offset[2] as f64 * 2.0 * r,
            ];
            assemble(
                self.kernel.as_ref(),
                &self.down_check_surface(&tc, r),
                &self.up_equiv_surface(&[0.0; 3], r),
            )
        });
        (m, scale)
    }

    /// Precompute every up/down-pass operator the tree will touch
    /// (uc2e/dc2e at each level, the eight U2U/D2D child classes) so the
    /// first evaluation doesn't pay the pseudo-inverse solves inside the
    /// timed phases (M2L assembly stays lazy — the offset set depends on
    /// the V-lists, not just `max_level`).
    ///
    /// Tasks enumerate *distinct cache keys* — for homogeneous kernels
    /// every level collapses onto the base level, so naively warming per
    /// level would race concurrent builds of the same matrix (harmless
    /// but wasteful; [`cached`] drops the losers). Two waves: the
    /// uc2e/dc2e solves first, then the folded U2U/D2D operators whose
    /// builds consume them as cache hits.
    pub fn warm(&self, max_level: u32, par: SetupPar) {
        let hom = self.homogeneity.is_some();
        let solve_levels: Vec<u32> = if hom {
            vec![0]
        } else {
            (0..=max_level).collect()
        };
        par_map_n(par.threads(), 2 * solve_levels.len(), |k| {
            let lev = solve_levels[k / 2];
            if k % 2 == 0 {
                drop(self.uc2e(lev));
            } else {
                drop(self.dc2e(lev));
            }
        });
        if max_level == 0 {
            return;
        }
        let child_levels: Vec<u32> = if hom {
            vec![1]
        } else {
            (1..=max_level).collect()
        };
        par_map_n(par.threads(), 16 * child_levels.len(), |k| {
            let lev = child_levels[k / 16];
            let ci = (k / 2) % 8;
            if k % 2 == 0 {
                drop(self.u2u(lev, ci));
            } else {
                drop(self.d2d(lev, ci));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_kernels::{direct_eval, Laplace, Stokes};

    /// Laplace that pretends to be non-homogeneous, to exercise the
    /// per-level cache path against the scaled path.
    #[derive(Clone, Copy)]
    struct LaplaceNoHom;
    impl Kernel for LaplaceNoHom {
        fn source_dim(&self) -> usize {
            1
        }
        fn target_dim(&self) -> usize {
            1
        }
        fn eval_block(&self, x: &Point3, y: &Point3, block: &mut [f64]) {
            Laplace.eval_block(x, y, block)
        }
        fn homogeneity(&self) -> Option<f64> {
            None
        }
        fn flops_per_pair(&self) -> u64 {
            20
        }
        fn name(&self) -> &'static str {
            "laplace-nohom"
        }
    }

    fn ops(order: usize) -> Ops {
        Ops::new(Arc::new(Laplace), order, 1e-12)
    }

    /// Far-field accuracy of the S2U compression: the equivalent density
    /// built from the check-surface potential must reproduce the true
    /// potential far away.
    #[test]
    fn equivalent_density_reproduces_far_field() {
        let o = ops(6);
        let level = 3u32;
        let r = level_radius(level);
        let c = [0.3125, 0.4375, 0.5625]; // a level-3 octant center
                                          // A few sources inside the octant.
        let srcs = vec![
            [c[0] - 0.5 * r, c[1] + 0.3 * r, c[2]],
            [c[0] + 0.4 * r, c[1] - 0.2 * r, c[2] + 0.6 * r],
            [c[0], c[1], c[2] - 0.7 * r],
        ];
        let dens = vec![1.0, -2.0, 0.5];

        // ucheck = K(uc, src) s ; u = UC2E ucheck.
        let uc = o.up_check_surface(&c, r);
        let kcs = assemble(&Laplace, &uc, &srcs);
        let ucheck = kcs.matvec(&dens);
        let (uc2e, s) = o.uc2e(level);
        let mut u = uc2e.matvec(&ucheck);
        for v in &mut u {
            *v *= s;
        }

        // Evaluate at a distant point via the equivalent surface vs direct.
        let far = [c[0] + 20.0 * r, c[1] - 15.0 * r, c[2] + 10.0 * r];
        let ue = o.up_equiv_surface(&c, r);
        let mut via_equiv = vec![0.0];
        direct_eval(&Laplace, &[far], &ue, &u, &mut via_equiv);
        let mut direct = vec![0.0];
        direct_eval(&Laplace, &[far], &srcs, &dens, &mut direct);
        let rel = (via_equiv[0] - direct[0]).abs() / direct[0].abs();
        assert!(rel < 1e-6, "far-field relative error {rel}");
    }

    #[test]
    fn u2u_preserves_far_field() {
        let o = ops(6);
        let child_level = 2u32;
        let rc = level_radius(child_level);
        let rp = 2.0 * rc;
        // Parent centered at a valid level-1 position.
        let pc = [0.25, 0.25, 0.75];
        let idx = 5usize; // child (+x, -y, +z)
        let off = child_offset(idx);
        let cc = [
            pc[0] + off[0] * rc,
            pc[1] + off[1] * rc,
            pc[2] + off[2] * rc,
        ];

        // Source inside the child.
        let srcs = vec![[cc[0] + 0.2 * rc, cc[1], cc[2] - 0.3 * rc]];
        let dens = vec![1.0];

        // Child equivalent density.
        let kcs = assemble(&Laplace, &o.up_check_surface(&cc, rc), &srcs);
        let (uc2e_c, sc) = o.uc2e(child_level);
        let mut u_child = uc2e_c.matvec(&kcs.matvec(&dens));
        for v in &mut u_child {
            *v *= sc;
        }

        // Parent equivalent density via U2U.
        let (m, s) = o.u2u(child_level, idx);
        let mut u_par = m.matvec(&u_child);
        for v in &mut u_par {
            *v *= s;
        }

        let far = [pc[0] + 18.0 * rp, pc[1] + 9.0 * rp, pc[2] - 11.0 * rp];
        let mut via = vec![0.0];
        direct_eval(
            &Laplace,
            &[far],
            &o.up_equiv_surface(&pc, rp),
            &u_par,
            &mut via,
        );
        let mut want = vec![0.0];
        direct_eval(&Laplace, &[far], &srcs, &dens, &mut want);
        let rel = (via[0] - want[0]).abs() / want[0].abs();
        assert!(rel < 1e-6, "U2U far-field relative error {rel}");
    }

    /// The M2L + DC2E + D2T chain must reproduce the potential of a far
    /// octant's equivalent density inside the target octant.
    #[test]
    fn m2l_chain_accuracy() {
        let o = ops(6);
        let level = 3u32;
        let r = level_radius(level);
        let sc = [0.0625, 0.0625, 0.0625];
        let offset = [3i8, 0, -2];
        let tc = [
            sc[0] + offset[0] as f64 * 2.0 * r,
            sc[1] + offset[1] as f64 * 2.0 * r,
            sc[2] + offset[2] as f64 * 2.0 * r,
        ];

        // A made-up but smooth source equivalent density.
        let n = o.density_len();
        let u: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.1).sin()).collect();

        // dcheck = M2L u ; d = DC2E dcheck.
        let (m, ms) = o.m2l(level, offset);
        let mut dcheck = m.matvec(&u);
        for v in &mut dcheck {
            *v *= ms;
        }
        let (dc2e, ds) = o.dc2e(level);
        let mut d = dc2e.matvec(&dcheck);
        for v in &mut d {
            *v *= ds;
        }

        // Inside the target, the downward density must reproduce the
        // source equivalent field.
        let probe = [tc[0] + 0.4 * r, tc[1] - 0.3 * r, tc[2] + 0.2 * r];
        let mut via = vec![0.0];
        direct_eval(
            &Laplace,
            &[probe],
            &o.down_equiv_surface(&tc, r),
            &d,
            &mut via,
        );
        let mut want = vec![0.0];
        direct_eval(
            &Laplace,
            &[probe],
            &o.up_equiv_surface(&sc, r),
            &u,
            &mut want,
        );
        let rel = (via[0] - want[0]).abs() / want[0].abs().max(1e-30);
        assert!(rel < 1e-5, "M2L chain relative error {rel}");
    }

    /// The D2D chain: a parent's downward density must reproduce the
    /// same interior field after translation to a child.
    #[test]
    fn d2d_preserves_interior_field() {
        let o = ops(6);
        let parent_level = 2u32;
        let rp = level_radius(parent_level);
        let pc = [0.375, 0.625, 0.125]; // a level-2 octant center
                                        // A synthetic but smooth parent downward density.
        let nd = o.density_len();
        let d_par: Vec<f64> = (0..nd).map(|i| (i as f64 * 0.17).cos()).collect();

        let idx = 6usize; // child (+x, +y, -z)
        let off = child_offset(idx);
        let rc = rp / 2.0;
        let cc = [
            pc[0] + off[0] * rc,
            pc[1] + off[1] * rc,
            pc[2] + off[2] * rc,
        ];

        let (m, s) = o.d2d(parent_level + 1, idx);
        let mut d_child = vec![0.0; nd];
        m.matvec_acc_scaled(&d_par, &mut d_child, s);

        // Probe inside the child: both representations must agree.
        let probe = [cc[0] - 0.3 * rc, cc[1] + 0.1 * rc, cc[2] + 0.45 * rc];
        let mut via_child = vec![0.0];
        direct_eval(
            &Laplace,
            &[probe],
            &o.down_equiv_surface(&cc, rc),
            &d_child,
            &mut via_child,
        );
        let mut via_parent = vec![0.0];
        direct_eval(
            &Laplace,
            &[probe],
            &o.down_equiv_surface(&pc, rp),
            &d_par,
            &mut via_parent,
        );
        let rel = (via_child[0] - via_parent[0]).abs() / via_parent[0].abs().max(1e-30);
        assert!(rel < 1e-6, "D2D interior-field relative error {rel}");
    }

    /// Homogeneous rescaling must agree with direct per-level computation.
    #[test]
    fn homogeneous_scaling_matches_per_level() {
        let hom = Ops::new(Arc::new(Laplace), 4, 1e-12);
        let noh = Ops::new(Arc::new(LaplaceNoHom), 4, 1e-12);
        for level in [1u32, 2, 5] {
            let (mh, sh) = hom.m2l(level, [2, -2, 1]);
            let (mn, sn) = noh.m2l(level, [2, -2, 1]);
            assert_eq!(sn, 1.0);
            for i in 0..mh.rows() {
                for j in 0..mh.cols() {
                    let a = mh[(i, j)] * sh;
                    let b = mn[(i, j)];
                    assert!((a - b).abs() < 1e-12 * b.abs().max(1.0), "level {level}");
                }
            }
            let (uh, ush) = hom.uc2e(level);
            let (un, usn) = noh.uc2e(level);
            assert_eq!(usn, 1.0);
            let scale_err = (0..uh.rows())
                .flat_map(|i| (0..uh.cols()).map(move |j| (i, j)))
                .map(|(i, j)| (uh[(i, j)] * ush - un[(i, j)]).abs())
                .fold(0.0f64, f64::max);
            assert!(
                scale_err < 1e-7 * un.max_abs(),
                "uc2e level {level}: {scale_err}"
            );
        }
    }

    #[test]
    fn stokes_operator_shapes() {
        let o = Ops::new(Arc::new(Stokes::default()), 4, 1e-10);
        let n = surface_size(4);
        assert_eq!(o.density_len(), 3 * n);
        let (uc2e, _) = o.uc2e(2);
        assert_eq!(uc2e.rows(), 3 * n);
        assert_eq!(uc2e.cols(), 3 * n);
        let (m, _) = o.m2l(2, [0, 2, 0]);
        assert_eq!(m.rows(), 3 * n);
        assert_eq!(m.cols(), 3 * n);
    }

    #[test]
    fn level_radius_halves() {
        assert_eq!(level_radius(0), 0.5);
        assert_eq!(level_radius(1), 0.25);
        assert_eq!(level_radius(10), 0.5 / 1024.0);
    }
}
