//! Plan-owned evaluation workspaces: every buffer an apply needs, sized
//! once from the plan's LET and reused across applies so a warm
//! [`crate::driver::Fmm::apply`] performs zero steady-state heap
//! allocations (asserted by `tests/alloc_gate.rs`).
//!
//! Lifecycle: an [`EvalWorkspace`] is created lazily on the first apply
//! (or explicitly via [`crate::driver::Fmm::workspace`]) and tagged with
//! the owning plan's generation uid. Every entry point that accepts an
//! external workspace checks the tag and rebuilds the workspace in place
//! on a mismatch, so a pooled workspace can never carry stale buffers
//! into a different plan. The zero-allocation guarantee covers the
//! default engine selection (`--translate=gemm --m2l=fft-batched
//! --ulist=tiled`) at `threads = 1` on a single rank; the ablation paths
//! (scalar/dense/matvec modes, `threads > 1` fan-out, multi-rank ghost
//! exchange) stay correct but may allocate, as documented in DESIGN.md
//! §15.
//!
//! Contents:
//! * the phase accumulators (`u`, `has_up`, `ucheck`, `dcheck`, `d`,
//!   `f`) that both executors fill — the graph executor temporarily
//!   moves them into its `GraphBuf`s and restores them afterwards;
//! * the superset kernel-spectrum table for the batched M2L (every
//!   (level, transfer-vector) pair present in the V list, enumerated
//!   once at creation — per-pair spectra are independent of which edges
//!   use them, so precomputing the superset is bitwise-neutral);
//! * the lazily built tiled near-field layout, density-refreshed in
//!   place on later applies;
//! * a [`ScratchPool`] of per-worker scratch (tile-eval SoA panels,
//!   GEMM pack panels, FFT work vectors, batched-M2L accumulators)
//!   checked out by the chunk kernels of either executor.

use std::sync::{Arc, Mutex};

use pfmm_fft::Complex;
use pfmm_kernels::Point3;
use pfmm_metrics::Counter;
use pfmm_tree::{Let, Lists};

use crate::driver::{Fmm, M2lMode, TranslateMode};
use crate::exec::{offset_of, TileEval};
use crate::m2l_batched::{offset_slot, BatchScratch, SourceSpectra, SpectraTable, SpectraTmp};
use crate::nearfield::NearField;
use crate::translate::Scratch as TranslateScratch;

/// Per-worker reusable scratch, checked out of a [`ScratchPool`] by the
/// chunk kernels (both executors). Buffers warm to their steady-state
/// sizes during the first apply and are reused thereafter.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    /// SoA panels for the point↔surface tile microkernels.
    pub(crate) te: TileEval,
    /// Equivalent/check surface points (one surface live at a time).
    pub(crate) surf: Vec<Point3>,
    /// Per-leaf check potentials for the scalar S2U path.
    pub(crate) check: Vec<f64>,
    /// GEMM pack/product panels for the grouped translations.
    pub(crate) tsc: TranslateScratch,
    /// Batched-M2L target accumulators (lazily sized to the batch).
    pub(crate) batch: Option<BatchScratch>,
    /// Forward-transform staging for the batched-M2L pass 1.
    pub(crate) tmp: SpectraTmp,
    /// `(level<<9 | slot, target slot, source octant)` per V edge.
    pub(crate) edges: Vec<(u32, u32, u32)>,
    /// V-list targets of the current chunk.
    pub(crate) targets: Vec<usize>,
}

impl WorkerScratch {
    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.te.memory_bytes()
            + self.surf.capacity() * size_of::<Point3>()
            + self.check.capacity() * size_of::<f64>()
            + self.tsc.memory_bytes()
            + self.batch.as_ref().map_or(0, |b| b.memory_bytes())
            + self.tmp.memory_bytes()
            + self.edges.capacity() * size_of::<(u32, u32, u32)>()
            + self.targets.capacity() * size_of::<usize>()
    }
}

/// Fixed set of [`WorkerScratch`] slots, one per configured worker.
/// Checkout spins over `try_lock` — with at most `threads` concurrent
/// chunk kernels and `threads` slots a free slot always exists, so the
/// spin is bounded by lock-handoff time and never allocates.
pub(crate) struct ScratchPool {
    slots: Vec<Mutex<WorkerScratch>>,
}

impl ScratchPool {
    fn new(workers: usize) -> ScratchPool {
        ScratchPool {
            slots: (0..workers.max(1))
                .map(|_| Mutex::new(WorkerScratch::default()))
                .collect(),
        }
    }

    /// Run `f` with an exclusive worker scratch.
    pub(crate) fn with<R>(&self, f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
        loop {
            for s in &self.slots {
                if let Ok(mut g) = s.try_lock() {
                    return f(&mut g);
                }
            }
            std::hint::spin_loop();
        }
    }

    fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Mutex<WorkerScratch>>()
            + self
                .slots
                .iter()
                .map(|s| s.lock().map_or(0, |g| g.memory_bytes()))
                .sum::<usize>()
    }
}

/// Plan-owned reusable evaluation buffers (see the module docs).
pub struct EvalWorkspace {
    /// Generation tag of the owning plan; a mismatch forces a rebuild
    /// before the workspace is used, so pooled workspaces can never
    /// serve stale buffers.
    plan_uid: u64,
    /// Upward equivalent densities, `ulen` per octant.
    pub(crate) u: Vec<f64>,
    /// Upward occupancy per octant.
    pub(crate) has_up: Vec<bool>,
    /// S2U check potentials (gemm translate mode only; empty otherwise).
    pub(crate) ucheck: Vec<f64>,
    /// Downward check potentials, `clen` per octant.
    pub(crate) dcheck: Vec<f64>,
    /// Downward equivalent densities, `ulen` per octant.
    pub(crate) d: Vec<f64>,
    /// Potentials, `target_dim` per point, aligned with the LET storage.
    pub(crate) f: Vec<f64>,
    /// U-list chunk weights (cached after the first apply; tiled mode
    /// weights come from the near-field layout).
    pub(crate) uli_weights: Vec<u64>,
    /// V-list chunk weights (pure geometry, computed at creation).
    pub(crate) vli_weights: Vec<u64>,
    /// Tiled near-field layout: built on the first apply, then
    /// density-refreshed in place.
    pub(crate) nf: Option<NearField>,
    /// Batched-M2L kernel-spectrum table over every V-list
    /// (level, transfer-vector) pair (fft-batched mode only).
    pub(crate) btable: Option<SpectraTable>,
    /// Batched-M2L source spectra, rewritten each apply.
    pub(crate) src: SourceSpectra,
    /// V-list source octants of the current apply.
    pub(crate) sources: Vec<usize>,
    /// Source-needed flags of the current apply.
    pub(crate) needed: Vec<bool>,
    /// Per-source spectra for the non-batched FFT mode; epoch-cleared
    /// (`fill(None)`) each apply instead of reallocated.
    pub(crate) uhat: Vec<Option<Arc<Vec<Complex>>>>,
    /// Per-worker scratch slots.
    pub(crate) pool: ScratchPool,
    /// `pfmm_plan_applies_total` handle, resolved once so the hot path
    /// never touches the registry lock.
    applies: Arc<Counter>,
}

impl EvalWorkspace {
    pub(crate) fn new(fmm: &Fmm, l: &Let, lists: &Lists, plan_uid: u64) -> EvalWorkspace {
        let cfg = fmm.config();
        let noct = l.len();
        let ulen = fmm.ops().density_len();
        let clen = fmm.ops().check_len();
        let td = fmm.kernel().target_dim();
        let btable = (cfg.m2l == M2lMode::FftBatched).then(|| {
            // Superset of the evaluation-time key set: every V edge,
            // ignoring upward occupancy (which is density-dependent).
            let mut seen = std::collections::HashSet::new();
            let mut keys: Vec<(u32, [i8; 3])> = Vec::new();
            for bi in 0..noct {
                if !l.local[bi] {
                    continue;
                }
                let beta = l.octs[bi];
                for &ai in lists.v.row(bi) {
                    let off = offset_of(&l.octs[ai as usize], &beta);
                    if seen.insert(((beta.level() as u64) << 9) | offset_slot(off) as u64) {
                        keys.push((beta.level(), off));
                    }
                }
            }
            keys.sort_unstable();
            fmm.fft_batched()
                .build_table(&keys, fmm.setup_par().threads())
        });
        let vli_weights = (0..noct)
            .map(|bi| {
                if l.local[bi] {
                    lists.v.row(bi).len() as u64
                } else {
                    0
                }
            })
            .collect();
        EvalWorkspace {
            plan_uid,
            u: vec![0.0; noct * ulen],
            has_up: vec![false; noct],
            ucheck: vec![
                0.0;
                if cfg.translate == TranslateMode::Gemm {
                    noct * clen
                } else {
                    0
                }
            ],
            dcheck: vec![0.0; noct * clen],
            d: vec![0.0; noct * ulen],
            f: vec![0.0; l.pts.len() * td],
            uli_weights: Vec::new(),
            vli_weights,
            nf: None,
            btable,
            src: SourceSpectra::empty(),
            sources: Vec::new(),
            needed: Vec::new(),
            uhat: Vec::new(),
            pool: ScratchPool::new(cfg.threads.max(1)),
            applies: crate::obs::plan_apply_counter(fmm.kernel().name()),
        }
    }

    /// Generation tag of the plan this workspace was built for.
    pub fn plan_uid(&self) -> u64 {
        self.plan_uid
    }

    /// Count one apply against the pre-resolved registry counter.
    pub(crate) fn record_apply(&self) {
        if pfmm_metrics::global().enabled() {
            self.applies.inc();
        }
    }

    /// Heap bytes held by the workspace, by allocated capacity (the
    /// scratch buffers warm dynamically, so capacity — what the
    /// allocator actually handed out — is the honest figure). Feeds
    /// `FmmPlan::memory_bytes` and the serve-layer pool gauge.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.u.capacity() + self.ucheck.capacity() + self.dcheck.capacity() + self.d.capacity())
            * size_of::<f64>()
            + self.f.capacity() * size_of::<f64>()
            + self.has_up.capacity() * size_of::<bool>()
            + (self.uli_weights.capacity() + self.vli_weights.capacity()) * size_of::<u64>()
            + self.nf.as_ref().map_or(0, |n| n.memory_bytes())
            + self.btable.as_ref().map_or(0, |t| t.memory_bytes())
            + self.src.memory_bytes()
            + self.sources.capacity() * size_of::<usize>()
            + self.needed.capacity() * size_of::<bool>()
            + self.uhat.capacity() * size_of::<Option<Arc<Vec<Complex>>>>()
            + self.pool.memory_bytes()
            + size_of::<EvalWorkspace>()
    }
}
