//! Equivalent / check surface point generation.
//!
//! A surface of *order* `p` places points on the boundary nodes of a
//! `p×p×p` lattice spanning a cube — `p³ − (p−2)³ = 6p² − 12p + 8` points.
//! The four KIFMM surfaces of an octant with center `c` and half-width
//! `r` are scaled copies of it:
//!
//! | surface          | scale  |
//! |------------------|--------|
//! | upward equivalent | 1.05  |
//! | upward check      | 2.95  |
//! | downward check    | 1.05  |
//! | downward equivalent | 2.95 |
//!
//! (the classic KIFMM radii: the equivalent surface hugs the octant, the
//! check surface sits just inside the closest possible evaluation point
//! three halos away).

use pfmm_kernels::Point3;

/// Scale of the upward-equivalent / downward-check surfaces.
pub const RAD_INNER: f64 = 1.05;
/// Scale of the upward-check / downward-equivalent surfaces.
pub const RAD_OUTER: f64 = 2.95;

/// Number of surface points of order `p`.
pub fn surface_size(p: usize) -> usize {
    debug_assert!(p >= 2);
    6 * p * p - 12 * p + 8
}

/// Multi-indices (i, j, k) of the boundary nodes of a `p³` lattice, in
/// lexicographic order. Shared by the dense operators and the FFT grid
/// embedding (which must agree on the ordering).
pub fn surface_grid_indices(p: usize) -> Vec<[usize; 3]> {
    let mut out = Vec::with_capacity(surface_size(p));
    for i in 0..p {
        for j in 0..p {
            for k in 0..p {
                if i == 0 || i == p - 1 || j == 0 || j == p - 1 || k == 0 || k == p - 1 {
                    out.push([i, j, k]);
                }
            }
        }
    }
    out
}

/// Surface points of order `p` for an octant with center `c` and
/// half-width `r`, scaled by `scale`.
pub fn surface_points(p: usize, c: &Point3, r: f64, scale: f64) -> Vec<Point3> {
    let h = scale * r;
    surface_grid_indices(p)
        .into_iter()
        .map(|[i, j, k]| {
            let f = |t: usize| 2.0 * t as f64 / (p - 1) as f64 - 1.0;
            [c[0] + h * f(i), c[1] + h * f(j), c[2] + h * f(k)]
        })
        .collect()
}

/// The unit surface template of order `p`: the `f(i)` node coordinates of
/// [`surface_points`] for a box centered at the origin with `h = 1`.
/// Compute it once and stamp per-box surfaces with
/// [`surface_points_into`] — the hot executor loops generate a surface
/// per box, and rebuilding the lattice walk (plus two allocations) each
/// time costs more than the kernel evaluations it feeds at small leaf
/// occupancies.
pub fn surface_template(p: usize) -> Vec<Point3> {
    surface_points(p, &[0.0; 3], 1.0, 1.0)
}

/// Stamp `template` (from [`surface_template`]) for an octant with center
/// `c`, half-width `r`, and surface `scale` into `out` (cleared first).
/// Each coordinate is `c + (scale * r) * f` — the exact expression
/// [`surface_points`] evaluates, so the points are bitwise identical.
pub fn surface_points_into(
    template: &[Point3],
    c: &Point3,
    r: f64,
    scale: f64,
    out: &mut Vec<Point3>,
) {
    let h = scale * r;
    out.clear();
    out.extend(
        template
            .iter()
            .map(|t| [c[0] + h * t[0], c[1] + h * t[1], c[2] + h * t[2]]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(surface_size(2), 8);
        assert_eq!(surface_size(4), 56);
        assert_eq!(surface_size(6), 152);
        for p in 2..8 {
            assert_eq!(surface_grid_indices(p).len(), surface_size(p));
        }
    }

    #[test]
    fn points_lie_on_cube_surface() {
        let c = [0.5, 0.5, 0.5];
        let r = 0.25;
        let s = 1.05;
        for pt in surface_points(4, &c, r, s) {
            let d = (0..3).map(|i| (pt[i] - c[i]).abs()).fold(0.0f64, f64::max);
            assert!((d - s * r).abs() < 1e-12, "max-norm distance is the radius");
        }
    }

    #[test]
    fn surface_symmetric_about_center() {
        let c = [0.3, 0.6, 0.2];
        let pts = surface_points(3, &c, 0.1, 2.95);
        let mean: [f64; 3] = (0..3)
            .map(|d| pts.iter().map(|p| p[d]).sum::<f64>() / pts.len() as f64)
            .collect::<Vec<_>>()
            .try_into()
            .expect("three components");
        for d in 0..3 {
            assert!((mean[d] - c[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn template_stamp_is_bitwise_identical() {
        let tmpl = surface_template(5);
        let c = [0.371, -0.82, 0.059];
        let (r, scale) = (0.0625, 2.95);
        let want = surface_points(5, &c, r, scale);
        let mut got = vec![[9.0; 3]; 2]; // nonempty: must be cleared
        surface_points_into(&tmpl, &c, r, scale, &mut got);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            for d in 0..3 {
                assert_eq!(g[d].to_bits(), w[d].to_bits());
            }
        }
    }

    #[test]
    fn indices_cover_all_faces() {
        let idx = surface_grid_indices(4);
        for face in 0..3 {
            assert!(idx.iter().any(|m| m[face] == 0));
            assert!(idx.iter().any(|m| m[face] == 3));
        }
        // No interior nodes.
        assert!(!idx.contains(&[1, 1, 1]));
        assert!(!idx.contains(&[2, 2, 1]));
    }
}
