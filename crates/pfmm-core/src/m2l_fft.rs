//! FFT-diagonalized V-list translation (paper §IV).
//!
//! The surface points of order `p` are the boundary nodes of a `p³`
//! lattice, so the M2L map "source equivalent density → target downward
//! check potential" is a cross-correlation on that lattice:
//!
//! `check(t) = Σ_s K(D + h·(t − s)) · q(s)`,
//!
//! with `D` the box-center offset and `h` the lattice spacing. Embedding
//! both grids in a `(2p)³` torus turns each of the ≤316 V-list offsets
//! into a pointwise multiply in frequency space — the paper's "diagonal
//! translation". Source spectra depend only on the density values (the
//! geometry is folded into the kernel spectra), so each source octant is
//! transformed once regardless of how many V-lists it appears on.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use pfmm_fft::{Complex, Fft3};
use pfmm_kernels::Kernel;

use crate::ops::level_radius;
use crate::surface::{surface_grid_indices, RAD_INNER};

/// Cache of kernel spectra keyed by (level, V-list offset).
type SpectraCache = Mutex<HashMap<(u32, [i8; 3]), Arc<Vec<Complex>>>>;

/// The FFT M2L engine for one kernel and surface order.
pub struct FftM2l {
    kernel: Arc<dyn Kernel>,
    order: usize,
    /// Torus side `n = 2p`.
    n: usize,
    fft: Fft3,
    surf_idx: Vec<[usize; 3]>,
    /// Kernel spectra per (level, offset): `td*sd` concatenated grids.
    /// Homogeneous kernels store level 0 only and rescale.
    spectra: SpectraCache,
}

impl FftM2l {
    /// Create an engine; `order` must match the operator cache in use.
    pub fn new(kernel: Arc<dyn Kernel>, order: usize) -> FftM2l {
        let n = 2 * order;
        FftM2l {
            kernel,
            order,
            n,
            fft: Fft3::new(n),
            surf_idx: surface_grid_indices(order),
            spectra: Mutex::new(HashMap::new()),
        }
    }

    /// Grid cells per component spectrum.
    pub fn grid_len(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Number of source-dimension components.
    pub fn sd(&self) -> usize {
        self.kernel.source_dim()
    }

    /// Number of target-dimension components.
    pub fn td(&self) -> usize {
        self.kernel.target_dim()
    }

    #[inline]
    fn grid_index(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.n + y) * self.n + z
    }

    /// Forward-transform a source octant's equivalent density
    /// (`n_surf * sd` packed values) into `sd` spectra.
    pub fn source_spectrum(&self, u: &[f64]) -> Vec<Complex> {
        let sd = self.sd();
        debug_assert_eq!(u.len(), self.surf_idx.len() * sd);
        let g = self.grid_len();
        let mut out = vec![Complex::ZERO; sd * g];
        for c in 0..sd {
            let grid = &mut out[c * g..(c + 1) * g];
            for (s, m) in self.surf_idx.iter().enumerate() {
                grid[self.grid_index(m[0], m[1], m[2])] = Complex::real(u[s * sd + c]);
            }
            self.fft.forward(grid);
        }
        out
    }

    /// The kernel spectra for a V-list `offset` at `level` and the scale
    /// to apply (1.0 for non-homogeneous kernels, which are cached per
    /// level).
    pub fn kernel_spectrum(&self, level: u32, offset: [i8; 3]) -> (Arc<Vec<Complex>>, f64) {
        let (base, scale) = match self.kernel.homogeneity() {
            Some(h) => (0, (level_radius(level) / level_radius(0)).powf(h)),
            None => (level, 1.0),
        };
        if let Some(spec) = self.spectra.lock().get(&(base, offset)).cloned() {
            return (spec, scale);
        }
        // Build outside the lock so concurrent first touches of distinct
        // offsets don't serialize; a racing duplicate build is dropped by
        // the re-check insert.
        let built = Arc::new(self.build_kernel_spectrum(base, offset));
        let spec = self
            .spectra
            .lock()
            .entry((base, offset))
            .or_insert(built)
            .clone();
        (spec, scale)
    }

    fn build_kernel_spectrum(&self, level: u32, offset: [i8; 3]) -> Vec<Complex> {
        let p = self.order;
        let n = self.n;
        let g = self.grid_len();
        let sd = self.sd();
        let td = self.td();
        let r = level_radius(level);
        let h = 2.0 * RAD_INNER * r / (p - 1) as f64;
        let d = [
            offset[0] as f64 * 2.0 * r,
            offset[1] as f64 * 2.0 * r,
            offset[2] as f64 * 2.0 * r,
        ];
        let mut block = vec![0.0; td * sd];
        let mut grids = vec![Complex::ZERO; td * sd * g];
        let half = p as i64 - 1;
        for mx in -half..=half {
            for my in -half..=half {
                for mz in -half..=half {
                    let x = [
                        d[0] + h * mx as f64,
                        d[1] + h * my as f64,
                        d[2] + h * mz as f64,
                    ];
                    self.kernel.eval_block(&x, &[0.0; 3], &mut block);
                    let gi = self.grid_index(
                        mx.rem_euclid(n as i64) as usize,
                        my.rem_euclid(n as i64) as usize,
                        mz.rem_euclid(n as i64) as usize,
                    );
                    for tc in 0..td {
                        for sc in 0..sd {
                            grids[(tc * sd + sc) * g + gi] = Complex::real(block[tc * sd + sc]);
                        }
                    }
                }
            }
        }
        for pair in 0..td * sd {
            self.fft.forward(&mut grids[pair * g..(pair + 1) * g]);
        }
        grids
    }

    /// Accumulate one V-list contribution into a target's spectral
    /// accumulator (`td` grids): `acc_i += scale * Σ_j K̂_ij ⊙ û_j`.
    pub fn accumulate(
        &self,
        acc: &mut [Complex],
        kernel_spec: &[Complex],
        source_spec: &[Complex],
        scale: f64,
    ) {
        let g = self.grid_len();
        let sd = self.sd();
        let td = self.td();
        debug_assert_eq!(acc.len(), td * g);
        debug_assert_eq!(kernel_spec.len(), td * sd * g);
        debug_assert_eq!(source_spec.len(), sd * g);
        for tc in 0..td {
            let a = &mut acc[tc * g..(tc + 1) * g];
            for sc in 0..sd {
                let k = &kernel_spec[(tc * sd + sc) * g..(tc * sd + sc + 1) * g];
                let u = &source_spec[sc * g..(sc + 1) * g];
                for i in 0..g {
                    a[i] += (k[i] * u[i]).scale(scale);
                }
            }
        }
    }

    /// Inverse-transform a target's accumulator and add the surface values
    /// into the packed downward check potential (`n_surf * td`).
    pub fn finish(&self, mut acc: Vec<Complex>, dcheck: &mut [f64]) {
        let g = self.grid_len();
        let td = self.td();
        debug_assert_eq!(dcheck.len(), self.surf_idx.len() * td);
        for tc in 0..td {
            let grid = &mut acc[tc * g..(tc + 1) * g];
            self.fft.inverse(grid);
            for (t, m) in self.surf_idx.iter().enumerate() {
                dcheck[t * td + tc] += grid[self.grid_index(m[0], m[1], m[2])].re;
            }
        }
    }

    /// A zeroed spectral accumulator for one target octant.
    pub fn new_accumulator(&self) -> Vec<Complex> {
        vec![Complex::ZERO; self.td() * self.grid_len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Ops;
    use pfmm_kernels::{Laplace, Stokes};

    fn check_matches_dense(kernel: Arc<dyn Kernel>, order: usize, level: u32, offset: [i8; 3]) {
        let ops = Ops::new(kernel.clone(), order, 1e-12);
        let eng = FftM2l::new(kernel, order);
        let nd = ops.density_len();
        let u: Vec<f64> = (0..nd).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();

        // Dense path.
        let (m, s) = ops.m2l(level, offset);
        let mut dense = vec![0.0; ops.check_len()];
        m.matvec_acc_scaled(&u, &mut dense, s);

        // FFT path.
        let uhat = eng.source_spectrum(&u);
        let (khat, scale) = eng.kernel_spectrum(level, offset);
        let mut acc = eng.new_accumulator();
        eng.accumulate(&mut acc, &khat, &uhat, scale);
        let mut fftv = vec![0.0; ops.check_len()];
        eng.finish(acc, &mut fftv);

        let denom = dense
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-30);
        for (a, b) in fftv.iter().zip(&dense) {
            assert!(
                (a - b).abs() < 1e-10 * denom,
                "fft {a} vs dense {b} (order {order}, offset {offset:?})"
            );
        }
    }

    #[test]
    fn laplace_matches_dense_m2l() {
        check_matches_dense(Arc::new(Laplace), 4, 2, [2, 0, 0]);
        check_matches_dense(Arc::new(Laplace), 4, 3, [-3, 2, 1]);
        check_matches_dense(Arc::new(Laplace), 6, 1, [0, -2, 3]);
    }

    #[test]
    fn stokes_matches_dense_m2l() {
        check_matches_dense(Arc::new(Stokes::default()), 4, 2, [2, -2, 0]);
        check_matches_dense(Arc::new(Stokes { mu: 0.7 }), 4, 4, [3, 1, -2]);
    }

    #[test]
    fn accumulation_is_linear() {
        let eng = FftM2l::new(Arc::new(Laplace), 4);
        let nd = eng.surf_idx.len();
        let u1: Vec<f64> = (0..nd).map(|i| i as f64).collect();
        let u2: Vec<f64> = (0..nd).map(|i| (nd - i) as f64).collect();
        let (khat, s) = eng.kernel_spectrum(2, [0, 2, 0]);

        // Two accumulations vs the accumulation of the sum.
        let mut acc = eng.new_accumulator();
        eng.accumulate(&mut acc, &khat, &eng.source_spectrum(&u1), s);
        eng.accumulate(&mut acc, &khat, &eng.source_spectrum(&u2), s);
        let mut two = vec![0.0; nd];
        eng.finish(acc, &mut two);

        let sum: Vec<f64> = u1.iter().zip(&u2).map(|(a, b)| a + b).collect();
        let mut acc2 = eng.new_accumulator();
        eng.accumulate(&mut acc2, &khat, &eng.source_spectrum(&sum), s);
        let mut one = vec![0.0; nd];
        eng.finish(acc2, &mut one);

        for (a, b) in two.iter().zip(&one) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
        }
    }
}
