//! Tiled SoA near-field (U-list) engine — the CPU analogue of the GPU
//! U-list data structure (`pfmm-gpusim::layout`, paper §IV).
//!
//! The scalar U-list path walks AoS `[f64; 3]` points through a `&dyn
//! Kernel` per edge; it neither vectorizes nor amortizes layout work.
//! [`NearField`] pays a one-time translation cost instead (the
//! Hu/Gumerov/Duraiswami argument: flat interaction representations beat
//! pointer walks): leaf points and densities are packed into separate
//! x/y/z/density *planes* whose per-box source length is padded to
//! [`LANE`], padding lanes carrying zero density at a far-away sentinel —
//! exactly the GPU layout's discipline, in f64. The U-list becomes a CSR
//! over target boxes with each row's entries **sorted by source box id**,
//! so consecutive target boxes (which share most of their U neighbours)
//! walk source tiles in the same ascending order and each tile is
//! resolved once per batch while hot in cache.
//!
//! Evaluation goes through [`pfmm_kernels::TileKernel::eval_tiles`] —
//! one virtual call per U-edge, monomorphized branch-free microkernels
//! inside (the `max(NaN, x)` self-interaction trick; see
//! `pfmm-kernels::tile`). Per-target accumulation order is fixed by the
//! sorted CSR and the microkernels' lane reduction, so the barrier and
//! graph executors produce bitwise-identical potentials.

use std::ops::Range;
use std::time::Instant;

use pfmm_kernels::{Point3, TileKernel, Tiles, LANE};
use pfmm_tree::{Let, Lists, SetupPar};

use crate::par::{chunk_cuts, par_map_n};
use crate::profile::flop_model;

/// Sentinel position of padding lanes: far outside the unit cube, so a
/// padded source can never coincide with a real target (its huge `r²`
/// meets a zero density and contributes exactly `0.0`). The f64 twin of
/// `pfmm-gpusim`'s `[-1e9; 3]` source padding.
pub const PAD_POS: f64 = -1.0e9;

/// Padded SoA tiles for the near field plus the CSR U-list over target
/// boxes, and the measured cost of building them.
pub struct NearField {
    /// Density components per source point.
    pub sd: usize,

    /// Source box id for each LET octant (`-1` if not a point-carrying
    /// leaf). Source boxes can be any leaf in the LET, owned or ghost.
    pub src_box_of_oct: Vec<i32>,
    /// Per source box: start of its padded range in the source planes
    /// (a multiple of [`LANE`]).
    pub src_off: Vec<u32>,
    /// Per source box: real (unpadded) point count.
    pub src_cnt: Vec<u32>,
    /// Per source box: the LET octant it packs (the inverse of
    /// `src_box_of_oct`, kept so [`NearField::refresh_densities`] can
    /// re-gather from `leaf_den` without a rebuild).
    pub src_oct: Vec<u32>,
    /// Padded source coordinate planes; padding lanes sit at [`PAD_POS`].
    pub sx: Vec<f64>,
    pub sy: Vec<f64>,
    pub sz: Vec<f64>,
    /// Padded densities, `sd` planes per box back to back: box `b` with
    /// padded range `off..end` holds component `c` of its point `j` at
    /// `sden[off*sd + c*(end-off) + j]`. Padding lanes are `0.0`.
    pub sden: Vec<f64>,

    /// Target box id for each LET octant (`-1` if not an owned
    /// point-carrying leaf) — the same skip condition as the scalar path.
    pub tgt_box_of_oct: Vec<i32>,
    /// Per target box: the LET octant it evaluates.
    pub tgt_oct: Vec<u32>,
    /// Per target box: offset into the LET point storage (`l.pt_off`),
    /// for indexing the output potential array.
    pub tgt_pt_off: Vec<u32>,
    /// Per target box: offset into the (unpadded) target planes.
    pub tgt_coff: Vec<u32>,
    /// Per target box: point count.
    pub tgt_cnt: Vec<u32>,
    /// Target coordinate planes, unpadded — the outer microkernel loop
    /// walks real targets only.
    pub tx: Vec<f64>,
    pub ty: Vec<f64>,
    pub tz: Vec<f64>,

    /// U-list in CSR over target boxes; entries are source box ids,
    /// sorted ascending within each row (source boxes are numbered in
    /// octant order, so this is Morton order — the fixed accumulation
    /// order both executors share).
    pub ulist_off: Vec<u32>,
    pub ulist: Vec<u32>,

    /// Per-octant padded pair counts (`nt · ns_padded` summed over the
    /// row) — the barrier executor's chunk weights: wall time follows
    /// padded lanes, not real pairs.
    weights: Vec<u64>,
    /// Total real source/target pairs (flop accounting stays real).
    pub real_pairs: u64,
    /// Total padded pairs actually evaluated.
    pub padded_pairs: u64,

    /// Wall-clock seconds spent building this layout (charged to the
    /// U-list phase, the same way the GPU run charges translation).
    pub build_secs: f64,
}

impl NearField {
    /// Build the tiled layout from a LET, its lists, and the per-octant
    /// geometry of `EvalData`.
    pub fn build(
        l: &Let,
        lists: &Lists,
        leaf_pos: &[Vec<Point3>],
        leaf_den: &[Vec<f64>],
        sd: usize,
    ) -> NearField {
        NearField::build_with(l, lists, leaf_pos, leaf_den, sd, SetupPar::Serial)
    }

    /// [`NearField::build`] with the plane fills and per-row CSR
    /// construction parallelized under `par`. The source planes are
    /// filled chunk-by-chunk (chunk boundaries fall on padded box
    /// boundaries, so chunks own disjoint ranges and concatenate to the
    /// serial layout byte for byte); the per-target sorted U rows are
    /// independent and reassembled in octant order. The result is
    /// identical to the serial build.
    pub fn build_with(
        l: &Let,
        lists: &Lists,
        leaf_pos: &[Vec<Point3>],
        leaf_den: &[Vec<f64>],
        sd: usize,
        par: SetupPar,
    ) -> NearField {
        let t0 = Instant::now();
        let noct = l.len();
        let pad = |n: usize| n.div_ceil(LANE) * LANE;

        // Source boxes: every leaf with points (owned or ghost).
        let mut src_box_of_oct = vec![-1i32; noct];
        let mut src_off = Vec::new();
        let mut src_cnt = Vec::new();
        let mut src_oct = Vec::new();
        let mut total = 0usize;
        for i in 0..noct {
            if !l.is_leaf[i] || leaf_pos[i].is_empty() {
                continue;
            }
            src_box_of_oct[i] = src_off.len() as i32;
            src_off.push(total as u32);
            src_cnt.push(leaf_pos[i].len() as u32);
            src_oct.push(i as u32);
            total += pad(leaf_pos[i].len());
        }
        let nsrc = src_off.len();
        let cuts = chunk_cuts(par.threads(), nsrc);
        // (sx, sy, sz, sden) plane segments for one contiguous box range.
        type PlaneChunk = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
        let chunks: Vec<PlaneChunk> = par_map_n(par.threads(), cuts.len() - 1, |k| {
            let (b0, b1) = (cuts[k], cuts[k + 1]);
            let start = if b0 < nsrc {
                src_off[b0] as usize
            } else {
                total
            };
            let end = if b1 < nsrc {
                src_off[b1] as usize
            } else {
                total
            };
            let span = end - start;
            let mut sx = vec![PAD_POS; span];
            let mut sy = vec![PAD_POS; span];
            let mut sz = vec![PAD_POS; span];
            let mut sden = vec![0.0f64; span * sd];
            for sb in b0..b1 {
                let i = src_oct[sb] as usize;
                let off = src_off[sb] as usize - start;
                let n = src_cnt[sb] as usize;
                let m = pad(n);
                for (j, p) in leaf_pos[i].iter().enumerate() {
                    sx[off + j] = p[0];
                    sy[off + j] = p[1];
                    sz[off + j] = p[2];
                }
                // AoS (sd per point) → sd planes of m padded lanes.
                let planes = &mut sden[off * sd..(off + m) * sd];
                for (j, d) in leaf_den[i].chunks_exact(sd).enumerate() {
                    for (c, v) in d.iter().enumerate() {
                        planes[c * m + j] = *v;
                    }
                }
            }
            (sx, sy, sz, sden)
        });
        let mut sx = Vec::with_capacity(total);
        let mut sy = Vec::with_capacity(total);
        let mut sz = Vec::with_capacity(total);
        let mut sden = Vec::with_capacity(total * sd);
        for (cx, cy, cz, cd) in chunks {
            sx.extend_from_slice(&cx);
            sy.extend_from_slice(&cy);
            sz.extend_from_slice(&cz);
            sden.extend_from_slice(&cd);
        }

        // Per-target sorted U rows, built in parallel; the serial
        // assembly below consumes them in octant order.
        let rows: Vec<Vec<u32>> = par_map_n(par.threads(), noct, |i| {
            if !l.owned[i] || leaf_pos[i].is_empty() {
                return Vec::new();
            }
            let mut row: Vec<u32> = lists
                .u
                .row(i)
                .iter()
                .filter_map(|&ai| {
                    let sb = src_box_of_oct[ai as usize];
                    (sb >= 0).then_some(sb as u32)
                })
                .collect();
            row.sort_unstable();
            row
        });

        // Target boxes: owned leaves with points (the scalar path's skip
        // condition), plus the sorted CSR and the chunk weights.
        let mut tgt_box_of_oct = vec![-1i32; noct];
        let mut tgt_oct = Vec::new();
        let mut tgt_pt_off = Vec::new();
        let mut tgt_coff = Vec::new();
        let mut tgt_cnt = Vec::new();
        let (mut tx, mut ty, mut tz) = (Vec::new(), Vec::new(), Vec::new());
        let mut ulist_off = vec![0u32];
        let mut ulist: Vec<u32> = Vec::new();
        let mut weights = vec![0u64; noct];
        let (mut real_pairs, mut padded_pairs) = (0u64, 0u64);
        for i in 0..noct {
            if !l.owned[i] || leaf_pos[i].is_empty() {
                continue;
            }
            tgt_box_of_oct[i] = tgt_oct.len() as i32;
            tgt_oct.push(i as u32);
            tgt_pt_off.push(l.pt_off[i] as u32);
            tgt_coff.push(tx.len() as u32);
            let nt = leaf_pos[i].len();
            tgt_cnt.push(nt as u32);
            for p in &leaf_pos[i] {
                tx.push(p[0]);
                ty.push(p[1]);
                tz.push(p[2]);
            }
            ulist.extend_from_slice(&rows[i]);
            for &sb in &rows[i] {
                let ns = src_cnt[sb as usize] as u64;
                real_pairs += nt as u64 * ns;
                padded_pairs += nt as u64 * pad(ns as usize) as u64;
                weights[i] += nt as u64 * pad(ns as usize) as u64;
            }
            ulist_off.push(ulist.len() as u32);
        }

        NearField {
            sd,
            src_box_of_oct,
            src_off,
            src_cnt,
            src_oct,
            sx,
            sy,
            sz,
            sden,
            tgt_box_of_oct,
            tgt_oct,
            tgt_pt_off,
            tgt_coff,
            tgt_cnt,
            tx,
            ty,
            tz,
            ulist_off,
            ulist,
            weights,
            real_pairs,
            padded_pairs,
            build_secs: t0.elapsed().as_secs_f64(),
        }
    }

    /// Number of target boxes.
    pub fn num_tgt_boxes(&self) -> usize {
        self.tgt_oct.len()
    }

    /// Number of source boxes.
    pub fn num_src_boxes(&self) -> usize {
        self.src_off.len()
    }

    /// Padded source-plane range of a source box.
    pub fn src_range(&self, b: usize) -> Range<usize> {
        let start = self.src_off[b] as usize;
        let end = if b + 1 < self.src_off.len() {
            self.src_off[b + 1] as usize
        } else {
            self.sx.len()
        };
        start..end
    }

    /// Per-octant padded-pair weights for interaction-weighted range
    /// splitting (`par_windows_weighted` / `weighted_cuts`).
    pub fn oct_weights(&self) -> &[u64] {
        &self.weights
    }

    /// Re-gather the density planes from fresh `leaf_den` without
    /// rebuilding the layout: per-box point counts are fixed by the
    /// geometry, so every real lane is rewritten (padding lanes keep the
    /// `0.0` they got at build time) and the planes end up byte-identical
    /// to a fresh [`NearField::build_with`] of the same densities. This
    /// is the plan-reuse path: O(points · sd) instead of a full rebuild,
    /// and allocation-free.
    pub fn refresh_densities(&mut self, leaf_den: &[Vec<f64>]) {
        let sd = self.sd;
        for sb in 0..self.src_oct.len() {
            let i = self.src_oct[sb] as usize;
            let r = self.src_range(sb);
            let m = r.len();
            let planes = &mut self.sden[r.start * sd..r.end * sd];
            for (j, d) in leaf_den[i].chunks_exact(sd).enumerate() {
                for (c, &v) in d.iter().enumerate() {
                    planes[c * m + j] = v;
                }
            }
        }
    }

    /// Heap bytes held by the layout (element counts × element sizes);
    /// feeds the workspace/plan memory accounting.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.src_box_of_oct.len() + self.tgt_box_of_oct.len()) * size_of::<i32>()
            + (self.src_off.len()
                + self.src_cnt.len()
                + self.src_oct.len()
                + self.tgt_oct.len()
                + self.tgt_pt_off.len()
                + self.tgt_coff.len()
                + self.tgt_cnt.len()
                + self.ulist_off.len()
                + self.ulist.len())
                * size_of::<u32>()
            + (self.sx.len()
                + self.sy.len()
                + self.sz.len()
                + self.sden.len()
                + self.tx.len()
                + self.ty.len()
                + self.tz.len())
                * size_of::<f64>()
            + self.weights.len() * size_of::<u64>()
    }

    /// Evaluate the U-list for target octants in `range` through the
    /// tiled microkernels; `window` is the matching point-potential
    /// slice (element 0 at global offset `base`), exactly like the
    /// scalar `uli_range`. Returns real-pair flops.
    pub fn eval_range(
        &self,
        tk: &dyn TileKernel,
        td: usize,
        flops_pair: u64,
        range: Range<usize>,
        window: &mut [f64],
        base: usize,
    ) -> u64 {
        let sd = self.sd;
        let mut fl = 0u64;
        for bi in range {
            let tb = self.tgt_box_of_oct[bi];
            if tb < 0 {
                continue;
            }
            let tb = tb as usize;
            let nt = self.tgt_cnt[tb] as usize;
            let po = self.tgt_pt_off[tb] as usize;
            let co = self.tgt_coff[tb] as usize;
            let out = &mut window[po * td - base..(po + nt) * td - base];
            let (tx, ty, tz) = (
                &self.tx[co..co + nt],
                &self.ty[co..co + nt],
                &self.tz[co..co + nt],
            );
            let (r0, r1) = (self.ulist_off[tb] as usize, self.ulist_off[tb + 1] as usize);
            for &sb in &self.ulist[r0..r1] {
                let sb = sb as usize;
                let sr = self.src_range(sb);
                tk.eval_tiles(
                    Tiles {
                        tx,
                        ty,
                        tz,
                        sx: &self.sx[sr.clone()],
                        sy: &self.sy[sr.clone()],
                        sz: &self.sz[sr.clone()],
                        den: &self.sden[sr.start * sd..sr.end * sd],
                    },
                    out,
                );
                fl += flop_model::ulist_edge(nt, self.src_cnt[sb] as usize, flops_pair);
            }
        }
        fl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_kernels::{direct_eval, Kernel, Laplace, LaplaceDipole, Stokes, Yukawa};
    use pfmm_mpisim::run;
    use pfmm_tree::{build_let, build_lists, points_to_octree, PointRec};

    /// Clustered, nonuniform point set with exact duplicates (coincident
    /// target/source pairs within a leaf): half the points bunch into a
    /// small ball, and every 10th point duplicates its predecessor.
    fn clustered_points(n: usize) -> Vec<PointRec> {
        let mut st = 99u64;
        let mut rng = move || {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 11) as f64) / (1u64 << 53) as f64
        };
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let pos = if i % 2 == 0 {
                [0.3 + 0.02 * rng(), 0.6 + 0.02 * rng(), 0.2 + 0.02 * rng()]
            } else {
                [rng(), rng(), rng()]
            };
            let pos = if i % 10 == 3 && i > 0 {
                let prev: &PointRec = &pts[i - 1];
                prev.pos
            } else {
                pos
            };
            pts.push(PointRec::vector(
                pos,
                [1.0 - rng(), rng() - 0.5, 0.25 * rng()],
                i as u64,
            ));
        }
        pts
    }

    fn small_let(n: usize, q: usize) -> (Let, Lists) {
        let pts = clustered_points(n);
        run(1, |c| {
            let t = points_to_octree(c, pts.clone(), q);
            let l = build_let(c, &t);
            let lists = build_lists(&l);
            (l, lists)
        })
        .pop()
        .expect("one rank")
    }

    fn eval_data(l: &Let, sd: usize) -> (Vec<Vec<Point3>>, Vec<Vec<f64>>) {
        let data = crate::exec::EvalData::new(l, sd);
        (data.leaf_pos, data.leaf_den)
    }

    /// The scalar U-list reference: the same loop `Ctx::uli_range` runs.
    fn scalar_ulist(
        kernel: &dyn Kernel,
        l: &Let,
        lists: &Lists,
        leaf_pos: &[Vec<Point3>],
        leaf_den: &[Vec<f64>],
    ) -> Vec<f64> {
        let td = kernel.target_dim();
        let mut f = vec![0.0f64; l.pts.len() * td];
        for bi in 0..l.len() {
            if !l.owned[bi] || leaf_pos[bi].is_empty() {
                continue;
            }
            let (off, n) = (l.pt_off[bi], leaf_pos[bi].len());
            for &ai in lists.u.row(bi) {
                let ai = ai as usize;
                if leaf_pos[ai].is_empty() {
                    continue;
                }
                direct_eval(
                    kernel,
                    &leaf_pos[bi],
                    &leaf_pos[ai],
                    &leaf_den[ai],
                    &mut f[off * td..(off + n) * td],
                );
            }
        }
        f
    }

    fn check_tiled_matches_scalar(kernel: &dyn Kernel, tol: f64) {
        let (l, lists) = small_let(700, 12);
        let sd = kernel.source_dim();
        let td = kernel.target_dim();
        let (leaf_pos, leaf_den) = eval_data(&l, sd);
        let want = scalar_ulist(kernel, &l, &lists, &leaf_pos, &leaf_den);

        let nf = NearField::build(&l, &lists, &leaf_pos, &leaf_den, sd);
        let tk = kernel.as_tile_kernel().expect("built-in kernel");
        let mut got = vec![0.0f64; l.pts.len() * td];
        nf.eval_range(tk, td, kernel.flops_per_pair(), 0..l.len(), &mut got, 0);

        let scale = want.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!(scale > 0.0, "degenerate reference");
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() <= tol * scale,
                "{}: {g} vs {w} (scale {scale})",
                kernel.name()
            );
        }
    }

    #[test]
    fn tiled_matches_scalar_laplace() {
        check_tiled_matches_scalar(&Laplace, 1e-13);
    }

    #[test]
    fn tiled_matches_scalar_yukawa() {
        check_tiled_matches_scalar(&Yukawa { lambda: 3.0 }, 1e-13);
    }

    #[test]
    fn tiled_matches_scalar_stokes() {
        check_tiled_matches_scalar(&Stokes { mu: 0.9 }, 1e-13);
    }

    #[test]
    fn tiled_matches_scalar_dipole() {
        check_tiled_matches_scalar(&LaplaceDipole, 1e-13);
    }

    #[test]
    fn layout_invariants() {
        let (l, lists) = small_let(500, 9);
        let (leaf_pos, leaf_den) = eval_data(&l, 1);
        let nf = NearField::build(&l, &lists, &leaf_pos, &leaf_den, 1);
        assert_eq!(nf.sx.len() % LANE, 0);
        let real: u32 = nf.src_cnt.iter().sum();
        assert_eq!(real as usize, 500);
        for b in 0..nf.num_src_boxes() {
            let r = nf.src_range(b);
            assert_eq!(r.len() % LANE, 0);
            let n = nf.src_cnt[b] as usize;
            assert!(r.len() >= n);
            // Padding: sentinel position, zero density in every plane.
            for j in r.start + n..r.end {
                assert_eq!(nf.sx[j], PAD_POS);
                assert_eq!(nf.sy[j], PAD_POS);
                assert_eq!(nf.sz[j], PAD_POS);
            }
            let m = r.len();
            let planes = &nf.sden[r.start..r.start + m];
            for &v in &planes[n..m] {
                assert_eq!(v, 0.0);
            }
        }
        // CSR rows sorted ascending — the fixed accumulation order.
        for tb in 0..nf.num_tgt_boxes() {
            let row = &nf.ulist[nf.ulist_off[tb] as usize..nf.ulist_off[tb + 1] as usize];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        }
        assert!(nf.real_pairs > 0 && nf.padded_pairs >= nf.real_pairs);
        assert!(nf.build_secs > 0.0);
    }

    #[test]
    fn eval_is_deterministic_across_chunkings() {
        // Chunking the octant range differently (barrier vs graph cuts)
        // must be bitwise irrelevant: each target box is wholly inside
        // one chunk and its row order is fixed.
        let (l, lists) = small_let(600, 11);
        let (leaf_pos, leaf_den) = eval_data(&l, 1);
        let nf = NearField::build(&l, &lists, &leaf_pos, &leaf_den, 1);
        let tk = Laplace.as_tile_kernel().expect("tile kernel");
        let mut whole = vec![0.0f64; l.pts.len()];
        nf.eval_range(tk, 1, 20, 0..l.len(), &mut whole, 0);
        let mut split = vec![0.0f64; l.pts.len()];
        let mid = l.len() / 3;
        for r in [0..mid, mid..l.len()] {
            let b0 = l.pt_off[r.start];
            let b1 = l.pt_off[r.end.min(l.len())];
            nf.eval_range(tk, 1, 20, r, &mut split[b0..b1], b0);
        }
        for (a, b) in whole.iter().zip(&split) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
