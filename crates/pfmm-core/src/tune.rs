//! Points-per-box autotuning.
//!
//! The paper's Table III experiment "resembles the tuning phase and can
//! be part of an autotuning algorithm": the optimal `q` balances the
//! direct U-list work (grows with `q`) against the translation work
//! (shrinks with `q`), and the optimum depends on the kernel, the
//! surface order, and the architecture. [`autotune_q`] runs the real
//! pipeline on a subsample and picks the `q` minimizing measured
//! evaluation time; [`autotune_q_modeled`] minimizes modeled 2009-rate
//! time from the flop counters instead (deterministic, host-independent —
//! what a batch scheduler would use).
//!
//! [`m2l_level_stats`] / [`m2l_crossover`] apply the same modeled-cost
//! idea to the V-list mode: per tree level, compare the dense per-edge
//! operators against the batched half-spectrum path (whose per-source
//! and per-target transforms only pay off once the level carries enough
//! edges) using the shared [`flop_model`] formulas.
//!
//! [`ulist_stats`] / [`ulist_crossover`] do the same for the near field:
//! the tiled SoA engine trades a per-pair speedup against lane padding
//! (which inflates the work by `pad(q)/q`) and an `O(N)` tile build, so
//! leaves below [`ulist_breakeven_points_per_leaf`] points favor the
//! scalar path.

use pfmm_kernels::LANE;
use pfmm_mpisim::run;
use pfmm_tree::{build_let, build_lists, octree_from_sorted, PointRec};

use crate::driver::{Fmm, FmmConfig};
use crate::exec::EvalData;
use crate::nearfield::NearField;
use crate::profile::{flop_model, Phase};

/// Result of one tuning probe.
#[derive(Copy, Clone, Debug)]
pub struct TunePoint {
    /// Candidate points-per-box.
    pub q: usize,
    /// Measured evaluation seconds on the subsample.
    pub wall_secs: f64,
    /// Modeled 2009-rate seconds from the flop counters.
    pub modeled_secs: f64,
}

/// Probe every candidate `q` on (a subsample of) the points and return
/// the per-candidate costs. `sample` bounds the subsample size; the
/// subsample keeps the distribution's shape by striding.
pub fn tune_sweep(
    fmm_for: impl Fn(usize) -> Fmm,
    points: &[PointRec],
    candidates: &[usize],
    sample: usize,
) -> Vec<TunePoint> {
    let stride = (points.len() / sample.max(1)).max(1);
    let sub: Vec<PointRec> = points.iter().step_by(stride).copied().collect();
    candidates
        .iter()
        .map(|&q| {
            let fmm = fmm_for(q);
            let prof = run(1, |c| fmm.evaluate(c, sub.clone()).profile.clone())
                .pop()
                .expect("one rank");
            let modeled = Phase::ALL
                .iter()
                .map(|&ph| prof.flops(ph) as f64 / 0.5e9)
                .sum();
            TunePoint {
                q,
                wall_secs: prof.total_secs,
                modeled_secs: modeled,
            }
        })
        .collect()
}

/// Pick the `q` minimizing measured evaluation time on a subsample.
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn autotune_q(
    cfg: FmmConfig,
    kernel: std::sync::Arc<dyn pfmm_kernels::Kernel>,
    points: &[PointRec],
    candidates: &[usize],
    sample: usize,
) -> usize {
    assert!(!candidates.is_empty());
    let sweep = tune_sweep(
        |q| Fmm::new(kernel.clone(), FmmConfig { q, ..cfg }),
        points,
        candidates,
        sample,
    );
    sweep
        .iter()
        .min_by(|a, b| a.wall_secs.partial_cmp(&b.wall_secs).expect("finite times"))
        .expect("nonempty")
        .q
}

/// Pick the `q` minimizing *modeled* evaluation time (deterministic).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn autotune_q_modeled(
    cfg: FmmConfig,
    kernel: std::sync::Arc<dyn pfmm_kernels::Kernel>,
    points: &[PointRec],
    candidates: &[usize],
    sample: usize,
) -> usize {
    assert!(!candidates.is_empty());
    let sweep = tune_sweep(
        |q| Fmm::new(kernel.clone(), FmmConfig { q, ..cfg }),
        points,
        candidates,
        sample,
    );
    sweep
        .iter()
        .min_by(|a, b| {
            a.modeled_secs
                .partial_cmp(&b.modeled_secs)
                .expect("finite times")
        })
        .expect("nonempty")
        .q
}

/// V-list statistics of one tree level, gathered from a built LET.
#[derive(Copy, Clone, Debug)]
pub struct M2lLevelStats {
    /// Octant level.
    pub level: u32,
    /// V-list edges targeting octants of this level.
    pub edges: u64,
    /// Distinct V-list sources at this level (one forward transform each
    /// under the batched path).
    pub sources: u64,
    /// Targets with at least one V edge (one inverse transform each).
    pub targets: u64,
}

/// The modeled per-level verdict of [`m2l_crossover`].
#[derive(Copy, Clone, Debug)]
pub struct M2lChoice {
    /// Octant level.
    pub level: u32,
    /// Modeled flops of the dense per-edge operators at this level.
    pub dense_flops: u64,
    /// Modeled flops of the batched half-spectrum path (per-edge Hadamard
    /// plus the per-source/per-target transforms it must amortize).
    pub batched_flops: u64,
    /// True when the batched spectral path is modeled cheaper.
    pub use_batched: bool,
}

/// Gather per-level V-list statistics by building the tree (one rank,
/// no evaluation). Levels without V edges are omitted.
pub fn m2l_level_stats(fmm: &Fmm, points: &[PointRec]) -> Vec<M2lLevelStats> {
    let pts = points.to_vec();
    run(1, |c| {
        let (sorted, region) = crate::driver::sort_points(fmm, c, pts.clone());
        let tree = octree_from_sorted(c, sorted, region, fmm.config().q);
        let l = build_let(c, &tree);
        let lists = build_lists(&l);
        let maxlev = l.octs.iter().map(|o| o.level()).max().unwrap_or(0) as usize;
        let mut edges = vec![0u64; maxlev + 1];
        let mut targets = vec![0u64; maxlev + 1];
        let mut src_seen = vec![false; l.len()];
        for bi in 0..l.len() {
            if !l.local[bi] {
                continue;
            }
            let row = lists.v.row(bi);
            if row.is_empty() {
                continue;
            }
            let lev = l.octs[bi].level() as usize;
            edges[lev] += row.len() as u64;
            targets[lev] += 1;
            for &ai in row {
                src_seen[ai as usize] = true;
            }
        }
        let mut sources = vec![0u64; maxlev + 1];
        for (i, &s) in src_seen.iter().enumerate() {
            if s {
                sources[l.octs[i].level() as usize] += 1;
            }
        }
        (0..=maxlev)
            .filter(|&lv| edges[lv] > 0)
            .map(|lv| M2lLevelStats {
                level: lv as u32,
                edges: edges[lv],
                sources: sources[lv],
                targets: targets[lv],
            })
            .collect::<Vec<_>>()
    })
    .pop()
    .expect("one rank")
}

/// Model the per-level crossover between dense and batched M2L: the
/// batched path pays per-source/per-target transforms that only amortize
/// once a level carries enough V edges, so sparse coarse levels favor the
/// dense operators — the Table-III-style tuning decision, applied to the
/// V-list mode instead of `q`.
pub fn m2l_crossover(fmm: &Fmm, stats: &[M2lLevelStats]) -> Vec<M2lChoice> {
    let ops = fmm.ops();
    let fftb = fmm.fft_batched();
    let dense_edge = flop_model::m2l_dense_edge(ops.check_len(), ops.density_len());
    stats
        .iter()
        .map(|s| {
            let dense_flops = s.edges * dense_edge;
            let batched_flops = s.edges * fftb.flops_edge()
                + s.sources * fftb.flops_forward()
                + s.targets * fftb.flops_inverse();
            M2lChoice {
                level: s.level,
                dense_flops,
                batched_flops,
                use_batched: batched_flops < dense_flops,
            }
        })
        .collect()
}

/// Modeled per-pair speedup of the tiled near-field microkernels over
/// the scalar path — the conservative floor the `ablation_ulist` harness
/// enforces (≥ 2× on Laplace; wide-SIMD hosts measure higher).
pub const TILE_PAIR_SPEEDUP: f64 = 2.0;

/// Modeled tile-build cost per point, in scalar-pair equivalents (one
/// SoA scatter of coordinates and densities per point).
const TILE_BUILD_PAIRS_PER_POINT: f64 = 8.0;

/// Near-field statistics of a built LET — the same LET-statistics
/// approach as [`m2l_level_stats`], applied to the U-list.
#[derive(Copy, Clone, Debug)]
pub struct UlistStats {
    /// Target boxes (owned point-carrying leaves).
    pub boxes: u64,
    /// U-list edges.
    pub edges: u64,
    /// Target points.
    pub points: u64,
    /// Real source/target pairs (the scalar path's work).
    pub real_pairs: u64,
    /// Lane-padded pairs (the tiled path's work).
    pub padded_pairs: u64,
}

/// The modeled verdict of [`ulist_crossover`].
#[derive(Copy, Clone, Debug)]
pub struct UlistChoice {
    /// Modeled flops of the scalar U-list path.
    pub scalar_flops: u64,
    /// Modeled *effective* flops of the tiled path: padded pairs divided
    /// by the per-pair speedup, plus the `O(N)` tile build.
    pub tiled_flops: u64,
    /// True when the tiled engine is modeled cheaper.
    pub use_tiled: bool,
}

/// Gather U-list statistics by building the tree and the tiled layout
/// (one rank, no evaluation).
pub fn ulist_stats(fmm: &Fmm, points: &[PointRec]) -> UlistStats {
    let pts = points.to_vec();
    let sd = fmm.kernel().source_dim();
    run(1, |c| {
        let (sorted, region) = crate::driver::sort_points(fmm, c, pts.clone());
        let tree = octree_from_sorted(c, sorted, region, fmm.config().q);
        let l = build_let(c, &tree);
        let lists = build_lists(&l);
        let data = EvalData::new(&l, sd);
        let nf = NearField::build(&l, &lists, &data.leaf_pos, &data.leaf_den, sd);
        UlistStats {
            boxes: nf.num_tgt_boxes() as u64,
            edges: nf.ulist.len() as u64,
            points: nf.tgt_cnt.iter().map(|&n| n as u64).sum(),
            real_pairs: nf.real_pairs,
            padded_pairs: nf.padded_pairs,
        }
    })
    .pop()
    .expect("one rank")
}

/// Model the scalar-vs-tiled near-field crossover: padding inflates the
/// tiled work by `padded/real ≈ pad(q)/q`, which must stay under the
/// per-pair speedup for the tiles to pay — so sparsely populated leaves
/// (small points-per-leaf) favor the scalar path, exactly like the
/// dense-vs-batched M2L decision on sparse levels.
pub fn ulist_crossover(fmm: &Fmm, s: &UlistStats) -> UlistChoice {
    let fp = fmm.kernel().flops_per_pair();
    let scalar_flops = s.real_pairs * fp;
    let tiled_pairs =
        s.padded_pairs as f64 / TILE_PAIR_SPEEDUP + s.points as f64 * TILE_BUILD_PAIRS_PER_POINT;
    let tiled_flops = (tiled_pairs * fp as f64) as u64;
    UlistChoice {
        scalar_flops,
        tiled_flops,
        use_tiled: tiled_flops < scalar_flops,
    }
}

/// Smallest points-per-leaf at which the tiled engine is modeled faster,
/// ignoring the (amortized) build: the padding inflation `pad(q)/q` must
/// drop strictly below [`TILE_PAIR_SPEEDUP`]. With `LANE = 8` and a 2×
/// speedup this is 5 — any practically tuned `q` (tens of points) is far
/// above it, which is why `tiled` is the default.
pub fn ulist_breakeven_points_per_leaf() -> usize {
    (1..)
        .find(|&q: &usize| (q.div_ceil(LANE) * LANE) as f64 / (q as f64) < TILE_PAIR_SPEEDUP)
        .expect("padding ratio reaches 1")
}

/// Modeled per-element speedup of the register-tiled GEMM microkernel
/// over the per-box matvec on a full panel — a conservative floor (the
/// `ablation_translate` harness measures higher on wide-SIMD hosts, where
/// the matvec baseline stays scalar).
pub const TRANSLATE_GEMM_SPEEDUP: f64 = 2.0;

/// Per-level translation statistics of a built LET: how many boxes share
/// each up/down operator — the group sizes the GEMM engine would batch.
#[derive(Clone, Debug)]
pub struct TranslateLevelStats {
    pub level: u32,
    /// Owned point-carrying leaves (the uc2e solve group).
    pub s2u_boxes: u64,
    /// Local octants (the dc2e solve group).
    pub dc2e_boxes: u64,
    /// U2U boxes per child-index class.
    pub u2u_boxes: [u64; 8],
    /// D2D boxes per child-index class.
    pub d2d_boxes: [u64; 8],
}

/// The modeled verdict of [`translate_crossover`] for one level.
#[derive(Copy, Clone, Debug)]
pub struct TranslateChoice {
    pub level: u32,
    /// Modeled bytes moved by the grouped (GEMM) path at this level.
    pub gemm_bytes: u64,
    /// Modeled bytes moved by the per-box matvec path at this level.
    pub matvec_bytes: u64,
    /// True when the grouped path is modeled cheaper at this level.
    pub use_gemm: bool,
}

/// Gather per-level translation group sizes by building the tree and the
/// plan-time grouping (one rank, no evaluation) — the same LET-statistics
/// approach as [`m2l_level_stats`] and [`ulist_stats`].
pub fn translate_stats(fmm: &Fmm, points: &[PointRec]) -> Vec<TranslateLevelStats> {
    let pts = points.to_vec();
    let sd = fmm.kernel().source_dim();
    run(1, |c| {
        let (sorted, region) = crate::driver::sort_points(fmm, c, pts.clone());
        let tree = octree_from_sorted(c, sorted, region, fmm.config().q);
        let l = build_let(c, &tree);
        let data = EvalData::new(&l, sd);
        let tp = &data.translate;
        (0..data.by_level.len())
            .map(|lev| {
                let per_class = |cls: &[crate::translate::TranslateGroup; 8]| {
                    std::array::from_fn(|ci| cls[ci].len() as u64)
                };
                TranslateLevelStats {
                    level: lev as u32,
                    s2u_boxes: tp.s2u[lev].len() as u64,
                    dc2e_boxes: tp.dc2e[lev].len() as u64,
                    u2u_boxes: per_class(&tp.u2u[lev]),
                    d2d_boxes: per_class(&tp.d2d[lev]),
                }
            })
            .collect()
    })
    .pop()
    .expect("one rank")
}

/// Model the per-level gemm-vs-matvec crossover from the data-movement
/// costs (the flops are identical by construction, so bytes decide):
/// grouping pays once a level's classes carry enough boxes that the
/// operator amortization outweighs the pack/scatter panel traffic — on
/// any realistically refined tree that is every level below the root,
/// which is why `--translate=gemm` is the default. Sub-break-even groups
/// ([`translate_breakeven_boxes`]) fall back to the per-box matvec inside
/// the engine without changing a single bit of output.
pub fn translate_crossover(fmm: &Fmm, stats: &[TranslateLevelStats]) -> Vec<TranslateChoice> {
    let (ulen, clen) = (fmm.ops().density_len(), fmm.ops().check_len());
    stats
        .iter()
        .map(|s| {
            let mut gemm_bytes = 0u64;
            let mut matvec_bytes = 0u64;
            let mut add = |rows: usize, cols: usize, m: u64| {
                if m > 0 {
                    gemm_bytes += flop_model::translate_group_bytes(rows, cols, m as usize);
                    matvec_bytes += flop_model::translate_matvec_bytes(rows, cols, m as usize);
                }
            };
            add(ulen, clen, s.s2u_boxes);
            add(ulen, clen, s.dc2e_boxes);
            for &m in s.u2u_boxes.iter().chain(&s.d2d_boxes) {
                add(ulen, ulen, m);
            }
            TranslateChoice {
                level: s.level,
                gemm_bytes,
                matvec_bytes,
                use_gemm: gemm_bytes < matvec_bytes,
            }
        })
        .collect()
}

/// Smallest boxes-per-class group at which the GEMM is modeled faster:
/// a group of `m` right-hand sides is zero-padded to a multiple of
/// [`pfmm_linalg::GEMM_NR`] columns, so the microkernel speedup must
/// outweigh the padding inflation `pad(m)/m` — the same break-even shape
/// as [`ulist_breakeven_points_per_leaf`]. With `GEMM_NR = 8` and a 2×
/// speedup this is 4; the engine's per-group dispatch uses this floor,
/// and because the sub-threshold fallback is bitwise identical to the
/// GEMM, the choice is numerics-free.
pub fn translate_breakeven_boxes() -> usize {
    (1..)
        .find(|&m: &usize| {
            (m.div_ceil(pfmm_linalg::GEMM_NR) * pfmm_linalg::GEMM_NR) as f64 / (m as f64)
                <= TRANSLATE_GEMM_SPEEDUP
        })
        .expect("padding ratio reaches 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::{randomize_densities, uniform_cube};
    use pfmm_kernels::Laplace;
    use std::sync::Arc;

    #[test]
    fn sweep_probes_every_candidate() {
        let mut pts = uniform_cube(3000, 41, 0);
        randomize_densities(&mut pts, 1, 2);
        let cfg = FmmConfig {
            order: 4,
            ..Default::default()
        };
        let sweep = tune_sweep(
            |q| Fmm::new(Arc::new(Laplace), FmmConfig { q, ..cfg }),
            &pts,
            &[10, 60, 400],
            1500,
        );
        assert_eq!(sweep.len(), 3);
        for t in &sweep {
            assert!(t.wall_secs > 0.0 && t.modeled_secs > 0.0);
        }
    }

    #[test]
    fn modeled_tuner_avoids_extremes() {
        // On a uniform cloud, a tiny q (all translation) and a huge q
        // (all direct) both lose to a middle q — the Table III shape.
        let mut pts = uniform_cube(6000, 43, 0);
        randomize_densities(&mut pts, 1, 3);
        let cfg = FmmConfig {
            order: 4,
            ..Default::default()
        };
        let sweep = tune_sweep(
            |q| Fmm::new(Arc::new(Laplace), FmmConfig { q, ..cfg }),
            &pts,
            &[2, 50, 6000],
            6000,
        );
        let best = sweep
            .iter()
            .min_by(|a, b| a.modeled_secs.partial_cmp(&b.modeled_secs).expect("finite"))
            .expect("nonempty");
        assert_eq!(best.q, 50, "{sweep:?}");
        let chosen = autotune_q_modeled(cfg, Arc::new(Laplace), &pts, &[2, 50, 6000], 6000);
        assert_eq!(chosen, 50);
    }

    #[test]
    fn crossover_prefers_dense_when_transforms_dominate() {
        // One edge per source and per target: the batched path pays a
        // forward and an inverse FFT to save a single mat-vec — dense
        // must win, and the flop totals must be consistent.
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 6,
                ..Default::default()
            },
        );
        let sparse = [M2lLevelStats {
            level: 2,
            edges: 1,
            sources: 1,
            targets: 1,
        }];
        let c = m2l_crossover(&fmm, &sparse);
        assert_eq!(c.len(), 1);
        assert!(!c[0].use_batched, "{:?}", c[0]);
        let fftb = fmm.fft_batched();
        assert_eq!(
            c[0].batched_flops,
            fftb.flops_edge() + fftb.flops_forward() + fftb.flops_inverse()
        );
    }

    #[test]
    fn crossover_prefers_batched_on_dense_levels() {
        // A deep uniform level: ~30 edges per target amortize the
        // per-octant transforms many times over.
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 6,
                ..Default::default()
            },
        );
        let busy = [M2lLevelStats {
            level: 4,
            edges: 30_000,
            sources: 1_000,
            targets: 1_000,
        }];
        let c = m2l_crossover(&fmm, &busy);
        assert!(c[0].use_batched, "{:?}", c[0]);
        assert!(c[0].batched_flops < c[0].dense_flops);
    }

    #[test]
    fn level_stats_count_a_uniform_cube() {
        let mut pts = uniform_cube(4000, 47, 0);
        randomize_densities(&mut pts, 1, 5);
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 40,
                ..Default::default()
            },
        );
        let stats = m2l_level_stats(&fmm, &pts);
        assert!(!stats.is_empty());
        let total_edges: u64 = stats.iter().map(|s| s.edges).sum();
        assert!(total_edges > 0);
        for s in &stats {
            assert!(s.targets > 0 && s.sources > 0);
            // V-list fan-in is bounded by the 316 valid transfer vectors.
            assert!(s.edges <= s.targets * 316, "{s:?}");
        }
        // The crossover runs end to end on real stats.
        let choices = m2l_crossover(&fmm, &stats);
        assert_eq!(choices.len(), stats.len());
    }

    #[test]
    fn ulist_stats_count_a_uniform_cube() {
        let mut pts = uniform_cube(4000, 47, 0);
        randomize_densities(&mut pts, 1, 5);
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 40,
                ..Default::default()
            },
        );
        let s = ulist_stats(&fmm, &pts);
        assert_eq!(s.points, 4000);
        assert!(s.boxes > 0 && s.edges >= s.boxes, "{s:?}");
        assert!(s.real_pairs > 0 && s.padded_pairs >= s.real_pairs, "{s:?}");
        // Well-populated leaves (q = 40 ≫ breakeven): tiles win.
        let c = ulist_crossover(&fmm, &s);
        assert!(c.use_tiled, "{c:?} from {s:?}");
        assert!(c.tiled_flops < c.scalar_flops);
    }

    #[test]
    fn ulist_crossover_prefers_scalar_on_singleton_leaves() {
        // One point per leaf: every real pair pads to a full lane
        // (8× inflation), and the build cost has nothing to amortize
        // against — the scalar path is modeled cheaper.
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                ..Default::default()
            },
        );
        let s = UlistStats {
            boxes: 1000,
            edges: 1000,
            points: 1000,
            real_pairs: 1000,
            padded_pairs: 8000,
        };
        let c = ulist_crossover(&fmm, &s);
        assert!(!c.use_tiled, "{c:?}");
    }

    #[test]
    fn ulist_breakeven_is_five_points_per_leaf() {
        // pad(q)/q: 8/1=8, 8/4=2 (tie, scalar), 8/5=1.6 < 2 → 5.
        assert_eq!(ulist_breakeven_points_per_leaf(), 5);
    }

    #[test]
    fn translate_breakeven_is_two_boxes() {
        // pad(m)/m with GEMM_NR = 4: 4/1=4, 4/2=2 (tie → GEMM, the
        // fallback is bitwise identical so the tie costs nothing).
        assert_eq!(translate_breakeven_boxes(), 2);
    }

    #[test]
    fn translate_stats_count_a_uniform_cube() {
        let mut pts = uniform_cube(4000, 47, 0);
        randomize_densities(&mut pts, 1, 5);
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 40,
                ..Default::default()
            },
        );
        let stats = translate_stats(&fmm, &pts);
        assert!(!stats.is_empty());
        // Every point-carrying leaf solves once; every local octant gets
        // a dc2e solve; U2U feeds each non-root occupied box upward.
        let s2u_total: u64 = stats.iter().map(|s| s.s2u_boxes).sum();
        let dc2e_total: u64 = stats.iter().map(|s| s.dc2e_boxes).sum();
        let u2u_total: u64 = stats.iter().map(|s| s.u2u_boxes.iter().sum::<u64>()).sum();
        let d2d_total: u64 = stats.iter().map(|s| s.d2d_boxes.iter().sum::<u64>()).sum();
        assert!(s2u_total > 0 && dc2e_total >= s2u_total, "{stats:?}");
        assert!(u2u_total > 0 && d2d_total > 0, "{stats:?}");
        // Single rank: every non-root octant's parent is present, so the
        // D2D classes cover every local octant below the root.
        assert_eq!(d2d_total, dc2e_total - 1);
        // The root level has nothing to batch; populated levels do.
        let choices = translate_crossover(&fmm, &stats);
        assert_eq!(choices.len(), stats.len());
        assert!(!choices[0].use_gemm, "{:?}", choices[0]);
        for (s, c) in stats.iter().zip(&choices) {
            if s.dc2e_boxes >= 8 {
                assert!(c.use_gemm, "{c:?} from {s:?}");
                assert!(c.gemm_bytes < c.matvec_bytes);
            }
        }
        assert!(choices.iter().any(|c| c.use_gemm));
    }
}
