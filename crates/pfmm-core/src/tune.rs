//! Points-per-box autotuning.
//!
//! The paper's Table III experiment "resembles the tuning phase and can
//! be part of an autotuning algorithm": the optimal `q` balances the
//! direct U-list work (grows with `q`) against the translation work
//! (shrinks with `q`), and the optimum depends on the kernel, the
//! surface order, and the architecture. [`autotune_q`] runs the real
//! pipeline on a subsample and picks the `q` minimizing measured
//! evaluation time; [`autotune_q_modeled`] minimizes modeled 2009-rate
//! time from the flop counters instead (deterministic, host-independent —
//! what a batch scheduler would use).

use pfmm_mpisim::run;
use pfmm_tree::PointRec;

use crate::driver::{Fmm, FmmConfig};
use crate::profile::Phase;

/// Result of one tuning probe.
#[derive(Copy, Clone, Debug)]
pub struct TunePoint {
    /// Candidate points-per-box.
    pub q: usize,
    /// Measured evaluation seconds on the subsample.
    pub wall_secs: f64,
    /// Modeled 2009-rate seconds from the flop counters.
    pub modeled_secs: f64,
}

/// Probe every candidate `q` on (a subsample of) the points and return
/// the per-candidate costs. `sample` bounds the subsample size; the
/// subsample keeps the distribution's shape by striding.
pub fn tune_sweep(
    fmm_for: impl Fn(usize) -> Fmm,
    points: &[PointRec],
    candidates: &[usize],
    sample: usize,
) -> Vec<TunePoint> {
    let stride = (points.len() / sample.max(1)).max(1);
    let sub: Vec<PointRec> = points.iter().step_by(stride).copied().collect();
    candidates
        .iter()
        .map(|&q| {
            let fmm = fmm_for(q);
            let prof = run(1, |c| fmm.evaluate(c, sub.clone()).profile.clone())
                .pop()
                .expect("one rank");
            let modeled = Phase::ALL
                .iter()
                .map(|&ph| prof.flops(ph) as f64 / 0.5e9)
                .sum();
            TunePoint {
                q,
                wall_secs: prof.total_secs,
                modeled_secs: modeled,
            }
        })
        .collect()
}

/// Pick the `q` minimizing measured evaluation time on a subsample.
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn autotune_q(
    cfg: FmmConfig,
    kernel: std::sync::Arc<dyn pfmm_kernels::Kernel>,
    points: &[PointRec],
    candidates: &[usize],
    sample: usize,
) -> usize {
    assert!(!candidates.is_empty());
    let sweep = tune_sweep(
        |q| Fmm::new(kernel.clone(), FmmConfig { q, ..cfg }),
        points,
        candidates,
        sample,
    );
    sweep
        .iter()
        .min_by(|a, b| a.wall_secs.partial_cmp(&b.wall_secs).expect("finite times"))
        .expect("nonempty")
        .q
}

/// Pick the `q` minimizing *modeled* evaluation time (deterministic).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn autotune_q_modeled(
    cfg: FmmConfig,
    kernel: std::sync::Arc<dyn pfmm_kernels::Kernel>,
    points: &[PointRec],
    candidates: &[usize],
    sample: usize,
) -> usize {
    assert!(!candidates.is_empty());
    let sweep = tune_sweep(
        |q| Fmm::new(kernel.clone(), FmmConfig { q, ..cfg }),
        points,
        candidates,
        sample,
    );
    sweep
        .iter()
        .min_by(|a, b| {
            a.modeled_secs
                .partial_cmp(&b.modeled_secs)
                .expect("finite times")
        })
        .expect("nonempty")
        .q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::{randomize_densities, uniform_cube};
    use pfmm_kernels::Laplace;
    use std::sync::Arc;

    #[test]
    fn sweep_probes_every_candidate() {
        let mut pts = uniform_cube(3000, 41, 0);
        randomize_densities(&mut pts, 1, 2);
        let cfg = FmmConfig {
            order: 4,
            ..Default::default()
        };
        let sweep = tune_sweep(
            |q| Fmm::new(Arc::new(Laplace), FmmConfig { q, ..cfg }),
            &pts,
            &[10, 60, 400],
            1500,
        );
        assert_eq!(sweep.len(), 3);
        for t in &sweep {
            assert!(t.wall_secs > 0.0 && t.modeled_secs > 0.0);
        }
    }

    #[test]
    fn modeled_tuner_avoids_extremes() {
        // On a uniform cloud, a tiny q (all translation) and a huge q
        // (all direct) both lose to a middle q — the Table III shape.
        let mut pts = uniform_cube(6000, 43, 0);
        randomize_densities(&mut pts, 1, 3);
        let cfg = FmmConfig {
            order: 4,
            ..Default::default()
        };
        let sweep = tune_sweep(
            |q| Fmm::new(Arc::new(Laplace), FmmConfig { q, ..cfg }),
            &pts,
            &[2, 50, 6000],
            6000,
        );
        let best = sweep
            .iter()
            .min_by(|a, b| a.modeled_secs.partial_cmp(&b.modeled_secs).expect("finite"))
            .expect("nonempty");
        assert_eq!(best.q, 50, "{sweep:?}");
        let chosen = autotune_q_modeled(cfg, Arc::new(Laplace), &pts, &[2, 50, 6000], 6000);
        assert_eq!(chosen, 50);
    }
}
