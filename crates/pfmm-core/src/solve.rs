//! Krylov solvers over matrix-free operators — the consumption pattern of
//! the paper's target application (§V: "the Stokes kernel ... is related
//! to our target applications (fluid mechanics)", where the FMM is the
//! matvec of a boundary-integral solve).
//!
//! [`gmres`] is a full-orthogonalization GMRES with a closure matvec;
//! [`solve_second_kind`] packages the common case `(I + c·K)σ = b` with
//! `K` an FMM plan, re-applying one plan per iteration.

use pfmm_mpisim::Comm;

use crate::driver::Fmm;
use crate::plan::FmmPlan;

/// Convergence report of a solve.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Relative residual after each iteration.
    pub residuals: Vec<f64>,
    /// Matrix-vector products consumed.
    pub matvecs: usize,
}

impl SolveReport {
    /// Final relative residual.
    pub fn final_residual(&self) -> f64 {
        self.residuals.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Full-orthogonalization GMRES for a matrix-free operator.
///
/// Minimizes `‖b − A x‖` over the Krylov space built from `matvec`;
/// suited to the well-conditioned second-kind systems FMMs appear in
/// (iteration counts stay small, so full orthogonalization and the dense
/// least-squares solve are cheap relative to one FMM application).
///
/// # Errors
/// Returns the report with the residual history if `max_it` iterations do
/// not reach `tol`.
pub fn gmres(
    matvec: impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    tol: f64,
    max_it: usize,
) -> Result<(Vec<f64>, SolveReport), SolveReport> {
    gmres_with_dot(
        matvec,
        |x, y| x.iter().zip(y).map(|(a, b)| a * b).sum(),
        b,
        tol,
        max_it,
    )
}

/// [`gmres`] with a caller-supplied inner product — the hook that makes
/// the iteration *distributed*: each rank holds its chunk of every vector
/// and `dot` must return the **global** inner product (local partial plus
/// an all-reduce), identically on every rank.
///
/// # Errors
/// Returns the report with the residual history if `max_it` iterations do
/// not reach `tol`.
pub fn gmres_with_dot(
    mut matvec: impl FnMut(&[f64]) -> Vec<f64>,
    mut dot: impl FnMut(&[f64], &[f64]) -> f64,
    b: &[f64],
    tol: f64,
    max_it: usize,
) -> Result<(Vec<f64>, SolveReport), SolveReport> {
    let n = b.len();
    let mut norm = |v: &[f64]| dot(v, v).sqrt();
    let beta = norm(b);
    if beta == 0.0 {
        return Ok((
            vec![0.0; n],
            SolveReport {
                residuals: vec![0.0],
                matvecs: 0,
            },
        ));
    }
    let mut basis: Vec<Vec<f64>> = vec![b.iter().map(|x| x / beta).collect()];
    let mut h: Vec<Vec<f64>> = Vec::new(); // columns of the Hessenberg
    let mut residuals = Vec::new();
    for j in 0..max_it {
        // Arnoldi step with modified Gram–Schmidt.
        let mut w = matvec(&basis[j]);
        let mut hj = vec![0.0; j + 2];
        for (i, v) in basis.iter().enumerate() {
            let d = dot(&w, v);
            hj[i] = d;
            for (wk, vk) in w.iter_mut().zip(v) {
                *wk -= d * vk;
            }
        }
        hj[j + 1] = dot(&w, &w).sqrt();
        let happy = hj[j + 1] < 1e-14 * beta.max(1.0);
        h.push(hj);

        // Solve the small least-squares min ‖β e₁ − H y‖ via normal
        // equations (H is (m+1)×m with m = iterations so far — tiny).
        let m = h.len();
        let y = solve_hessenberg_ls(&h, beta);

        // Residual from the Hessenberg relation (the Hessenberg is
        // replicated on every rank, so this is a local computation).
        let mut r = vec![0.0; m + 1];
        r[0] = beta;
        for (jc, yj) in y.iter().enumerate() {
            for (i, hv) in h[jc].iter().enumerate() {
                r[i] -= hv * yj;
            }
        }
        let res = r.iter().map(|x| x * x).sum::<f64>().sqrt() / beta;
        residuals.push(res);

        if res < tol || happy {
            let mut x = vec![0.0; n];
            for (jc, yj) in y.iter().enumerate() {
                for (xi, vi) in x.iter_mut().zip(&basis[jc]) {
                    *xi += yj * vi;
                }
            }
            let report = SolveReport {
                residuals,
                matvecs: m,
            };
            return Ok((x, report));
        }
        let hl = h[j][j + 1];
        basis.push(w.iter().map(|x| x / hl).collect());
    }
    Err(SolveReport {
        residuals,
        matvecs: max_it,
    })
}

/// Least squares `min ‖β e₁ − H y‖` for the (m+1)×m Hessenberg stored as
/// columns, via the m×m normal equations and Gaussian elimination with
/// partial pivoting.
fn solve_hessenberg_ls(h: &[Vec<f64>], beta: f64) -> Vec<f64> {
    let m = h.len();
    let rows = m + 1;
    let entry = |col: usize, row: usize| if row < h[col].len() { h[col][row] } else { 0.0 };
    let mut a = vec![vec![0.0f64; m]; m];
    let mut y = vec![0.0f64; m];
    for i in 0..m {
        for (j, aij) in a[i].iter_mut().enumerate() {
            *aij = (0..rows).map(|r| entry(i, r) * entry(j, r)).sum();
        }
        y[i] = entry(i, 0) * beta;
    }
    for col in 0..m {
        let piv = (col..m)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("nonempty");
        a.swap(col, piv);
        y.swap(col, piv);
        let d = a[col][col];
        for r in col + 1..m {
            let f = a[r][col] / d;
            let (top, bottom) = a.split_at_mut(r);
            for (cc, bv) in bottom[0].iter_mut().enumerate().skip(col) {
                *bv -= f * top[col][cc];
            }
            y[r] -= f * y[col];
        }
    }
    for col in (0..m).rev() {
        for r in col + 1..m {
            y[col] -= a[col][r] * y[r];
        }
        y[col] /= a[col][col];
    }
    y
}

/// Solve the second-kind system `(I + c·K) σ = b`, with `K` the N-body
/// operator of an FMM plan (densities and potentials in the plan's owned
/// order). One plan build, one FMM application per GMRES iteration.
///
/// # Errors
/// Returns the report when GMRES does not converge.
///
/// # Panics
/// Panics if `b.len()` disagrees with the plan's owned points (times the
/// kernel dimension).
pub fn solve_second_kind(
    fmm: &Fmm,
    c: &Comm,
    plan: &mut FmmPlan,
    b: &[f64],
    scale: f64,
    tol: f64,
    max_it: usize,
) -> Result<(Vec<f64>, SolveReport), SolveReport> {
    gmres_with_dot(
        |sigma| {
            let (k_sigma, _) = fmm.apply(c, plan, sigma);
            sigma
                .iter()
                .zip(&k_sigma)
                .map(|(s, k)| s + scale * k)
                .collect()
        },
        |x, y| {
            // Global inner product: local partial + all-reduce, so every
            // rank sees the same Krylov coefficients.
            let local: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
            pfmm_mpisim::collectives::allreduce_one(c, local, |a, b| a + b)
        },
        b,
        tol,
        max_it,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::uniform_cube;
    use crate::driver::FmmConfig;
    use pfmm_kernels::Laplace;
    use pfmm_mpisim::run;
    use std::sync::Arc;

    /// Dense reference matvec for testing GMRES itself.
    fn dense_matvec(a: &[Vec<f64>]) -> impl FnMut(&[f64]) -> Vec<f64> + '_ {
        move |x: &[f64]| {
            a.iter()
                .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
                .collect()
        }
    }

    #[test]
    fn gmres_solves_small_dense_system() {
        let a = vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ];
        let x_true = [1.0, -2.0, 0.5];
        let b: Vec<f64> = a
            .iter()
            .map(|r| r.iter().zip(&x_true).map(|(p, q)| p * q).sum())
            .collect();
        let (x, rep) = gmres(dense_matvec(&a), &b, 1e-12, 10).expect("converges");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert!(
            rep.matvecs <= 3,
            "exact in at most n steps: {}",
            rep.matvecs
        );
    }

    #[test]
    fn gmres_identity_is_one_step() {
        let n = 7;
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let (x, rep) = gmres(|v| v.to_vec(), &b, 1e-12, 3).expect("converges");
        assert_eq!(rep.matvecs, 1);
        for (a, c) in x.iter().zip(&b) {
            assert!((a - c).abs() < 1e-12);
        }
    }

    #[test]
    fn gmres_reports_non_convergence() {
        // A rotation-like matrix makes GMRES need the full space; cap
        // iterations below that.
        let a = vec![
            vec![0.0, -1.0, 0.0],
            vec![1.0, 0.0, -1.0],
            vec![0.0, 1.0, 0.0],
        ];
        let b = vec![1.0, 0.0, 0.0];
        let err = gmres(dense_matvec(&a), &b, 1e-14, 1).expect_err("too few iterations");
        assert_eq!(err.matvecs, 1);
        assert!(err.final_residual() > 1e-14);
    }

    #[test]
    fn gmres_zero_rhs_is_zero() {
        let (x, rep) = gmres(|v| v.to_vec(), &[0.0; 4], 1e-12, 3).expect("trivial");
        assert_eq!(x, vec![0.0; 4]);
        assert_eq!(rep.matvecs, 0);
    }

    #[test]
    fn second_kind_solve_with_fmm_plan() {
        let n = 2000;
        let pts = uniform_cube(n, 91, 0);
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 50,
                ..Default::default()
            },
        );
        let (res, verify) = run(2, |c| {
            let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(2).copied().collect();
            let mut plan = fmm.plan(c, mine);
            let b: Vec<f64> = plan
                .owned_gids()
                .iter()
                .map(|g| 1.0 + (*g as f64 * 0.02).cos())
                .collect();
            let scale = 1.0 / n as f64;
            let (sigma, rep) =
                solve_second_kind(&fmm, c, &mut plan, &b, scale, 1e-9, 40).expect("converges");
            // Verify the residual independently.
            let (k_sigma, _) = fmm.apply(c, &mut plan, &sigma);
            let ax: Vec<f64> = sigma
                .iter()
                .zip(&k_sigma)
                .map(|(s, k)| s + scale * k)
                .collect();
            let num: f64 = ax
                .iter()
                .zip(&b)
                .map(|(a, bb)| (a - bb) * (a - bb))
                .sum::<f64>()
                .sqrt();
            let den: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            (rep.final_residual(), num / den)
        })
        .pop()
        .expect("rank 0");
        assert!(res < 1e-9, "reported residual {res}");
        assert!(verify < 1e-8, "true residual {verify}");
    }
}
