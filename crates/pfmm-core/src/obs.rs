//! Mirror of per-evaluation results into the always-on telemetry
//! registry (`pfmm-metrics`).
//!
//! Recording is strictly *post hoc*: the driver finishes an evaluation
//! with its usual `Profile`/`CommStats` accounting and this module
//! re-publishes those authoritative numbers as registry instruments,
//! once per run. The arithmetic path never touches an atomic, so
//! potentials with metrics enabled are bitwise identical to a run with
//! them disabled (asserted by `tests/metrics_conservation.rs`).
//!
//! Naming scheme (see DESIGN.md §14): `pfmm_<layer>_<what>_<unit>`,
//! counters suffixed `_total`, durations accumulated as integer
//! microseconds, throughput gauges in GF/s. Labels are drawn from the
//! closed sets `kernel`, `phase`, `rank`, `schedule`, `stage`, `list`.

use pfmm_metrics::MetricsRegistry;
use pfmm_tree::lists::Lists;

use crate::driver::{FmmConfig, Schedule};
use crate::profile::{Phase, Profile};

/// Label value for the configured executor.
pub fn schedule_label(cfg: &FmmConfig) -> &'static str {
    match cfg.schedule {
        Schedule::Barrier => "barrier",
        Schedule::Graph => "graph",
    }
}

/// Publish one finished evaluation: per-phase wall time and flop-model
/// GF/s, setup-stage times, U/V/W/X edge counts.
pub fn record_evaluation(
    reg: &MetricsRegistry,
    kernel: &str,
    cfg: &FmmConfig,
    rank: usize,
    prof: &Profile,
    lists: &Lists,
) {
    if !reg.enabled() {
        return;
    }
    let r = rank.to_string();
    let sched = schedule_label(cfg);
    reg.counter(
        "pfmm_evaluations_total",
        &[("kernel", kernel), ("rank", &r), ("schedule", sched)],
    )
    .inc();
    for ph in Phase::ALL {
        let labels: &[(&str, &str)] = &[
            ("kernel", kernel),
            ("phase", ph.label()),
            ("rank", &r),
            ("schedule", sched),
        ];
        let secs = prof.secs(ph);
        let flops = prof.flops(ph);
        reg.counter("pfmm_phase_us_total", labels)
            .add((secs * 1e6) as u64);
        reg.counter("pfmm_phase_flops_total", labels).add(flops);
        if secs > 0.0 {
            reg.gauge("pfmm_phase_gflops", labels)
                .set(flops as f64 / secs / 1e9);
        }
    }
    for (stage, secs) in [
        ("sort", prof.sort_secs),
        ("tree", prof.tree_secs),
        ("lists", prof.lists_secs),
        ("plan", prof.plan_secs),
    ] {
        reg.counter("pfmm_setup_us_total", &[("rank", &r), ("stage", stage)])
            .add((secs * 1e6) as u64);
    }
    for (list, csr) in [
        ("u", &lists.u),
        ("v", &lists.v),
        ("w", &lists.w),
        ("x", &lists.x),
    ] {
        reg.counter("pfmm_edges_total", &[("list", list), ("rank", &r)])
            .add(csr.total() as u64);
    }
}

/// Count a plan build (geometry-dependent setup paid once).
pub fn record_plan_build(kernel: &str) {
    let reg = pfmm_metrics::global();
    if reg.enabled() {
        reg.counter("pfmm_plan_builds_total", &[("kernel", kernel)])
            .inc();
    }
}

/// Count a plan reuse (one density set applied against a built plan).
pub fn record_plan_apply(kernel: &str) {
    let reg = pfmm_metrics::global();
    if reg.enabled() {
        reg.counter("pfmm_plan_applies_total", &[("kernel", kernel)])
            .inc();
    }
}

/// Resolve the `pfmm_plan_applies_total` handle once, so apply hot paths
/// can bump it without the registry's find-or-create lock (and its key
/// allocations). Resolved unconditionally: the registry may be enabled
/// after the workspace is built, and a pre-resolved handle must still
/// count from that point on.
pub fn plan_apply_counter(kernel: &str) -> std::sync::Arc<pfmm_metrics::Counter> {
    pfmm_metrics::global().counter("pfmm_plan_applies_total", &[("kernel", kernel)])
}
