//! Reusable evaluation plans: build the tree, LET and lists once, then
//! evaluate repeatedly with new densities.
//!
//! This is how FMMs are actually consumed by applications — as the
//! matrix-vector product inside an iterative solver (the paper's target
//! application is Stokes flow, where each solver iteration re-evaluates
//! the same geometry with updated force densities). A [`FmmPlan`] caches
//! everything that depends only on the point positions; [`Fmm::apply`]
//! refreshes the ghost copies of the densities with a deterministic
//! point-to-point exchange (both sides derive the same schedule from the
//! region fence — no negotiation round) and reruns the evaluation phases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pfmm_mpisim::Comm;
use pfmm_tree::{
    build_let_with, build_lists_with, lists::leaf_weights, octree_from_sorted_with,
    repartition_by_weight, user_ranks, Let, Lists, PointRec,
};

use crate::driver::{Fmm, FmmConfig};
use crate::exec::{run_phases, EvalData};
use crate::profile::Profile;
use crate::workspace::EvalWorkspace;

/// Monotone plan generation counter: every plan gets a process-unique
/// uid, and workspaces carry the uid of the plan they were sized for —
/// the tag a workspace pool checks before reusing buffers.
static NEXT_PLAN_UID: AtomicU64 = AtomicU64::new(1);

/// A 128-bit content fingerprint of (kernel, config, communicator size,
/// point geometry) — everything [`Fmm::plan`] depends on. Two calls with
/// equal fingerprints build byte-identical plans, so the serve layer can
/// key its plan cache on this value alone.
///
/// The fingerprint covers point *positions and gids* but not densities
/// (a plan is density-independent by construction), and it is sensitive
/// to input point order: a permuted geometry hashes differently and is
/// treated as a distinct — equally valid — cache entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(pub u128);

impl std::fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit: deterministic across platforms, fast enough to hash
/// a 100k-point geometry in well under a millisecond, and with a 2⁻¹²⁸
/// accidental-collision probability on non-adversarial inputs.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Fnv128 {
        Fnv128(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Fingerprint the plan inputs for this rank: kernel identity, the
/// semantically relevant [`FmmConfig`] fields, the communicator size, and
/// the point records (gid + exact position bits, densities excluded).
pub fn plan_fingerprint(
    kernel_name: &str,
    cfg: &FmmConfig,
    comm_size: usize,
    points: &[PointRec],
) -> PlanFingerprint {
    let mut h = Fnv128::new();
    h.write(kernel_name.as_bytes());
    h.write_u64(cfg.order as u64);
    h.write_u64(cfg.q as u64);
    h.write_u64(cfg.m2l as u64);
    h.write_u64(cfg.pinv_tol.to_bits());
    h.write_u64(cfg.balance as u64);
    h.write_u64(cfg.reduction as u64);
    h.write_u64(cfg.sort as u64);
    h.write_u64(cfg.schedule as u64);
    h.write_u64(cfg.ulist as u64);
    h.write_u64(cfg.translate as u64);
    h.write_u64(comm_size as u64);
    h.write_u64(points.len() as u64);
    for p in points {
        h.write_u64(p.gid);
        h.write_u64(p.pos[0].to_bits());
        h.write_u64(p.pos[1].to_bits());
        h.write_u64(p.pos[2].to_bits());
    }
    PlanFingerprint(h.0)
}

/// A frozen FMM setup for one point geometry.
pub struct FmmPlan {
    l: Let,
    lists: Lists,
    data: EvalData,
    /// Per destination rank: owned point-carrying leaf indices whose
    /// densities that rank needs (Morton order).
    send_plan: Vec<(usize, Vec<usize>)>,
    /// Per source rank: ghost point-carrying leaf indices this rank will
    /// receive (Morton order, mirror of the sender's list).
    recv_plan: Vec<(usize, Vec<usize>)>,
    /// Gids of the points this rank owns, in storage order.
    owned_gids: Vec<u64>,
    /// Density components per point.
    sd: usize,
    /// Potential components per point.
    td: usize,
    /// Process-unique generation tag (see [`EvalWorkspace::plan_uid`]).
    uid: u64,
    /// The plan-owned evaluation workspace, created lazily on the first
    /// apply so a freshly built plan stays cheap to inspect; external
    /// workspaces (serve-layer pools) go through [`Fmm::apply_ws`] and
    /// leave this slot empty.
    ws: Option<EvalWorkspace>,
}

impl FmmPlan {
    /// Gids of the owned points; [`Fmm::apply`] expects densities in this
    /// order (packed `source_dim` per point).
    pub fn owned_gids(&self) -> &[u64] {
        &self.owned_gids
    }

    /// Process-unique generation tag; workspaces built for this plan
    /// carry it, and every external-workspace entry point rebuilds on a
    /// mismatch.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Number of points this rank owns.
    pub fn num_owned(&self) -> usize {
        self.owned_gids.len()
    }

    /// Octants in this rank's LET.
    pub fn num_octants(&self) -> usize {
        self.l.len()
    }

    /// Heap bytes held by the plan (LET + lists + evaluation workspace +
    /// exchange schedules), computed as element counts × element sizes.
    /// This is what the serve-layer plan cache charges against its byte
    /// budget, so eviction pressure tracks the real footprint of the
    /// cached geometry.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let sched = |plan: &Vec<(usize, Vec<usize>)>| {
            plan.iter()
                .map(|(_, v)| v.len() * size_of::<usize>())
                .sum::<usize>()
                + plan.len() * size_of::<(usize, Vec<usize>)>()
        };
        self.l.memory_bytes()
            + self.lists.memory_bytes()
            + self.data.memory_bytes()
            + sched(&self.send_plan)
            + sched(&self.recv_plan)
            + self.owned_gids.len() * size_of::<u64>()
            + self.ws.as_ref().map_or(0, |w| w.memory_bytes())
            + size_of::<FmmPlan>()
    }
}

const TAG_DEN: u32 = 0x20;

impl Fmm {
    /// Build a reusable plan: sort, tree, LET, lists, load balancing —
    /// everything except the density-dependent evaluation.
    pub fn plan(&self, c: &Comm, points: Vec<PointRec>) -> FmmPlan {
        crate::obs::record_plan_build(self.kernel().name());
        let sd = self.kernel().source_dim();
        let td = self.kernel().target_dim();
        let par = self.setup_par();
        let (sorted, region) = crate::driver::sort_points(self, c, points);
        let mut tree = octree_from_sorted_with(c, sorted, region, self.config().q, par);
        let mut l = build_let_with(c, &tree, par);
        let mut lists = build_lists_with(&l, par);
        if self.config().balance && c.size() > 1 {
            let w = leaf_weights(&l, &lists);
            tree = repartition_by_weight(c, tree, &w);
            l = build_let_with(c, &tree, par);
            lists = build_lists_with(&l, par);
        }
        drop(tree);
        let data = EvalData::new_with(&l, sd, par);
        self.ops().warm(data.max_level, par);

        // Deterministic ghost-density exchange schedule. Sender side: my
        // owned point-carrying leaves, routed by the same user test as
        // the LET exchange. Receiver side: my point-carrying ghost
        // leaves, grouped by owner. Both sides enumerate octants in
        // Morton order against the same region fence, so the k-th record
        // sent matches the k-th expected.
        let p = c.size();
        let my = c.rank();
        let mut send_plan: Vec<Vec<usize>> = vec![Vec::new(); p];
        let mut recv_plan: Vec<Vec<usize>> = vec![Vec::new(); p];
        let mut users = Vec::new();
        let owner_of = |rk: u128| l.region[1..p].partition_point(|&s| s <= rk);
        for i in 0..l.len() {
            if !l.is_leaf[i] || l.points_of(i).is_empty() {
                continue;
            }
            if l.owned[i] {
                user_ranks(&l.octs[i], &l.region, &mut users);
                for &k in &users {
                    if k != my {
                        send_plan[k].push(i);
                    }
                }
            } else {
                recv_plan[owner_of(l.octs[i].rank())].push(i);
            }
        }

        let mut owned_gids = Vec::new();
        for i in 0..l.len() {
            if l.owned[i] {
                owned_gids.extend(l.points_of(i).iter().map(|pt| pt.gid));
            }
        }

        FmmPlan {
            l,
            lists,
            data,
            send_plan: send_plan
                .into_iter()
                .enumerate()
                .filter(|(_, v)| !v.is_empty())
                .collect(),
            recv_plan: recv_plan
                .into_iter()
                .enumerate()
                .filter(|(_, v)| !v.is_empty())
                .collect(),
            owned_gids,
            sd,
            td,
            uid: NEXT_PLAN_UID.fetch_add(1, Ordering::Relaxed),
            ws: None,
        }
    }

    /// Re-evaluate a plan with new densities (packed `source_dim` per
    /// owned point, aligned with [`FmmPlan::owned_gids`]). Returns the
    /// potentials in the same order plus the evaluation profile.
    ///
    /// # Panics
    /// Panics if `densities.len() != plan.num_owned() * source_dim`.
    pub fn apply(&self, c: &Comm, plan: &mut FmmPlan, densities: &[f64]) -> (Vec<f64>, Profile) {
        self.apply_one(c, plan, densities)
    }

    /// Evaluate several density sets against one plan — the serve layer's
    /// batched path. Each set is scattered, ghost-exchanged, and run
    /// through the evaluation phases in order; the expensive
    /// geometry-dependent setup (tree, LET, lists, exchange schedules) is
    /// paid once at [`Fmm::plan`] time and shared by every set. Results
    /// are positionally aligned with `densities`, and each is bitwise
    /// identical to a standalone [`Fmm::apply`] of the same set (applies
    /// do not interact — `apply_is_repeatable_and_linear` asserts this).
    pub fn apply_batch(
        &self,
        c: &Comm,
        plan: &mut FmmPlan,
        densities: &[&[f64]],
    ) -> Vec<(Vec<f64>, Profile)> {
        densities
            .iter()
            .map(|den| self.apply_one(c, plan, den))
            .collect()
    }

    fn apply_one(&self, c: &Comm, plan: &mut FmmPlan, densities: &[f64]) -> (Vec<f64>, Profile) {
        let mut pot = Vec::with_capacity(plan.num_owned() * plan.td);
        let prof = self.apply_into(c, plan, densities, &mut pot);
        (pot, prof)
    }

    /// [`Fmm::apply`] writing into a caller-provided output vector. The
    /// plan's own workspace is created on the first call and reused
    /// afterwards, so a warm call — same plan, same `out` — performs no
    /// steady-state heap allocations (`tests/alloc_gate.rs`).
    ///
    /// # Panics
    /// Panics if `densities.len() != plan.num_owned() * source_dim`.
    pub fn apply_into(
        &self,
        c: &Comm,
        plan: &mut FmmPlan,
        densities: &[f64],
        out: &mut Vec<f64>,
    ) -> Profile {
        assert_eq!(
            densities.len(),
            plan.num_owned() * plan.sd,
            "densities must align with owned_gids"
        );
        if plan.ws.is_none() {
            plan.ws = Some(EvalWorkspace::new(self, &plan.l, &plan.lists, plan.uid));
        }
        let FmmPlan {
            ref l,
            ref lists,
            ref mut data,
            ref send_plan,
            ref recv_plan,
            sd,
            td,
            ref mut ws,
            ..
        } = *plan;
        let ws = ws.as_mut().expect("created above");
        self.apply_core(
            c, l, lists, data, send_plan, recv_plan, sd, td, ws, densities, out,
        )
    }

    /// [`Fmm::apply_into`] with an external (pooled) workspace instead of
    /// the plan-owned one. A workspace tagged for a different plan is
    /// rebuilt in place first, so stale buffers can never leak across
    /// plan generations; a matching workspace is reused as-is.
    ///
    /// # Panics
    /// Panics if `densities.len() != plan.num_owned() * source_dim`.
    pub fn apply_ws(
        &self,
        c: &Comm,
        plan: &mut FmmPlan,
        ws: &mut EvalWorkspace,
        densities: &[f64],
        out: &mut Vec<f64>,
    ) -> Profile {
        assert_eq!(
            densities.len(),
            plan.num_owned() * plan.sd,
            "densities must align with owned_gids"
        );
        if ws.plan_uid() != plan.uid {
            *ws = EvalWorkspace::new(self, &plan.l, &plan.lists, plan.uid);
        }
        let FmmPlan {
            ref l,
            ref lists,
            ref mut data,
            ref send_plan,
            ref recv_plan,
            sd,
            td,
            ..
        } = *plan;
        self.apply_core(
            c, l, lists, data, send_plan, recv_plan, sd, td, ws, densities, out,
        )
    }

    /// [`Fmm::apply_batch`] with an external workspace — the serve
    /// layer's pooled path. Bitwise identical to the plan-owned batch.
    pub fn apply_batch_ws(
        &self,
        c: &Comm,
        plan: &mut FmmPlan,
        ws: &mut EvalWorkspace,
        densities: &[&[f64]],
    ) -> Vec<(Vec<f64>, Profile)> {
        densities
            .iter()
            .map(|den| {
                let mut out = Vec::with_capacity(plan.num_owned() * plan.td);
                let prof = self.apply_ws(c, plan, ws, den, &mut out);
                (out, prof)
            })
            .collect()
    }

    /// Build a fresh evaluation workspace for `plan`, sized from its LET
    /// and lists. This is how a serve-layer pool materializes entries on
    /// a miss.
    pub fn workspace(&self, plan: &FmmPlan) -> EvalWorkspace {
        EvalWorkspace::new(self, &plan.l, &plan.lists, plan.uid)
    }

    /// The shared apply body: scatter densities, refresh ghosts, run the
    /// phases out of the workspace, collect the owned potentials.
    #[allow(clippy::too_many_arguments)]
    fn apply_core(
        &self,
        c: &Comm,
        l: &Let,
        lists: &Lists,
        data: &mut EvalData,
        send_plan: &[(usize, Vec<usize>)],
        recv_plan: &[(usize, Vec<usize>)],
        sd: usize,
        td: usize,
        ws: &mut EvalWorkspace,
        densities: &[f64],
        out: &mut Vec<f64>,
    ) -> Profile {
        ws.record_apply();
        // Scatter the new densities into the owned leaves.
        let mut cursor = 0usize;
        for i in 0..l.len() {
            if !l.owned[i] {
                continue;
            }
            let npts = data.leaf_pos[i].len();
            data.leaf_den[i].clear();
            data.leaf_den[i].extend_from_slice(&densities[cursor * sd..(cursor + npts) * sd]);
            cursor += npts;
        }
        debug_assert_eq!(densities.len(), cursor * sd, "aligned with owned_gids");

        // Refresh ghost copies (U- and X-list sources on other ranks).
        for (dest, leaves) in send_plan {
            let mut buf = Vec::new();
            for &i in leaves {
                buf.extend_from_slice(&data.leaf_den[i]);
            }
            c.send_vec(*dest, TAG_DEN, buf);
        }
        for (src, leaves) in recv_plan {
            let buf = c.recv::<f64>(*src, TAG_DEN);
            let mut off = 0usize;
            for &i in leaves {
                let n = data.leaf_pos[i].len() * sd;
                data.leaf_den[i].clear();
                data.leaf_den[i].extend_from_slice(&buf[off..off + n]);
                off += n;
            }
            debug_assert_eq!(off, buf.len(), "ghost density schedule agreed");
        }

        // Run the evaluation phases and collect the owned potentials.
        let mut prof = Profile::default();
        let t0 = Instant::now();
        let tracer = pfmm_trace::Tracer::off();
        let _ = run_phases(self, c, l, lists, data, ws, &mut prof, &tracer);
        prof.total_secs = t0.elapsed().as_secs_f64();
        out.clear();
        for i in 0..l.len() {
            if !l.owned[i] {
                continue;
            }
            let off = l.pt_off[i];
            let n = data.leaf_pos[i].len();
            out.extend_from_slice(&ws.f[off * td..(off + n) * td]);
        }
        prof
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::{randomize_densities, uniform_cube};
    use crate::driver::{gather_potentials, FmmConfig};
    use pfmm_kernels::Laplace;
    use pfmm_mpisim::run;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn fmm() -> Fmm {
        Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 30,
                ..Default::default()
            },
        )
    }

    /// plan+apply with the original densities must reproduce evaluate().
    #[test]
    fn apply_matches_evaluate() {
        for p in [1usize, 2, 4] {
            let mut pts = uniform_cube(1200, 401, 0);
            randomize_densities(&mut pts, 1, 3);
            let f = fmm();
            let via_eval: HashMap<u64, f64> = run(p, |c| {
                let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(p).copied().collect();
                let res = f.evaluate(c, mine);
                gather_potentials(c, &res, 1)
            })
            .pop()
            .expect("rank 0")
            .into_iter()
            .map(|(g, v)| (g, v[0]))
            .collect();

            let via_plan: HashMap<u64, f64> = run(p, |c| {
                let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(p).copied().collect();
                let mut plan = f.plan(c, mine);
                let den: Vec<f64> = plan
                    .owned_gids()
                    .iter()
                    .map(|g| pts[*g as usize].den[0])
                    .collect();
                let (pot, _) = f.apply(c, &mut plan, &den);
                let pairs: Vec<(u64, f64)> = plan
                    .owned_gids()
                    .iter()
                    .zip(&pot)
                    .map(|(g, v)| (*g, *v))
                    .collect();
                pfmm_mpisim::collectives::allgatherv(c, &pairs)
            })
            .pop()
            .expect("rank 0")
            .into_iter()
            .collect();

            assert_eq!(via_eval.len(), via_plan.len());
            for (gid, want) in &via_eval {
                let got = via_plan[gid];
                assert!(
                    (got - want).abs() < 1e-11 * want.abs().max(1.0),
                    "p={p} gid={gid}: {got} vs {want}"
                );
            }
        }
    }

    /// Re-applying with new densities must match a fresh evaluation with
    /// those densities — the ghost refresh really works.
    #[test]
    fn apply_with_new_densities() {
        let p = 4;
        let mut pts = uniform_cube(1500, 409, 0);
        randomize_densities(&mut pts, 1, 5);
        let mut pts2 = pts.clone();
        randomize_densities(&mut pts2, 1, 99);
        let f = fmm();

        let fresh: HashMap<u64, f64> = run(p, |c| {
            let mine: Vec<_> = pts2.iter().skip(c.rank()).step_by(p).copied().collect();
            let res = f.evaluate(c, mine);
            gather_potentials(c, &res, 1)
        })
        .pop()
        .expect("rank 0")
        .into_iter()
        .map(|(g, v)| (g, v[0]))
        .collect();

        let planned: HashMap<u64, f64> = run(p, |c| {
            // Plan with the OLD densities, apply with the NEW ones.
            let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(p).copied().collect();
            let mut plan = f.plan(c, mine);
            let den: Vec<f64> = plan
                .owned_gids()
                .iter()
                .map(|g| pts2[*g as usize].den[0])
                .collect();
            let (pot, _) = f.apply(c, &mut plan, &den);
            let pairs: Vec<(u64, f64)> = plan
                .owned_gids()
                .iter()
                .zip(&pot)
                .map(|(g, v)| (*g, *v))
                .collect();
            pfmm_mpisim::collectives::allgatherv(c, &pairs)
        })
        .pop()
        .expect("rank 0")
        .into_iter()
        .collect();

        for (gid, want) in &fresh {
            let got = planned[gid];
            assert!(
                (got - want).abs() < 1e-11 * want.abs().max(1.0),
                "gid={gid}: {got} vs {want}"
            );
        }
    }

    /// The fingerprint is a pure function of its inputs and reacts to
    /// every semantic field.
    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let pts = uniform_cube(300, 7, 0);
        let cfg = FmmConfig::default();
        let a = plan_fingerprint("laplace", &cfg, 1, &pts);
        let b = plan_fingerprint("laplace", &cfg, 1, &pts);
        assert_eq!(a, b, "deterministic");
        assert_ne!(a, plan_fingerprint("stokes", &cfg, 1, &pts), "kernel");
        assert_ne!(a, plan_fingerprint("laplace", &cfg, 2, &pts), "comm size");
        let cfg2 = FmmConfig {
            order: cfg.order + 2,
            ..cfg
        };
        assert_ne!(a, plan_fingerprint("laplace", &cfg2, 1, &pts), "order");
        let cfg3 = FmmConfig {
            translate: crate::driver::TranslateMode::Matvec,
            ..cfg
        };
        assert_ne!(a, plan_fingerprint("laplace", &cfg3, 1, &pts), "translate");
        let mut moved = pts.clone();
        moved[17].pos[1] += 1e-12;
        assert_ne!(a, plan_fingerprint("laplace", &cfg, 1, &moved), "position");
        // Densities deliberately do NOT participate: a plan is reusable
        // across density updates.
        let mut dense = pts.clone();
        randomize_densities(&mut dense, 3, 999);
        assert_eq!(a, plan_fingerprint("laplace", &cfg, 1, &dense));
    }

    /// The setup engine is a pure implementation detail: parallel and
    /// serial setup fingerprint identically (the `setup` field never
    /// participates) and build structurally equal plans — the memory
    /// accounting, translate grouping, and owned-point ordering agree.
    #[test]
    fn setup_mode_is_plan_invariant() {
        use crate::driver::SetupMode;
        let pts = uniform_cube(1100, 433, 0);
        let cfg_par = FmmConfig {
            order: 4,
            q: 30,
            setup: SetupMode::Parallel,
            threads: 4,
            ..Default::default()
        };
        let cfg_ser = FmmConfig {
            setup: SetupMode::Serial,
            ..cfg_par
        };
        assert_eq!(
            plan_fingerprint("laplace", &cfg_par, 1, &pts),
            plan_fingerprint("laplace", &cfg_ser, 1, &pts),
            "setup mode never reaches the fingerprint"
        );
        let fp = Fmm::new(Arc::new(Laplace), cfg_par);
        let fs = Fmm::new(Arc::new(Laplace), cfg_ser);
        run(2, |c| {
            let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(2).copied().collect();
            let a = fp.plan(c, mine.clone());
            let b = fs.plan(c, mine);
            assert_eq!(a.memory_bytes(), b.memory_bytes(), "byte accounting");
            assert_eq!(a.data.translate, b.data.translate, "translate grouping");
            assert_eq!(a.owned_gids, b.owned_gids, "owned ordering");
        });
    }

    /// Plan memory accounting scales with the geometry and is nonzero.
    #[test]
    fn memory_bytes_tracks_geometry_size() {
        let f = fmm();
        let small = run(1, |c| f.plan(c, uniform_cube(200, 11, 0)).memory_bytes());
        let large = run(1, |c| f.plan(c, uniform_cube(2000, 11, 0)).memory_bytes());
        assert!(small[0] > 0);
        assert!(
            large[0] > 2 * small[0],
            "10x points should dominate fixed overhead: {} vs {}",
            large[0],
            small[0]
        );
    }

    /// The batched path is positionally aligned and bitwise identical to
    /// standalone applies of the same density sets.
    #[test]
    fn apply_batch_matches_individual_applies() {
        let mut pts = uniform_cube(700, 421, 0);
        randomize_densities(&mut pts, 1, 7);
        let f = fmm();
        run(2, |c| {
            let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(2).copied().collect();
            let mut plan = f.plan(c, mine);
            let base: Vec<f64> = plan
                .owned_gids()
                .iter()
                .map(|g| pts[*g as usize].den[0])
                .collect();
            let sets: Vec<Vec<f64>> = (0..3)
                .map(|k| base.iter().map(|v| v * (k + 1) as f64).collect())
                .collect();
            let refs: Vec<&[f64]> = sets.iter().map(|s| s.as_slice()).collect();
            let batched = f.apply_batch(c, &mut plan, &refs);
            assert_eq!(batched.len(), 3);
            for (k, set) in sets.iter().enumerate() {
                let (single, _) = f.apply(c, &mut plan, set);
                for (a, b) in batched[k].0.iter().zip(&single) {
                    assert_eq!(a.to_bits(), b.to_bits(), "set {k}");
                }
            }
        });
    }

    /// Plan-reuse purity of the translate grouping: the cached plan's
    /// (level, operator-class) groups are a pure function of the geometry
    /// — replaying the plan with fresh densities leaves them untouched,
    /// matches a fresh plan of the same geometry structurally, and
    /// reproduces that fresh plan's potentials bitwise.
    #[test]
    fn translate_groups_replay_identically_with_fresh_densities() {
        let mut pts = uniform_cube(900, 431, 0);
        randomize_densities(&mut pts, 1, 7);
        let mut pts2 = pts.clone();
        randomize_densities(&mut pts2, 1, 55);
        let f = fmm();
        assert_eq!(f.config().translate, crate::driver::TranslateMode::Gemm);
        run(1, |c| {
            let mut plan = f.plan(c, pts.clone());
            let groups = plan.data.translate.clone();
            assert!(groups.s2u.iter().any(|g| !g.is_empty()));
            assert!(groups.u2u.iter().flatten().any(|g| !g.is_empty()));
            let den: Vec<f64> = plan
                .owned_gids()
                .iter()
                .map(|g| pts[*g as usize].den[0])
                .collect();
            let den2: Vec<f64> = plan
                .owned_gids()
                .iter()
                .map(|g| pts2[*g as usize].den[0])
                .collect();
            let (_, _) = f.apply(c, &mut plan, &den);
            let (pot2, _) = f.apply(c, &mut plan, &den2);
            assert_eq!(plan.data.translate, groups, "groups untouched by applies");

            let mut fresh = f.plan(c, pts2.clone());
            assert_eq!(fresh.data.translate, groups, "pure function of geometry");
            let (want, _) = f.apply(c, &mut fresh, &den2);
            for (a, b) in pot2.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits(), "cached plan replays bitwise");
            }
        });
    }

    /// Repeated applies are deterministic and independent.
    #[test]
    fn apply_is_repeatable_and_linear() {
        let mut pts = uniform_cube(800, 419, 0);
        randomize_densities(&mut pts, 1, 7);
        let f = fmm();
        run(2, |c| {
            let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(2).copied().collect();
            let mut plan = f.plan(c, mine);
            let den: Vec<f64> = plan
                .owned_gids()
                .iter()
                .map(|g| pts[*g as usize].den[0])
                .collect();
            let (a, _) = f.apply(c, &mut plan, &den);
            let doubled: Vec<f64> = den.iter().map(|v| 2.0 * v).collect();
            let (b, _) = f.apply(c, &mut plan, &doubled);
            let (a2, _) = f.apply(c, &mut plan, &den);
            for ((x, y), z) in a.iter().zip(&b).zip(&a2) {
                assert!((2.0 * x - y).abs() < 1e-10 * y.abs().max(1.0), "linear");
                assert_eq!(x, z, "deterministic rerun");
            }
        });
    }
}
