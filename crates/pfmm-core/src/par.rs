//! Intra-rank shared-memory parallelism for the evaluation phases.
//!
//! The paper notes (§IV) that "the S2U, D2T, ULI, WLI, VLI, XLI steps can
//! be implemented in parallel" — each visits target octants independently
//! and writes disjoint per-octant output — while U2U and D2D would need
//! Euler-tour techniques it does not use. This module parallelizes
//! exactly that set on a host thread pool: octants are split into
//! contiguous index ranges, and each worker receives the matching
//! disjoint window of the output array, so the parallelism is safe by
//! construction (no atomics, no locks on the data path).

/// Process octants `0..noct` in parallel: the index space is split into
/// up to `threads` contiguous ranges, and each worker gets the matching
/// window of `out` (`offset_of(i)` maps octant `i` to its element offset;
/// it must be monotone with `offset_of(noct) == out.len()`).
///
/// `work(range, window, base)` processes octants `range` writing into
/// `window`, whose element 0 corresponds to global offset `base`
/// (= `offset_of(range.start)`); it returns the flops it performed.
/// Returns the summed flops.
///
/// With `threads <= 1` the work runs inline on the caller's thread.
pub fn par_windows<F>(
    threads: usize,
    noct: usize,
    out: &mut [f64],
    offset_of: &(dyn Fn(usize) -> usize + Sync),
    work: F,
) -> u64
where
    F: Fn(std::ops::Range<usize>, &mut [f64], usize) -> u64 + Sync,
{
    debug_assert_eq!(offset_of(noct), out.len(), "offset map covers the output");
    if threads <= 1 || noct < 2 {
        return work(0..noct, out, 0);
    }
    // Contiguous octant ranges of roughly equal length. (Work per octant
    // varies; the paper's per-leaf imbalance is handled by the MPI-level
    // balancer, and phase work correlates well enough with octant count
    // for an intra-rank split.)
    let t = threads.min(noct);
    let mut cuts = Vec::with_capacity(t + 1);
    for k in 0..=t {
        cuts.push(k * noct / t);
    }

    let mut tasks: Vec<(std::ops::Range<usize>, &mut [f64], usize)> = Vec::with_capacity(t);
    let mut rest = out;
    let mut consumed = 0usize;
    for k in 0..t {
        let (lo, hi) = (cuts[k], cuts[k + 1]);
        let base = offset_of(lo);
        let end = offset_of(hi);
        debug_assert_eq!(base, consumed);
        let (window, tail) = rest.split_at_mut(end - base);
        rest = tail;
        consumed = end;
        tasks.push((lo..hi, window, base));
    }
    debug_assert!(rest.is_empty());

    let work = &work;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|(range, window, base)| scope.spawn(move |_| work(range, window, base)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation worker panicked"))
            .sum()
    })
    .expect("par_windows scope")
}

/// Parallel map over an index list, each element producing a value; the
/// results come back in input order. Used for the V-list source spectra
/// (each source octant transformed once, independently).
pub fn par_map<T, F>(threads: usize, items: &[usize], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(|&i| f(i)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    let results = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(items.len()))
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut mine = Vec::new();
                    loop {
                        let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if k >= items.len() {
                            break;
                        }
                        mine.push((k, f(items[k])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("par_map scope");
    for (k, v) in results {
        slots[k] = Some(v);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_and_write_disjointly() {
        let noct = 17;
        let stride = 3;
        let mut out = vec![0.0f64; noct * stride];
        let flops = par_windows(4, noct, &mut out, &|i| i * stride, |range, window, base| {
            let mut n = 0;
            for i in range {
                let w = &mut window[i * stride - base..(i + 1) * stride - base];
                for (j, v) in w.iter_mut().enumerate() {
                    *v = (i * 10 + j) as f64;
                }
                n += 1;
            }
            n
        });
        assert_eq!(flops, 17);
        for i in 0..noct {
            for j in 0..stride {
                assert_eq!(out[i * stride + j], (i * 10 + j) as f64);
            }
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let noct = 23;
        let run = |threads| {
            let mut out = vec![0.0f64; noct * 2];
            par_windows(
                threads,
                noct,
                &mut out,
                &|i| i * 2,
                |range, window, base| {
                    for i in range {
                        window[i * 2 - base] = (i * i) as f64;
                        window[i * 2 + 1 - base] = -(i as f64);
                    }
                    0
                },
            );
            out
        };
        assert_eq!(run(1), run(5));
    }

    #[test]
    fn irregular_offsets() {
        // Variable-size per-octant windows (like per-leaf point counts).
        let sizes = [3usize, 0, 5, 1, 0, 2];
        let offs: Vec<usize> = sizes
            .iter()
            .scan(0, |acc, s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .chain(std::iter::once(sizes.iter().sum()))
            .collect();
        let total: usize = sizes.iter().sum();
        let mut out = vec![0.0f64; total];
        par_windows(
            3,
            sizes.len(),
            &mut out,
            &|i| offs[i],
            |range, window, base| {
                for i in range.clone() {
                    for k in offs[i]..offs[i + 1] {
                        window[k - base] = i as f64;
                    }
                }
                0
            },
        );
        let mut want = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            want.extend(std::iter::repeat_n(i as f64, *s));
        }
        assert_eq!(out, want);
    }

    #[test]
    fn par_map_ordered() {
        let items: Vec<usize> = (0..50).map(|i| i * 2).collect();
        let got = par_map(4, &items, |i| i + 1);
        let want: Vec<usize> = items.iter().map(|i| i + 1).collect();
        assert_eq!(got, want);
    }
}
