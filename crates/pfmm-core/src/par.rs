//! Intra-rank shared-memory parallelism.
//!
//! The machinery lives in [`pfmm_tree::par`] so the setup pipeline
//! (sort/tree/lists) and the evaluation phases share one implementation;
//! this module re-exports it under the historical `pfmm_core::par` path.

pub use pfmm_tree::par::*;
