//! Level-batched multi-RHS grouping for the up/down translations.
//!
//! The S2U check-solves, U2U, DC2E, and D2D translations all apply one
//! *shared* per-level operator to many boxes: every box at a level uses
//! the same `uc2e`/`dc2e` pseudo-inverse, and the eight U2U/D2D variants
//! are determined entirely by the child index within the parent. Applied
//! box-by-box the operator is re-streamed from memory once per box and
//! the pass is GEMV-bound; grouped, the operator is loaded once per
//! `GEMM_NR` right-hand sides and the pass becomes BLAS-3 (Kailasa,
//! Betcke & El Kazdadi; DESIGN.md §12).
//!
//! [`TranslatePlan::build`] buckets boxes per `(level, operator)` at plan
//! time from the LET geometry alone — group membership never depends on
//! density values, so a cached plan replays identically with fresh
//! densities. At run time each group gathers its source vectors into a
//! column-major panel ([`TranslateGroup::pack`]), applies the operator
//! with one [`pfmm_linalg::gemm_acc_scaled`] call, and scatter-adds the
//! scaled product into its destination slices ([`TranslateGroup::apply`]).
//!
//! # Why this preserves bitwise schedule-equality
//!
//! Per destination element the grouped path performs `dst += s * dot`
//! with the dot product summed in ascending `k` by a single accumulator —
//! exactly the operation sequence of the scalar `matvec_acc_scaled`
//! path (`gemm_acc_scaled` is bitwise identical to a per-column matvec;
//! groups are walked in a fixed level/class/box order that reproduces the
//! scalar path's per-destination accumulation order). The result is
//! independent of executor chunking, so barrier and graph schedules stay
//! bitwise identical, and `--translate=gemm` itself matches
//! `--translate=matvec` bitwise.
//!
//! The W/X lists and D2T are *not* groupable this way in the KIFMM: they
//! are direct kernel evaluations against box-specific point/surface
//! geometry, so no two boxes share an operator matrix (they are already
//! handled by the tiled near-field and direct-eval paths).

use crate::par::par_map_n;
use pfmm_linalg::{gemm_acc_scaled_with, GemmScratch, Matrix};
use pfmm_tree::{Let, SetupPar};

/// One `(level, operator)` bucket: column `j` of the RHS panel is
/// gathered from octant `src[j]` and its scaled product is scatter-added
/// into octant `dst[j]`. Destinations within a group are distinct (a
/// parent has at most one child per child-index class), so the scatter is
/// a set of disjoint accumulates in a fixed order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslateGroup {
    /// Octant gathered into column `j`.
    pub src: Vec<u32>,
    /// Octant receiving column `j`'s product.
    pub dst: Vec<u32>,
}

/// Reusable pack/product panels, so a pass over all levels allocates O(1)
/// times once warm.
#[derive(Default)]
pub struct Scratch {
    xp: Vec<f64>,
    yp: Vec<f64>,
    gs: GemmScratch,
}

impl Scratch {
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Heap bytes held, by allocated capacity.
    pub fn memory_bytes(&self) -> usize {
        (self.xp.capacity() + self.yp.capacity()) * std::mem::size_of::<f64>()
            + self.gs.memory_bytes()
    }
}

impl TranslateGroup {
    fn push(&mut self, src: u32, dst: u32) {
        self.src.push(src);
        self.dst.push(dst);
    }

    /// Number of right-hand sides in the group.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Gather the group's source vectors (`in_len` each, at
    /// `buf[src[j] * in_len ..]`) into the scratch column panel.
    pub fn pack(&self, in_len: usize, buf: &[f64], sc: &mut Scratch) {
        sc.xp.clear();
        sc.xp.reserve(in_len * self.len());
        for &si in &self.src {
            sc.xp
                .extend_from_slice(&buf[si as usize * in_len..(si as usize + 1) * in_len]);
        }
    }

    /// Apply `op` (with post-dot scale `s`) to the packed panel and
    /// scatter-add the products into `buf[dst[j] * out_len ..]`.
    ///
    /// Groups below `min_rhs` right-hand sides fall back to one matvec
    /// per column — bitwise identical to the GEMM (same per-element
    /// accumulation order), so the break-even choice is numerics-free.
    #[allow(clippy::too_many_arguments)]
    pub fn apply(
        &self,
        op: &Matrix,
        s: f64,
        in_len: usize,
        out_len: usize,
        min_rhs: usize,
        sc: &mut Scratch,
        buf: &mut [f64],
    ) {
        let m = self.len();
        debug_assert_eq!(sc.xp.len(), in_len * m, "pack() must precede apply()");
        sc.yp.clear();
        sc.yp.resize(out_len * m, 0.0);
        let Scratch { xp, yp, gs } = sc;
        if m < min_rhs {
            for (j, col) in yp.chunks_exact_mut(out_len).enumerate() {
                op.matvec_acc_scaled(&xp[j * in_len..(j + 1) * in_len], col, s);
            }
        } else {
            gemm_acc_scaled_with(op, xp, yp, m, s, gs);
        }
        for (j, &di) in self.dst.iter().enumerate() {
            let dst = &mut buf[di as usize * out_len..(di as usize + 1) * out_len];
            for (dv, &pv) in dst.iter_mut().zip(&yp[j * out_len..(j + 1) * out_len]) {
                *dv += pv;
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.src.len() + self.dst.len()) * size_of::<u32>() + 2 * size_of::<Vec<u32>>()
    }
}

/// Plan-time `(level, operator-class)` grouping of the up/down pass,
/// derived from the LET geometry and leaf occupancy alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslatePlan {
    /// Per level: the uc2e solve group — owned point-carrying leaves, in
    /// ascending octant order (src == dst; gathered from the check
    /// buffer, scattered into the upward densities).
    pub s2u: Vec<TranslateGroup>,
    /// Per level: the dc2e solve group — every local octant (src == dst;
    /// gathered from the downward-check buffer, scattered into the
    /// downward densities).
    pub dc2e: Vec<TranslateGroup>,
    /// Per level, per child-index class: U2U groups (src = child with a
    /// nonempty owned subtree, dst = its parent). Index 0 is empty.
    pub u2u: Vec<[TranslateGroup; 8]>,
    /// Per level, per child-index class: D2D groups (src = parent present
    /// in the LET, dst = the local child). Index 0 is empty.
    pub d2d: Vec<[TranslateGroup; 8]>,
}

impl TranslatePlan {
    /// Bucket the LET's octants. `occupied[i]` is the initial upward
    /// occupancy (owned, point-carrying leaf) — the same predicate the
    /// scalar path's `mark_has_up` uses; U2U membership propagates it
    /// bottom-up exactly as the level-synchronous scalar sweep would.
    pub fn build(l: &Let, by_level: &[Vec<u32>], occupied: &[bool]) -> TranslatePlan {
        TranslatePlan::build_with(l, by_level, occupied, SetupPar::Serial)
    }

    /// [`TranslatePlan::build`] with the per-level solve groups assembled
    /// in parallel under `par`. Each level's s2u/dc2e bucket depends only
    /// on that level's octants, so levels are independent tasks; the U2U
    /// and D2D grouping propagates occupancy bottom-up across levels and
    /// stays serial. Results are reassembled in level order, so the plan
    /// is identical to the serial build.
    pub fn build_with(
        l: &Let,
        by_level: &[Vec<u32>],
        occupied: &[bool],
        par: SetupPar,
    ) -> TranslatePlan {
        let nlev = by_level.len();
        let empty8 = || std::array::from_fn(|_| TranslateGroup::default());
        let solves: Vec<(TranslateGroup, TranslateGroup)> = par_map_n(par.threads(), nlev, |lev| {
            let mut s2u = TranslateGroup::default();
            let mut dc2e = TranslateGroup::default();
            for &iu in &by_level[lev] {
                if occupied[iu as usize] {
                    s2u.push(iu, iu);
                }
                dc2e.push(iu, iu);
            }
            (s2u, dc2e)
        });
        let (s2u, dc2e) = solves.into_iter().unzip();
        let mut plan = TranslatePlan {
            s2u,
            dc2e,
            u2u: (0..nlev).map(|_| empty8()).collect(),
            d2d: (0..nlev).map(|_| empty8()).collect(),
        };
        // Upward occupancy propagated deepest-first: a box feeds its
        // parent iff it is an occupied leaf or any child already fed it.
        let mut sub_up = occupied.to_vec();
        for lev in (1..nlev).rev() {
            for &iu in &by_level[lev] {
                let i = iu as usize;
                let key = l.octs[i];
                let parent = key.parent().expect("level >= 1");
                if sub_up[i] {
                    let pi = l.find(&parent).expect("parent of a local octant is local");
                    plan.u2u[lev][key.child_index()].push(iu, pi as u32);
                    sub_up[pi] = true;
                }
                if let Some(pi) = l.find(&parent) {
                    plan.d2d[lev][key.child_index()].push(pi as u32, iu);
                }
            }
        }
        plan
    }

    /// Heap bytes held by the grouping (feeds the serve-layer plan-cache
    /// budget accounting).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let flat: usize = self
            .s2u
            .iter()
            .chain(&self.dc2e)
            .map(TranslateGroup::memory_bytes)
            .sum();
        let classed: usize = self
            .u2u
            .iter()
            .chain(&self.d2d)
            .flat_map(|cls| cls.iter())
            .map(TranslateGroup::memory_bytes)
            .sum();
        flat + classed
            + (self.s2u.len() + self.dc2e.len()) * size_of::<TranslateGroup>()
            + (self.u2u.len() + self.d2d.len()) * size_of::<[TranslateGroup; 8]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(pairs: &[(u32, u32)]) -> TranslateGroup {
        let mut g = TranslateGroup::default();
        for &(s, d) in pairs {
            g.push(s, d);
        }
        g
    }

    /// pack/apply reproduces per-box matvec_acc_scaled bitwise, for both
    /// the GEMM path and the small-group matvec fallback.
    #[test]
    fn group_apply_bitwise_matches_per_box_matvec() {
        let (in_len, out_len) = (7, 5);
        let op = Matrix::from_fn(out_len, in_len, |i, j| ((i * 13 + j * 7) % 17) as f64 - 8.0);
        let src: Vec<f64> = (0..4 * in_len).map(|i| (i as f64 * 0.31).sin()).collect();
        let g = group(&[(0, 3), (1, 0), (2, 2), (3, 1)]);
        for min_rhs in [1usize, 100] {
            let mut buf = vec![0.25f64; 4 * out_len];
            let mut want = buf.clone();
            for (j, &di) in g.dst.iter().enumerate() {
                let si = g.src[j] as usize;
                op.matvec_acc_scaled(
                    &src[si * in_len..(si + 1) * in_len],
                    &mut want[di as usize * out_len..(di as usize + 1) * out_len],
                    -1.5,
                );
            }
            let mut sc = Scratch::new();
            g.pack(in_len, &src, &mut sc);
            g.apply(&op, -1.5, in_len, out_len, min_rhs, &mut sc, &mut buf);
            for (got, exp) in buf.iter().zip(&want) {
                assert_eq!(got.to_bits(), exp.to_bits(), "min_rhs={min_rhs}");
            }
        }
    }

    /// Gather and scatter may alias the same buffer (U2U/D2D): packing
    /// completes before any write, so a child can feed its parent slice
    /// in place.
    #[test]
    fn group_apply_supports_aliased_buffer() {
        let n = 3;
        let op = Matrix::identity(n);
        // Octant 1 accumulates octant 0's vector (scaled by 2).
        let g = group(&[(0, 1)]);
        let mut buf = vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        let mut sc = Scratch::new();
        g.pack(n, &buf, &mut sc);
        g.apply(&op, 2.0, n, n, 1, &mut sc, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 12.0, 24.0, 36.0]);
    }
}
