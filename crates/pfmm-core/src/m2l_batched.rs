//! Batched, lock-free spectral M2L: transfer-vector-grouped Hadamard
//! products over split-complex half spectra.
//!
//! The plain FFT path ([`crate::m2l_fft::FftM2l`]) resolves a kernel
//! spectrum from a mutex-guarded cache on every V-list edge and multiplies
//! AoS `Complex` values. This module restructures the same translation so
//! the V-list phase runs at memory bandwidth:
//!
//! * **Immutable [`SpectraTable`]**: every (level, transfer-vector) kernel
//!   spectrum present in the tree is built up front — homogeneous kernels
//!   build each offset once at the base level and share it across levels
//!   with a per-level scale — and the edge loop resolves spectra by a
//!   dense array index (7³ = 343 slots per level). No lock anywhere in
//!   the per-edge loop.
//! * **Half spectra**: equivalent densities and kernel samples are real,
//!   so forward transforms use [`RFft3`] and keep only the Hermitian
//!   non-redundant `n²·(n/2+1)` frequencies — half the Hadamard flops and
//!   spectrum memory of the complex path.
//! * **Split-complex SoA**: spectra are stored as separate re/im planes
//!   with frequency fastest, so the inner `td×sd` multiply-accumulate is
//!   a shuffle-free fused-multiply-add chain over contiguous `f64`s that
//!   autovectorizes.
//! * **Transfer-vector buckets + reusable scratch**: targets are processed
//!   in small batches whose edges are sorted by (level, offset), so each
//!   kernel spectrum is loaded once per bucket and streamed against a run
//!   of sources, accumulating into a reusable [`BatchScratch`] instead of
//!   a fresh allocation per target.
//!
//! Per target the edges are applied in ascending offset-slot order — an
//! order that depends only on the target's own V-list geometry, never on
//! chunk boundaries or thread count — so the barrier and graph executors
//! produce bitwise-identical potentials.

use std::sync::Arc;

use pfmm_fft::{Complex, RFft3, RFftScratch};
use pfmm_kernels::Kernel;

use crate::ops::level_radius;
use crate::par::par_map;
use crate::profile::flop_model;
use crate::surface::{surface_grid_indices, RAD_INNER};

/// Number of dense transfer-vector slots per level: components in
/// `-3..=3` along each axis.
pub const N_SLOTS: usize = 7 * 7 * 7;

/// Dense index of a V-list transfer vector (components in `-3..=3`).
#[inline]
pub fn offset_slot(offset: [i8; 3]) -> usize {
    debug_assert!(offset.iter().all(|&o| (-3..=3).contains(&o)));
    (((offset[0] + 3) as usize * 7) + (offset[1] + 3) as usize) * 7 + (offset[2] + 3) as usize
}

/// One kernel's spectra for a single transfer vector: `td·sd` half-
/// spectrum planes stored split-complex, frequency fastest, plane
/// `(tc·sd + sc)` at `[(tc·sd + sc)·gh .. ][..gh]`.
pub struct KernelSpectra {
    re: Vec<f64>,
    im: Vec<f64>,
}

struct LevelSpectra {
    /// Homogeneity rescale from the build level (1.0 when built in place).
    scale: f64,
    /// Spectra by dense transfer-vector slot.
    by_offset: Vec<Option<Arc<KernelSpectra>>>,
}

/// Immutable per-level table of kernel spectra, built before the V-list
/// edge loop; lookups are two array indexes and never lock.
pub struct SpectraTable {
    levels: Vec<Option<LevelSpectra>>,
}

impl SpectraTable {
    /// The spectra and homogeneity scale for an edge. Panics if the
    /// (level, offset) pair was not enumerated at build time.
    #[inline]
    pub fn get(&self, level: u32, slot: usize) -> (&KernelSpectra, f64) {
        let ls = self.levels[level as usize]
            .as_ref()
            .expect("level enumerated at table build");
        let spec = ls.by_offset[slot]
            .as_deref()
            .expect("offset enumerated at table build");
        (spec, ls.scale)
    }

    /// Number of distinct spectra held (shared Arcs counted once).
    pub fn distinct_spectra(&self) -> usize {
        let mut seen: Vec<*const KernelSpectra> = Vec::new();
        for ls in self.levels.iter().flatten() {
            for spec in ls.by_offset.iter().flatten() {
                let p = Arc::as_ptr(spec);
                if !seen.contains(&p) {
                    seen.push(p);
                }
            }
        }
        seen.len()
    }

    /// Heap bytes held by the table (distinct spectra counted once, plus
    /// the per-level slot arrays); feeds the workspace memory accounting.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut seen: Vec<*const KernelSpectra> = Vec::new();
        let mut planes = 0usize;
        let mut slots = 0usize;
        for ls in self.levels.iter().flatten() {
            slots += ls.by_offset.len();
            for spec in ls.by_offset.iter().flatten() {
                let p = Arc::as_ptr(spec);
                if !seen.contains(&p) {
                    seen.push(p);
                    planes += spec.re.len() + spec.im.len();
                }
            }
        }
        planes * size_of::<f64>()
            + seen.len() * (size_of::<KernelSpectra>() + 2 * size_of::<usize>())
            + slots * size_of::<Option<Arc<KernelSpectra>>>()
            + self.levels.len() * size_of::<Option<LevelSpectra>>()
    }
}

/// Forward-transformed equivalent densities for the V-list sources of one
/// evaluation, packed split-complex: source `s` holds `sd` planes of `gh`
/// frequencies each at `[(idx[s]·sd + c)·gh .. ][..gh]`.
pub struct SourceSpectra {
    /// Compact plane index per octant; `u32::MAX` for octants that are
    /// not a V-list source.
    idx: Vec<u32>,
    re: Vec<f64>,
    im: Vec<f64>,
    /// Values per source (`sd·gh`).
    stride: usize,
}

impl SourceSpectra {
    /// An empty table, warmed in place by
    /// [`FftBatchedM2l::source_spectra_into`].
    pub fn empty() -> SourceSpectra {
        SourceSpectra {
            idx: Vec::new(),
            re: Vec::new(),
            im: Vec::new(),
            stride: 0,
        }
    }

    /// Heap bytes held (element counts × element sizes).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.idx.len() * size_of::<u32>() + (self.re.len() + self.im.len()) * size_of::<f64>()
    }

    /// The split-complex planes of octant `oct` (`sd·gh` values each).
    #[inline]
    pub fn planes(&self, oct: usize) -> (&[f64], &[f64]) {
        let s = self.idx[oct];
        debug_assert_ne!(s, u32::MAX, "octant was not transformed");
        let lo = s as usize * self.stride;
        (
            &self.re[lo..lo + self.stride],
            &self.im[lo..lo + self.stride],
        )
    }
}

/// Reusable accumulator scratch for a batch of targets, plus the inverse-
/// transform staging buffers. One per worker, reused across batches.
pub struct BatchScratch {
    /// Targets the accumulators can hold.
    slots: usize,
    /// Values per target (`td·gh`).
    stride: usize,
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
    spec: Vec<Complex>,
    grid: Vec<f64>,
    fft: RFftScratch,
}

impl BatchScratch {
    /// Heap bytes held, by allocated capacity.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.acc_re.capacity() + self.acc_im.capacity() + self.grid.capacity()) * size_of::<f64>()
            + self.spec.capacity() * size_of::<Complex>()
            + self.fft.memory_bytes()
    }

    /// Zero the first `n` target accumulators for a new batch.
    pub fn reset(&mut self, n: usize) {
        assert!(n <= self.slots);
        self.acc_re[..n * self.stride].fill(0.0);
        self.acc_im[..n * self.stride].fill(0.0);
    }
}

/// Per-worker scratch for the forward source transforms (pass 1 of the
/// batched V-list): the torus embedding grid, its half spectrum, and the
/// FFT work vectors. A default (empty) scratch warms on first use.
#[derive(Default)]
pub struct SpectraTmp {
    grid: Vec<f64>,
    spec: Vec<Complex>,
    fft: RFftScratch,
}

impl SpectraTmp {
    /// Heap bytes held, by allocated capacity.
    pub fn memory_bytes(&self) -> usize {
        self.grid.capacity() * std::mem::size_of::<f64>()
            + self.spec.capacity() * std::mem::size_of::<Complex>()
            + self.fft.memory_bytes()
    }
}

/// The batched spectral M2L engine for one kernel and surface order
/// (`--m2l=fft-batched`).
pub struct FftBatchedM2l {
    kernel: Arc<dyn Kernel>,
    order: usize,
    /// Torus side `n = 2p`.
    n: usize,
    rfft: RFft3,
    surf_idx: Vec<[usize; 3]>,
}

impl FftBatchedM2l {
    /// Create an engine; `order` must match the operator cache in use.
    pub fn new(kernel: Arc<dyn Kernel>, order: usize) -> FftBatchedM2l {
        let n = 2 * order;
        FftBatchedM2l {
            kernel,
            order,
            n,
            rfft: RFft3::new(n),
            surf_idx: surface_grid_indices(order),
        }
    }

    /// Real grid cells (`n³`).
    pub fn grid_len(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Retained frequencies per half-spectrum plane (`n²·(n/2+1)`).
    pub fn spectrum_len(&self) -> usize {
        self.rfft.spectrum_len()
    }

    /// Number of source-dimension components.
    pub fn sd(&self) -> usize {
        self.kernel.source_dim()
    }

    /// Number of target-dimension components.
    pub fn td(&self) -> usize {
        self.kernel.target_dim()
    }

    #[inline]
    fn grid_index(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.n + y) * self.n + z
    }

    /// Build the immutable kernel-spectrum table for the distinct
    /// (level, offset) pairs present in the tree. Homogeneous kernels
    /// build each offset once at the base level and share the spectra
    /// across levels with a per-level scale.
    pub fn build_table(&self, keys: &[(u32, [i8; 3])], threads: usize) -> SpectraTable {
        let max_level = keys.iter().map(|&(l, _)| l).max().unwrap_or(0) as usize;
        let mut levels: Vec<Option<LevelSpectra>> = (0..=max_level).map(|_| None).collect();
        match self.kernel.homogeneity() {
            Some(h) => {
                // Distinct offsets across all levels, built once at the
                // base level 0 in a deterministic (sorted) order.
                let mut seen = [false; N_SLOTS];
                let mut offsets: Vec<[i8; 3]> = Vec::new();
                for &(_, o) in keys {
                    let s = offset_slot(o);
                    if !seen[s] {
                        seen[s] = true;
                        offsets.push(o);
                    }
                }
                offsets.sort_unstable();
                let idxs: Vec<usize> = (0..offsets.len()).collect();
                let specs = par_map(threads, &idxs, |i| {
                    Arc::new(self.build_kernel_spectrum(0, offsets[i]))
                });
                let mut base: Vec<Option<Arc<KernelSpectra>>> = vec![None; N_SLOTS];
                for (o, spec) in offsets.iter().zip(specs) {
                    base[offset_slot(*o)] = Some(spec);
                }
                for &(level, _) in keys {
                    if levels[level as usize].is_none() {
                        levels[level as usize] = Some(LevelSpectra {
                            scale: (level_radius(level) / level_radius(0)).powf(h),
                            by_offset: base.clone(),
                        });
                    }
                }
            }
            None => {
                let idxs: Vec<usize> = (0..keys.len()).collect();
                let specs = par_map(threads, &idxs, |i| {
                    let (level, offset) = keys[i];
                    Arc::new(self.build_kernel_spectrum(level, offset))
                });
                for (&(level, offset), spec) in keys.iter().zip(specs) {
                    let ls = levels[level as usize].get_or_insert_with(|| LevelSpectra {
                        scale: 1.0,
                        by_offset: vec![None; N_SLOTS],
                    });
                    ls.by_offset[offset_slot(offset)] = Some(spec);
                }
            }
        }
        SpectraTable { levels }
    }

    /// Sample the kernel on the translation torus and half-spectrum
    /// transform each of the `td·sd` component grids.
    fn build_kernel_spectrum(&self, level: u32, offset: [i8; 3]) -> KernelSpectra {
        let p = self.order;
        let n = self.n;
        let g = self.grid_len();
        let gh = self.spectrum_len();
        let sd = self.sd();
        let td = self.td();
        let r = level_radius(level);
        let h = 2.0 * RAD_INNER * r / (p - 1) as f64;
        let d = [
            offset[0] as f64 * 2.0 * r,
            offset[1] as f64 * 2.0 * r,
            offset[2] as f64 * 2.0 * r,
        ];
        let mut block = vec![0.0; td * sd];
        let mut grids = vec![0.0f64; td * sd * g];
        let half = p as i64 - 1;
        for mx in -half..=half {
            for my in -half..=half {
                for mz in -half..=half {
                    let x = [
                        d[0] + h * mx as f64,
                        d[1] + h * my as f64,
                        d[2] + h * mz as f64,
                    ];
                    self.kernel.eval_block(&x, &[0.0; 3], &mut block);
                    let gi = self.grid_index(
                        mx.rem_euclid(n as i64) as usize,
                        my.rem_euclid(n as i64) as usize,
                        mz.rem_euclid(n as i64) as usize,
                    );
                    for pair in 0..td * sd {
                        grids[pair * g + gi] = block[pair];
                    }
                }
            }
        }
        let mut re = vec![0.0f64; td * sd * gh];
        let mut im = vec![0.0f64; td * sd * gh];
        let mut spec = vec![Complex::ZERO; gh];
        for pair in 0..td * sd {
            self.rfft
                .forward(&grids[pair * g..(pair + 1) * g], &mut spec);
            for (f, v) in spec.iter().enumerate() {
                re[pair * gh + f] = v.re;
                im[pair * gh + f] = v.im;
            }
        }
        KernelSpectra { re, im }
    }

    /// Forward-transform the equivalent densities of the given source
    /// octants (pass 1). `u` is the packed upward-density array with
    /// `ulen` values per octant; `noct` sizes the octant index.
    pub fn source_spectra(
        &self,
        sources: &[usize],
        noct: usize,
        u: &[f64],
        ulen: usize,
        threads: usize,
    ) -> SourceSpectra {
        let mut out = SourceSpectra::empty();
        self.source_spectra_into(
            sources,
            noct,
            u,
            ulen,
            threads,
            &mut SpectraTmp::default(),
            &mut out,
        );
        out
    }

    /// [`Self::source_spectra`] writing into a caller-owned table:
    /// alloc-free once `out` and `tmp` have warmed to this evaluation's
    /// source count (the workspace path). At `threads > 1` the per-source
    /// transforms still run through the allocating parallel map —
    /// transforms are independent, so results are bitwise identical
    /// either way.
    #[allow(clippy::too_many_arguments)]
    pub fn source_spectra_into(
        &self,
        sources: &[usize],
        noct: usize,
        u: &[f64],
        ulen: usize,
        threads: usize,
        tmp: &mut SpectraTmp,
        out: &mut SourceSpectra,
    ) {
        let sd = self.sd();
        let gh = self.spectrum_len();
        let stride = sd * gh;
        out.stride = stride;
        out.idx.clear();
        out.idx.resize(noct, u32::MAX);
        out.re.clear();
        out.re.resize(sources.len() * stride, 0.0);
        out.im.clear();
        out.im.resize(sources.len() * stride, 0.0);
        if threads <= 1 || sources.len() < 2 {
            for (s, &ai) in sources.iter().enumerate() {
                out.idx[ai] = s as u32;
                let lo = s * stride;
                self.transform_source_into(
                    &u[ai * ulen..(ai + 1) * ulen],
                    tmp,
                    &mut out.re[lo..lo + stride],
                    &mut out.im[lo..lo + stride],
                );
            }
        } else {
            let planes: Vec<(Vec<f64>, Vec<f64>)> = par_map(threads, sources, |ai| {
                self.transform_source(&u[ai * ulen..(ai + 1) * ulen])
            });
            for (s, (&ai, (pr, pi))) in sources.iter().zip(planes).enumerate() {
                out.idx[ai] = s as u32;
                out.re[s * stride..(s + 1) * stride].copy_from_slice(&pr);
                out.im[s * stride..(s + 1) * stride].copy_from_slice(&pi);
            }
        }
    }

    /// Embed one octant's `n_surf·sd` packed density on the torus and
    /// half-spectrum transform each component.
    fn transform_source(&self, u: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let sd = self.sd();
        let gh = self.spectrum_len();
        let mut re = vec![0.0f64; sd * gh];
        let mut im = vec![0.0f64; sd * gh];
        self.transform_source_into(u, &mut SpectraTmp::default(), &mut re, &mut im);
        (re, im)
    }

    /// [`Self::transform_source`] through caller-owned scratch, writing
    /// the split-complex planes in place.
    fn transform_source_into(
        &self,
        u: &[f64],
        tmp: &mut SpectraTmp,
        re: &mut [f64],
        im: &mut [f64],
    ) {
        let sd = self.sd();
        let g = self.grid_len();
        let gh = self.spectrum_len();
        debug_assert_eq!(u.len(), self.surf_idx.len() * sd);
        tmp.grid.clear();
        tmp.grid.resize(g, 0.0);
        tmp.spec.clear();
        tmp.spec.resize(gh, Complex::ZERO);
        for c in 0..sd {
            tmp.grid.fill(0.0);
            for (s, m) in self.surf_idx.iter().enumerate() {
                tmp.grid[self.grid_index(m[0], m[1], m[2])] = u[s * sd + c];
            }
            self.rfft
                .forward_with(&tmp.grid, &mut tmp.spec, &mut tmp.fft);
            for (f, v) in tmp.spec.iter().enumerate() {
                re[c * gh + f] = v.re;
                im[c * gh + f] = v.im;
            }
        }
    }

    /// Fresh accumulator scratch able to hold `slots` targets.
    pub fn new_scratch(&self, slots: usize) -> BatchScratch {
        let stride = self.td() * self.spectrum_len();
        BatchScratch {
            slots,
            stride,
            acc_re: vec![0.0f64; slots * stride],
            acc_im: vec![0.0f64; slots * stride],
            spec: vec![Complex::ZERO; self.spectrum_len()],
            grid: vec![0.0f64; self.grid_len()],
            fft: RFftScratch::default(),
        }
    }

    /// Accumulate one edge into target accumulator `slot`:
    /// `acc_tc += scale · Σ_sc K̂_(tc,sc) ⊙ û_sc`, split-complex.
    pub fn accumulate(
        &self,
        scratch: &mut BatchScratch,
        slot: usize,
        k: &KernelSpectra,
        src_re: &[f64],
        src_im: &[f64],
        scale: f64,
    ) {
        let gh = self.spectrum_len();
        let sd = self.sd();
        let td = self.td();
        debug_assert_eq!(k.re.len(), td * sd * gh);
        debug_assert_eq!(src_re.len(), sd * gh);
        let lo = slot * scratch.stride;
        let acc_re = &mut scratch.acc_re[lo..lo + scratch.stride];
        let acc_im = &mut scratch.acc_im[lo..lo + scratch.stride];
        for tc in 0..td {
            let ar = &mut acc_re[tc * gh..(tc + 1) * gh];
            let ai = &mut acc_im[tc * gh..(tc + 1) * gh];
            for sc in 0..sd {
                let pair = (tc * sd + sc) * gh;
                madd(
                    ar,
                    ai,
                    &k.re[pair..pair + gh],
                    &k.im[pair..pair + gh],
                    &src_re[sc * gh..(sc + 1) * gh],
                    &src_im[sc * gh..(sc + 1) * gh],
                    scale,
                );
            }
        }
    }

    /// Inverse-transform target accumulator `slot` and add the surface
    /// values into the packed downward check potential (`n_surf·td`).
    pub fn finish(&self, scratch: &mut BatchScratch, slot: usize, dcheck: &mut [f64]) {
        let gh = self.spectrum_len();
        let td = self.td();
        debug_assert_eq!(dcheck.len(), self.surf_idx.len() * td);
        let lo = slot * scratch.stride;
        for tc in 0..td {
            let ar = &scratch.acc_re[lo + tc * gh..lo + (tc + 1) * gh];
            let ai = &scratch.acc_im[lo + tc * gh..lo + (tc + 1) * gh];
            for (f, v) in scratch.spec.iter_mut().enumerate() {
                *v = Complex::new(ar[f], ai[f]);
            }
            self.rfft
                .inverse_with(&mut scratch.spec, &mut scratch.grid, &mut scratch.fft);
            for (t, m) in self.surf_idx.iter().enumerate() {
                dcheck[t * td + tc] += scratch.grid[self.grid_index(m[0], m[1], m[2])];
            }
        }
    }

    /// Flops for one edge's half-spectrum Hadamard accumulation.
    pub fn flops_edge(&self) -> u64 {
        flop_model::hadamard_edge(self.spectrum_len(), self.sd(), self.td())
    }

    /// Flops for one source's forward transforms (half of the
    /// complex-to-complex model).
    pub fn flops_forward(&self) -> u64 {
        flop_model::fft_real(self.grid_len()) * self.sd() as u64
    }

    /// Flops for one target's inverse transforms.
    pub fn flops_inverse(&self) -> u64 {
        flop_model::fft_real(self.grid_len()) * self.td() as u64
    }
}

/// The split-complex multiply-accumulate kernel: 4 FMAs per frequency,
/// no shuffles — every operand is a contiguous `f64` run of one length,
/// which is the shape LLVM autovectorizes.
#[inline]
fn madd(ar: &mut [f64], ai: &mut [f64], kr: &[f64], ki: &[f64], ur: &[f64], ui: &[f64], s: f64) {
    let n = ar.len();
    assert!(
        ai.len() == n && kr.len() == n && ki.len() == n && ur.len() == n && ui.len() == n,
        "plane length mismatch"
    );
    for f in 0..n {
        ar[f] += s * (kr[f] * ur[f] - ki[f] * ui[f]);
        ai[f] += s * (kr[f] * ui[f] + ki[f] * ur[f]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Ops;
    use pfmm_kernels::{Laplace, Stokes};

    /// All valid V-list transfer vectors: components in −3..=3 with
    /// ∞-norm ≥ 2 (316 of them).
    fn all_offsets() -> Vec<[i8; 3]> {
        let mut out = Vec::new();
        for x in -3i8..=3 {
            for y in -3i8..=3 {
                for z in -3i8..=3 {
                    if x.abs().max(y.abs()).max(z.abs()) >= 2 {
                        out.push([x, y, z]);
                    }
                }
            }
        }
        out
    }

    /// Sweep every valid offset at one level, comparing the batched
    /// half-spectrum path against the dense operators.
    fn sweep_all_offsets(kernel: Arc<dyn Kernel>, order: usize, level: u32) {
        let ops = Ops::new(kernel.clone(), order, 1e-12);
        let eng = FftBatchedM2l::new(kernel, order);
        let offsets = all_offsets();
        assert_eq!(offsets.len(), 316);
        let keys: Vec<(u32, [i8; 3])> = offsets.iter().map(|&o| (level, o)).collect();
        let table = eng.build_table(&keys, 2);

        let nd = ops.density_len();
        let u: Vec<f64> = (0..nd).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
        let noct = 1;
        let src = eng.source_spectra(&[0], noct, &u, nd, 1);
        let (sre, sim) = src.planes(0);
        let mut scratch = eng.new_scratch(1);

        for &offset in &offsets {
            let (m, s) = ops.m2l(level, offset);
            let mut dense = vec![0.0; ops.check_len()];
            m.matvec_acc_scaled(&u, &mut dense, s);

            let (k, scale) = table.get(level, offset_slot(offset));
            scratch.reset(1);
            eng.accumulate(&mut scratch, 0, k, sre, sim, scale);
            let mut got = vec![0.0; ops.check_len()];
            eng.finish(&mut scratch, 0, &mut got);

            let denom = dense
                .iter()
                .map(|v| v.abs())
                .fold(0.0f64, f64::max)
                .max(1e-30);
            for (a, b) in got.iter().zip(&dense) {
                assert!(
                    (a - b).abs() < 1e-10 * denom,
                    "batched {a} vs dense {b} (order {order}, offset {offset:?})"
                );
            }
        }
    }

    #[test]
    fn laplace_all_offsets_match_dense() {
        sweep_all_offsets(Arc::new(Laplace), 4, 2);
    }

    #[test]
    fn stokes_all_offsets_match_dense() {
        sweep_all_offsets(Arc::new(Stokes::default()), 4, 3);
    }

    #[test]
    fn homogeneous_table_shares_base_spectra_across_levels() {
        let eng = FftBatchedM2l::new(Arc::new(Laplace), 4);
        let keys = vec![
            (1, [2, 0, 0]),
            (2, [2, 0, 0]),
            (5, [2, 0, 0]),
            (2, [0, -3, 1]),
        ];
        let table = eng.build_table(&keys, 1);
        // 2 distinct offsets, shared by every level.
        assert_eq!(table.distinct_spectra(), 2);
        let (k1, s1) = table.get(1, offset_slot([2, 0, 0]));
        let (k5, s5) = table.get(5, offset_slot([2, 0, 0]));
        assert!(std::ptr::eq(k1, k5));
        // Laplace is 1/r: scale ratio across 4 levels is 2⁴.
        assert!((s5 / s1 - 16.0).abs() < 1e-12);
    }

    #[test]
    fn batch_accumulation_is_linear() {
        let eng = FftBatchedM2l::new(Arc::new(Laplace), 4);
        let nd = eng.surf_idx.len();
        let table = eng.build_table(&[(2, [0, 2, 0])], 1);
        let (k, s) = table.get(2, offset_slot([0, 2, 0]));

        let u1: Vec<f64> = (0..nd).map(|i| i as f64).collect();
        let u2: Vec<f64> = (0..nd).map(|i| (nd - i) as f64).collect();
        let sum: Vec<f64> = u1.iter().zip(&u2).map(|(a, b)| a + b).collect();
        let mut all = Vec::new();
        all.extend_from_slice(&u1);
        all.extend_from_slice(&u2);
        all.extend_from_slice(&sum);
        let src = eng.source_spectra(&[0, 1, 2], 3, &all, nd, 1);

        let mut scratch = eng.new_scratch(2);
        scratch.reset(2);
        let (r0, i0) = src.planes(0);
        eng.accumulate(&mut scratch, 0, k, r0, i0, s);
        let (r1, i1) = src.planes(1);
        eng.accumulate(&mut scratch, 0, k, r1, i1, s);
        let (r2, i2) = src.planes(2);
        eng.accumulate(&mut scratch, 1, k, r2, i2, s);

        let mut two = vec![0.0; nd];
        eng.finish(&mut scratch, 0, &mut two);
        let mut one = vec![0.0; nd];
        eng.finish(&mut scratch, 1, &mut one);
        for (a, b) in two.iter().zip(&one) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
        }
    }
}
