//! FMM setup and evaluation — Algorithm 1 over the LET, instrumented per
//! phase.
//!
//! One [`Fmm`] object holds the kernel, the translation-operator caches,
//! and the configuration; [`Fmm::evaluate`] runs the full pipeline on any
//! communicator (including the trivial single-rank one):
//!
//! setup — Morton sample sort → `Points2Octree` → LET → lists → (optional)
//! work-weighted repartition and rebuild;
//!
//! evaluation — S2U, U2U (upward), hypercube reduce-and-scatter of shared
//! up-densities, V/X into the downward check potentials, D2D + D2T
//! (downward), W, and the direct U-list, with per-phase wall-clock and
//! flop accounting matching the paper's Table II rows.

use std::sync::Arc;
use std::time::Instant;

use pfmm_kernels::Kernel;
use pfmm_mpisim::collectives::{allgatherv, allreduce};
use pfmm_mpisim::{Comm, CommStats};
use pfmm_trace::{TraceLevel, Tracer, TID_MAIN};
use pfmm_tree::{
    bitonic_sort_points_with, build_let_with, build_lists_with, lists::leaf_weights,
    octree_from_sorted_with, repartition_by_weight, sample_sort_points_with, Let, PointRec,
    SetupPar,
};

use crate::exec::{run_phases, EvalData};
use crate::m2l_batched::FftBatchedM2l;
use crate::m2l_fft::FftM2l;
use crate::ops::Ops;
use crate::profile::Profile;

/// How the V-list translation is evaluated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum M2lMode {
    /// Dense per-offset operator matrices (the reference path).
    Dense,
    /// FFT-diagonalized translation (§IV), one edge at a time against a
    /// mutex-guarded spectrum cache (kept as the ablation baseline).
    Fft,
    /// FFT-diagonalized translation with precomputed lock-free kernel
    /// spectrum tables, transfer-vector-bucketed edges, split-complex
    /// half spectra, and reusable scratch — the production path.
    FftBatched,
}

/// Parallel-sort backend for the setup phase (the paper's sort is a
/// "combination of sample sort and bitonic sort").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SortKind {
    /// Sample sort: one splitter round plus one all-to-all (default).
    Sample,
    /// Hypercube bitonic network; requires a power-of-two communicator
    /// (falls back to sample sort otherwise).
    Bitonic,
}

/// Which up-density reduction runs in the Comm phase.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Hypercube reduce-and-scatter when `p` is a power of two, the
    /// owner-based scheme otherwise.
    Auto,
    /// Force Algorithm 3 (panics on non-power-of-two communicators).
    Hypercube,
    /// Force the owner-based baseline (the ablation path).
    Naive,
}

/// How the evaluation phases are executed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Bulk-synchronous: phases run one after another and the rank
    /// blocks inside the Comm phase (the reference path).
    Barrier,
    /// Dependency-graph execution via `pfmm-sched`: per-octant-chunk
    /// tasks with explicit data dependencies, and the reduce-and-scatter
    /// as a non-blocking comm task overlapped with the U/X-lists.
    Graph,
}

/// How the direct near-field (U-list) interactions are evaluated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UlistMode {
    /// Per-target scalar loop over `&dyn Kernel` with AoS points (the
    /// reference path, kept as the ablation baseline).
    Scalar,
    /// Padded lane-aligned SoA tiles walked as a sorted CSR with
    /// branch-free monomorphized microkernels (`crate::nearfield`) — the
    /// production path. Kernels without tile microkernels fall back to
    /// the scalar path automatically.
    Tiled,
}

/// How the setup pipeline (sort, tree, LET, interaction lists, plan
/// precompute) is executed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SetupMode {
    /// Multithreaded LSD radix sort on `(Morton rank, gid)` plus
    /// parallel tree/LET/list/plan construction over `threads` workers —
    /// bitwise identical to `Serial` by construction (the composite sort
    /// key is unique per record and every parallel stage reassembles in
    /// input order; DESIGN.md §13). The production path.
    Parallel,
    /// Single-threaded comparison sort and serial construction (the
    /// reference path, kept as the ablation baseline).
    Serial,
}

/// How the shared-operator up/down translations (uc2e/dc2e solves, U2U,
/// D2D) are applied.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TranslateMode {
    /// One `matvec_acc_scaled` per box (the reference path, kept as the
    /// ablation baseline).
    Matvec,
    /// Level-batched multi-RHS GEMM: boxes sharing one operator are
    /// grouped at plan time (`crate::translate`), their densities packed
    /// as column panels, and each group applied with one
    /// `pfmm_linalg::gemm_acc_scaled` call — the production path.
    /// Bitwise identical to `Matvec` by construction (DESIGN.md §12).
    Gemm,
}

/// FMM parameters.
#[derive(Copy, Clone, Debug)]
pub struct FmmConfig {
    /// Surface order (points per cube edge); 4 ≈ 3 digits, 6 ≈ 5 digits.
    pub order: usize,
    /// Maximum points per leaf octant (the paper's `q`).
    pub q: usize,
    /// V-list evaluation mode.
    pub m2l: M2lMode,
    /// Relative truncation of the check→equivalent pseudo-inverses.
    pub pinv_tol: f64,
    /// Run the work-weighted repartition of §III-B (only meaningful for
    /// more than one rank).
    pub balance: bool,
    /// Up-density reduction scheme.
    pub reduction: Reduction,
    /// Intra-rank threads for the per-octant evaluation phases (S2U, V,
    /// X, D2T, W, U — the parallel set of §IV); 1 = fully sequential.
    pub threads: usize,
    /// Parallel-sort backend.
    pub sort: SortKind,
    /// Threads for the level-synchronous U2U/D2D traversals — the
    /// Euler-tour parallelism the paper lists as unexploited future work
    /// (§IV); 1 reproduces the paper's sequential traversals.
    pub traversal_threads: usize,
    /// Phase executor: bulk-synchronous barriers or the task graph with
    /// communication/compute overlap.
    pub schedule: Schedule,
    /// Near-field (U-list) evaluation mode.
    pub ulist: UlistMode,
    /// Up/down translation application mode.
    pub translate: TranslateMode,
    /// Setup-pipeline execution mode. `Parallel` runs the sort, tree,
    /// LET, list, and plan construction over `threads` workers; results
    /// are bitwise identical either way, so this never participates in
    /// [`crate::plan::plan_fingerprint`].
    pub setup: SetupMode,
}

impl Default for FmmConfig {
    fn default() -> Self {
        FmmConfig {
            order: 6,
            q: 64,
            m2l: M2lMode::FftBatched,
            pinv_tol: 1e-12,
            balance: true,
            reduction: Reduction::Auto,
            threads: 1,
            sort: SortKind::Sample,
            traversal_threads: 1,
            schedule: Schedule::Barrier,
            ulist: UlistMode::Tiled,
            translate: TranslateMode::Gemm,
            setup: SetupMode::Parallel,
        }
    }
}

/// Global tree shape statistics (all ranks agree on these).
#[derive(Copy, Clone, Debug, Default)]
pub struct TreeInfo {
    /// Leaves of the global tree.
    pub global_leaves: u64,
    /// Octants in this rank's LET.
    pub local_octants: u64,
    /// Coarsest leaf level.
    pub min_leaf_level: u32,
    /// Finest leaf level.
    pub max_leaf_level: u32,
}

/// The output of one evaluation on one rank.
pub struct PotentialResult {
    /// Global ids of the points this rank ended up owning.
    pub gids: Vec<u64>,
    /// Potentials, packed `target_dim` per point, aligned with `gids`.
    pub pot: Vec<f64>,
    /// Per-phase timings and flop counts.
    pub profile: Profile,
    /// Message/byte counters at completion.
    pub comm: CommStats,
    /// Traffic of the Comm phase alone (the reduce-and-scatter).
    pub comm_reduce: CommStats,
    /// Tree shape.
    pub info: TreeInfo,
}

/// A reusable FMM evaluator for one kernel and configuration.
///
/// `Fmm` is `Sync`: one instance can be shared by all rank threads of an
/// `mpisim::run` (the operator caches are internally locked and are warm
/// after the first evaluation).
pub struct Fmm {
    kernel: Arc<dyn Kernel>,
    cfg: FmmConfig,
    ops: Ops,
    fft: FftM2l,
    fftb: FftBatchedM2l,
}

impl Fmm {
    /// Create an evaluator.
    pub fn new(kernel: Arc<dyn Kernel>, cfg: FmmConfig) -> Fmm {
        let ops = Ops::new(kernel.clone(), cfg.order, cfg.pinv_tol);
        let fft = FftM2l::new(kernel.clone(), cfg.order);
        let fftb = FftBatchedM2l::new(kernel.clone(), cfg.order);
        Fmm {
            kernel,
            cfg,
            ops,
            fft,
            fftb,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FmmConfig {
        &self.cfg
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// The translation-operator cache (advanced use; shared with the
    /// plan-based evaluation path).
    pub fn ops(&self) -> &Ops {
        &self.ops
    }

    /// The FFT M2L engine.
    pub fn fft(&self) -> &FftM2l {
        &self.fft
    }

    /// The batched lock-free spectral M2L engine.
    pub fn fft_batched(&self) -> &FftBatchedM2l {
        &self.fftb
    }

    /// The intra-rank parallelism of the setup pipeline implied by the
    /// configuration: `threads` workers under [`SetupMode::Parallel`],
    /// fully serial under [`SetupMode::Serial`].
    ///
    /// The worker count is clamped to the host's available parallelism:
    /// the setup stages are memory-bound streaming passes, so workers
    /// beyond the hardware's concurrency only add spawn overhead and
    /// cache thrash (unlike the evaluation phases, whose `threads` knob
    /// also sizes simulated-rank interleaving). The structures built are
    /// bitwise independent of the worker count, so the clamp is
    /// numerics-free.
    pub(crate) fn setup_par(&self) -> SetupPar {
        match self.cfg.setup {
            SetupMode::Serial => SetupPar::Serial,
            SetupMode::Parallel => {
                let hw = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                SetupPar::Threads(self.cfg.threads.clamp(1, hw))
            }
        }
    }

    /// Evaluate the N-body sum on a communicator; every rank passes its
    /// share of the points (any distribution) and receives potentials for
    /// the points it owns afterwards.
    pub fn evaluate(&self, c: &Comm, points: Vec<PointRec>) -> PotentialResult {
        self.evaluate_traced(c, points, &Arc::new(Tracer::off()))
    }

    /// [`Fmm::evaluate`] with structured span tracing. Levels:
    /// `Phase` records setup and whole-phase spans, `Task` adds one span
    /// per chunk/task, `Comm` adds per-message instants and cross-rank
    /// flow arrows (the tracer is attached to the communicator for the
    /// duration of the call). Tracing never changes the arithmetic: a
    /// traced run's potentials are bitwise identical to an untraced one,
    /// under either executor.
    pub fn evaluate_traced(
        &self,
        c: &Comm,
        points: Vec<PointRec>,
        tracer: &Arc<Tracer>,
    ) -> PotentialResult {
        self.evaluate_observed(c, points, tracer, pfmm_metrics::global())
    }

    /// [`Fmm::evaluate_traced`], publishing this run's accounting into
    /// an explicit metrics registry instead of the process-wide one.
    /// Recording happens after the arithmetic finishes, from the same
    /// `Profile`/`CommStats` values stored in the returned result, so
    /// metrics can never disagree with the result they describe.
    pub fn evaluate_observed(
        &self,
        c: &Comm,
        points: Vec<PointRec>,
        tracer: &Arc<Tracer>,
        reg: &pfmm_metrics::MetricsRegistry,
    ) -> PotentialResult {
        let mut prof = Profile::default();
        let sd = self.kernel.source_dim();
        let td = self.kernel.target_dim();
        if tracer.enabled(TraceLevel::Comm) {
            c.set_tracer(tracer.local(c.rank() as u32, TID_MAIN));
        }
        let rank = c.rank() as u32;

        // ---------------- Setup ----------------
        // The setup family is traced as *disjoint* sibling spans on the
        // driver lane ("Sort", then "Setup:Tree" / "Setup:Lists" /
        // "Setup:Plan", with the balance rebuild emitting a second
        // tree/lists pair) — never nested, so the Chrome per-lane nesting
        // invariant holds at any clock resolution.
        let par = self.setup_par();
        let phase_on = tracer.enabled(TraceLevel::Phase);
        let t_setup = Instant::now();
        let ts_sort = tracer.now_us();
        let t_sort = Instant::now();
        let (sorted, region) = sort_points(self, c, points);
        prof.sort_secs = t_sort.elapsed().as_secs_f64();
        let ts_tree = tracer.now_us();
        if phase_on {
            tracer.record_span(rank, TID_MAIN, "Sort", "phase", ts_sort, ts_tree, &[]);
        }
        let t_tree = Instant::now();
        let mut tree = octree_from_sorted_with(c, sorted, region, self.cfg.q, par);
        let mut l = build_let_with(c, &tree, par);
        prof.tree_secs = t_tree.elapsed().as_secs_f64();
        let ts_lists = tracer.now_us();
        if phase_on {
            tracer.record_span(
                rank,
                TID_MAIN,
                "Setup:Tree",
                "phase",
                ts_tree,
                ts_lists,
                &[],
            );
        }
        let t_lists = Instant::now();
        let mut lists = build_lists_with(&l, par);
        prof.lists_secs = t_lists.elapsed().as_secs_f64();
        let mut ts_cursor = tracer.now_us();
        if phase_on {
            tracer.record_span(
                rank,
                TID_MAIN,
                "Setup:Lists",
                "phase",
                ts_lists,
                ts_cursor,
                &[],
            );
        }
        if self.cfg.balance && c.size() > 1 {
            let t_re = Instant::now();
            let w = leaf_weights(&l, &lists);
            tree = repartition_by_weight(c, tree, &w);
            l = build_let_with(c, &tree, par);
            prof.tree_secs += t_re.elapsed().as_secs_f64();
            let ts_mid = tracer.now_us();
            if phase_on {
                tracer.record_span(
                    rank,
                    TID_MAIN,
                    "Setup:Tree",
                    "phase",
                    ts_cursor,
                    ts_mid,
                    &[],
                );
            }
            let t_re = Instant::now();
            lists = build_lists_with(&l, par);
            prof.lists_secs += t_re.elapsed().as_secs_f64();
            let ts_done = tracer.now_us();
            if phase_on {
                tracer.record_span(rank, TID_MAIN, "Setup:Lists", "phase", ts_mid, ts_done, &[]);
            }
            ts_cursor = ts_done;
        }
        drop(tree);
        // Plan precompute: evaluation workspace + translate grouping +
        // shared-operator warm-up, all parallel under `par`.
        let t_plan = Instant::now();
        let data = EvalData::new_with(&l, sd, par);
        self.ops.warm(data.max_level, par);
        let mut ws = crate::workspace::EvalWorkspace::new(self, &l, &lists, 0);
        prof.plan_secs = t_plan.elapsed().as_secs_f64();
        prof.setup_secs = t_setup.elapsed().as_secs_f64();
        if phase_on {
            tracer.record_span(
                rank,
                TID_MAIN,
                "Setup:Plan",
                "phase",
                ts_cursor,
                tracer.now_us(),
                &[],
            );
        }

        // ---------------- Evaluation ----------------
        let t_eval = Instant::now();
        let comm_reduce = run_phases(self, c, &l, &lists, &data, &mut ws, &mut prof, tracer);
        prof.total_secs = t_eval.elapsed().as_secs_f64();
        let f = &ws.f;

        // Collect output for owned points, in owned-leaf order.
        let mut gids = Vec::new();
        let mut pot = Vec::new();
        for i in 0..l.len() {
            if !l.owned[i] {
                continue;
            }
            let off = l.pt_off[i];
            for (j, p) in l.points_of(i).iter().enumerate() {
                gids.push(p.gid);
                pot.extend_from_slice(&f[(off + j) * td..(off + j + 1) * td]);
            }
        }

        let info = tree_info(c, &l);
        let comm = c.stats();
        if reg.enabled() {
            crate::obs::record_evaluation(
                reg,
                self.kernel.name(),
                &self.cfg,
                c.rank(),
                &prof,
                &lists,
            );
            pfmm_mpisim::obs::record_comm(reg, c.rank(), &comm);
        }
        PotentialResult {
            gids,
            pot,
            profile: prof,
            comm,
            comm_reduce,
            info,
        }
    }
}

/// Dispatch to the configured sort backend (bitonic degrades to sample
/// sort on non-power-of-two communicators).
pub(crate) fn sort_points(
    fmm: &Fmm,
    c: &Comm,
    points: Vec<PointRec>,
) -> (Vec<PointRec>, Vec<u128>) {
    let par = fmm.setup_par();
    match fmm.cfg.sort {
        SortKind::Bitonic if c.size().is_power_of_two() => bitonic_sort_points_with(c, points, par),
        _ => sample_sort_points_with(c, points, par),
    }
}

/// Global tree statistics via small all-reduces.
fn tree_info(c: &Comm, l: &Let) -> TreeInfo {
    let local_leaves = l.owned_indices().len() as u64;
    let mut minl = u32::MAX;
    let mut maxl = 0u32;
    for i in 0..l.len() {
        if l.owned[i] {
            minl = minl.min(l.octs[i].level());
            maxl = maxl.max(l.octs[i].level());
        }
    }
    let red = allreduce(c, vec![local_leaves, minl as u64, maxl as u64], |a, b| {
        a + b
    });
    // Sum works for leaves; min/max need their own ops.
    let minmax = allreduce(c, vec![minl as u64], std::cmp::min);
    let maxmax = allreduce(c, vec![maxl as u64], std::cmp::max);
    TreeInfo {
        global_leaves: red[0],
        local_octants: l.len() as u64,
        min_leaf_level: minmax[0] as u32,
        max_leaf_level: maxmax[0] as u32,
    }
}

/// Gather every rank's (gid, potential) pairs — a test/report helper, not
/// part of the scalable pipeline.
pub fn gather_potentials(c: &Comm, res: &PotentialResult, td: usize) -> Vec<(u64, Vec<f64>)> {
    let gids = allgatherv(c, &res.gids);
    let pots = allgatherv(c, &res.pot);
    gids.into_iter()
        .enumerate()
        .map(|(i, g)| (g, pots[i * td..(i + 1) * td].to_vec()))
        .collect()
}

/// Route potentials back to their original contributors.
///
/// The pipeline owns the final point distribution ("the final
/// distribution of the points is determined by the algorithm", §III);
/// applications usually want each result back on the rank that supplied
/// the point. `owner_of(gid)` must be the same pure function on every
/// rank (typically derived from how the caller assigned gids); returns
/// this rank's `(gid, potential)` pairs. Scalable: one personalized
/// all-to-all, no global gather.
///
/// # Panics
/// Panics if `owner_of` names a rank outside the communicator or if the
/// potential packing disagrees with `td`.
pub fn route_potentials(
    c: &Comm,
    res: &PotentialResult,
    td: usize,
    owner_of: impl Fn(u64) -> usize,
) -> Vec<(u64, Vec<f64>)> {
    assert_eq!(res.pot.len(), res.gids.len() * td, "potential packing");
    let p = c.size();
    let mut out_gids: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut out_pots: Vec<Vec<f64>> = vec![Vec::new(); p];
    for (i, &g) in res.gids.iter().enumerate() {
        let dest = owner_of(g);
        assert!(dest < p, "owner_of({g}) = {dest} out of range");
        out_gids[dest].push(g);
        out_pots[dest].extend_from_slice(&res.pot[i * td..(i + 1) * td]);
    }
    let in_gids = pfmm_mpisim::collectives::alltoallv(c, out_gids);
    let in_pots = pfmm_mpisim::collectives::alltoallv(c, out_pots);
    let mut out = Vec::new();
    for (gids, pots) in in_gids.into_iter().zip(in_pots) {
        for (i, g) in gids.into_iter().enumerate() {
            out.push((g, pots[i * td..(i + 1) * td].to_vec()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::{ellipsoid_1_1_4, randomize_densities, uniform_cube};
    use crate::profile::Phase;
    use pfmm_kernels::{direct_eval, Laplace, LaplaceDipole, Point3, Stokes, Yukawa};
    use pfmm_mpisim::run;

    /// Relative ℓ² error of FMM potentials against the direct sum.
    fn rel_error(kernel: &dyn Kernel, pts: &[PointRec], gp: &[(u64, Vec<f64>)]) -> f64 {
        let td = kernel.target_dim();
        let sd = kernel.source_dim();
        let pos: Vec<Point3> = pts.iter().map(|p| p.pos).collect();
        let mut den = Vec::with_capacity(pts.len() * sd);
        for p in pts {
            den.extend_from_slice(&p.den[..sd]);
        }
        let mut want = vec![0.0; pts.len() * td];
        direct_eval(kernel, &pos, &pos, &den, &mut want);
        let gid_to_idx: std::collections::HashMap<u64, usize> =
            pts.iter().enumerate().map(|(i, p)| (p.gid, i)).collect();
        let mut num = 0.0;
        let mut denom = 0.0;
        assert_eq!(
            gp.len(),
            pts.len(),
            "every point gets a potential exactly once"
        );
        for (gid, got) in gp {
            let i = gid_to_idx[gid];
            for t in 0..td {
                let w = want[i * td + t];
                num += (got[t] - w) * (got[t] - w);
                denom += w * w;
            }
        }
        (num / denom).sqrt()
    }

    fn run_fmm(
        kernel: Arc<dyn Kernel>,
        cfg: FmmConfig,
        pts: Vec<PointRec>,
        p: usize,
    ) -> Vec<(u64, Vec<f64>)> {
        let td = kernel.target_dim();
        let fmm = Fmm::new(kernel, cfg);
        let n_per = pts.len() / p;
        let mut out = run(p, |c| {
            let mine: Vec<PointRec> = pts.iter().skip(c.rank()).step_by(p).copied().collect();
            let _ = n_per;
            let res = fmm.evaluate(c, mine);
            gather_potentials(c, &res, td)
        });
        out.pop().expect("at least one rank")
    }

    #[test]
    fn laplace_uniform_accuracy_order6() {
        let mut pts = uniform_cube(1500, 11, 0);
        randomize_densities(&mut pts, 1, 5);
        let cfg = FmmConfig {
            order: 6,
            q: 60,
            m2l: M2lMode::Fft,
            ..Default::default()
        };
        let gp = run_fmm(Arc::new(Laplace), cfg, pts.clone(), 1);
        let err = rel_error(&Laplace, &pts, &gp);
        assert!(err < 1e-5, "relative l2 error {err}");
    }

    #[test]
    fn laplace_dense_matches_fft() {
        let mut pts = uniform_cube(800, 13, 0);
        randomize_densities(&mut pts, 1, 7);
        let dense = run_fmm(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 30,
                m2l: M2lMode::Dense,
                ..Default::default()
            },
            pts.clone(),
            1,
        );
        let fft = run_fmm(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 30,
                m2l: M2lMode::Fft,
                ..Default::default()
            },
            pts.clone(),
            1,
        );
        let d: std::collections::HashMap<u64, Vec<f64>> = dense.into_iter().collect();
        for (gid, pf) in fft {
            let pd = &d[&gid];
            for (a, b) in pf.iter().zip(pd) {
                assert!((a - b).abs() < 1e-8 * b.abs().max(1e-3), "{a} vs {b}");
            }
        }
    }

    /// Full-pipeline agreement of the batched spectral path with the
    /// dense operators — same truncation, so roundoff-level tolerance.
    #[test]
    fn laplace_dense_matches_fft_batched() {
        let mut pts = uniform_cube(800, 13, 0);
        randomize_densities(&mut pts, 1, 7);
        let base = FmmConfig {
            order: 4,
            q: 30,
            m2l: M2lMode::Dense,
            ..Default::default()
        };
        let dense = run_fmm(Arc::new(Laplace), base, pts.clone(), 1);
        let batched = run_fmm(
            Arc::new(Laplace),
            FmmConfig {
                m2l: M2lMode::FftBatched,
                ..base
            },
            pts.clone(),
            1,
        );
        let d: std::collections::HashMap<u64, Vec<f64>> = dense.into_iter().collect();
        for (gid, pf) in batched {
            let pd = &d[&gid];
            for (a, b) in pf.iter().zip(pd) {
                assert!((a - b).abs() < 1e-8 * b.abs().max(1e-3), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn laplace_nonuniform_accuracy() {
        let mut pts = ellipsoid_1_1_4(1200, 17, 0);
        randomize_densities(&mut pts, 1, 9);
        let cfg = FmmConfig {
            order: 6,
            q: 40,
            m2l: M2lMode::Fft,
            ..Default::default()
        };
        let gp = run_fmm(Arc::new(Laplace), cfg, pts.clone(), 1);
        let err = rel_error(&Laplace, &pts, &gp);
        assert!(err < 1e-4, "nonuniform relative l2 error {err}");
    }

    #[test]
    fn stokes_uniform_accuracy() {
        let mut pts = uniform_cube(700, 19, 0);
        randomize_densities(&mut pts, 3, 11);
        let k = Stokes::default();
        let cfg = FmmConfig {
            order: 4,
            q: 50,
            m2l: M2lMode::Fft,
            ..Default::default()
        };
        let gp = run_fmm(Arc::new(k), cfg, pts.clone(), 1);
        let err = rel_error(&k, &pts, &gp);
        assert!(err < 5e-3, "stokes relative l2 error {err}");
    }

    #[test]
    fn distributed_matches_sequential() {
        let mut pts = uniform_cube(1000, 23, 0);
        randomize_densities(&mut pts, 1, 13);
        let cfg = FmmConfig {
            order: 4,
            q: 30,
            m2l: M2lMode::Fft,
            ..Default::default()
        };
        let seq = run_fmm(Arc::new(Laplace), cfg, pts.clone(), 1);
        let seq: std::collections::HashMap<u64, Vec<f64>> = seq.into_iter().collect();
        for p in [2usize, 4] {
            let par = run_fmm(Arc::new(Laplace), cfg, pts.clone(), p);
            assert_eq!(par.len(), pts.len(), "p={p}: all points accounted for");
            for (gid, pot) in par {
                let want = &seq[&gid];
                for (a, b) in pot.iter().zip(want) {
                    // The distributed tree legitimately differs from the
                    // sequential one near region boundaries (finer splits),
                    // so agreement holds at truncation level, not roundoff.
                    assert!(
                        (a - b).abs() < 1e-3 * b.abs().max(1.0),
                        "p={p} gid={gid}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// The graph executor must not merely approximate the barrier one —
    /// identical chunk kernels plus the canonical accumulation order
    /// make the potentials bitwise equal, in every M2L mode, sequential
    /// and distributed, with and without worker threads.
    #[test]
    fn graph_schedule_matches_barrier_bitwise() {
        let mut pts = uniform_cube(900, 31, 0);
        randomize_densities(&mut pts, 1, 17);
        for m2l in [M2lMode::Dense, M2lMode::Fft, M2lMode::FftBatched] {
            for (p, threads) in [(1usize, 1usize), (4, 2)] {
                let base = FmmConfig {
                    order: 4,
                    q: 30,
                    m2l,
                    threads,
                    ..Default::default()
                };
                let barrier = run_fmm(Arc::new(Laplace), base, pts.clone(), p);
                let graph = run_fmm(
                    Arc::new(Laplace),
                    FmmConfig {
                        schedule: Schedule::Graph,
                        ..base
                    },
                    pts.clone(),
                    p,
                );
                let b: std::collections::HashMap<u64, Vec<f64>> = barrier.into_iter().collect();
                assert_eq!(graph.len(), b.len());
                for (gid, pot) in graph {
                    for (a, w) in pot.iter().zip(&b[&gid]) {
                        assert_eq!(
                            a.to_bits(),
                            w.to_bits(),
                            "m2l={m2l:?} p={p} gid={gid}: graph {a} vs barrier {w}"
                        );
                    }
                }
            }
        }
    }

    /// The parallel setup engine is bitwise inert: the radix sort,
    /// parallel tree/LET/list construction, and parallel plan precompute
    /// must reproduce the serial setup's potentials bit for bit — under
    /// both schedules, on adaptive nonuniform trees, for scalar and
    /// vector kernels, sequential and distributed.
    #[test]
    fn parallel_setup_matches_serial_bitwise() {
        let kernels: Vec<Arc<dyn Kernel>> = vec![Arc::new(Laplace), Arc::new(Stokes { mu: 0.8 })];
        for kernel in kernels {
            let sd = kernel.source_dim();
            let mut pts = ellipsoid_1_1_4(700, 53, 0);
            randomize_densities(&mut pts, sd, 19);
            for schedule in [Schedule::Barrier, Schedule::Graph] {
                for (p, threads) in [(1usize, 2usize), (3, 2)] {
                    let base = FmmConfig {
                        order: 4,
                        q: 20,
                        schedule,
                        threads,
                        setup: SetupMode::Parallel,
                        ..Default::default()
                    };
                    let par = run_fmm(kernel.clone(), base, pts.clone(), p);
                    let ser = run_fmm(
                        kernel.clone(),
                        FmmConfig {
                            setup: SetupMode::Serial,
                            ..base
                        },
                        pts.clone(),
                        p,
                    );
                    let s: std::collections::HashMap<u64, Vec<f64>> = ser.into_iter().collect();
                    assert_eq!(par.len(), s.len());
                    for (gid, pot) in par {
                        for (a, w) in pot.iter().zip(&s[&gid]) {
                            assert_eq!(
                                a.to_bits(),
                                w.to_bits(),
                                "{} sched={schedule:?} p={p} gid={gid}: parallel {a} vs serial {w}",
                                kernel.name()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Property test for the tiled near-field: on clustered/nonuniform
    /// points with exact duplicates (coincident target/source pairs —
    /// self-interaction suppressed identically in both paths), the tiled
    /// and scalar U-list engines must agree to roundoff across all four
    /// kernels. Only the U-list differs between the runs, so the
    /// end-to-end potentials isolate exactly that phase.
    #[test]
    fn tiled_ulist_matches_scalar_all_kernels() {
        let kernels: [Arc<dyn Kernel>; 4] = [
            Arc::new(Laplace),
            Arc::new(Yukawa { lambda: 2.0 }),
            Arc::new(Stokes { mu: 0.8 }),
            Arc::new(LaplaceDipole),
        ];
        let mut pts = ellipsoid_1_1_4(600, 47, 0);
        // Exact duplicates: every 7th point sits on top of its
        // predecessor (same leaf, zero distance in the U-list).
        for i in (7..pts.len()).step_by(7) {
            pts[i].pos = pts[i - 1].pos;
        }
        for k in kernels {
            let sd = k.source_dim();
            randomize_densities(&mut pts, sd, 29);
            let base = FmmConfig {
                order: 4,
                q: 24,
                ulist: UlistMode::Scalar,
                ..Default::default()
            };
            let scalar = run_fmm(Arc::clone(&k), base, pts.clone(), 1);
            let tiled = run_fmm(
                Arc::clone(&k),
                FmmConfig {
                    ulist: UlistMode::Tiled,
                    ..base
                },
                pts.clone(),
                1,
            );
            let s: std::collections::HashMap<u64, Vec<f64>> = scalar.into_iter().collect();
            let scale = s.values().flatten().fold(0.0f64, |a, v| a.max(v.abs()));
            assert_eq!(tiled.len(), s.len());
            for (gid, pot) in tiled {
                for (a, w) in pot.iter().zip(&s[&gid]) {
                    assert!(
                        (a - w).abs() <= 1e-12 * scale,
                        "{} gid={gid}: tiled {a} vs scalar {w} (scale {scale})",
                        k.name()
                    );
                }
            }
        }
    }

    /// The bitwise barrier==graph guarantee must hold for the scalar
    /// U-list mode too (the default-path modes are covered by
    /// `graph_schedule_matches_barrier_bitwise`, which runs under the
    /// tiled default).
    #[test]
    fn graph_matches_barrier_bitwise_scalar_ulist() {
        let mut pts = uniform_cube(900, 31, 0);
        randomize_densities(&mut pts, 1, 17);
        for (p, threads) in [(1usize, 1usize), (4, 2)] {
            let base = FmmConfig {
                order: 4,
                q: 30,
                threads,
                ulist: UlistMode::Scalar,
                ..Default::default()
            };
            let barrier = run_fmm(Arc::new(Laplace), base, pts.clone(), p);
            let graph = run_fmm(
                Arc::new(Laplace),
                FmmConfig {
                    schedule: Schedule::Graph,
                    ..base
                },
                pts.clone(),
                p,
            );
            let b: std::collections::HashMap<u64, Vec<f64>> = barrier.into_iter().collect();
            for (gid, pot) in graph {
                for (a, w) in pot.iter().zip(&b[&gid]) {
                    assert_eq!(a.to_bits(), w.to_bits(), "p={p} gid={gid}");
                }
            }
        }
    }

    /// The level-batched GEMM translations must match the per-box matvec
    /// path on adaptive nonuniform trees (with coincident-point
    /// duplicates) across all four kernels. Only the up/down translation
    /// engine differs between the runs, and the grouped path preserves
    /// every per-destination accumulation order, so the agreement is
    /// bitwise — strictly stronger than the 1e-12 acceptance bound.
    #[test]
    fn translate_gemm_matches_matvec_all_kernels() {
        let kernels: [Arc<dyn Kernel>; 4] = [
            Arc::new(Laplace),
            Arc::new(Yukawa { lambda: 2.0 }),
            Arc::new(Stokes { mu: 0.8 }),
            Arc::new(LaplaceDipole),
        ];
        let mut pts = ellipsoid_1_1_4(600, 47, 0);
        for i in (7..pts.len()).step_by(7) {
            pts[i].pos = pts[i - 1].pos;
        }
        for k in kernels {
            let sd = k.source_dim();
            randomize_densities(&mut pts, sd, 31);
            let base = FmmConfig {
                order: 4,
                q: 24,
                translate: TranslateMode::Matvec,
                ..Default::default()
            };
            let matvec = run_fmm(Arc::clone(&k), base, pts.clone(), 1);
            let gemm = run_fmm(
                Arc::clone(&k),
                FmmConfig {
                    translate: TranslateMode::Gemm,
                    ..base
                },
                pts.clone(),
                1,
            );
            let m: std::collections::HashMap<u64, Vec<f64>> = matvec.into_iter().collect();
            assert_eq!(gemm.len(), m.len());
            for (gid, pot) in gemm {
                for (a, w) in pot.iter().zip(&m[&gid]) {
                    assert_eq!(
                        a.to_bits(),
                        w.to_bits(),
                        "{} gid={gid}: gemm {a} vs matvec {w}",
                        k.name()
                    );
                }
            }
        }
    }

    /// The bitwise barrier==graph guarantee must hold under the per-box
    /// matvec translation mode too (the gemm default is covered by
    /// `graph_schedule_matches_barrier_bitwise`).
    #[test]
    fn graph_matches_barrier_bitwise_matvec_translate() {
        let mut pts = uniform_cube(900, 31, 0);
        randomize_densities(&mut pts, 1, 17);
        for (p, threads) in [(1usize, 1usize), (4, 2)] {
            let base = FmmConfig {
                order: 4,
                q: 30,
                threads,
                translate: TranslateMode::Matvec,
                ..Default::default()
            };
            let barrier = run_fmm(Arc::new(Laplace), base, pts.clone(), p);
            let graph = run_fmm(
                Arc::new(Laplace),
                FmmConfig {
                    schedule: Schedule::Graph,
                    ..base
                },
                pts.clone(),
                p,
            );
            let b: std::collections::HashMap<u64, Vec<f64>> = barrier.into_iter().collect();
            for (gid, pot) in graph {
                for (a, w) in pot.iter().zip(&b[&gid]) {
                    assert_eq!(a.to_bits(), w.to_bits(), "p={p} gid={gid}");
                }
            }
        }
    }

    #[test]
    fn distributed_non_power_of_two_ranks() {
        let mut pts = uniform_cube(600, 29, 0);
        randomize_densities(&mut pts, 1, 15);
        let cfg = FmmConfig {
            order: 4,
            q: 30,
            m2l: M2lMode::Dense,
            ..Default::default()
        };
        let seq = run_fmm(Arc::new(Laplace), cfg, pts.clone(), 1);
        let seq: std::collections::HashMap<u64, Vec<f64>> = seq.into_iter().collect();
        let par = run_fmm(Arc::new(Laplace), cfg, pts.clone(), 3);
        for (gid, pot) in par {
            let want = &seq[&gid];
            for (a, b) in pot.iter().zip(want) {
                assert!((a - b).abs() < 1e-3 * b.abs().max(1.0));
            }
        }
    }

    #[test]
    fn single_leaf_tree_is_pure_direct() {
        // N <= q: the tree is the root only; FMM must equal direct
        // exactly (no approximation in play).
        let mut pts = uniform_cube(20, 31, 0);
        randomize_densities(&mut pts, 1, 17);
        let cfg = FmmConfig {
            order: 4,
            q: 64,
            ..Default::default()
        };
        let gp = run_fmm(Arc::new(Laplace), cfg, pts.clone(), 1);
        let err = rel_error(&Laplace, &pts, &gp);
        assert!(err < 1e-13, "direct-only error {err}");
    }

    #[test]
    fn profile_reports_phases() {
        let mut pts = uniform_cube(1000, 37, 0);
        randomize_densities(&mut pts, 1, 19);
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 20,
                m2l: M2lMode::Fft,
                ..Default::default()
            },
        );
        let profs = run(1, |c| {
            let res = fmm.evaluate(c, pts.clone());
            res.profile.clone()
        });
        let p = &profs[0];
        assert!(p.flops(Phase::UList) > 0, "direct interactions counted");
        assert!(p.flops(Phase::VList) > 0, "V-list work counted");
        assert!(p.flops(Phase::Upward) > 0);
        assert!(p.total_secs > 0.0);
        assert!(p.setup_secs > 0.0);
    }

    #[test]
    fn route_potentials_returns_to_contributors() {
        let mut pts = uniform_cube(1200, 43, 0);
        randomize_densities(&mut pts, 1, 21);
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 30,
                ..Default::default()
            },
        );
        let p = 4;
        // Rank r contributes gids with gid % p == r.
        let out = run(p, |c| {
            let mine: Vec<PointRec> = pts
                .iter()
                .filter(|pt| pt.gid as usize % p == c.rank())
                .copied()
                .collect();
            let n_in = mine.len();
            let res = fmm.evaluate(c, mine);
            let routed = route_potentials(c, &res, 1, |g| g as usize % p);
            (c.rank(), n_in, routed)
        });
        for (rank, n_in, routed) in out {
            assert_eq!(routed.len(), n_in, "every contributed point came home");
            for (g, v) in routed {
                assert_eq!(g as usize % p, rank);
                assert_eq!(v.len(), 1);
                assert!(v[0].is_finite());
            }
        }
    }

    /// Both executors must charge the tiled near-field build time to the
    /// U-list phase — the charge happens once, centrally, before either
    /// dispatches — and record it separately in `nf_build_secs`.
    #[test]
    fn nearfield_build_charged_to_ulist_under_both_schedules() {
        let mut pts = uniform_cube(1500, 53, 0);
        randomize_densities(&mut pts, 1, 23);
        for schedule in [Schedule::Barrier, Schedule::Graph] {
            let fmm = Fmm::new(
                Arc::new(Laplace),
                FmmConfig {
                    order: 4,
                    q: 30,
                    schedule,
                    ulist: UlistMode::Tiled,
                    ..Default::default()
                },
            );
            let profs = run(1, |c| fmm.evaluate(c, pts.clone()).profile.clone());
            let p = &profs[0];
            assert!(
                p.nf_build_secs > 0.0,
                "{schedule:?}: near-field build time recorded"
            );
            assert!(
                p.secs(Phase::UList) >= p.nf_build_secs,
                "{schedule:?}: build time folded into U-list ({} < {})",
                p.secs(Phase::UList),
                p.nf_build_secs
            );
        }
    }

    /// Tracing must be an observer: at full (Comm) level the potentials
    /// stay bitwise identical to an untraced run under both executors,
    /// and the emitted event stream is structurally valid Chrome trace
    /// material.
    #[test]
    fn traced_evaluation_is_bitwise_identical_and_emits_valid_spans() {
        use pfmm_trace::{chrome, TraceLevel, Tracer};
        let mut pts = uniform_cube(800, 61, 0);
        randomize_densities(&mut pts, 1, 31);
        for schedule in [Schedule::Barrier, Schedule::Graph] {
            let fmm = Fmm::new(
                Arc::new(Laplace),
                FmmConfig {
                    order: 4,
                    q: 30,
                    threads: 2,
                    schedule,
                    ..Default::default()
                },
            );
            let tracer = Arc::new(Tracer::new(TraceLevel::Comm));
            let p = 2;
            run(p, |c| {
                let mine: Vec<PointRec> = pts.iter().skip(c.rank()).step_by(p).copied().collect();
                let plain = fmm.evaluate(c, mine.clone());
                let traced = fmm.evaluate_traced(c, mine, &tracer);
                assert_eq!(plain.pot.len(), traced.pot.len());
                for (a, b) in plain.pot.iter().zip(&traced.pot) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{schedule:?}: traced != plain");
                }
            });
            let evs = tracer.drain();
            assert!(!evs.is_empty(), "{schedule:?}: events recorded");
            let st = chrome::validate(&evs).expect("structurally valid trace");
            assert!(st.spans > 0, "{schedule:?}: spans present");
        }
    }

    #[test]
    fn tree_info_sane() {
        let pts = uniform_cube(2000, 41, 0);
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 25,
                ..Default::default()
            },
        );
        let infos = run(2, |c| {
            let mine: Vec<PointRec> = pts.iter().skip(c.rank()).step_by(2).copied().collect();
            fmm.evaluate(c, mine).info
        });
        assert_eq!(infos[0].global_leaves, infos[1].global_leaves);
        assert!(infos[0].global_leaves > 64, "tree actually refined");
        assert!(infos[0].max_leaf_level >= infos[0].min_leaf_level);
    }
}
