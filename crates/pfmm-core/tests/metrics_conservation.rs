//! Conservation laws for the telemetry mirror (DESIGN.md §14).
//!
//! The registry is *post-hoc*: it re-publishes the authoritative
//! `Profile`/`CommStats` accounting after each evaluation. These tests
//! hold the mirror to that claim — every comm counter equals the
//! `CommStats` cell it mirrors, with no extra cells — and verify that
//! recording never perturbs the arithmetic (bitwise-identical
//! potentials with metrics enabled vs disabled), under both the
//! barrier and graph executors of a traced multi-rank run.

use std::sync::Arc;

use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_core::{Fmm, FmmConfig, Schedule};
use pfmm_kernels::Laplace;
use pfmm_metrics::MetricsRegistry;
use pfmm_mpisim::CommStats;
use pfmm_trace::{TraceLevel, Tracer};

const RANKS: usize = 3;

type RankOut = (Vec<u64>, Vec<f64>, CommStats);

fn run(schedule: Schedule, reg: &Arc<MetricsRegistry>) -> Vec<RankOut> {
    let mut pts = uniform_cube(1500, 11, 0);
    randomize_densities(&mut pts, 1, 0x5a);
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 40,
            schedule,
            ..Default::default()
        },
    );
    let tracer = Arc::new(Tracer::new(TraceLevel::Comm));
    pfmm_mpisim::run(RANKS, |c| {
        let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(RANKS).copied().collect();
        let res = fmm.evaluate_observed(c, mine, &tracer, reg);
        (res.gids, res.pot, res.comm)
    })
}

fn assert_mirror_matches(reg: &MetricsRegistry, outs: &[RankOut], schedule_label: &str) {
    let snap = reg.snapshot(0.0);
    for (rank, (_, _, comm)) in outs.iter().enumerate() {
        let r = rank.to_string();
        let rl: &[(&str, &str)] = &[("rank", &r)];
        assert_eq!(
            reg.counter_value(
                "pfmm_evaluations_total",
                &[
                    ("kernel", "laplace"),
                    ("rank", &r),
                    ("schedule", schedule_label)
                ],
            ),
            Some(1),
            "rank {rank}: exactly one evaluation recorded"
        );
        for (name, want) in [
            ("pfmm_comm_sent_msgs_total", comm.sent_msgs),
            ("pfmm_comm_sent_bytes_total", comm.sent_bytes),
            ("pfmm_comm_recv_msgs_total", comm.recv_msgs),
            ("pfmm_comm_recv_bytes_total", comm.recv_bytes),
        ] {
            assert_eq!(
                reg.counter_value(name, rl),
                Some(want),
                "rank {rank}: {name} mirrors CommStats"
            );
        }
        for (&(peer, kind), ps) in &comm.by_peer {
            let p = peer.to_string();
            let labels: &[(&str, &str)] =
                &[("rank", &r), ("peer", &p), ("collective", kind.label())];
            for (name, want) in [
                ("pfmm_comm_peer_sent_msgs_total", ps.sent_msgs),
                ("pfmm_comm_peer_sent_bytes_total", ps.sent_bytes),
                ("pfmm_comm_peer_recv_msgs_total", ps.recv_msgs),
                ("pfmm_comm_peer_recv_bytes_total", ps.recv_bytes),
            ] {
                assert_eq!(
                    reg.counter_value(name, labels),
                    Some(want),
                    "rank {rank} peer {peer} {}: {name} mirrors the cell",
                    kind.label()
                );
            }
        }
        // No phantom cells: the registry holds exactly one
        // per-(peer, collective) series per CommStats cell.
        let cells = snap
            .entries
            .iter()
            .filter(|e| {
                e.name == "pfmm_comm_peer_sent_bytes_total"
                    && e.labels.contains(&("rank".to_string(), r.clone()))
            })
            .count();
        assert_eq!(
            cells,
            comm.by_peer.len(),
            "rank {rank}: mirrored cell count equals by_peer cells"
        );
    }
}

#[test]
fn comm_mirror_matches_commstats_barrier() {
    let reg = Arc::new(MetricsRegistry::new());
    let outs = run(Schedule::Barrier, &reg);
    assert_mirror_matches(&reg, &outs, "barrier");
}

#[test]
fn comm_mirror_matches_commstats_graph() {
    let reg = Arc::new(MetricsRegistry::new());
    let outs = run(Schedule::Graph, &reg);
    assert_mirror_matches(&reg, &outs, "graph");
}

#[test]
fn potentials_bitwise_identical_with_metrics_enabled() {
    for schedule in [Schedule::Barrier, Schedule::Graph] {
        let on = Arc::new(MetricsRegistry::new());
        let off = Arc::new(MetricsRegistry::new());
        off.set_enabled(false);
        let a = run(schedule, &on);
        let b = run(schedule, &off);
        assert!(!on.is_empty(), "enabled registry recorded instruments");
        assert!(off.is_empty(), "disabled registry recorded nothing");
        for (rank, ((ga, pa, _), (gb, pb, _))) in a.iter().zip(&b).enumerate() {
            assert_eq!(ga, gb, "rank {rank}: ownership identical ({schedule:?})");
            assert_eq!(pa.len(), pb.len());
            for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "rank {rank} potential {i}: metrics changed bits ({schedule:?})"
                );
            }
        }
    }
}
