//! The allocation-regression gate: a warm `Fmm::apply_into` performs
//! ZERO heap allocations, asserted with a counting `#[global_allocator]`.
//!
//! The guarantee covers the default engine selection (gemm translations,
//! batched-FFT M2L, tiled U-list) at `threads = 1` on a single rank —
//! the steady state an iterative solver sits in — under both the barrier
//! schedule and the graph schedule (which delegates to the barrier path
//! in exactly this regime, making the guarantee carry over). Two warm-up
//! applies let every pooled buffer reach its steady-state capacity; the
//! gate then counts allocator hits across five more applies and demands
//! zero.
//!
//! The same counting allocator also validates the plan's byte
//! accounting: `FmmPlan::memory_bytes` (which includes the workspace)
//! must land within 1% of the live-byte delta the allocator actually
//! observed while the plan and its workspace were built.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pfmm_core::distrib::{plummer, randomize_densities};
use pfmm_core::{Fmm, FmmConfig, Schedule};
use pfmm_kernels::{Kernel, Laplace, Stokes};
use pfmm_mpisim::run;

/// Counts every allocator call and the net live bytes. Installed for the
/// whole test binary, so alloc/dealloc pairs always balance.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if TRAP.swap(false, Ordering::Relaxed) {
            eprintln!(
                "TRAP alloc {} bytes\n{}",
                l.size(),
                std::backtrace::Backtrace::force_capture()
            );
        }
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        LIVE_BYTES.fetch_sub(l.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(l.size() as u64, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counters are process-global, so tests that read them must not
/// overlap with other allocating tests in this binary.
static SERIAL: Mutex<()> = Mutex::new(());

fn config(schedule: Schedule) -> FmmConfig {
    // The defaults ARE the gated configuration (gemm + fft-batched +
    // tiled, threads 1); only the schedule varies.
    FmmConfig {
        schedule,
        ..Default::default()
    }
}

/// Plan, warm up, then demand an allocation delta of exactly zero across
/// `reps` further applies.
fn assert_zero_alloc_steady_state(kernel: Arc<dyn Kernel>, schedule: Schedule) {
    let name = kernel.name();
    let sd = kernel.source_dim();
    let f = Fmm::new(kernel, config(schedule));
    // Plummer is centrally clustered, so the adaptive tree refines
    // unevenly and the U/V/W/X lists are all non-trivially populated.
    let mut pts = plummer(1500, 4242, 0);
    randomize_densities(&mut pts, sd, 7);
    run(1, |c| {
        let mut plan = f.plan(c, pts.clone());
        let den: Vec<f64> = plan
            .owned_gids()
            .iter()
            .flat_map(|&g| pts[g as usize].den[..sd].to_vec())
            .collect();
        let mut out = Vec::new();
        // Two warm-ups: the first builds the workspace and near field,
        // the second settles every lazily grown scratch capacity.
        f.apply_into(c, &mut plan, &den, &mut out);
        f.apply_into(c, &mut plan, &den, &mut out);
        let warm = out.clone();
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let reps = 5;
        for _ in 0..reps {
            TRAP.store(true, Ordering::Relaxed);
            f.apply_into(c, &mut plan, &den, &mut out);
            TRAP.store(false, Ordering::Relaxed);
        }
        let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        assert_eq!(
            delta, 0,
            "{name}/{schedule:?}: {delta} heap allocations across {reps} warm applies (want 0)"
        );
        // The gated applies are also bitwise identical to the warm-up.
        assert_eq!(warm.len(), out.len());
        for (a, b) in warm.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}/{schedule:?} drifted");
        }
    });
}

#[test]
fn warm_apply_allocates_nothing_laplace_barrier() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    assert_zero_alloc_steady_state(Arc::new(Laplace), Schedule::Barrier);
}

#[test]
fn warm_apply_allocates_nothing_laplace_graph() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    assert_zero_alloc_steady_state(Arc::new(Laplace), Schedule::Graph);
}

#[test]
fn warm_apply_allocates_nothing_stokes_barrier() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    assert_zero_alloc_steady_state(Arc::new(Stokes { mu: 0.9 }), Schedule::Barrier);
}

#[test]
fn warm_apply_allocates_nothing_stokes_graph() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    assert_zero_alloc_steady_state(Arc::new(Stokes { mu: 0.9 }), Schedule::Graph);
}

/// `FmmPlan::memory_bytes` (LET + lists + eval data + schedules +
/// workspace) within 1% of the live bytes the allocator measured while
/// the plan and its workspace were built.
#[test]
fn memory_bytes_matches_measured_live_bytes_within_1pct() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let f = Fmm::new(Arc::new(Laplace), config(Schedule::Barrier));
    let mut pts = plummer(2000, 999, 0);
    randomize_densities(&mut pts, 1, 3);

    // Pre-warm every process-global side table (operator caches, FFT
    // plans, metrics registry entries) with a throwaway plan + apply of
    // the same configuration, so the measured delta isolates the plan.
    run(1, |c| {
        let mut warm = f.plan(c, pts.clone());
        let den = vec![0.5f64; warm.num_owned()];
        let mut out = Vec::new();
        let _ = f.apply_into(c, &mut warm, &den, &mut out);
    });

    // `den` lives across both snapshots, so it cancels out of the delta;
    // `out` is created and dropped between them.
    let den = vec![0.5f64; pts.len()];
    let before = LIVE_BYTES.load(Ordering::Relaxed);
    let plan = Mutex::new(run(1, |c| f.plan(c, pts.clone())).pop().expect("one rank"));
    run(1, |c| {
        let mut g = plan.lock().unwrap();
        let mut out = Vec::new();
        let _ = f.apply_into(c, &mut g, &den, &mut out);
        let _ = f.apply_into(c, &mut g, &den, &mut out);
    });
    let measured = LIVE_BYTES.load(Ordering::Relaxed) - before;
    let claimed = plan.lock().unwrap().memory_bytes() as u64;
    let err = (claimed as f64 - measured as f64).abs() / measured as f64;
    assert!(
        err < 0.01,
        "memory_bytes {claimed} vs measured live {measured} ({:.2}% off)",
        err * 100.0
    );
}
