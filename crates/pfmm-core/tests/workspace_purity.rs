//! Workspace reuse is *bitwise* pure: applying densities through a plan
//! whose [`pfmm_core::EvalWorkspace`] has already served other density
//! sets produces exactly the bits of a fresh plan + single apply.
//!
//! This is the property that makes the zero-allocation steady state a
//! pure optimization: every buffer the workspace keeps warm (equivalent
//! and check densities, batched-M2L spectra and accumulators, near-field
//! density panels, pooled tile/translation scratch) is either zeroed at
//! the top of the sweep or fully overwritten, so no bit of a previous
//! apply can leak into the next. Pinned across both executors and four
//! kernels (scalar, dipole, vector, screened) on a clustered adaptive
//! distribution where the U/V/W/X lists are all non-trivial.

use std::sync::{Arc, Mutex};

use pfmm_core::distrib::plummer;
use pfmm_core::{Fmm, FmmConfig, Schedule};
use pfmm_kernels::{Kernel, Laplace, LaplaceDipole, Stokes, Yukawa};
use pfmm_mpisim::run;

fn config(schedule: Schedule) -> FmmConfig {
    FmmConfig {
        order: 3,
        q: 30,
        schedule,
        ..Default::default()
    }
}

/// Deterministic density for global point `g`, component `k`.
fn density_at(g: u64, seed: u64, k: usize) -> f64 {
    let mut x = g
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed)
        .wrapping_add(k as u64);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn densities(plan: &pfmm_core::FmmPlan, sd: usize, seed: u64) -> Vec<f64> {
    plan.owned_gids()
        .iter()
        .flat_map(|&g| (0..sd).map(move |k| density_at(g, seed, k)))
        .collect()
}

fn dirty_workspace_matches_fresh(kernel: Arc<dyn Kernel>, schedule: Schedule) {
    let name = kernel.name();
    let sd = kernel.source_dim();
    let f = Fmm::new(kernel, config(schedule));
    // Centrally clustered points force uneven refinement, so the
    // workspace's V/W/X machinery is genuinely exercised.
    let pts = plummer(500, 2026, 0);

    // Dirty path: one plan, three unrelated applies, then ours.
    let dirty_plan = Mutex::new(run(1, |c| f.plan(c, pts.clone())).pop().expect("one rank"));
    let dirty = run(1, |c| {
        let mut plan = dirty_plan.lock().unwrap();
        for pre in 0..3 {
            let other = densities(&plan, sd, 0xD1B7 + pre);
            f.apply(c, &mut plan, &other);
        }
        let den = densities(&plan, sd, 42);
        f.apply(c, &mut plan, &den).0
    })
    .pop()
    .expect("one rank");

    // Fresh path: plan and evaluate the target densities once.
    let fresh_plan = Mutex::new(run(1, |c| f.plan(c, pts.clone())).pop().expect("one rank"));
    let fresh = run(1, |c| {
        let mut plan = fresh_plan.lock().unwrap();
        let den = densities(&plan, sd, 42);
        f.apply(c, &mut plan, &den).0
    })
    .pop()
    .expect("one rank");

    assert_eq!(dirty.len(), fresh.len(), "{name}/{schedule:?}");
    for (i, (a, b)) in dirty.iter().zip(&fresh).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}/{schedule:?} component {i}: dirty {a:e} vs fresh {b:e}"
        );
    }
}

#[test]
fn laplace_dirty_workspace_is_bitwise_fresh() {
    for schedule in [Schedule::Barrier, Schedule::Graph] {
        dirty_workspace_matches_fresh(Arc::new(Laplace), schedule);
    }
}

#[test]
fn laplace_dipole_dirty_workspace_is_bitwise_fresh() {
    for schedule in [Schedule::Barrier, Schedule::Graph] {
        dirty_workspace_matches_fresh(Arc::new(LaplaceDipole), schedule);
    }
}

#[test]
fn stokes_dirty_workspace_is_bitwise_fresh() {
    for schedule in [Schedule::Barrier, Schedule::Graph] {
        dirty_workspace_matches_fresh(Arc::new(Stokes { mu: 0.9 }), schedule);
    }
}

#[test]
fn yukawa_dirty_workspace_is_bitwise_fresh() {
    for schedule in [Schedule::Barrier, Schedule::Graph] {
        dirty_workspace_matches_fresh(Arc::new(Yukawa { lambda: 3.0 }), schedule);
    }
}

/// An externally owned workspace (the serve-pool path, `apply_ws`)
/// carried across plans: the generation tag forces a rebuild for the
/// new plan, and the result still matches a fresh plan + apply.
#[test]
fn stale_external_workspace_is_rebuilt_and_bitwise_fresh() {
    let f = Fmm::new(
        Arc::new(Laplace) as Arc<dyn Kernel>,
        config(Schedule::Barrier),
    );
    let pts_a = plummer(400, 11, 0);
    let pts_b = plummer(450, 22, 0);

    // Build a workspace against plan A and dirty it with one apply.
    let plan_a = Mutex::new(
        run(1, |c| f.plan(c, pts_a.clone()))
            .pop()
            .expect("one rank"),
    );
    let plan_b = Mutex::new(
        run(1, |c| f.plan(c, pts_b.clone()))
            .pop()
            .expect("one rank"),
    );
    let via_stale = run(1, |c| {
        let mut a = plan_a.lock().unwrap();
        let mut b = plan_b.lock().unwrap();
        let mut ws = f.workspace(&a);
        let den_a = densities(&a, 1, 7);
        let mut out = Vec::new();
        f.apply_ws(c, &mut a, &mut ws, &den_a, &mut out);
        // Same workspace against plan B: generation mismatch → rebuild.
        let den_b = densities(&b, 1, 8);
        f.apply_ws(c, &mut b, &mut ws, &den_b, &mut out);
        assert_eq!(ws.plan_uid(), b.uid(), "workspace retagged to plan B");
        out
    })
    .pop()
    .expect("one rank");

    let fresh_plan = Mutex::new(
        run(1, |c| f.plan(c, pts_b.clone()))
            .pop()
            .expect("one rank"),
    );
    let fresh = run(1, |c| {
        let mut plan = fresh_plan.lock().unwrap();
        let den = densities(&plan, 1, 8);
        f.apply(c, &mut plan, &den).0
    })
    .pop()
    .expect("one rank");

    assert_eq!(via_stale.len(), fresh.len());
    for (a, b) in via_stale.iter().zip(&fresh) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
