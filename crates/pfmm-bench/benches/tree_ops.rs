//! Micro-benchmarks of the tree substrate: distributed sorts, LET
//! construction, list building, and 2:1 balancing.

use criterion::{criterion_group, criterion_main, Criterion};
use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_core::solve::gmres;
use pfmm_mpisim::run;
use pfmm_tree::{
    balance_2to1, bitonic_sort_points, build_let, build_lists, points_to_octree, sample_sort_points,
};
use std::hint::black_box;

fn bench_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree");
    g.sample_size(10);

    let mut pts = uniform_cube(50_000, 3, 0);
    randomize_densities(&mut pts, 1, 4);

    g.bench_function("sample_sort_50k_p4", |b| {
        b.iter(|| {
            run(4, |comm| {
                let mine: Vec<_> = pts.iter().skip(comm.rank()).step_by(4).copied().collect();
                black_box(sample_sort_points(comm, mine).0.len())
            })
        })
    });

    g.bench_function("bitonic_sort_50k_p4", |b| {
        b.iter(|| {
            run(4, |comm| {
                let mine: Vec<_> = pts.iter().skip(comm.rank()).step_by(4).copied().collect();
                black_box(bitonic_sort_points(comm, mine).0.len())
            })
        })
    });

    g.bench_function("tree_let_lists_50k_seq", |b| {
        b.iter(|| {
            run(1, |comm| {
                let t = points_to_octree(comm, pts.clone(), 100);
                let l = build_let(comm, &t);
                let lists = build_lists(&l);
                black_box(lists.u.total())
            })
        })
    });

    g.bench_function("balance_2to1_deep_tree", |b| {
        let mut seeds = Vec::new();
        let mut k = pfmm_morton::MortonKey::root();
        for child in [0usize, 7, 3, 5, 1, 6, 2, 4] {
            k = k.child(child);
            seeds.push(k);
        }
        b.iter(|| black_box(balance_2to1(seeds.clone()).len()))
    });

    g.bench_function("gmres_identity_64", |b| {
        let rhs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
        b.iter(|| {
            black_box(
                gmres(|v| v.to_vec(), &rhs, 1e-12, 4)
                    .expect("one step")
                    .1
                    .matvecs,
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
