//! Micro-benchmark of the central FMM design choice: one V-list
//! interaction via the dense operator vs the FFT diagonalization
//! (per-application cost; the harness binary `ablation_m2l` measures the
//! whole phase).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use pfmm_core::m2l_batched::{offset_slot, FftBatchedM2l};
use pfmm_core::m2l_fft::FftM2l;
use pfmm_core::ops::Ops;
use pfmm_kernels::Laplace;
use std::hint::black_box;

fn bench_m2l(c: &mut Criterion) {
    let mut g = c.benchmark_group("m2l");

    for order in [4usize, 6] {
        let ops = Ops::new(Arc::new(Laplace), order, 1e-12);
        let eng = FftM2l::new(Arc::new(Laplace), order);
        let nd = ops.density_len();
        let u: Vec<f64> = (0..nd).map(|i| (i as f64 * 0.13).sin()).collect();
        let offset = [2i8, -1, 3];
        let level = 4u32;

        // Dense: one matvec per interaction.
        let (m, s) = ops.m2l(level, offset);
        let mut dcheck = vec![0.0; ops.check_len()];
        g.bench_function(format!("dense_apply_order{order}"), |b| {
            b.iter(|| m.matvec_acc_scaled(black_box(&u), black_box(&mut dcheck), s))
        });

        // FFT: the Hadamard accumulate per interaction (source transform
        // and target inverse amortize over the whole V-list).
        let uhat = eng.source_spectrum(&u);
        let (khat, scale) = eng.kernel_spectrum(level, offset);
        let mut acc = eng.new_accumulator();
        g.bench_function(format!("fft_hadamard_order{order}"), |b| {
            b.iter(|| {
                eng.accumulate(
                    black_box(&mut acc),
                    black_box(&khat),
                    black_box(&uhat),
                    scale,
                )
            })
        });

        // The amortized ends of the FFT path.
        g.bench_function(format!("fft_source_transform_order{order}"), |b| {
            b.iter(|| black_box(eng.source_spectrum(black_box(&u))))
        });
    }

    // Batched half-spectrum path: one transfer-vector bucket at a
    // realistic size (a uniform interior level feeds each spectrum to
    // many targets), measured as the whole bucket's split-complex
    // Hadamard accumulation.
    const BUCKET: usize = 32;
    for order in [4usize, 6, 8] {
        let ops = Ops::new(Arc::new(Laplace), order, 1e-12);
        let eng = FftBatchedM2l::new(Arc::new(Laplace), order);
        let nd = ops.density_len();
        let level = 4u32;
        let offset = [2i8, -1, 3];
        let table = eng.build_table(&[(level, offset)], 1);
        let u: Vec<f64> = (0..BUCKET * nd).map(|i| (i as f64 * 0.13).sin()).collect();
        let sources: Vec<usize> = (0..BUCKET).collect();
        let src = eng.source_spectra(&sources, BUCKET, &u, nd, 1);
        let mut scratch = eng.new_scratch(BUCKET);
        scratch.reset(BUCKET);
        let (k, scale) = table.get(level, offset_slot(offset));
        g.bench_function(
            format!("batched_hadamard_bucket{BUCKET}_order{order}"),
            |b| {
                b.iter(|| {
                    for t in 0..BUCKET {
                        let (sr, si) = src.planes(t);
                        eng.accumulate(black_box(&mut scratch), t, black_box(k), sr, si, scale);
                    }
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_m2l);
criterion_main!(benches);
