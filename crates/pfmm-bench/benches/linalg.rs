//! Micro-benchmarks of the dense-algebra substrate: the matvec sizes of
//! the KIFMM translations and the setup-time SVD/pseudo-inverse.

use criterion::{criterion_group, criterion_main, Criterion};
use pfmm_linalg::{pinv, Matrix, Svd};
use std::hint::black_box;

fn test_matrix(n: usize, m: usize) -> Matrix {
    Matrix::from_fn(n, m, |i, j| {
        ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5 + if i == j { 2.0 } else { 0.0 }
    })
}

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");

    // Matvec at the surface sizes: order 4 → 56, order 6 → 152 (×3 for
    // Stokes).
    for n in [56usize, 152, 456] {
        let m = test_matrix(n, n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y = vec![0.0; n];
        g.bench_function(format!("matvec_{n}"), |b| {
            b.iter(|| {
                m.matvec_acc_scaled(black_box(&x), black_box(&mut y), 1.0);
            })
        });
    }

    g.bench_function("matmul_152", |b| {
        let a = test_matrix(152, 152);
        let m = test_matrix(152, 152);
        b.iter(|| black_box(a.matmul(&m)))
    });

    // Setup-time operators (amortized over the run, but worth tracking).
    g.sample_size(10);
    for n in [56usize, 152] {
        let m = test_matrix(n, n);
        g.bench_function(format!("jacobi_svd_{n}"), |b| {
            b.iter(|| black_box(Svd::new(&m)))
        });
        g.bench_function(format!("pinv_{n}"), |b| {
            b.iter(|| black_box(pinv(&m, 1e-12)))
        });
    }

    g.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
