//! End-to-end pipeline benchmarks: full FMM evaluations (setup +
//! evaluation) at fixed sizes, sequential and distributed, plus the
//! direct-sum baseline that motivates the whole method.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_core::{Fmm, FmmConfig, Schedule};
use pfmm_kernels::{direct_eval, Laplace};
use pfmm_mpisim::run;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    let n = 10_000;
    let mut pts = uniform_cube(n, 9, 0);
    randomize_densities(&mut pts, 1, 10);

    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 60,
            ..Default::default()
        },
    );
    // Warm the operator caches so the benchmark measures evaluation, not
    // one-time setup.
    run(1, |comm| fmm.evaluate(comm, pts.clone()).gids.len());

    g.bench_function("fmm_laplace_10k_seq", |b| {
        b.iter(|| {
            run(1, |comm| {
                black_box(fmm.evaluate(comm, pts.clone())).gids.len()
            })
        })
    });

    g.bench_function("fmm_laplace_10k_p4", |b| {
        b.iter(|| {
            run(4, |comm| {
                let mine: Vec<_> = pts.iter().skip(comm.rank()).step_by(4).copied().collect();
                black_box(fmm.evaluate(comm, mine)).gids.len()
            })
        })
    });

    // The same distributed run under the dependency-graph scheduler:
    // the reduce-and-scatter overlaps the U/X chunks instead of
    // barriering every rank (compare against fmm_laplace_10k_p4).
    let graph_fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 60,
            schedule: Schedule::Graph,
            ..Default::default()
        },
    );
    run(1, |comm| graph_fmm.evaluate(comm, pts.clone()).gids.len());
    g.bench_function("fmm_laplace_10k_p4_graph", |b| {
        b.iter(|| {
            run(4, |comm| {
                let mine: Vec<_> = pts.iter().skip(comm.rank()).step_by(4).copied().collect();
                black_box(graph_fmm.evaluate(comm, mine)).gids.len()
            })
        })
    });

    // The O(N²) baseline the FMM replaces (at a smaller N so the
    // benchmark stays sane; the asymptotic gap is the point).
    let small = &pts[..2000];
    let pos: Vec<[f64; 3]> = small.iter().map(|p| p.pos).collect();
    let den: Vec<f64> = small.iter().map(|p| p.den[0]).collect();
    g.bench_function("direct_sum_2k", |b| {
        b.iter(|| {
            let mut out = vec![0.0; pos.len()];
            direct_eval(
                &Laplace,
                black_box(&pos),
                black_box(&pos),
                black_box(&den),
                &mut out,
            );
            black_box(out)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
