//! Micro-benchmarks of the Morton-key substrate: the tree construction's
//! inner loops (encode, hierarchy queries, region completion).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pfmm_morton::{complete_octree, cover_interval, MortonKey, MAX_DEPTH, RANK_SPAN};
use std::hint::black_box;

fn bench_morton(c: &mut Criterion) {
    let mut g = c.benchmark_group("morton");

    let pts: Vec<[f64; 3]> = (0..1024)
        .map(|i| {
            let f = i as f64 / 1024.0;
            [f, (f * 3.7) % 1.0, (f * 9.1) % 1.0]
        })
        .collect();

    g.bench_function("finest_from_point_x1024", |b| {
        b.iter(|| {
            for p in &pts {
                black_box(MortonKey::finest_from_point(black_box(p)));
            }
        })
    });

    let keys: Vec<MortonKey> = pts.iter().map(|p| MortonKey::from_point(p, 12)).collect();

    g.bench_function("rank_x1024", |b| {
        b.iter(|| {
            for k in &keys {
                black_box(black_box(k).rank());
            }
        })
    });

    g.bench_function("colleagues_x1024", |b| {
        b.iter(|| {
            for k in &keys {
                black_box(black_box(k).colleagues());
            }
        })
    });

    g.bench_function("adjacency_x1024", |b| {
        let other = MortonKey::from_point(&[0.5, 0.5, 0.5], 8);
        b.iter(|| {
            for k in &keys {
                black_box(black_box(k).is_adjacent(&other));
            }
        })
    });

    g.bench_function("cover_interval_mid", |b| {
        b.iter(|| black_box(cover_interval(black_box(12345), black_box(RANK_SPAN / 3))))
    });

    g.bench_function("complete_octree_64_seeds", |b| {
        let seeds: Vec<MortonKey> = (0..64)
            .map(|i| {
                let f = i as f64 / 64.0;
                MortonKey::from_point(&[f, (f * 5.3) % 1.0, (f * 2.9) % 1.0], 8)
            })
            .collect();
        b.iter_batched(
            || seeds.clone(),
            |s| black_box(complete_octree(s)),
            BatchSize::SmallInput,
        )
    });

    g.bench_function("sort_keys_8192", |b| {
        let mut many: Vec<MortonKey> = Vec::new();
        for l in [6u32, 9, 12] {
            many.extend(pts.iter().map(|p| MortonKey::from_point(p, l)));
        }
        while many.len() < 8192 {
            let extended: Vec<MortonKey> = many
                .iter()
                .filter(|k| k.level() < MAX_DEPTH)
                .map(|k| k.child(3))
                .collect();
            many.extend(extended);
        }
        many.truncate(8192);
        b.iter_batched(
            || many.clone(),
            |mut v| {
                v.sort_unstable();
                black_box(v)
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_morton);
criterion_main!(benches);
