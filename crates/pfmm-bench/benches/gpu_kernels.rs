//! Micro-benchmarks of the gpusim kernels (host execution cost of the
//! simulation itself) and of the host-side layout translation whose cost
//! the paper reports as minor.

use criterion::{criterion_group, criterion_main, Criterion};
use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_gpusim::kernels::uli;
use pfmm_gpusim::GpuLayout;
use pfmm_mpisim::run;
use pfmm_tree::{build_let, build_lists, points_to_octree};
use std::hint::black_box;

fn bench_gpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpusim");
    g.sample_size(10);

    let mut pts = uniform_cube(20_000, 5, 0);
    randomize_densities(&mut pts, 1, 6);
    let (l, lists) = run(1, |comm| {
        let t = points_to_octree(comm, pts.clone(), 100);
        let l = build_let(comm, &t);
        let lists = build_lists(&l);
        (l, lists)
    })
    .pop()
    .expect("one rank");

    g.bench_function("layout_translation_20k", |b| {
        b.iter(|| black_box(GpuLayout::build(&l, &lists, 64)))
    });

    let lay = GpuLayout::build(&l, &lists, 64);
    g.bench_function("uli_kernel_20k_q100", |b| b.iter(|| black_box(uli(&lay))));

    g.finish();
}

criterion_group!(benches, bench_gpu);
criterion_main!(benches);
