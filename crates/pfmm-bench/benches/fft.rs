//! Micro-benchmarks of the FFT substrate: the 1-D transforms (radix-2 and
//! Bluestein paths) and the 3-D grids the M2L diagonalization uses.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pfmm_fft::{Complex, Fft3, FftPlan};
use std::hint::black_box;

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");

    for n in [64usize, 256, 1024] {
        let plan = FftPlan::new(n);
        let x = signal(n);
        g.bench_function(format!("radix2_forward_{n}"), |b| {
            b.iter_batched(
                || x.clone(),
                |mut v| {
                    plan.forward(&mut v);
                    black_box(v)
                },
                BatchSize::SmallInput,
            )
        });
    }

    // Bluestein path: non-power-of-two length (the 2p grids of odd
    // orders).
    for n in [12usize, 100] {
        let plan = FftPlan::new(n);
        let x = signal(n);
        g.bench_function(format!("bluestein_forward_{n}"), |b| {
            b.iter_batched(
                || x.clone(),
                |mut v| {
                    plan.forward(&mut v);
                    black_box(v)
                },
                BatchSize::SmallInput,
            )
        });
    }

    // The M2L grids: order 4 → 8³, order 6 → 12³, order 8 → 16³.
    for n in [8usize, 12, 16] {
        let fft = Fft3::new(n);
        let x = signal(n * n * n);
        g.bench_function(format!("fft3_forward_{n}cubed"), |b| {
            b.iter_batched(
                || x.clone(),
                |mut v| {
                    fft.forward(&mut v);
                    black_box(v)
                },
                BatchSize::SmallInput,
            )
        });
    }

    g.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
