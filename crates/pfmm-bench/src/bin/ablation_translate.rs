//! Ablation — per-box matvec vs level-batched GEMM up/down translations.
//!
//! DESIGN.md §12 describes the translation engine: boxes sharing a
//! per-level operator (uc2e/dc2e solves, the eight U2U/D2D child-index
//! classes) are grouped at plan time, their density vectors gathered into
//! column panels, and each group applied with one cache-blocked GEMM.
//! The per-box path streams the operator matrix from memory once per box
//! (GEMV-bound); the grouped path loads it once per `GEMM_NR` right-hand
//! sides, so the speedup grows with the operator size — i.e. with the
//! expansion order — until the panels spill L1 near order 8.
//!
//! Both modes charge identical flops (`flop_model::translate_group` is
//! exactly `m` per-box matvecs), so the reported GFLOP/s are directly
//! comparable rates. The potentials are bitwise identical between modes
//! (`translate_gemm_matches_matvec_all_kernels`), making this a pure
//! performance ablation.
//!
//! Usage: `ablation_translate [n_points]` (default 100 000). Results are
//! also written as JSON to `results/BENCH_translate.json` for the CI
//! smoke job.

use std::sync::Arc;

use pfmm_bench::{run_case, Distribution, Table};
use pfmm_core::{FmmConfig, Phase, TranslateMode};
use pfmm_kernels::Laplace;

/// Default runs per configuration (override with `PFMM_BENCH_REPS`);
/// the minimum is reported to suppress shared-host scheduling noise.
const DEFAULT_REPS: usize = 3;

/// Points per leaf: small enough that the tree is deep and the up/down
/// pass carries real weight at every order measured.
const LEAF_Q: usize = 16;

struct Row {
    order: usize,
    matvec_wall: f64,
    gemm_wall: f64,
    gflop: f64,
}

/// Combined upward+downward wall time (min over reps) and the
/// translation-phase gigaflops of one run.
fn measure(n: usize, order: usize, translate: TranslateMode) -> (f64, f64) {
    let mut wall = f64::INFINITY;
    let mut gflop = 0.0;
    for _ in 0..pfmm_bench::bench_reps(DEFAULT_REPS) {
        let cfg = FmmConfig {
            order,
            q: LEAF_Q,
            translate,
            ..Default::default()
        };
        let s = run_case(Arc::new(Laplace), cfg, Distribution::Uniform, n, 1, 13);
        wall = wall.min(s.max_secs(Phase::Upward) + s.max_secs(Phase::Downward));
        gflop = (s.profiles[0].flops(Phase::Upward) + s.profiles[0].flops(Phase::Downward)) as f64
            / 1e9;
    }
    (wall, gflop)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n_points must be an integer"))
        .unwrap_or(100_000);
    let reps = pfmm_bench::bench_reps(DEFAULT_REPS);
    println!(
        "Ablation: matvec vs level-batched GEMM translations (laplace, uniform, N = {n}, q = {LEAF_Q}, p = 1, min of {reps})\n"
    );
    let mut t = Table::new(&[
        "order",
        "matvec wall(s)",
        "gemm wall(s)",
        "GFlop",
        "matvec GF/s",
        "gemm GF/s",
        "gemm speedup",
    ]);
    let mut rows = Vec::new();
    for order in [4usize, 6, 8] {
        let (matvec_wall, gflop) = measure(n, order, TranslateMode::Matvec);
        let (gemm_wall, _) = measure(n, order, TranslateMode::Gemm);
        t.row(vec![
            order.to_string(),
            format!("{matvec_wall:.3}"),
            format!("{gemm_wall:.3}"),
            format!("{gflop:.2}"),
            format!("{:.2}", gflop / matvec_wall.max(1e-9)),
            format!("{:.2}", gflop / gemm_wall.max(1e-9)),
            format!("{:.2}x", matvec_wall / gemm_wall.max(1e-9)),
        ]);
        rows.push(Row {
            order,
            matvec_wall,
            gemm_wall,
            gflop,
        });
    }
    println!("{}", t.render());
    println!("expected: the GEMM engine clears 1.5x on the combined upward+downward");
    println!("time at order 6. The advantage rises from order 4 to 6 (larger operators");
    println!("amortize better per panel load) and plateaus near order 8, where the");
    println!("296x296 operator panels stream from L2 rather than L1.");

    let json = render_json(n, &rows);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_translate.json", &json)
        .expect("write results/BENCH_translate.json");
    println!("\nwrote results/BENCH_translate.json");
}

fn render_json(n: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    let reps = pfmm_bench::bench_reps(DEFAULT_REPS);
    s.push_str(&format!(
        "{{\n  \"bench\": \"ablation_translate\",\n  \"n\": {n},\n  \"q\": {LEAF_Q},\n  \"reps\": {reps},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"order\": {}, \"matvec_wall_s\": {:.6}, \"gemm_wall_s\": {:.6}, \
             \"updown_gflop\": {:.4}, \"matvec_gflops\": {:.3}, \"gemm_gflops\": {:.3}, \
             \"speedup_gemm_vs_matvec\": {:.3}}}{}\n",
            r.order,
            r.matvec_wall,
            r.gemm_wall,
            r.gflop,
            r.gflop / r.matvec_wall.max(1e-9),
            r.gflop / r.gemm_wall.max(1e-9),
            r.matvec_wall / r.gemm_wall.max(1e-9),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
