//! Ablation — serial comparison-sort setup vs the parallel setup engine.
//!
//! DESIGN.md §13 describes the setup engine: the local Morton sort is an
//! LSD radix sort on the precomputed `(rank, gid)` composite key (the
//! serial baseline re-derives the 90-bit rank inside every comparison),
//! and the octree refinement, LET construction, interaction lists, and
//! plan precompute (workspace extraction, translate grouping, operator
//! warm-up) run as order-preserving parallel maps. Both engines build
//! byte-identical plans and bitwise-identical potentials
//! (`parallel_setup_matches_serial_bitwise`), making this a pure
//! performance ablation.
//!
//! The serial baseline is measured once per (distribution, N); the
//! parallel engine per thread count. On a single hardware core the gain
//! is the algorithmic one (radix passes vs comparisons, shared across
//! thread counts); with real cores the thread rows separate further.
//!
//! Also reports the cold-plan latency delta: the wall time of one
//! `Fmm::plan` build — exactly what the pfmm-serve layer pays on a
//! plan-cache miss — under each engine.
//!
//! Usage: `ablation_setup [n_large]` (default 1 000 000; the small case
//! is always 100 000, capped at `n_large`). Results are also written as
//! JSON to `results/BENCH_setup.json` for the CI smoke job.

use std::sync::Arc;
use std::time::Instant;

use pfmm_bench::{run_case, Distribution, Table};
use pfmm_core::{Fmm, FmmConfig, SetupMode};
use pfmm_kernels::Laplace;
use pfmm_mpisim::run;

/// Default runs per configuration (override with `PFMM_BENCH_REPS`);
/// the minimum is reported to suppress shared-host scheduling noise.
const DEFAULT_REPS: usize = 3;

/// Moderate order: the operator warm-up is part of the plan stage but
/// must not drown the sort/tree/list timings the ablation is about.
const ORDER: usize = 4;

/// Points per leaf (the repo-wide default).
const LEAF_Q: usize = 100;

const THREADS: [usize; 3] = [1, 4, 8];

#[derive(Clone, Copy)]
struct Split {
    setup: f64,
    sort: f64,
    tree: f64,
    lists: f64,
    plan: f64,
}

/// Setup-phase split of the best (minimum total-setup) rep.
fn measure(dist: Distribution, n: usize, threads: usize, setup: SetupMode) -> Split {
    let mut best = Split {
        setup: f64::INFINITY,
        sort: 0.0,
        tree: 0.0,
        lists: 0.0,
        plan: 0.0,
    };
    for _ in 0..pfmm_bench::bench_reps(DEFAULT_REPS) {
        let cfg = FmmConfig {
            order: ORDER,
            q: LEAF_Q,
            threads,
            setup,
            ..Default::default()
        };
        let s = run_case(Arc::new(Laplace), cfg, dist, n, 1, 29);
        let pr = &s.profiles[0];
        if pr.setup_secs < best.setup {
            best = Split {
                setup: pr.setup_secs,
                sort: pr.sort_secs,
                tree: pr.tree_secs,
                lists: pr.lists_secs,
                plan: pr.plan_secs,
            };
        }
    }
    best
}

/// Wall time of one cold `Fmm::plan` build — the serve layer's
/// plan-cache-miss latency (min over reps, fresh operator cache each).
fn cold_plan_secs(n: usize, setup: SetupMode) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..pfmm_bench::bench_reps(DEFAULT_REPS) {
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: ORDER,
                q: LEAF_Q,
                threads: 8,
                setup,
                ..Default::default()
            },
        );
        let pts = Distribution::Uniform.generate(n, 31, 0, 1);
        let secs = run(1, |c| {
            let t0 = Instant::now();
            let plan = fmm.plan(c, pts.clone());
            let dt = t0.elapsed().as_secs_f64();
            drop(plan);
            dt
        });
        best = best.min(secs[0]);
    }
    best
}

struct Row {
    dist: &'static str,
    n: usize,
    threads: usize,
    serial: Split,
    par: Split,
}

fn main() {
    let n_large: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n_large must be an integer"))
        .unwrap_or(1_000_000);
    let n_small = 100_000.min(n_large);
    let reps = pfmm_bench::bench_reps(DEFAULT_REPS);
    println!(
        "Ablation: serial comparison-sort setup vs parallel radix setup (laplace, order = {ORDER}, q = {LEAF_Q}, p = 1, min of {reps})\n"
    );
    let mut t = Table::new(&[
        "dist",
        "N",
        "threads",
        "serial setup(s)",
        "par setup(s)",
        "setup speedup",
        "sort speedup",
        "par sort(s)",
        "par tree(s)",
        "par lists(s)",
        "par plan(s)",
    ]);
    let mut rows = Vec::new();
    let mut sizes = vec![n_small];
    if n_large > n_small {
        sizes.push(n_large);
    }
    for dist in [Distribution::Uniform, Distribution::Ellipsoid] {
        for &n in &sizes {
            let serial = measure(dist, n, 1, SetupMode::Serial);
            for threads in THREADS {
                let par = measure(dist, n, threads, SetupMode::Parallel);
                t.row(vec![
                    dist.label().to_string(),
                    n.to_string(),
                    threads.to_string(),
                    format!("{:.3}", serial.setup),
                    format!("{:.3}", par.setup),
                    format!("{:.2}x", serial.setup / par.setup.max(1e-9)),
                    format!("{:.2}x", serial.sort / par.sort.max(1e-9)),
                    format!("{:.3}", par.sort),
                    format!("{:.3}", par.tree),
                    format!("{:.3}", par.lists),
                    format!("{:.3}", par.plan),
                ]);
                rows.push(Row {
                    dist: dist.label(),
                    n,
                    threads,
                    serial,
                    par,
                });
            }
        }
    }
    println!("{}", t.render());
    println!("expected: the radix engine clears 2x on total setup and 3x on the sort");
    println!("stage at the large uniform case. The sort gain is algorithmic (a dozen");
    println!("linear passes over precomputed 24-byte keys vs n log n comparisons that");
    println!("each re-derive the 90-bit Morton rank), so it holds at every thread");
    println!("count; tree/list/plan parallelism adds on top when cores are available.");

    let cold_serial = cold_plan_secs(n_small, SetupMode::Serial);
    let cold_par = cold_plan_secs(n_small, SetupMode::Parallel);
    println!(
        "\ncold plan (serve cache miss), N = {n_small}: serial {cold_serial:.3}s, parallel {cold_par:.3}s ({:.2}x)",
        cold_serial / cold_par.max(1e-9)
    );

    let json = render_json(n_small, n_large, &rows, cold_serial, cold_par);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_setup.json", &json).expect("write results/BENCH_setup.json");
    println!("wrote results/BENCH_setup.json");
}

fn render_json(
    n_small: usize,
    n_large: usize,
    rows: &[Row],
    cold_serial: f64,
    cold_par: f64,
) -> String {
    let mut s = String::new();
    let reps = pfmm_bench::bench_reps(DEFAULT_REPS);
    s.push_str(&format!(
        "{{\n  \"bench\": \"ablation_setup\",\n  \"n_small\": {n_small},\n  \"n_large\": {n_large},\n  \"order\": {ORDER},\n  \"q\": {LEAF_Q},\n  \"reps\": {reps},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dist\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"serial_setup_s\": {:.6}, \"parallel_setup_s\": {:.6}, \"setup_speedup\": {:.3}, \
             \"serial_sort_s\": {:.6}, \"parallel_sort_s\": {:.6}, \"sort_speedup\": {:.3}, \
             \"parallel_tree_s\": {:.6}, \"parallel_lists_s\": {:.6}, \"parallel_plan_s\": {:.6}}}{}\n",
            r.dist,
            r.n,
            r.threads,
            r.serial.setup,
            r.par.setup,
            r.serial.setup / r.par.setup.max(1e-9),
            r.serial.sort,
            r.par.sort,
            r.serial.sort / r.par.sort.max(1e-9),
            r.par.tree,
            r.par.lists,
            r.par.plan,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"cold_plan\": {{\"n\": {n_small}, \"serial_s\": {cold_serial:.6}, \"parallel_s\": {cold_par:.6}, \"speedup\": {:.3}}}\n}}\n",
        cold_serial / cold_par.max(1e-9)
    ));
    s
}
