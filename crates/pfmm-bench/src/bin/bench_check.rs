//! Perf-regression sentinel over the committed benchmark baselines.
//!
//! Every optimization this repo ships is gated by a ratio in a
//! committed `results/BENCH_*.json` file (tiled vs scalar near field,
//! GEMM vs matvec translations, batched-FFT vs dense M2L, parallel vs
//! serial setup, warm vs cold serving, tracing overhead). Those files
//! are regenerated rarely; nothing re-checks the claims day to day.
//! This sentinel does: it loads each committed baseline, re-measures
//! the same gated ratio in a fast smoke configuration (smaller N,
//! reps-1 unless `PFMM_BENCH_REPS` raises it), and fails — with a
//! structured JSON report — when a measured ratio falls below
//! `committed × (1 − tolerance)`. The generous default tolerance
//! (30%) absorbs the size difference and host noise while still
//! catching a halved speedup.
//!
//! Usage: `bench_check [--results <dir>] [--tolerance <frac>]
//! [--inject <factor>] [--report <path>]`. `--inject` divides every
//! measured ratio by `<factor>` — a self-test hook: CI runs
//! `bench_check --inject 2` and requires the nonzero exit.

use std::sync::Arc;

use pfmm_bench::{bench_reps, run_case_best, Distribution, RunSummary};
use pfmm_core::profile::Phase;
use pfmm_core::{Fmm, FmmConfig, M2lMode, SetupMode, TranslateMode, UlistMode};
use pfmm_kernels::Laplace;
use pfmm_serve::{run_sim, Arrival, ObsConfig, ServiceConfig, SimConfig, WorkloadConfig};
use pfmm_trace::json::{parse, push_escaped, Value};
use pfmm_trace::{TraceLevel, Tracer};

/// One gated ratio: where it came from, what we re-measured, verdict.
struct Check {
    baseline: &'static str,
    key: &'static str,
    committed: f64,
    measured: f64,
    floor: f64,
}

impl Check {
    fn pass(&self) -> bool {
        self.measured >= self.floor
    }
}

fn load(dir: &str, file: &str) -> Option<Value> {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path).ok()?;
    Some(parse(&text).unwrap_or_else(|e| panic!("{path}: malformed baseline: {e}")))
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key)
        .and_then(|x| x.as_num())
        .unwrap_or_else(|| panic!("baseline missing numeric key '{key}'"))
}

/// Smallest value of `key` across the baseline's `rows` — the weakest
/// committed gate is the one the sentinel re-checks.
fn min_row(v: &Value, key: &str) -> f64 {
    v.get("rows")
        .and_then(|r| r.as_arr())
        .unwrap_or_else(|| panic!("baseline missing 'rows'"))
        .iter()
        .map(|row| num(row, key))
        .fold(f64::INFINITY, f64::min)
}

fn smoke_cfg() -> FmmConfig {
    FmmConfig {
        order: 4,
        q: 60,
        ..Default::default()
    }
}

fn eval_secs(cfg: FmmConfig, n: usize, reps: usize) -> RunSummary {
    run_case_best(
        Arc::new(Laplace),
        cfg,
        Distribution::Uniform,
        n,
        1,
        23,
        reps,
    )
}

fn phase_ratio(a: &RunSummary, b: &RunSummary, phases: &[Phase]) -> f64 {
    let secs = |s: &RunSummary| phases.iter().map(|&p| s.max_secs(p)).sum::<f64>();
    secs(a) / secs(b).max(1e-12)
}

fn serve_cfg(warm: bool) -> SimConfig {
    SimConfig {
        workload: WorkloadConfig {
            seed: 2009,
            requests: 12,
            n_points: 6_000,
            hot_geometries: 3,
            cold_fraction: 0.1,
            arrival: Arrival::Closed { concurrency: 6 },
            deadline_us: 0,
            priority_levels: 1,
        },
        service: ServiceConfig {
            max_batch: if warm { 6 } else { 1 },
            max_linger_us: if warm { 1_500 } else { 0 },
            workers: 2,
            shed_high_us: u64::MAX,
            shed_low_us: u64::MAX,
        },
        cache_budget_bytes: if warm { 1 << 30 } else { 0 },
        keep_potentials: false,
        obs: ObsConfig::default(),
    }
}

fn serve_throughput(warm: bool) -> f64 {
    let fmm = Arc::new(Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 2,
            q: 24,
            ..Default::default()
        },
    ));
    run_sim(fmm, "laplace", serve_cfg(warm), Arc::new(Tracer::off())).throughput_rps
}

fn main() {
    let mut dir = "results".to_string();
    let mut tolerance = 0.30f64;
    let mut inject = 1.0f64;
    let mut report_path = "results/BENCH_check_report.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--results" => dir = val("--results"),
            "--tolerance" => tolerance = val("--tolerance").parse().expect("tolerance"),
            "--inject" => inject = val("--inject").parse().expect("inject factor"),
            "--report" => report_path = val("--report"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    let reps = bench_reps(1);
    println!(
        "bench_check: baselines from {dir}/, tolerance {:.0}%, reps {reps}{}\n",
        tolerance * 100.0,
        if inject != 1.0 {
            format!(", INJECTING {inject}x regression")
        } else {
            String::new()
        }
    );

    let floor_of = |committed: f64| committed * (1.0 - tolerance);
    let mut checks: Vec<Check> = Vec::new();
    let n = 40_000;

    if let Some(b) = load(&dir, "BENCH_ulist.json") {
        let committed = min_row(&b, "speedup_tiled_vs_scalar");
        let scalar = eval_secs(
            FmmConfig {
                q: 64,
                ulist: UlistMode::Scalar,
                ..smoke_cfg()
            },
            n,
            reps,
        );
        let tiled = eval_secs(
            FmmConfig {
                q: 64,
                ulist: UlistMode::Tiled,
                ..smoke_cfg()
            },
            n,
            reps,
        );
        checks.push(Check {
            baseline: "BENCH_ulist.json",
            key: "speedup_tiled_vs_scalar",
            committed,
            measured: phase_ratio(&scalar, &tiled, &[Phase::UList]),
            floor: floor_of(committed),
        });
    }

    if let Some(b) = load(&dir, "BENCH_translate.json") {
        let committed = min_row(&b, "speedup_gemm_vs_matvec");
        let matvec = eval_secs(
            FmmConfig {
                order: 5,
                q: 16,
                translate: TranslateMode::Matvec,
                ..smoke_cfg()
            },
            n,
            reps,
        );
        let gemm = eval_secs(
            FmmConfig {
                order: 5,
                q: 16,
                translate: TranslateMode::Gemm,
                ..smoke_cfg()
            },
            n,
            reps,
        );
        checks.push(Check {
            baseline: "BENCH_translate.json",
            key: "speedup_gemm_vs_matvec",
            committed,
            measured: phase_ratio(&matvec, &gemm, &[Phase::Upward, Phase::Downward]),
            floor: floor_of(committed),
        });
    }

    if let Some(b) = load(&dir, "BENCH_m2l.json") {
        let batched = eval_secs(
            FmmConfig {
                q: 40,
                m2l: M2lMode::FftBatched,
                ..smoke_cfg()
            },
            n,
            reps,
        );
        for (key, mode) in [
            ("speedup_batched_vs_fft", M2lMode::Fft),
            ("speedup_batched_vs_dense", M2lMode::Dense),
        ] {
            let committed = min_row(&b, key);
            let other = eval_secs(
                FmmConfig {
                    q: 40,
                    m2l: mode,
                    ..smoke_cfg()
                },
                n,
                reps,
            );
            checks.push(Check {
                baseline: "BENCH_m2l.json",
                key,
                committed,
                measured: phase_ratio(&other, &batched, &[Phase::VList]),
                floor: floor_of(committed),
            });
        }
    }

    if let Some(b) = load(&dir, "BENCH_setup.json") {
        let serial = eval_secs(
            FmmConfig {
                q: 100,
                threads: 4,
                setup: SetupMode::Serial,
                ..smoke_cfg()
            },
            100_000,
            reps,
        );
        let parallel = eval_secs(
            FmmConfig {
                q: 100,
                threads: 4,
                setup: SetupMode::Parallel,
                ..smoke_cfg()
            },
            100_000,
            reps,
        );
        let setup_ratio = serial.max_setup() / parallel.max_setup().max(1e-12);
        let sort_ratio = serial.max_sort() / parallel.max_sort().max(1e-12);
        for (key, committed, measured) in [
            ("setup_speedup", min_row(&b, "setup_speedup"), setup_ratio),
            ("sort_speedup", min_row(&b, "sort_speedup"), sort_ratio),
            (
                "cold_plan.speedup",
                num(b.get("cold_plan").expect("cold_plan member"), "speedup"),
                setup_ratio,
            ),
        ] {
            checks.push(Check {
                baseline: "BENCH_setup.json",
                key,
                committed,
                measured,
                floor: floor_of(committed),
            });
        }
    }

    if let Some(b) = load(&dir, "BENCH_workspace.json") {
        // Same deep-tree shape as the committed run (order 4, q 16),
        // smaller N; sum over a few applies so one noisy sample cannot
        // flip the verdict.
        let committed = num(&b, "wall_ratio_alloc_over_pooled");
        let wcfg = FmmConfig {
            q: 16,
            ..smoke_cfg()
        };
        let applies = reps.max(1) * 3;
        let pooled: f64 = pfmm_bench::workspace_apply_secs(wcfg, 20_000, 23, 2, applies, true)
            .iter()
            .sum();
        let fresh: f64 = pfmm_bench::workspace_apply_secs(wcfg, 20_000, 23, 1, applies, false)
            .iter()
            .sum();
        checks.push(Check {
            baseline: "BENCH_workspace.json",
            key: "wall_ratio_alloc_over_pooled",
            committed,
            measured: fresh / pooled.max(1e-12),
            floor: floor_of(committed),
        });
    }

    if let Some(b) = load(&dir, "BENCH_serve.json") {
        let committed = num(&b, "speedup");
        let mut best_cold = 0.0f64;
        let mut best_warm = 0.0f64;
        for _ in 0..reps.max(1) {
            best_cold = best_cold.max(serve_throughput(false));
            best_warm = best_warm.max(serve_throughput(true));
        }
        checks.push(Check {
            baseline: "BENCH_serve.json",
            key: "speedup",
            committed,
            measured: best_warm / best_cold.max(1e-12),
            floor: floor_of(committed),
        });
    }

    if let Some(b) = load(&dir, "BENCH_trace_overhead.json") {
        // Overhead gate, re-expressed as the ratio off/traced so every
        // check reads "bigger is better": budget_pct overhead allowed
        // means the committed floor ratio is 1/(1 + budget/100).
        let budget = num(&b, "budget_pct");
        let committed = 1.0 / (1.0 + budget / 100.0);
        let mut off = f64::INFINITY;
        let mut traced = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t_off = Arc::new(Tracer::off());
            off = off.min(run_case_traced_secs(smoke_cfg(), n, &t_off));
            let t_ph = Arc::new(Tracer::new(TraceLevel::Phase));
            traced = traced.min(run_case_traced_secs(smoke_cfg(), n, &t_ph));
        }
        checks.push(Check {
            baseline: "BENCH_trace_overhead.json",
            key: "phase_overhead_pct",
            committed,
            measured: off / traced.max(1e-12),
            floor: floor_of(committed),
        });
    }

    if let Some(b) = load(&dir, "BENCH_metrics_overhead.json") {
        // Same ratio form for the telemetry budget: disabled/armed.
        let budget = num(&b, "budget_pct");
        let committed = 1.0 / (1.0 + budget / 100.0);
        let reg = pfmm_metrics::global();
        let mut disabled = f64::INFINITY;
        let mut armed = f64::INFINITY;
        for _ in 0..reps.max(1) {
            reg.set_enabled(false);
            disabled = disabled.min(eval_secs(smoke_cfg(), n, 1).max_eval());
            reg.set_enabled(true);
            armed = armed.min(eval_secs(smoke_cfg(), n, 1).max_eval());
        }
        checks.push(Check {
            baseline: "BENCH_metrics_overhead.json",
            key: "overhead_pct",
            committed,
            measured: disabled / armed.max(1e-12),
            floor: floor_of(committed),
        });
    }

    assert!(!checks.is_empty(), "no baselines found under {dir}/");
    for c in &mut checks {
        c.measured /= inject;
    }

    println!(
        "{:<32} {:<26} {:>10} {:>10} {:>8} {:>6}",
        "baseline", "key", "committed", "measured", "floor", "ok"
    );
    let mut failed = 0usize;
    for c in &checks {
        println!(
            "{:<32} {:<26} {:>10.3} {:>10.3} {:>8.3} {:>6}",
            c.baseline,
            c.key,
            c.committed,
            c.measured,
            c.floor,
            if c.pass() { "pass" } else { "FAIL" }
        );
        failed += usize::from(!c.pass());
    }

    let mut json = String::from("{\n  \"bench\": \"bench_check\",\n");
    json.push_str(&format!(
        "  \"tolerance\": {tolerance},\n  \"inject\": {inject},\n  \
         \"reps\": {reps},\n  \"failed\": {failed},\n  \"checks\": [\n"
    ));
    for (i, c) in checks.iter().enumerate() {
        json.push_str("    {\"baseline\": ");
        push_escaped(&mut json, c.baseline);
        json.push_str(", \"key\": ");
        push_escaped(&mut json, c.key);
        json.push_str(&format!(
            ", \"committed\": {:.4}, \"measured\": {:.4}, \"floor\": {:.4}, \"pass\": {}}}{}\n",
            c.committed,
            c.measured,
            c.floor,
            c.pass(),
            if i + 1 < checks.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(&report_path).parent() {
        std::fs::create_dir_all(parent).expect("create report dir");
    }
    std::fs::write(&report_path, &json).unwrap_or_else(|e| panic!("write {report_path}: {e}"));
    println!("\nwrote {report_path}");

    assert!(
        failed == 0,
        "{failed} of {} gated ratios regressed below their floor (see {report_path})",
        checks.len()
    );
    println!("all {} gated ratios hold", checks.len());
}

fn run_case_traced_secs(cfg: FmmConfig, n: usize, tracer: &Arc<Tracer>) -> f64 {
    pfmm_bench::run_case_traced(
        Arc::new(Laplace),
        cfg,
        Distribution::Uniform,
        n,
        1,
        23,
        tracer,
    )
    .max_eval()
}
