//! Ablation — work-weighted repartition (§III-B) on vs off.
//!
//! The paper balances leaves by interaction-list work estimates rather
//! than leaf counts; on the nonuniform distribution this is what keeps
//! the max-over-ranks time close to the average (the small gap between
//! the black dots and the bars of Figures 3–4). This harness compares
//! per-rank flop spread with the balancer on and off.

use std::sync::Arc;

use pfmm_bench::{run_case_best, Distribution, Table};
use pfmm_core::FmmConfig;
use pfmm_kernels::Stokes;

fn main() {
    let p = 8;
    let per_rank = 4_000;
    println!("Ablation: load balancing, p = {p}, {per_rank} pts/rank\n");
    let mut t = Table::new(&[
        "distribution",
        "balance",
        "max/avg flops",
        "max flops",
        "avg flops",
    ]);
    for dist in [Distribution::Uniform, Distribution::Ellipsoid] {
        for balance in [false, true] {
            let cfg = FmmConfig {
                order: 4,
                q: 50,
                balance,
                ..Default::default()
            };
            let s = run_case_best(
                Arc::new(Stokes::default()),
                cfg,
                dist,
                per_rank * p,
                p,
                57,
                1,
            );
            let flops = s.rank_flops();
            let max = *flops.iter().max().expect("ranks") as f64;
            let avg = flops.iter().sum::<u64>() as f64 / p as f64;
            t.row(vec![
                dist.label().into(),
                balance.to_string(),
                format!("{:.2}", max / avg),
                format!("{:.3e}", max),
                format!("{:.3e}", avg),
            ]);
        }
    }
    println!("{}", t.render());
    println!("expected: balancing shrinks max/avg notably on the nonuniform");
    println!("distribution and is nearly neutral on the uniform one.");
}
