//! Figure 4 — MPI weak scaling.
//!
//! Paper: 25k points/core (uniform) and 100k points/core (nonuniform) on
//! 16–65,536 Kraken cores; timings grow only ~1.5× across that whole
//! range, and the tree construction is a small fraction of the total
//! (unlike the SC'03 implementation).
//!
//! Here: fixed points-per-rank on 1–16 simulated ranks with exact
//! counters at 2009 rates, then the calibrated model out to 65,536 ranks.

use std::sync::Arc;

use pfmm_bench::{modeled_eval_secs, run_case_best, Distribution, Table};
use pfmm_core::FmmConfig;
use pfmm_kernels::Stokes;
use pfmm_perfmodel::{FmmModel, MachineParams, Sample};

fn main() {
    let cfg = FmmConfig {
        order: 4,
        q: 100,
        ..Default::default()
    };
    println!(
        "Figure 4 reproduction: weak scaling, Stokes kernel, order {}\n",
        cfg.order
    );

    for (dist, per_rank) in [
        (Distribution::Uniform, 5_000),
        (Distribution::Ellipsoid, 5_000),
    ] {
        println!(
            "== {} distribution, {} points/rank ==",
            dist.label(),
            per_rank
        );
        let mut table = Table::new(&[
            "p",
            "N",
            "setup max(s)",
            "sort max(s)",
            "eval max(s)",
            "eval avg(s)",
        ]);
        let mut samples: Vec<Sample> = Vec::new();
        for p in [1usize, 2, 4, 8, 16] {
            let s = run_case_best(
                Arc::new(Stokes::default()),
                cfg,
                dist,
                per_rank * p,
                p,
                17,
                1,
            );
            samples.push(s.to_sample());
            let (maxt, avgt) = modeled_eval_secs(&s);
            table.row(vec![
                p.to_string(),
                (per_rank * p).to_string(),
                format!("{:.3e}", s.max_setup()),
                format!("{:.3e}", s.max_sort()),
                format!("{:.3e}", maxt),
                format!("{:.3e}", avgt),
            ]);
        }
        println!("{}", table.render());

        let model = FmmModel::fit(MachineParams::kraken(), &samples);
        let paper_per_rank = match dist {
            Distribution::Uniform => 25_000.0,
            Distribution::Ellipsoid => 100_000.0,
        };
        let mut ext = Table::new(&["p", "N", "setup(s)", "eval(s)", "growth vs p=16"]);
        let base = model.predict(paper_per_rank * 16.0, 16.0).evaluation();
        for p in [16.0f64, 256.0, 4096.0, 16384.0, 65536.0] {
            let pr = model.predict(paper_per_rank * p, p);
            ext.row(vec![
                format!("{p}"),
                format!("{:.1e}", paper_per_rank * p),
                format!("{:.2}", pr.setup()),
                format!("{:.2}", pr.evaluation()),
                format!("{:.2}x", pr.evaluation() / base),
            ]);
        }
        println!(
            "model extrapolation at the paper's {} pts/core:\n{}",
            paper_per_rank,
            ext.render()
        );
    }
    println!("paper reference: ~1.5x timing growth from 16 to 65536 cores (their");
    println!("extra growth comes from load imbalance and Kraken's heterogeneous");
    println!("memory, which the complexity model does not include); tree");
    println!("construction ~10% of the evaluation phase (see the setup/eval");
    println!("columns of the extrapolation tables).");
}
