//! §VI's closing claim, reproduced: "our present code could achieve one
//! PetaFlop/s on a hypothetical 64K-GPU/CPU machine without any further
//! modifications."
//!
//! The projection combines three measured/modeled ingredients, just as
//! the paper's arithmetic does:
//!
//! 1. per-GPU sustained rate from a real gpusim run (useful FMM flops ÷
//!    modeled device seconds — the paper's Lincoln runs sustain ≈31
//!    GFlop/s per GPU: 8 TFlop/s over 256 GPUs);
//! 2. the √p communication term of the calibrated scaling model at
//!    p = 65,536 (weak scaling, 1M points per GPU like Fig 6);
//! 3. the 50%-of-science-flops parallel-efficiency haircut the paper
//!    reports for its largest CPU runs.

use pfmm_bench::Table;
use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_gpusim::{run_gpu_fmm, DeviceSpec};
use pfmm_perfmodel::{FmmModel, MachineParams};

fn main() {
    println!("§VI projection: one PetaFlop/s on a hypothetical 64K-GPU machine?\n");
    let dev = DeviceSpec::tesla_s1070();
    let per_gpu = 50_000;
    let mut pts = uniform_cube(per_gpu, 3, 0);
    randomize_densities(&mut pts, 1, 4);
    let rep = run_gpu_fmm(pts, 400, 4, &dev, false);

    // Useful (unpadded-equivalent) science flops: use the 2009-CPU flop
    // account, which counts the same work a CPU implementation would do.
    // Scale the measured 50k-point run to the paper's 1M points/GPU
    // operating point (weak scaling: both work and device time grow
    // linearly in N).
    let paper_per_gpu = 1_000_000.0;
    let scale_up = paper_per_gpu / per_gpu as f64;
    let science_flops: f64 = rep.cpu2009_secs.iter().sum::<f64>() * 0.5e9 * scale_up;
    let gpu_secs = rep.total_gpu() * scale_up;
    let per_gpu_rate = science_flops / gpu_secs;
    println!(
        "per-GPU at 1M pts (scaled from the measured 50k run): {:.2e} science flops in {:.2}s -> {:.1} GFlop/s sustained",
        science_flops,
        gpu_secs,
        per_gpu_rate / 1e9
    );
    println!("(paper: 256M points in 2.3s = 8 TFlop/s over 256 GPUs = 31 GFlop/s per GPU)\n");

    // Weak-scaling communication at the paper's hypothetical scale; the
    // comm term is what erodes the per-GPU rate — the paper observed a
    // 50% "science flops" loss going to 64K cores, which this term
    // models.
    let model = FmmModel::from_constants(MachineParams::kraken(), 2e-8, 5e-6, 0.0, 2000.0);
    let mut t = Table::new(&[
        "GPUs",
        "comm (s)",
        "efficiency",
        "aggregate TFlop/s",
        "PetaFlop/s?",
    ]);
    for p in [256.0f64, 4096.0, 65536.0] {
        let comm = model.predict(paper_per_gpu * p, p).comm;
        let eff = gpu_secs / (gpu_secs + comm);
        let agg = per_gpu_rate * p * eff;
        t.row(vec![
            format!("{p}"),
            format!("{:.2}", comm),
            format!("{:.0}%", eff * 100.0),
            format!("{:.0}", agg / 1e12),
            if agg >= 1e15 {
                "yes".into()
            } else {
                "not yet".into()
            },
        ]);
    }
    println!("{}", t.render());

    // The paper's own arithmetic: per-GPU rate × 64K × the 50% science-
    // flop haircut it observed on its largest CPU runs — no explicit
    // communication term.
    let paper_style = per_gpu_rate * 65536.0 * 0.5;
    println!(
        "paper-style projection (rate x 64K x 50%): {:.2} PFlop/s -> {}",
        paper_style / 1e15,
        if paper_style >= 1e15 {
            "yes, a PetaFlop/s"
        } else {
            "short"
        }
    );
    println!();
    println!("paper reference: 500 MFlop/s/core sequential, 260 MFlop/s/core at 64K");
    println!("cores (the 50% haircut); 8 TFlop/s on 256 GPUs; \"one PetaFlop/s on a");
    println!("hypothetical 64K-GPU/CPU machine\". The comm-aware rows show what the");
    println!("paper's arithmetic leaves out: at GPU-fast evaluation times the");
    println!("sqrt(p) up-density exchange becomes the binding constraint near 64K");
    println!("devices — the same effect that motivated Algorithm 3 in the first");
    println!("place.");
}
