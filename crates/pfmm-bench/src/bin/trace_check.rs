//! Validate a Chrome-trace JSON file produced by `pfmm --trace` (or any
//! of the harness binaries' passthroughs): parse it back, check span
//! nesting and flow pairing, and summarize what it contains. Used by the
//! CI trace job to assert the exported file actually loads.
//!
//! Usage: `trace_check <path.json> [min_flows] [min_setup]` — exits
//! nonzero when the file is malformed, carries fewer than `min_flows`
//! matched flow arrows (default 0), or fewer than `min_setup` setup-phase
//! spans (`Sort` / `Setup:*`; default 0).
//!
//! Incident mode: `trace_check --incident <path.json>` validates a
//! flight-recorder dump instead — the `incident` envelope (reason /
//! t_us / window_us / lane / seq), the embedded `metrics` snapshot,
//! Perfetto parseability of the spans, that every span ends inside the
//! recorder window, and that the triggering lane contributed at least
//! one span.

use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .expect("usage: trace_check [--incident] <path.json> [min_flows] [min_setup]");
    if path == "--incident" {
        let path = args
            .next()
            .expect("usage: trace_check --incident <path.json>");
        check_incident(&path);
        return;
    }
    let min_flows: usize = args
        .next()
        .map(|a| a.parse().expect("min_flows must be an integer"))
        .unwrap_or(0);
    let min_setup: usize = args
        .next()
        .map(|a| a.parse().expect("min_setup must be an integer"))
        .unwrap_or(0);

    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let events = pfmm_trace::chrome::parse(&json).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let stats =
        pfmm_trace::chrome::validate(&events).unwrap_or_else(|e| panic!("validate {path}: {e}"));

    // Span-end events carry no name/cat (they close the lane's open
    // span), so bucket by the opening/instant events only.
    let mut by_cat: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events.iter().filter(|e| !e.cat.is_empty()) {
        *by_cat.entry(e.cat.as_ref()).or_default() += 1;
    }
    println!(
        "{path}: {} events, {} spans, {} flow arrows, {} instants, {} counters",
        events.len(),
        stats.spans,
        stats.flows,
        stats.instants,
        stats.counters
    );
    for (cat, n) in &by_cat {
        println!("  {cat:<8} {n:>8} events");
    }
    assert!(
        stats.flows >= min_flows,
        "expected at least {min_flows} flow arrows, found {}",
        stats.flows
    );
    let setup_spans = events
        .iter()
        .filter(|e| !e.cat.is_empty() && (e.name == "Sort" || e.name.starts_with("Setup")))
        .count();
    assert!(
        setup_spans >= min_setup,
        "expected at least {min_setup} setup-phase spans, found {setup_spans}"
    );
    println!("ok");
}

/// Validate a flight-recorder incident dump (see pfmm-metrics flight.rs
/// for the envelope format this inverts).
fn check_incident(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = pfmm_trace::json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));

    let inc = doc
        .get("incident")
        .unwrap_or_else(|| panic!("{path}: missing 'incident' member"));
    let reason = inc
        .get("reason")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("{path}: incident.reason must be a string"));
    let inum = |key: &str| {
        inc.get(key)
            .and_then(|v| v.as_num())
            .unwrap_or_else(|| panic!("{path}: incident.{key} must be a number"))
    };
    let t_us = inum("t_us");
    let window_us = inum("window_us");
    let lane = inum("lane") as u32;
    let seq = inum("seq") as u64;
    assert!(window_us > 0.0, "{path}: incident window must be positive");

    // The metrics member must be a well-formed registry snapshot.
    let metrics = doc
        .get("metrics")
        .unwrap_or_else(|| panic!("{path}: missing 'metrics' member"));
    let entries = metrics
        .get("entries")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("{path}: metrics.entries must be an array"));
    for e in entries {
        assert!(
            e.get("name").and_then(|v| v.as_str()).is_some(),
            "{path}: metrics entry missing name"
        );
    }

    // The span payload must stand on its own as a Perfetto trace.
    let events = pfmm_trace::chrome::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let stats =
        pfmm_trace::chrome::validate(&events).unwrap_or_else(|e| panic!("validate {path}: {e}"));

    // Every recorded span must end inside the recorder window. Begins
    // may precede it (a long span straddling the cutoff is kept), so
    // gate on End timestamps; a small slack absorbs the trigger racing
    // concurrent lanes still finishing their spans.
    let slack = window_us * 0.05;
    let (lo, hi) = (t_us - window_us - slack, t_us + slack);
    let mut lane_spans = 0usize;
    for e in &events {
        if matches!(e.kind, pfmm_trace::EventKind::End) {
            assert!(
                e.ts_us >= lo && e.ts_us <= hi,
                "{path}: span end at {} µs outside window [{lo}, {hi}]",
                e.ts_us
            );
        }
        if matches!(e.kind, pfmm_trace::EventKind::Begin) && e.tid == lane {
            lane_spans += 1;
        }
    }
    assert!(
        lane_spans >= 1,
        "{path}: triggering lane {lane} contributed no spans"
    );

    println!(
        "{path}: incident '{reason}' seq {seq} at {t_us:.0} µs (window {window_us:.0} µs, \
         lane {lane}): {} spans, {} metric series, lane spans {lane_spans}",
        stats.spans,
        entries.len()
    );
    println!("ok");
}
