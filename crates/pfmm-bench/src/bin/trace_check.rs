//! Validate a Chrome-trace JSON file produced by `pfmm --trace` (or any
//! of the harness binaries' passthroughs): parse it back, check span
//! nesting and flow pairing, and summarize what it contains. Used by the
//! CI trace job to assert the exported file actually loads.
//!
//! Usage: `trace_check <path.json> [min_flows] [min_setup]` — exits
//! nonzero when the file is malformed, carries fewer than `min_flows`
//! matched flow arrows (default 0), or fewer than `min_setup` setup-phase
//! spans (`Sort` / `Setup:*`; default 0).

use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .expect("usage: trace_check <path.json> [min_flows] [min_setup]");
    let min_flows: usize = args
        .next()
        .map(|a| a.parse().expect("min_flows must be an integer"))
        .unwrap_or(0);
    let min_setup: usize = args
        .next()
        .map(|a| a.parse().expect("min_setup must be an integer"))
        .unwrap_or(0);

    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let events = pfmm_trace::chrome::parse(&json).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let stats =
        pfmm_trace::chrome::validate(&events).unwrap_or_else(|e| panic!("validate {path}: {e}"));

    // Span-end events carry no name/cat (they close the lane's open
    // span), so bucket by the opening/instant events only.
    let mut by_cat: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events.iter().filter(|e| !e.cat.is_empty()) {
        *by_cat.entry(e.cat.as_ref()).or_default() += 1;
    }
    println!(
        "{path}: {} events, {} spans, {} flow arrows, {} instants, {} counters",
        events.len(),
        stats.spans,
        stats.flows,
        stats.instants,
        stats.counters
    );
    for (cat, n) in &by_cat {
        println!("  {cat:<8} {n:>8} events");
    }
    assert!(
        stats.flows >= min_flows,
        "expected at least {min_flows} flow arrows, found {}",
        stats.flows
    );
    let setup_spans = events
        .iter()
        .filter(|e| !e.cat.is_empty() && (e.name == "Sort" || e.name.starts_with("Setup")))
        .count();
    assert!(
        setup_spans >= min_setup,
        "expected at least {min_setup} setup-phase spans, found {setup_spans}"
    );
    println!("ok");
}
