//! Ablation — GPU thread-block size vs padding waste.
//!
//! Algorithm 4 pads every box to the thread-block size `b`, trading
//! wasted lanes for perfectly coalesced tiles. The paper fixes `b`
//! implicitly; this harness sweeps it and shows the trade directly: at a
//! given `q`, larger blocks inflate the padded pair count (wasted flops)
//! while improving the transaction shape — and the optimum moves with
//! the leaf occupancy, which is why `q` and `b` must be tuned together
//! (the autotuning remark of §V).

use pfmm_bench::Table;
use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_gpusim::kernels::uli;
use pfmm_gpusim::{DeviceSpec, GpuLayout};
use pfmm_mpisim::run;
use pfmm_tree::{build_let, build_lists, points_to_octree};

fn main() {
    let n = 60_000;
    println!("Ablation: U-list thread-block size (uniform, N = {n})\n");
    let dev = DeviceSpec::tesla_s1070();
    let mut pts = uniform_cube(n, 17, 0);
    randomize_densities(&mut pts, 1, 18);

    for q in [60usize, 250] {
        let (l, lists) = run(1, |c| {
            let t = points_to_octree(c, pts.clone(), q);
            let l = build_let(c, &t);
            let lists = build_lists(&l);
            (l, lists)
        })
        .pop()
        .expect("one rank");

        let mut t = Table::new(&[
            "b",
            "padded pts",
            "pad factor",
            "Gflop (padded)",
            "modeled ULI (s)",
        ]);
        for b in [32usize, 64, 128, 256] {
            let lay = GpuLayout::build(&l, &lists, b);
            let (_, stats) = uli(&lay);
            t.row(vec![
                b.to_string(),
                lay.src.len().to_string(),
                format!("{:.2}", lay.src.len() as f64 / n as f64),
                format!("{:.2}", stats.tally.flops as f64 / 1e9),
                format!("{:.4}", dev.kernel_time(&stats)),
            ]);
        }
        println!("q = {q}:\n{}", t.render());
    }
    println!("expected: the padding factor (and with it the padded flop count)");
    println!("grows with b/q; the modeled time optimum sits where padding waste");
    println!("balances occupancy and coalescing.");
}
