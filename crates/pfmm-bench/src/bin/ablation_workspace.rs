//! Ablation — plan-owned evaluation workspace vs allocate-per-apply.
//!
//! DESIGN.md §15 describes the zero-allocation steady state: every
//! buffer the evaluation sweep needs (equivalent/check densities,
//! batched-M2L spectra and accumulators, near-field density panels,
//! per-worker tile and translation scratch) lives in a plan-owned
//! [`pfmm_core::EvalWorkspace`] sized once, so a warm apply touches the
//! allocator zero times (pinned by the `alloc_gate` test). This bin
//! measures what that buys a solver loop: per-apply latency with the
//! pooled workspace against the allocate-per-apply baseline, where each
//! apply builds and drops a fresh workspace — the pre-pooling behavior,
//! including the per-apply spectrum-table and near-field rebuilds.
//!
//! Both modes produce bitwise-identical potentials (the
//! `workspace_purity` suite), making this a pure performance ablation.
//! A counting global allocator reports allocator hits per apply in each
//! mode; pooled must read 0.
//!
//! Usage: `ablation_workspace [n_points] [--pool=on|off] [--order=K]
//! [--q=K]` (default 100 000, both modes, order 4, q 16 — the small
//! leaf capacity makes the tree deep, so the per-apply spectrum-table,
//! near-field, and buffer rebuilds carry real weight against the sweep
//! itself; the same reasoning has `ablation_translate` pin `LEAF_Q =
//! 16`). `PFMM_BENCH_REPS` sets the measured applies per mode,
//! `PFMM_BENCH_WARMUP` the unmeasured warm-up applies. With both modes
//! measured, results land in `results/BENCH_workspace.json` for the
//! `bench_check` sentinel.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pfmm_bench::{bench_reps, bench_warmup, Distribution, Table};
use pfmm_core::{Fmm, FmmConfig};
use pfmm_kernels::Laplace;
use pfmm_mpisim::run;

/// Counts allocator hits so each mode can report allocations per apply.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Measured applies per mode (override with `PFMM_BENCH_REPS`): enough
/// samples for a stable median; p99 degenerates to the max below 100.
const DEFAULT_REPS: usize = 9;

struct ModeStats {
    label: &'static str,
    /// Per-apply wall times, ascending.
    sorted: Vec<f64>,
    mean: f64,
    allocs_per_apply: f64,
}

/// Nearest-rank percentile of an ascending sample vector.
fn pct(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// One plan, `warmup` untimed applies, then `applies` timed ones, with
/// the allocator counter snapshotted around each apply individually so
/// harness bookkeeping never pollutes the per-apply count. Mirrors
/// [`pfmm_bench::workspace_apply_secs`], which `bench_check` re-runs at
/// smoke scale against the ratio committed here.
fn measure(cfg: FmmConfig, n: usize, pooled: bool) -> ModeStats {
    let warmup = bench_warmup(2);
    let applies = bench_reps(DEFAULT_REPS).max(1);
    let f = Fmm::new(Arc::new(Laplace), cfg);
    let pts = Distribution::Uniform.generate(n, 13, 0, 1);
    let (mut samples, allocs) = run(1, |c| {
        let mut plan = f.plan(c, pts.clone());
        let den = vec![0.5f64; plan.num_owned()];
        let mut out = Vec::new();
        for _ in 0..warmup {
            f.apply_into(c, &mut plan, &den, &mut out);
        }
        let mut samples = Vec::with_capacity(applies);
        let mut allocs = 0u64;
        for _ in 0..applies {
            let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
            let t = Instant::now();
            if pooled {
                f.apply_into(c, &mut plan, &den, &mut out);
            } else {
                let mut ws = f.workspace(&plan);
                f.apply_ws(c, &mut plan, &mut ws, &den, &mut out);
            }
            samples.push(t.elapsed().as_secs_f64());
            allocs += ALLOC_CALLS.load(Ordering::Relaxed) - a0;
        }
        (samples, allocs)
    })
    .pop()
    .expect("one rank");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    ModeStats {
        label: if pooled { "pooled" } else { "per_apply_alloc" },
        sorted: samples,
        mean,
        allocs_per_apply: allocs as f64 / applies as f64,
    }
}

fn main() {
    let mut n: usize = 100_000;
    let mut pool_filter: Option<bool> = None;
    let mut cfg = FmmConfig {
        order: 4,
        q: 16,
        ..Default::default()
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--pool=on" => pool_filter = Some(true),
            "--pool=off" => pool_filter = Some(false),
            other => {
                if let Some(v) = other.strip_prefix("--order=") {
                    cfg.order = v.parse().expect("--order=K");
                } else if let Some(v) = other.strip_prefix("--q=") {
                    cfg.q = v.parse().expect("--q=K");
                } else {
                    n = other.parse().expect("n_points must be an integer");
                }
            }
        }
    }
    let reps = bench_reps(DEFAULT_REPS).max(1);
    let warmup = bench_warmup(2);
    println!(
        "Ablation: pooled workspace vs allocate-per-apply (laplace, uniform, N = {n}, \
         order = {}, q = {}, p = 1, {reps} applies after {warmup} warm-ups)\n",
        cfg.order, cfg.q,
    );

    let modes: Vec<bool> = match pool_filter {
        Some(p) => vec![p],
        None => vec![true, false],
    };
    let stats: Vec<ModeStats> = modes.iter().map(|&p| measure(cfg, n, p)).collect();

    let mut t = Table::new(&[
        "mode",
        "applies",
        "p50(s)",
        "p99(s)",
        "mean(s)",
        "allocs/apply",
    ]);
    for s in &stats {
        t.row(vec![
            s.label.to_string(),
            s.sorted.len().to_string(),
            format!("{:.3}", pct(&s.sorted, 50.0)),
            format!("{:.3}", pct(&s.sorted, 99.0)),
            format!("{:.3}", s.mean),
            format!("{:.1}", s.allocs_per_apply),
        ]);
    }
    println!("{}", t.render());

    if let [pooled, alloc] = &stats[..] {
        let ratio = alloc.mean / pooled.mean.max(1e-12);
        let p99_cut = 1.0 - pct(&pooled.sorted, 99.0) / pct(&alloc.sorted, 99.0).max(1e-12);
        println!(
            "pooled speedup over allocate-per-apply: {ratio:.2}x wall, {:.0}% p99 reduction",
            p99_cut * 100.0
        );
        println!("expected: the pooled workspace clears 1.15x — the baseline re-pays the");
        println!("spectrum-table build, near-field panel build, and every buffer's pages");
        println!("on each apply, all of which the plan-owned workspace amortizes away.");

        let json = render_json(cfg, n, reps, warmup, pooled, alloc, ratio, p99_cut);
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/BENCH_workspace.json", &json)
            .expect("write results/BENCH_workspace.json");
        println!("\nwrote results/BENCH_workspace.json");
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: FmmConfig,
    n: usize,
    reps: usize,
    warmup: usize,
    pooled: &ModeStats,
    alloc: &ModeStats,
    ratio: f64,
    p99_cut: f64,
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n  \"bench\": \"ablation_workspace\",\n  \"n\": {n},\n  \"order\": {},\n  \
         \"q\": {},\n  \"reps\": {reps},\n  \"warmup\": {warmup},\n  \"rows\": [\n",
        cfg.order, cfg.q
    ));
    for (i, m) in [pooled, alloc].into_iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"p50_s\": {:.6}, \"p99_s\": {:.6}, \"mean_s\": {:.6}, \
             \"allocs_per_apply\": {:.1}}}{}\n",
            m.label,
            pct(&m.sorted, 50.0),
            pct(&m.sorted, 99.0),
            m.mean,
            m.allocs_per_apply,
            if i == 0 { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"wall_ratio_alloc_over_pooled\": {ratio:.4},\n  \
         \"p99_reduction_pct\": {:.2}\n}}\n",
        p99_cut * 100.0
    ));
    s
}
