//! Figure 6 — GPU weak scaling.
//!
//! Paper: 1M uniform points per GPU, Laplace, 1–256 GPUs on Lincoln; the
//! GPU/CPU configuration maintains ≈25× over CPU-only throughout, with
//! 1.8–3 s per evaluation (256M points in 2.3 s ≈ 8 TFlop/s); GPU runs
//! use deeper boxes (q ≈ 400) than CPU runs (q ≈ 100), each tuned for
//! its architecture.
//!
//! Here: the GPU side comes from *real distributed* gpusim runs (62.5k
//! points/rank, q = 400, one simulated device per rank, real LET exchange
//! and hypercube reduce-and-scatter) at p = 1…8, extrapolated to 256 with
//! the calibrated comm model; the CPU-only side from the real CPU FMM's
//! *exact* flop counters (q = 100) converted at a 2009 CPU rate. That
//! rate dominates the speedup number, so two assumptions are shown: the
//! paper's §VI 0.5 Gflop/s (Kraken Stokes sustained) and a 2 Gflop/s
//! SSE-tuned Laplace estimate for Lincoln's Harpertowns — the paper's
//! ≈25× sits at the latter. The *shape* (flat speedup out to 256 GPUs)
//! is rate-independent.

use std::sync::Arc;

use pfmm_bench::{run_case_best, Distribution, Table};
use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_core::FmmConfig;
use pfmm_gpusim::{run_gpu_fmm_distributed, DeviceSpec};
use pfmm_kernels::Laplace;
use pfmm_perfmodel::{FmmModel, MachineParams, Sample};

fn main() {
    // 62.5k/rank keeps every weak-scaling step away from the q=400 leaf
    // split threshold (N/512 ≈ 400 at N ≈ 205k): crossing it mid-series
    // mixes leaf levels and adds host-side W/X work that the paper's
    // pure-uniform runs do not have.
    let per_rank = 62_500;
    let order = 4;
    let q_gpu = 400; // paper: ~400 points/box for GPU runs
    let q_cpu = 100; // paper: ~100 points/box for CPU runs
    println!("Figure 6 reproduction: GPU weak scaling, Laplace, {per_rank} pts/rank\n");

    // GPU side: real distributed gpusim runs at the GPU-tuned q.
    let dev = DeviceSpec::tesla_s1070();
    let mut per_rank_gpu = std::collections::BTreeMap::new();
    for p in [1usize, 2, 4, 8] {
        let mut pts = uniform_cube(per_rank * p, 5, 0);
        randomize_densities(&mut pts, 1, 6);
        let reports = run_gpu_fmm_distributed(p, pts, q_gpu, order, &dev, false);
        let max_gpu = reports.iter().map(|r| r.total_gpu()).fold(0.0f64, f64::max);
        per_rank_gpu.insert(p, max_gpu);
        println!(
            "measured p={p}: max per-rank device time {:.3}s (reduce-scatter wall {:.4}s)",
            max_gpu,
            reports
                .iter()
                .map(|r| r.comm_wall_secs)
                .fold(0.0f64, f64::max),
        );
    }
    let gpu_time_at = |p: usize| -> f64 {
        // Use the measured value where available, else the largest
        // measured (weak scaling: per-rank device work is flat).
        *per_rank_gpu
            .range(..=p)
            .next_back()
            .map(|(_, v)| v)
            .expect("p >= 1")
    };

    // CPU side: exact flop counters of the real CPU FMM at the CPU-tuned q.
    let cfg = FmmConfig {
        order,
        q: q_cpu,
        ..Default::default()
    };
    let cpu_run = run_case_best(
        Arc::new(Laplace),
        cfg,
        Distribution::Uniform,
        per_rank,
        1,
        5,
        1,
    );
    let cpu_flops = cpu_run.profiles[0].total_flops() as f64;
    let cpu_rates = [("0.5 GF/s", 0.5e9), ("2 GF/s", 2.0e9)];
    println!(
        "CPU-only flops/rank {:.2e} -> {:.1}s @0.5GF/s, {:.1}s @2GF/s",
        cpu_flops,
        cpu_flops / cpu_rates[0].1,
        cpu_flops / cpu_rates[1].1,
    );

    // Communication calibration from real distributed CPU runs.
    let mut samples: Vec<Sample> = Vec::new();
    for p in [2usize, 4, 8] {
        let s = run_case_best(
            Arc::new(Laplace),
            cfg,
            Distribution::Uniform,
            per_rank * p,
            p,
            11,
            1,
        );
        samples.push(s.to_sample());
    }
    let model = FmmModel::fit(MachineParams::lincoln(), &samples);

    let mut t = Table::new(&[
        "GPUs",
        "N",
        "CPU-only@0.5 (s)",
        "CPU-only@2 (s)",
        "GPU/CPU (s)",
        "speedup@0.5",
        "speedup@2",
    ]);
    for p in [1usize, 4, 16, 64, 256] {
        let n = (per_rank * p) as f64;
        let comm = model.predict(n, p as f64).comm;
        let t_cpu_a = cpu_flops / cpu_rates[0].1 + comm;
        let t_cpu_b = cpu_flops / cpu_rates[1].1 + comm;
        let t_gpu = gpu_time_at(p) + comm;
        t.row(vec![
            p.to_string(),
            format!("{:.1e}", n),
            format!("{:.2}", t_cpu_a),
            format!("{:.2}", t_cpu_b),
            format!("{:.2}", t_gpu),
            format!("{:.1}x", t_cpu_a / t_gpu),
            format!("{:.1}x", t_cpu_b / t_gpu),
        ]);
    }
    println!("\n{}", t.render());
    println!("paper reference: >25x speedup maintained through 256 GPUs; 1.8-3s per");
    println!("GPU evaluation; 256M points in 2.3s. The speedup columns should stay");
    println!("roughly flat with p (communication is shared by both configurations).");
}
