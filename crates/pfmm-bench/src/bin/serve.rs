//! Serving throughput: warm-cache batched evaluation vs the cold
//! baseline (DESIGN.md §11).
//!
//! Both sides replay the *identical* deterministic request stream
//! (closed-loop clients, hot/cold geometry mix). The baseline is the
//! service with its two optimizations disabled — plan-cache budget 0
//! (every request replans) and `max_batch = 1` (every request is its own
//! batch) — i.e. what a client doing naive `plan` + `apply` per request
//! would get through the same pool. The gate is twofold:
//!
//! - warm/batched throughput ≥ 1.15× the baseline (best of `reps` runs
//!   per side, interleaved; the margin was ≥ 2× before the §13 parallel
//!   setup engine cut the cold replan cost itself),
//! - every potential vector bitwise identical between the two runs —
//!   caching and batching must be *pure* optimizations.
//!
//! The workload sits in the plan-heavy regime (low order, small leaves,
//! mid-size geometries: tree + list construction costs more than one
//! evaluation pass), which is exactly where a plan cache earns its keep —
//! at high order the evaluation dominates and caching is a wash.
//!
//! Usage: `serve [requests] [n_points] [min_speedup]` (defaults 36,
//! 15000, 1.15). Honors `PFMM_BENCH_REPS` / `PFMM_BENCH_WARMUP`. Writes
//! `results/BENCH_serve.json` and exits nonzero below `min_speedup`.

use std::sync::Arc;

use pfmm_bench::{bench_reps, bench_warmup, Table};
use pfmm_core::{Fmm, FmmConfig};
use pfmm_kernels::Laplace;
use pfmm_serve::{
    run_sim, Arrival, ObsConfig, ServeReport, ServiceConfig, SimConfig, WorkloadConfig,
};
use pfmm_trace::Tracer;

fn fmm() -> Arc<Fmm> {
    Arc::new(Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 2,
            q: 24,
            ..Default::default()
        },
    ))
}

fn sim_cfg(requests: usize, n_points: usize, warm: bool) -> SimConfig {
    SimConfig {
        workload: WorkloadConfig {
            seed: 2009,
            requests,
            n_points,
            hot_geometries: 3,
            cold_fraction: 0.1,
            arrival: Arrival::Closed { concurrency: 6 },
            deadline_us: 0,
            priority_levels: 1,
        },
        service: ServiceConfig {
            max_batch: if warm { 6 } else { 1 },
            max_linger_us: if warm { 1_500 } else { 0 },
            workers: 2,
            shed_high_us: u64::MAX,
            shed_low_us: u64::MAX,
        },
        cache_budget_bytes: if warm { 1 << 30 } else { 0 },
        keep_potentials: true,
        obs: ObsConfig::default(),
    }
}

fn run_once(requests: usize, n_points: usize, warm: bool) -> ServeReport {
    run_sim(
        fmm(),
        "laplace",
        sim_cfg(requests, n_points, warm),
        Arc::new(Tracer::off()),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: usize = args
        .next()
        .map(|a| a.parse().expect("requests must be an integer"))
        .unwrap_or(36);
    let n_points: usize = args
        .next()
        .map(|a| a.parse().expect("n_points must be an integer"))
        .unwrap_or(15_000);
    let min_speedup: f64 = args
        .next()
        .map(|a| a.parse().expect("min_speedup must be a number"))
        .unwrap_or(1.15);
    let reps = bench_reps(2);
    println!(
        "Serve: {requests} requests, {n_points} pts/geometry, 3 hot geometries + 10% cold, \
         closed loop (6 clients, 2 workers), best of {reps}\n"
    );

    for _ in 0..bench_warmup(0) {
        run_once(requests, n_points, true);
    }

    // Interleave the two modes so host drift hits both alike; keep the
    // best throughput per side and any one report for the bit compare.
    let mut best_cold: Option<ServeReport> = None;
    let mut best_warm: Option<ServeReport> = None;
    for _ in 0..reps {
        let c = run_once(requests, n_points, false);
        if best_cold
            .as_ref()
            .is_none_or(|b| c.throughput_rps > b.throughput_rps)
        {
            best_cold = Some(c);
        }
        let w = run_once(requests, n_points, true);
        if best_warm
            .as_ref()
            .is_none_or(|b| w.throughput_rps > b.throughput_rps)
        {
            best_warm = Some(w);
        }
    }
    let cold = best_cold.expect("reps >= 1");
    let warm = best_warm.expect("reps >= 1");

    assert_eq!(cold.completed as usize, requests, "baseline served all");
    assert_eq!(warm.completed as usize, requests, "warm served all");
    assert_eq!(cold.cache.hits, 0, "budget 0 must never hit");
    assert!(warm.cache.hit_rate() > 0.0, "hot geometries must re-hit");

    // Bitwise identity: same request stream, same bits, regardless of
    // caching and batch shape.
    let (pc, pw) = (
        cold.potentials.as_ref().expect("kept"),
        warm.potentials.as_ref().expect("kept"),
    );
    assert_eq!(pc.len(), pw.len());
    for (id, vc) in pc {
        let vw = &pw[id];
        assert_eq!(vc.len(), vw.len(), "request {id} length");
        for (a, b) in vc.iter().zip(vw) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "request {id}: warm serving changed bits"
            );
        }
    }
    println!(
        "bitwise check: all {} potential vectors identical\n",
        pc.len()
    );

    let speedup = warm.throughput_rps / cold.throughput_rps.max(1e-9);
    let mut t = Table::new(&[
        "mode", "req/s", "wall(s)", "p50(ms)", "p95(ms)", "p99(ms)", "hit-rate", "batches",
    ]);
    for (label, r) in [("cold/batch=1", &cold), ("warm/batched", &warm)] {
        t.row(vec![
            label.to_string(),
            format!("{:.1}", r.throughput_rps),
            format!("{:.2}", r.wall_us as f64 * 1e-6),
            format!("{:.1}", r.latency_us.p50() * 1e-3),
            format!("{:.1}", r.latency_us.p95() * 1e-3),
            format!("{:.1}", r.latency_us.p99() * 1e-3),
            format!("{:.2}", r.cache.hit_rate()),
            r.service.batches.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("throughput speedup (warm/batched over baseline): {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"requests\": {requests},\n  \
         \"n_points\": {n_points},\n  \"hot_geometries\": 3,\n  \
         \"cold_fraction\": 0.1,\n  \"reps\": {reps},\n  \
         \"min_speedup\": {min_speedup},\n  \
         \"bitwise_identical\": true,\n  \"speedup\": {speedup:.3},\n  \
         \"cold\": {},\n  \"warm\": {}\n}}\n",
        mode_json(&cold),
        mode_json(&warm)
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_serve.json", &json).expect("write results/BENCH_serve.json");
    println!("\nwrote results/BENCH_serve.json");

    assert!(
        speedup >= min_speedup,
        "warm/batched serving {speedup:.2}x is below the {min_speedup}x gate"
    );
    println!("speedup {speedup:.2}x clears the {min_speedup}x gate");
}

fn mode_json(r: &ServeReport) -> String {
    format!(
        "{{\"throughput_rps\": {:.2}, \"wall_us\": {}, \
         \"p50_us\": {:.0}, \"p95_us\": {:.0}, \"p99_us\": {:.0}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.3}, \
         \"batches\": {}, \"batched_reqs\": {}, \
         \"probe_plan_us\": {}, \"probe_apply_us\": {}}}",
        r.throughput_rps,
        r.wall_us,
        r.latency_us.p50(),
        r.latency_us.p95(),
        r.latency_us.p99(),
        r.cache.hits,
        r.cache.misses,
        r.cache.hit_rate(),
        r.service.batches,
        r.service.batched_reqs,
        r.probe_us.0,
        r.probe_us.1,
    )
}
