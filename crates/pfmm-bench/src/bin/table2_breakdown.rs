//! Table II — per-phase Max/Avg time and flops.
//!
//! Paper: 65,536 Kraken ranks, nonuniform distribution, 150k points/rank
//! (30 billion Stokes unknowns), tree spanning levels 2–27; per-phase
//! maximum and average wall-clock and flops; setup 27 s of which 15 s is
//! the sort.
//!
//! Here: the same table at harness scale (16 ranks, nonuniform Stokes),
//! flops exact, times modeled at 2009 rates; plus the model-extrapolated
//! evaluation time at the paper's full scale.

use std::sync::Arc;

use pfmm_bench::{modeled_rank_secs, run_case_best, Distribution, Table};
use pfmm_core::{FmmConfig, Phase};
use pfmm_kernels::Stokes;
use pfmm_perfmodel::{FmmModel, MachineParams};

fn main() {
    let p = 16;
    let per_rank = 5_000;
    let cfg = FmmConfig {
        order: 4,
        q: 100,
        ..Default::default()
    };
    println!("Table II reproduction: nonuniform, Stokes, p = {p}, {per_rank} pts/rank\n");
    let s = run_case_best(
        Arc::new(Stokes::default()),
        cfg,
        Distribution::Ellipsoid,
        per_rank * p,
        p,
        7,
        1,
    );

    let modeled: Vec<[f64; 7]> = s
        .profiles
        .iter()
        .zip(&s.comm_reduce)
        .map(|(pr, cr)| modeled_rank_secs(pr, cr, p))
        .collect();

    let mut t = Table::new(&[
        "Event",
        "Max. Time",
        "Avg. Time",
        "Max. Flops",
        "Avg. Flops",
    ]);
    let totals: Vec<f64> = modeled.iter().map(|m| m.iter().sum()).collect();
    let tot_flops: Vec<u64> = s.profiles.iter().map(|pr| pr.total_flops()).collect();
    t.row(vec![
        "Total eval".into(),
        format!("{:.2e}", totals.iter().copied().fold(0.0, f64::max)),
        format!("{:.2e}", totals.iter().sum::<f64>() / p as f64),
        format!("{:.2e}", *tot_flops.iter().max().expect("ranks") as f64),
        format!("{:.2e}", tot_flops.iter().sum::<u64>() as f64 / p as f64),
    ]);
    for ph in Phase::ALL {
        let secs: Vec<f64> = modeled.iter().map(|m| m[ph as usize]).collect();
        let flops: Vec<u64> = s.profiles.iter().map(|pr| pr.flops(ph)).collect();
        t.row(vec![
            ph.label().into(),
            format!("{:.2e}", secs.iter().copied().fold(0.0, f64::max)),
            format!("{:.2e}", secs.iter().sum::<f64>() / p as f64),
            format!("{:.2e}", *flops.iter().max().expect("ranks") as f64),
            format!("{:.2e}", flops.iter().sum::<u64>() as f64 / p as f64),
        ]);
    }
    // Comp = everything but Comm.
    let comp: Vec<f64> = modeled
        .iter()
        .map(|m| m.iter().sum::<f64>() - m[Phase::Comm as usize])
        .collect();
    t.row(vec![
        "Comp".into(),
        format!("{:.2e}", comp.iter().copied().fold(0.0, f64::max)),
        format!("{:.2e}", comp.iter().sum::<f64>() / p as f64),
        format!("{:.2e}", *tot_flops.iter().max().expect("ranks") as f64),
        format!("{:.2e}", tot_flops.iter().sum::<u64>() as f64 / p as f64),
    ]);
    println!("{}", t.render());
    println!(
        "tree: {} global leaves, levels {}..{} (paper: levels 2..27)",
        s.info.global_leaves, s.info.min_leaf_level, s.info.max_leaf_level
    );
    println!(
        "setup: max {:.2e}s of which sort {:.2e}s (paper: 27s, 15s in sort)\n",
        s.max_setup(),
        s.max_sort()
    );

    // Extrapolation to the paper's operating point.
    let model = FmmModel::fit(MachineParams::kraken(), &[s.to_sample()]);
    let pr = model.predict(150_000.0 * 65536.0, 65536.0);
    println!(
        "model at the paper's point (150k pts/rank x 65536 ranks):\n  setup {:.1}s (sort {:.1}s)  evaluation {:.1}s  comm {:.1}s",
        pr.setup(),
        pr.sort,
        pr.evaluation(),
        pr.comm
    );
    println!("paper reference: total eval max 1.37e+02s avg 1.20e+02s; comm 8.83e+00s;");
    println!("U/V lists each ~40% of compute flops, W/X ~10% each.");
}
