//! Ablation — bulk-synchronous barrier executor vs the dependency-graph
//! scheduler with comm/compute overlap (`pfmm-sched`).
//!
//! The paper's §III overlaps the reduce-and-scatter of the upward
//! densities with the direct interactions that need no remote data (the
//! U- and X-lists only touch leaf point densities, which arrive with the
//! LET). This harness runs the same evaluation under both executors and
//! reports, per rank count and distribution, the busiest rank's
//! wall-clock, the compute seconds hidden behind communication
//! ("overlap"), and the speedup. The two executors produce bitwise
//! identical potentials (see `tests/invariants.rs`), so any gap is pure
//! scheduling.

use std::sync::Arc;

use pfmm_bench::{run_case, Distribution, Table};
use pfmm_core::driver::Schedule;
use pfmm_core::FmmConfig;
use pfmm_kernels::Laplace;

fn main() {
    let per_rank = 3_000;
    println!("Ablation: barrier vs graph schedule ({per_rank} pts/rank, 2 threads/rank)\n");
    let mut t = Table::new(&[
        "dist",
        "p",
        "barrier (s)",
        "graph (s)",
        "overlap (s)",
        "speedup",
    ]);
    for dist in [Distribution::Uniform, Distribution::Ellipsoid] {
        for p in [2usize, 4, 8] {
            let mut evals = Vec::new();
            let mut overlap = 0.0f64;
            for schedule in [Schedule::Barrier, Schedule::Graph] {
                let cfg = FmmConfig {
                    order: 4,
                    q: 40,
                    threads: 2,
                    schedule,
                    ..Default::default()
                };
                let s = run_case(Arc::new(Laplace), cfg, dist, per_rank * p, p, 31);
                evals.push(s.max_eval());
                if schedule == Schedule::Graph {
                    overlap = s
                        .profiles
                        .iter()
                        .map(|pr| pr.overlap_secs)
                        .fold(0.0, f64::max);
                }
            }
            t.row(vec![
                dist.label().to_string(),
                p.to_string(),
                format!("{:.4}", evals[0]),
                format!("{:.4}", evals[1]),
                format!("{:.4}", overlap),
                format!("{:.2}x", evals[0] / evals[1].max(1e-12)),
            ]);
        }
    }
    println!("{}", t.render());
    println!("expected: the graph schedule hides the Comm phase behind the U/X");
    println!("chunks (nonzero overlap) and the gap widens with p as the");
    println!("reduce-and-scatter gets more rounds to hide.");
}
