//! Ablation — bulk-synchronous barrier executor vs the dependency-graph
//! scheduler with comm/compute overlap (`pfmm-sched`).
//!
//! The paper's §III overlaps the reduce-and-scatter of the upward
//! densities with the direct interactions that need no remote data (the
//! U- and X-lists only touch leaf point densities, which arrive with the
//! LET). This harness runs the same evaluation under both executors and
//! reports, per rank count and distribution, the busiest rank's
//! wall-clock, the compute seconds hidden behind communication
//! ("overlap"), and the speedup. The two executors produce bitwise
//! identical potentials (see `tests/invariants.rs`), so any gap is pure
//! scheduling.
//!
//! Usage: `ablation_sched [--trace <path.json>]` — with `--trace`, one
//! extra 4-rank graph-scheduled run is recorded at full comm detail and
//! exported as a Chrome/Perfetto trace, so the overlap the table reports
//! can be inspected visually (comm spans under compute chunks).

use std::sync::Arc;

use pfmm_bench::{run_case_best, run_case_traced, Distribution, Table};
use pfmm_core::driver::Schedule;
use pfmm_core::FmmConfig;
use pfmm_kernels::Laplace;
use pfmm_trace::{TraceLevel, Tracer};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_path = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            other => match other.strip_prefix("--trace=") {
                Some(p) => trace_path = Some(p.to_string()),
                None => panic!("unknown argument {other}"),
            },
        }
    }
    let per_rank = 3_000;
    println!("Ablation: barrier vs graph schedule ({per_rank} pts/rank, 2 threads/rank)\n");
    let mut t = Table::new(&[
        "dist",
        "p",
        "barrier (s)",
        "graph (s)",
        "overlap (s)",
        "speedup",
    ]);
    for dist in [Distribution::Uniform, Distribution::Ellipsoid] {
        for p in [2usize, 4, 8] {
            let mut evals = Vec::new();
            let mut overlap = 0.0f64;
            for schedule in [Schedule::Barrier, Schedule::Graph] {
                let cfg = FmmConfig {
                    order: 4,
                    q: 40,
                    threads: 2,
                    schedule,
                    ..Default::default()
                };
                let s = run_case_best(Arc::new(Laplace), cfg, dist, per_rank * p, p, 31, 1);
                evals.push(s.max_eval());
                if schedule == Schedule::Graph {
                    overlap = s
                        .profiles
                        .iter()
                        .map(|pr| pr.overlap_secs)
                        .fold(0.0, f64::max);
                }
            }
            t.row(vec![
                dist.label().to_string(),
                p.to_string(),
                format!("{:.4}", evals[0]),
                format!("{:.4}", evals[1]),
                format!("{:.4}", overlap),
                format!("{:.2}x", evals[0] / evals[1].max(1e-12)),
            ]);
        }
    }
    println!("{}", t.render());
    println!("expected: the graph schedule hides the Comm phase behind the U/X");
    println!("chunks (nonzero overlap) and the gap widens with p as the");
    println!("reduce-and-scatter gets more rounds to hide.");

    if let Some(path) = trace_path {
        let tracer = Arc::new(Tracer::new(TraceLevel::Comm));
        let cfg = FmmConfig {
            order: 4,
            q: 40,
            threads: 2,
            schedule: Schedule::Graph,
            ..Default::default()
        };
        run_case_traced(
            Arc::new(Laplace),
            cfg,
            Distribution::Uniform,
            per_rank * 4,
            4,
            31,
            &tracer,
        );
        let events = tracer.drain();
        let stats = pfmm_trace::chrome::validate(&events).expect("recorded trace is well-formed");
        std::fs::write(&path, pfmm_trace::chrome::to_json_string(&events))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "\ntrace: {} spans, {} flow arrows -> {path}",
            stats.spans, stats.flows
        );
    }
}
