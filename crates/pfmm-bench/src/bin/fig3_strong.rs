//! Figure 3 — MPI strong scaling.
//!
//! Paper: fixed problem (uniform 200M / nonuniform 100M points, Stokes
//! kernel) on 512–8192 Kraken cores; per-phase average bars plus the
//! max-over-ranks dot; 80–90% parallel efficiency.
//!
//! Here: the same experiment at harness scale (uniform 40k / nonuniform
//! 20k points) on 1–16 simulated ranks, with exact per-rank flop and byte
//! counters converted to modeled Kraken-rate seconds, and the calibrated
//! scaling model extrapolated over the paper's 512–8192 range.

use std::sync::Arc;

use pfmm_bench::{modeled_eval_secs, modeled_rank_secs, run_case_best, Distribution, Table};
use pfmm_core::{FmmConfig, Phase};
use pfmm_kernels::Stokes;
use pfmm_perfmodel::{FmmModel, MachineParams, Sample};

fn main() {
    let cfg = FmmConfig {
        order: 4,
        q: 100,
        ..Default::default()
    };
    println!(
        "Figure 3 reproduction: strong scaling, Stokes kernel, order {}",
        cfg.order
    );
    println!("(paper: 200M/100M points on 512-8192 cores; here: scaled problem,");
    println!(" exact measured flop/byte counters, 2009-rate modeled seconds)\n");

    for (dist, n) in [
        (Distribution::Uniform, 40_000),
        (Distribution::Ellipsoid, 20_000),
    ] {
        println!("== {} distribution, N = {} (fixed) ==", dist.label(), n);
        let mut table = Table::new(&[
            "p",
            "Upward",
            "Comm",
            "U-list",
            "V-list",
            "W-list",
            "X-list",
            "Down",
            "avg total",
            "max total",
            "efficiency",
        ]);
        let mut samples: Vec<Sample> = Vec::new();
        let mut t1 = None;
        for p in [1usize, 2, 4, 8, 16] {
            let s = run_case_best(Arc::new(Stokes::default()), cfg, dist, n, p, 42, 1);
            samples.push(s.to_sample());
            // Phase averages of the modeled per-rank times.
            let mut avg = [0.0f64; 7];
            for (pr, cr) in s.profiles.iter().zip(&s.comm_reduce) {
                let m = modeled_rank_secs(pr, cr, p);
                for i in 0..7 {
                    avg[i] += m[i] / p as f64;
                }
            }
            let (maxt, avgt) = modeled_eval_secs(&s);
            let t1v = *t1.get_or_insert(maxt);
            let eff = t1v / (maxt * p as f64);
            table.row(vec![
                p.to_string(),
                format!("{:.3e}", avg[Phase::Upward as usize]),
                format!("{:.3e}", avg[Phase::Comm as usize]),
                format!("{:.3e}", avg[Phase::UList as usize]),
                format!("{:.3e}", avg[Phase::VList as usize]),
                format!("{:.3e}", avg[Phase::WList as usize]),
                format!("{:.3e}", avg[Phase::XList as usize]),
                format!("{:.3e}", avg[Phase::Downward as usize]),
                format!("{:.3e}", avgt),
                format!("{:.3e}", maxt),
                format!("{:.0}%", eff * 100.0),
            ]);
        }
        println!("{}", table.render());

        // Extrapolate the paper's core range with the calibrated model,
        // at the paper's problem size for this distribution.
        let model = FmmModel::fit(MachineParams::kraken(), &samples);
        let n_paper = match dist {
            Distribution::Uniform => 200e6,
            Distribution::Ellipsoid => 100e6,
        };
        let mut ext = Table::new(&["p", "setup(s)", "eval(s)", "comm(s)", "efficiency vs 512"]);
        for p in [512.0f64, 1024.0, 2048.0, 4096.0, 8192.0] {
            let pr = model.predict(n_paper, p);
            ext.row(vec![
                format!("{p}"),
                format!("{:.2}", pr.setup()),
                format!("{:.2}", pr.evaluation()),
                format!("{:.3}", pr.comm),
                format!("{:.0}%", model.strong_efficiency(n_paper, 512.0, p) * 100.0),
            ]);
        }
        println!(
            "model extrapolation to the paper's range (N = {:.0e}):\n{}",
            n_paper,
            ext.render()
        );
    }
    println!("paper reference: efficiencies 80-90% across 512-8K processes, good");
    println!("load balance (max close to avg); the same structure should be visible above.");
}
