//! Overhead budget for the tracing instrumentation (pfmm-trace).
//!
//! DESIGN.md §10 promises the span hooks are free when disabled and
//! cheap at phase granularity; this harness measures it. It runs the
//! same graph-scheduled evaluation three ways — tracer off, phase-level
//! spans, and full comm-level recording — interleaved round-robin after
//! a warm-up pass (so allocator/page-cache effects and host drift hit
//! all three levels alike), taking the minimum busiest-rank evaluation
//! time per level (the minimum filters host scheduling noise, which on
//! an oversubscribed `mpisim` host dwarfs the instrumentation itself).
//! The phase-level overhead must stay within the 2% budget; comm level
//! is reported for information (it records one event pair per message,
//! so its cost scales with traffic, not with N).
//!
//! Usage: `trace_overhead [n_points] [runs] [budget_pct]`
//! (defaults 100 000, 3, 2.0). Writes `results/BENCH_trace_overhead.json`
//! and exits nonzero when phase-level overhead exceeds the budget.

use std::sync::Arc;

use pfmm_bench::{run_case_traced, Distribution};
use pfmm_core::{FmmConfig, Schedule};
use pfmm_kernels::Laplace;
use pfmm_trace::{TraceLevel, Tracer};

const P: usize = 4;

fn one_eval(n: usize, level: TraceLevel) -> (f64, usize) {
    let cfg = FmmConfig {
        order: 4,
        q: 60,
        threads: 2,
        schedule: Schedule::Graph,
        ..Default::default()
    };
    let tracer = Arc::new(Tracer::new(level));
    let s = run_case_traced(
        Arc::new(Laplace),
        cfg,
        Distribution::Uniform,
        n,
        P,
        31,
        &tracer,
    );
    (s.max_eval(), tracer.drain().len())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("n_points must be an integer"))
        .unwrap_or(100_000);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be an integer"))
        .unwrap_or_else(|| pfmm_bench::bench_reps(3));
    let budget_pct: f64 = args
        .next()
        .map(|a| a.parse().expect("budget_pct must be a number"))
        .unwrap_or(2.0);
    println!(
        "Trace overhead: N = {n}, p = {P}, graph schedule, min of {runs} \
         interleaved runs, budget {budget_pct}%\n"
    );

    let levels = [TraceLevel::Off, TraceLevel::Phase, TraceLevel::Comm];
    let names = ["off", "phase", "comm"];
    for _ in 0..pfmm_bench::bench_warmup(1) {
        one_eval(n, TraceLevel::Off); // warm-up, not measured
    }
    let mut best = [f64::INFINITY; 3];
    let mut events = [0usize; 3];
    for _ in 0..runs {
        for (i, &level) in levels.iter().enumerate() {
            let (secs, evs) = one_eval(n, level);
            best[i] = best[i].min(secs);
            events[i] = evs;
        }
    }
    let pct: Vec<f64> = best
        .iter()
        .map(|b| 100.0 * (b - best[0]) / best[0])
        .collect();

    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "level", "eval (s)", "events", "overhead"
    );
    for i in 0..3 {
        println!(
            "{:<12} {:>12.4} {:>10} {:>9.2}%",
            names[i], best[i], events[i], pct[i]
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"n\": {n},\n  \"p\": {P},\n  \
         \"runs\": {runs},\n  \"budget_pct\": {budget_pct},\n  \
         \"off_eval_s\": {:.6},\n  \"phase_eval_s\": {:.6},\n  \
         \"comm_eval_s\": {:.6},\n  \"phase_events\": {},\n  \
         \"comm_events\": {},\n  \"phase_overhead_pct\": {:.3},\n  \
         \"comm_overhead_pct\": {:.3}\n}}\n",
        best[0], best[1], best[2], events[1], events[2], pct[1], pct[2]
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_trace_overhead.json", &json)
        .expect("write results/BENCH_trace_overhead.json");
    println!("\nwrote results/BENCH_trace_overhead.json");

    assert!(
        pct[1] <= budget_pct,
        "phase-level tracing overhead {:.2}% exceeds the {budget_pct}% budget",
        pct[1]
    );
    println!(
        "phase-level overhead {:.2}% within the {budget_pct}% budget",
        pct[1]
    );
}
