//! Ablation — hypercube reduce-and-scatter (Algorithm 3) vs the
//! owner-based reduction it replaced.
//!
//! The paper reports the owner-based scheme "worked well on up to 32K
//! processes, but failed in the 64K case" because octants near the root
//! have up to `p` users, concentrating messages at their owners. This
//! harness measures, per scheme and rank count, the busiest rank's
//! message count and byte volume during the Comm phase — the quantity
//! whose growth breaks the naive scheme.

use std::sync::Arc;

use pfmm_bench::{run_case_best, Distribution, Table};
use pfmm_core::{FmmConfig, Reduction};
use pfmm_kernels::Laplace;

fn main() {
    let per_rank = 3_000;
    println!("Ablation: up-density reduction schemes ({per_rank} uniform pts/rank)\n");
    let mut t = Table::new(&[
        "p",
        "hypercube msgs",
        "hypercube MBytes",
        "naive msgs",
        "naive MBytes",
        "naive/hc bytes",
    ]);
    for p in [2usize, 4, 8, 16, 32] {
        let mut stats = Vec::new();
        for reduction in [Reduction::Hypercube, Reduction::Naive] {
            let cfg = FmmConfig {
                order: 4,
                q: 40,
                reduction,
                ..Default::default()
            };
            let s = run_case_best(
                Arc::new(Laplace),
                cfg,
                Distribution::Uniform,
                per_rank * p,
                p,
                31,
                1,
            );
            stats.push((s.max_comm_msgs(), s.max_comm_bytes()));
        }
        let (hm, hb) = stats[0];
        let (nm, nb) = stats[1];
        t.row(vec![
            p.to_string(),
            hm.to_string(),
            format!("{:.3}", hb as f64 / 1e6),
            nm.to_string(),
            format!("{:.3}", nb as f64 / 1e6),
            format!("{:.2}", nb as f64 / hb.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
    println!("expected: hypercube messages grow as 2·log2(p) per rank while the");
    println!("owner-based scheme's busiest rank grows its traffic much faster with p");
    println!("(root-adjacent octants are used by every rank).");
}
