//! Figure 5 — flop variance across processes.
//!
//! Paper: per-process total flops of the 64K-core weak-scaling runs; the
//! uniform distribution is tightly balanced while the nonuniform one
//! spreads visibly even after work-based repartitioning (note the
//! different y-scales in the paper's two panels).
//!
//! Here: per-rank flop counters of a 16-rank run, uniform vs nonuniform,
//! with and without the §III-B load balancing.

use std::sync::Arc;

use pfmm_bench::{run_case_best, Distribution, Table};
use pfmm_core::{FmmConfig, Reduction};
use pfmm_kernels::Stokes;

fn spread(flops: &[u64]) -> (u64, u64, u64, f64) {
    let min = *flops.iter().min().expect("nonempty");
    let max = *flops.iter().max().expect("nonempty");
    let avg = flops.iter().sum::<u64>() / flops.len() as u64;
    (min, avg, max, max as f64 / avg.max(1) as f64)
}

fn main() {
    let p = 16;
    let per_rank = 4_000;
    println!("Figure 5 reproduction: per-rank flops, p = {p}, {per_rank} pts/rank\n");

    for dist in [Distribution::Uniform, Distribution::Ellipsoid] {
        for balance in [true, false] {
            let cfg = FmmConfig {
                order: 4,
                q: 50,
                balance,
                reduction: Reduction::Auto,
                ..Default::default()
            };
            let s = run_case_best(
                Arc::new(Stokes::default()),
                cfg,
                dist,
                per_rank * p,
                p,
                99,
                1,
            );
            let flops = s.rank_flops();
            let (min, avg, max, ratio) = spread(&flops);
            println!(
                "{:<11} balance={:<5}  min {:>12.3e}  avg {:>12.3e}  max {:>12.3e}  max/avg {:.2}",
                dist.label(),
                balance,
                min as f64,
                avg as f64,
                max as f64,
                ratio
            );
            if balance {
                let mut t = Table::new(&["rank", "flops"]);
                for (r, f) in flops.iter().enumerate() {
                    t.row(vec![r.to_string(), format!("{:.3e}", *f as f64)]);
                }
                println!("{}", t.render());
            }
        }
    }
    println!("paper reference: uniform panel is nearly flat; nonuniform panel");
    println!("varies by a visibly larger factor (different y-scales in Fig 5).");
}
