//! Overhead budget for the always-on telemetry (pfmm-metrics).
//!
//! DESIGN.md §14 promises the registry is cheap enough to leave armed
//! in every build: recording is post hoc (one batch of counter adds
//! after each evaluation) and the background sampler only reads relaxed
//! atomics. This harness measures the full armed configuration — global
//! registry enabled *and* a 10 ms snapshot sampler scraping it — against
//! the same evaluation with the registry disabled, interleaved
//! round-robin after a warm-up pass, taking the minimum busiest-rank
//! evaluation time per side (the minimum filters host scheduling noise).
//! The armed overhead must stay within the 1% phase budget.
//!
//! Usage: `metrics_overhead [n_points] [runs] [budget_pct] [sampler_ms]`
//! (defaults 100 000, 7, 1.0, 10). Honors `PFMM_BENCH_REPS` /
//! `PFMM_BENCH_WARMUP`. Writes `results/BENCH_metrics_overhead.json`
//! and exits nonzero when the armed overhead exceeds the budget.

use std::sync::Arc;
use std::time::Duration;

use pfmm_bench::{run_case, Distribution};
use pfmm_core::profile::Phase;
use pfmm_core::{FmmConfig, Schedule};
use pfmm_kernels::Laplace;
use pfmm_metrics::Sampler;

const P: usize = 4;

fn one_eval(n: usize) -> pfmm_bench::RunSummary {
    let cfg = FmmConfig {
        order: 4,
        q: 60,
        threads: 2,
        schedule: Schedule::Graph,
        ..Default::default()
    };
    run_case(Arc::new(Laplace), cfg, Distribution::Uniform, n, P, 31)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("n_points must be an integer"))
        .unwrap_or(100_000);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be an integer"))
        .unwrap_or_else(|| pfmm_bench::bench_reps(7));
    let budget_pct: f64 = args
        .next()
        .map(|a| a.parse().expect("budget_pct must be a number"))
        .unwrap_or(1.0);
    let sampler_ms: u64 = args
        .next()
        .map(|a| a.parse().expect("sampler_ms must be an integer"))
        .unwrap_or(10);
    println!(
        "Metrics overhead: N = {n}, p = {P}, graph schedule, {sampler_ms} ms sampler, \
         min of {runs} interleaved runs, budget {budget_pct}%\n"
    );

    let reg = pfmm_metrics::global();
    for _ in 0..pfmm_bench::bench_warmup(1) {
        reg.set_enabled(false);
        one_eval(n); // warm-up, not measured
    }

    // Interleave disabled and armed (enabled + live sampler) evals so
    // host drift hits both alike; keep the per-phase minima too.
    let mut best = [f64::INFINITY; 2]; // [disabled, armed]
    let mut phase_best = [[f64::INFINITY; Phase::ALL.len()]; 2];
    let mut snapshots = 0usize;
    for _ in 0..runs.max(1) {
        for side in 0..2 {
            let armed = side == 1;
            reg.set_enabled(armed);
            let sampler = armed
                .then(|| Sampler::spawn(Arc::clone(reg), Duration::from_millis(sampler_ms), 4096));
            let s = one_eval(n);
            if let Some(sampler) = sampler {
                snapshots += sampler.stop().len();
            }
            best[side] = best[side].min(s.max_eval());
            for (i, ph) in Phase::ALL.iter().enumerate() {
                phase_best[side][i] = phase_best[side][i].min(s.max_secs(*ph));
            }
        }
    }
    reg.set_enabled(true); // leave the process in the default state

    let pct = 100.0 * (best[1] - best[0]) / best[0];
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "phase", "disabled (s)", "armed (s)", "overhead"
    );
    for (i, ph) in Phase::ALL.iter().enumerate() {
        let (off, on) = (phase_best[0][i], phase_best[1][i]);
        let p = if off > 0.0 {
            100.0 * (on - off) / off
        } else {
            0.0
        };
        println!("{:<12} {:>14.4} {:>14.4} {:>9.2}%", ph.label(), off, on, p);
    }
    println!(
        "{:<12} {:>14.4} {:>14.4} {:>9.2}%",
        "total", best[0], best[1], pct
    );
    println!(
        "\nregistry: {} series, {} sampler snapshots taken while evaluating",
        reg.len(),
        snapshots
    );

    let json = format!(
        "{{\n  \"bench\": \"metrics_overhead\",\n  \"n\": {n},\n  \"p\": {P},\n  \
         \"runs\": {runs},\n  \"sampler_ms\": {sampler_ms},\n  \
         \"budget_pct\": {budget_pct},\n  \"disabled_eval_s\": {:.6},\n  \
         \"armed_eval_s\": {:.6},\n  \"series\": {},\n  \
         \"sampler_snapshots\": {snapshots},\n  \"overhead_pct\": {:.3}\n}}\n",
        best[0],
        best[1],
        reg.len(),
        pct
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_metrics_overhead.json", &json)
        .expect("write results/BENCH_metrics_overhead.json");
    println!("wrote results/BENCH_metrics_overhead.json");

    assert!(
        pct <= budget_pct,
        "armed telemetry overhead {pct:.2}% exceeds the {budget_pct}% budget"
    );
    println!("armed overhead {pct:.2}% within the {budget_pct}% budget");
}
