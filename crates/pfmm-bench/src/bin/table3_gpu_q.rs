//! Table III — single-GPU points-per-box sweep.
//!
//! Paper: 1M uniform points, Laplace, one Tesla S1070 GPU, q ∈ {30, 244,
//! 1953}: total 5.13 / 1.17 / 2.15 s — V-list work dominates at small q,
//! U-list at large q, and the optimum sits in between (the "autotuning"
//! point of §V).
//!
//! Here: the same sweep at 500k points (surface order 4 — the paper's GPU
//! path is single precision and low order) on the gpusim device (real f32
//! kernels, modeled S1070 seconds). The q ordering of every row — the
//! table's content — is hardware-independent.

use pfmm_bench::Table;
use pfmm_core::distrib::{randomize_densities, uniform_cube};
use pfmm_gpusim::{run_gpu_fmm, DeviceSpec};

fn main() {
    let n = 500_000;
    let order = 4;
    println!("Table III reproduction: single gpusim GPU, uniform, N = {n}, order {order}\n");
    let dev = DeviceSpec::tesla_s1070();
    let mut pts = uniform_cube(n, 3, 0);
    randomize_densities(&mut pts, 1, 4);

    let qs = [30usize, 244, 1953];
    let mut reports = Vec::new();
    for &q in &qs {
        reports.push(run_gpu_fmm(pts.clone(), q, order, &dev, false));
    }

    let mut t = Table::new(&["q", "30", "244", "1953"]);
    let row = |label: &str, f: &dyn Fn(&pfmm_gpusim::GpuFmmReport) -> f64| -> Vec<String> {
        let mut v = vec![label.to_string()];
        v.extend(reports.iter().map(|r| format!("{:.3}", f(r))));
        v
    };
    t.row(row("Total evaluation", &|r| r.total_gpu()));
    t.row(row("Upward Pass", &|r| r.gpu_secs[0]));
    t.row(row("U list", &|r| r.gpu_secs[1]));
    t.row(row("V list", &|r| r.gpu_secs[2]));
    t.row(row("Downward Pass", &|r| r.gpu_secs[4]));
    t.row(row("translation (host, measured)", &|r| r.translate_secs));
    println!("{}", t.render());

    println!(
        "leaves per q: {:?}",
        reports.iter().map(|r| r.leaves).collect::<Vec<_>>()
    );
    println!("\npaper reference (1M points, seconds):");
    println!("  q                 30     244   1953");
    println!("  Total evaluation  5.13   1.17  2.15");
    println!("  Upward Pass       0.58   0.13  0.07");
    println!("  U list            0.29   0.45  1.9");
    println!("  V list            3.76   0.44  0.06");
    println!("  Downward Pass     0.35   0.10  0.07");
    println!("\nshape checks: V-list dominates at q=30, U-list at q=1953, and the");
    println!("total is minimized at the middle q — the paper's tuning conclusion.");
}
