//! Ablation — dense vs FFT vs batched half-spectrum V-list translation.
//!
//! DESIGN.md calls out the FFT diagonalization (paper §IV) as the design
//! choice that makes the V-list tractable; this harness measures all
//! three paths' actual V-list wall time and flop counts at increasing
//! surface order: the dense operator grows like `n_surf²` per
//! interaction, the complex FFT path like `(2p)³`, and the batched
//! half-spectrum path like `(2p)²·(p+1)` with the transfer-vector
//! spectra shared across edges.
//!
//! Usage: `ablation_m2l [n_points]` (default 20 000). Results are also
//! written as JSON to `results/BENCH_m2l.json` for the CI smoke job.

use std::sync::Arc;

use pfmm_bench::{run_case_best, Distribution, Table};
use pfmm_core::{FmmConfig, M2lMode, Phase};
use pfmm_kernels::Laplace;

struct Row {
    order: usize,
    wall: [f64; 3],
    gflop: [f64; 3],
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n_points must be an integer"))
        .unwrap_or(20_000);
    let q = 40;
    println!("Ablation: dense vs fft vs fft-batched M2L (uniform, N = {n}, q = {q}, p = 1)\n");
    let modes = [M2lMode::Dense, M2lMode::Fft, M2lMode::FftBatched];
    let mut t = Table::new(&[
        "order",
        "dense wall(s)",
        "fft wall(s)",
        "batched wall(s)",
        "dense GFlop",
        "fft GFlop",
        "batched GFlop",
        "batched/fft",
        "batched/dense",
    ]);
    let mut rows = Vec::new();
    for order in [4usize, 6, 8] {
        let mut wall = [0.0f64; 3];
        let mut gflop = [0.0f64; 3];
        for (i, &m2l) in modes.iter().enumerate() {
            let cfg = FmmConfig {
                order,
                q,
                m2l,
                ..Default::default()
            };
            let s = run_case_best(Arc::new(Laplace), cfg, Distribution::Uniform, n, 1, 13, 1);
            wall[i] = s.max_secs(Phase::VList);
            gflop[i] = s.profiles[0].flops(Phase::VList) as f64 / 1e9;
        }
        t.row(vec![
            order.to_string(),
            format!("{:.3}", wall[0]),
            format!("{:.3}", wall[1]),
            format!("{:.3}", wall[2]),
            format!("{:.2}", gflop[0]),
            format!("{:.2}", gflop[1]),
            format!("{:.2}", gflop[2]),
            format!("{:.1}x", wall[1] / wall[2].max(1e-9)),
            format!("{:.1}x", wall[0] / wall[2].max(1e-9)),
        ]);
        rows.push(Row { order, wall, gflop });
    }
    println!("{}", t.render());
    println!("expected: the spectral paths' advantage grows with the surface order");
    println!("(dense is O(n_surf^2) per pair, the Hadamard O((2p)^3) complex or");
    println!("O((2p)^2 (p+1)) half-spectrum), and the batched path beats plain fft");
    println!("by reusing transfer-vector spectra and halving the retained frequencies.");

    let json = render_json(n, q, &rows);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_m2l.json", &json).expect("write results/BENCH_m2l.json");
    println!("\nwrote results/BENCH_m2l.json");
}

fn render_json(n: usize, q: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n  \"bench\": \"ablation_m2l\",\n  \"n\": {n},\n  \"q\": {q},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"order\": {}, \"dense_wall_s\": {:.6}, \"fft_wall_s\": {:.6}, \
             \"fft_batched_wall_s\": {:.6}, \"dense_gflop\": {:.4}, \"fft_gflop\": {:.4}, \
             \"fft_batched_gflop\": {:.4}, \"speedup_batched_vs_fft\": {:.3}, \
             \"speedup_batched_vs_dense\": {:.3}}}{}\n",
            r.order,
            r.wall[0],
            r.wall[1],
            r.wall[2],
            r.gflop[0],
            r.gflop[1],
            r.gflop[2],
            r.wall[1] / r.wall[2].max(1e-9),
            r.wall[0] / r.wall[2].max(1e-9),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
