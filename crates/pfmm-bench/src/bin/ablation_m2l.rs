//! Ablation — dense vs FFT-diagonalized V-list translation.
//!
//! DESIGN.md calls out the FFT diagonalization (paper §IV) as the design
//! choice that makes the V-list tractable; this harness measures both
//! paths' actual V-list wall time and flop counts at increasing surface
//! order, where the dense operator grows like `n_surf²` per interaction
//! and the FFT path like `(2p)³`.

use std::sync::Arc;

use pfmm_bench::{run_case, Distribution, Table};
use pfmm_core::{FmmConfig, M2lMode, Phase};
use pfmm_kernels::Laplace;

fn main() {
    let n = 20_000;
    let q = 40;
    println!("Ablation: dense vs FFT M2L (uniform, N = {n}, q = {q}, p = 1)\n");
    let mut t = Table::new(&[
        "order",
        "dense wall(s)",
        "fft wall(s)",
        "dense GFlop",
        "fft GFlop",
        "wall speedup",
    ]);
    for order in [4usize, 6, 8] {
        let mut wall = Vec::new();
        let mut flops = Vec::new();
        for m2l in [M2lMode::Dense, M2lMode::Fft] {
            let cfg = FmmConfig {
                order,
                q,
                m2l,
                ..Default::default()
            };
            let s = run_case(Arc::new(Laplace), cfg, Distribution::Uniform, n, 1, 13);
            wall.push(s.max_secs(Phase::VList));
            flops.push(s.profiles[0].flops(Phase::VList));
        }
        t.row(vec![
            order.to_string(),
            format!("{:.3}", wall[0]),
            format!("{:.3}", wall[1]),
            format!("{:.2}", flops[0] as f64 / 1e9),
            format!("{:.2}", flops[1] as f64 / 1e9),
            format!("{:.1}x", wall[0] / wall[1].max(1e-9)),
        ]);
    }
    println!("{}", t.render());
    println!("expected: the FFT path's advantage grows with the surface order (the");
    println!("dense operator is O(n_surf^2) per pair, the Hadamard O((2p)^3)).");
}
