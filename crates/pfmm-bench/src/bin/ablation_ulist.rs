//! Ablation — scalar vs tiled SoA near-field (U-list) engine.
//!
//! DESIGN.md §9 describes the tiled engine: leaf points and densities
//! packed into padded lane-aligned SoA planes, the U-list walked as a
//! sorted CSR over target boxes, and branch-free monomorphized
//! microkernels in the inner loop. This harness measures both paths'
//! U-list wall time at increasing points-per-leaf: padding overhead
//! shrinks as leaves fill (`pad(q)/q → 1`), so the tiled speedup should
//! grow with `q` and clear 2× at practically tuned leaf sizes.
//!
//! Both modes charge the same real-pair flops (`flop_model::ulist_edge`),
//! so the reported GFLOP/s are directly comparable rates.
//!
//! Usage: `ablation_ulist [n_points]` (default 100 000). Results are also
//! written as JSON to `results/BENCH_ulist.json` for the CI smoke job.

use std::sync::Arc;

use pfmm_bench::{run_case, Distribution, Table};
use pfmm_core::{FmmConfig, Phase, UlistMode};
use pfmm_kernels::Laplace;

/// Default runs per configuration (override with `PFMM_BENCH_REPS`);
/// the minimum is reported to suppress shared-host scheduling noise.
const DEFAULT_REPS: usize = 3;

struct Row {
    q: usize,
    scalar_wall: f64,
    tiled_wall: f64,
    gflop: f64,
}

fn measure(n: usize, q: usize, ulist: UlistMode) -> (f64, f64) {
    let mut wall = f64::INFINITY;
    let mut gflop = 0.0;
    for _ in 0..pfmm_bench::bench_reps(DEFAULT_REPS) {
        let cfg = FmmConfig {
            order: 4,
            q,
            ulist,
            ..Default::default()
        };
        let s = run_case(Arc::new(Laplace), cfg, Distribution::Uniform, n, 1, 13);
        wall = wall.min(s.max_secs(Phase::UList));
        gflop = s.profiles[0].flops(Phase::UList) as f64 / 1e9;
    }
    (wall, gflop)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n_points must be an integer"))
        .unwrap_or(100_000);
    let reps = pfmm_bench::bench_reps(DEFAULT_REPS);
    println!("Ablation: scalar vs tiled U-list engine (laplace, uniform, N = {n}, order 4, p = 1, min of {reps})\n");
    let mut t = Table::new(&[
        "q",
        "scalar wall(s)",
        "tiled wall(s)",
        "GFlop",
        "scalar GF/s",
        "tiled GF/s",
        "tiled speedup",
    ]);
    let mut rows = Vec::new();
    for q in [32usize, 64, 128] {
        let (scalar_wall, gflop) = measure(n, q, UlistMode::Scalar);
        let (tiled_wall, _) = measure(n, q, UlistMode::Tiled);
        t.row(vec![
            q.to_string(),
            format!("{scalar_wall:.3}"),
            format!("{tiled_wall:.3}"),
            format!("{gflop:.2}"),
            format!("{:.2}", gflop / scalar_wall.max(1e-9)),
            format!("{:.2}", gflop / tiled_wall.max(1e-9)),
            format!("{:.2}x", scalar_wall / tiled_wall.max(1e-9)),
        ]);
        rows.push(Row {
            q,
            scalar_wall,
            tiled_wall,
            gflop,
        });
    }
    println!("{}", t.render());
    println!("expected: the tiled engine's advantage grows with points-per-leaf");
    println!("(lane padding costs pad(q)/q, so sparse leaves dilute the microkernel");
    println!("speedup) and clears 2x at practically tuned leaf sizes.");

    let json = render_json(n, &rows);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_ulist.json", &json).expect("write results/BENCH_ulist.json");
    println!("\nwrote results/BENCH_ulist.json");
}

fn render_json(n: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    let reps = pfmm_bench::bench_reps(DEFAULT_REPS);
    s.push_str(&format!(
        "{{\n  \"bench\": \"ablation_ulist\",\n  \"n\": {n},\n  \"reps\": {reps},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"q\": {}, \"scalar_wall_s\": {:.6}, \"tiled_wall_s\": {:.6}, \
             \"ulist_gflop\": {:.4}, \"scalar_gflops\": {:.3}, \"tiled_gflops\": {:.3}, \
             \"speedup_tiled_vs_scalar\": {:.3}}}{}\n",
            r.q,
            r.scalar_wall,
            r.tiled_wall,
            r.gflop,
            r.gflop / r.scalar_wall.max(1e-9),
            r.gflop / r.tiled_wall.max(1e-9),
            r.scalar_wall / r.tiled_wall.max(1e-9),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
