//! Shared harness for the paper-reproduction benchmark binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's §V (see DESIGN.md for the experiment index); this library
//! provides the common machinery: distributed runs over `mpisim`,
//! per-phase summaries, model calibration, and table formatting.

use std::sync::Arc;

use pfmm_core::distrib::{ellipsoid_1_1_4, randomize_densities, uniform_cube};
use pfmm_core::driver::TreeInfo;
use pfmm_core::profile::Profile;
use pfmm_core::{Fmm, FmmConfig, Phase};
use pfmm_kernels::{Kernel, Laplace};
use pfmm_mpisim::{run, CommStats};
use pfmm_perfmodel::Sample;
use pfmm_tree::PointRec;

/// The paper's two particle distributions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform random in the unit cube.
    Uniform,
    /// 1:1:4 ellipsoid surface with uniform angular spacing (nonuniform).
    Ellipsoid,
}

impl Distribution {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Ellipsoid => "nonuniform",
        }
    }

    /// Generate `n` points with densities, deterministic in `seed`.
    pub fn generate(&self, n: usize, seed: u64, gid_base: u64, kdim: usize) -> Vec<PointRec> {
        let mut pts = match self {
            Distribution::Uniform => uniform_cube(n, seed, gid_base),
            Distribution::Ellipsoid => ellipsoid_1_1_4(n, seed, gid_base),
        };
        randomize_densities(&mut pts, kdim, seed ^ 0xABCD);
        pts
    }
}

/// Everything one distributed run produces, per rank.
pub struct RunSummary {
    /// Ranks used.
    pub p: usize,
    /// Global point count.
    pub n: usize,
    /// Per-rank phase profiles.
    pub profiles: Vec<Profile>,
    /// Per-rank reduce-and-scatter traffic.
    pub comm_reduce: Vec<CommStats>,
    /// Global tree shape.
    pub info: TreeInfo,
}

impl RunSummary {
    /// Maximum (over ranks) seconds of a phase.
    pub fn max_secs(&self, ph: Phase) -> f64 {
        self.profiles
            .iter()
            .map(|pr| pr.secs(ph))
            .fold(0.0, f64::max)
    }

    /// Average (over ranks) seconds of a phase.
    pub fn avg_secs(&self, ph: Phase) -> f64 {
        self.profiles.iter().map(|pr| pr.secs(ph)).sum::<f64>() / self.p as f64
    }

    /// Maximum total evaluation seconds (the paper's black dot).
    pub fn max_eval(&self) -> f64 {
        self.profiles
            .iter()
            .map(|pr| pr.total_secs)
            .fold(0.0, f64::max)
    }

    /// Average total evaluation seconds.
    pub fn avg_eval(&self) -> f64 {
        self.profiles.iter().map(|pr| pr.total_secs).sum::<f64>() / self.p as f64
    }

    /// Maximum setup seconds.
    pub fn max_setup(&self) -> f64 {
        self.profiles
            .iter()
            .map(|pr| pr.setup_secs)
            .fold(0.0, f64::max)
    }

    /// Maximum sort seconds.
    pub fn max_sort(&self) -> f64 {
        self.profiles
            .iter()
            .map(|pr| pr.sort_secs)
            .fold(0.0, f64::max)
    }

    /// Per-rank total flops.
    pub fn rank_flops(&self) -> Vec<u64> {
        self.profiles.iter().map(|pr| pr.total_flops()).collect()
    }

    /// Busiest rank's reduce-and-scatter sent bytes.
    pub fn max_comm_bytes(&self) -> u64 {
        self.comm_reduce
            .iter()
            .map(|c| c.sent_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Busiest rank's reduce-and-scatter message count.
    pub fn max_comm_msgs(&self) -> u64 {
        self.comm_reduce
            .iter()
            .map(|c| c.sent_msgs)
            .max()
            .unwrap_or(0)
    }

    /// Convert to a calibration sample for the scaling model.
    pub fn to_sample(&self) -> Sample {
        Sample {
            n: self.n as f64,
            p: self.p as f64,
            sort_secs: self.max_sort(),
            setup_rest_secs: (self.max_setup() - self.max_sort()).max(0.0),
            eval_secs: self
                .profiles
                .iter()
                .map(|pr| pr.comp_secs())
                .fold(0.0, f64::max),
            comm_bytes: self.max_comm_bytes() as f64,
        }
    }
}

/// Run one distributed FMM evaluation: `n_total` points of `dist` spread
/// evenly over `p` ranks.
pub fn run_case(
    kernel: Arc<dyn Kernel>,
    cfg: FmmConfig,
    dist: Distribution,
    n_total: usize,
    p: usize,
    seed: u64,
) -> RunSummary {
    run_case_traced(
        kernel,
        cfg,
        dist,
        n_total,
        p,
        seed,
        &Arc::new(pfmm_trace::Tracer::off()),
    )
}

/// [`run_case`] with a shared tracer attached to every simulated rank;
/// drain the tracer afterwards for the recorded spans/flows.
#[allow(clippy::too_many_arguments)]
pub fn run_case_traced(
    kernel: Arc<dyn Kernel>,
    cfg: FmmConfig,
    dist: Distribution,
    n_total: usize,
    p: usize,
    seed: u64,
    tracer: &Arc<pfmm_trace::Tracer>,
) -> RunSummary {
    let kdim = kernel.source_dim();
    let fmm = Fmm::new(kernel, cfg);
    let per = n_total / p;
    let out = run(p, |c| {
        let pts = dist.generate(per, seed + c.rank() as u64, (c.rank() * per) as u64, kdim);
        let res = fmm.evaluate_traced(c, pts, tracer);
        (res.profile.clone(), res.comm_reduce, res.info)
    });
    let info = out[0].2;
    RunSummary {
        p,
        n: per * p,
        profiles: out.iter().map(|(pr, _, _)| pr.clone()).collect(),
        comm_reduce: out.iter().map(|(_, cr, _)| cr.clone()).collect(),
        info,
    }
}

/// [`run_case`] honoring `PFMM_BENCH_WARMUP` / `PFMM_BENCH_REPS`:
/// `bench_warmup(0)` unmeasured passes, then the best (smallest
/// `max_eval`) of `bench_reps(default_reps)` measured ones. The
/// table/figure and ablation bins route their measurements through
/// this so one environment knob controls every binary's rep count.
pub fn run_case_best(
    kernel: Arc<dyn Kernel>,
    cfg: FmmConfig,
    dist: Distribution,
    n_total: usize,
    p: usize,
    seed: u64,
    default_reps: usize,
) -> RunSummary {
    for _ in 0..bench_warmup(0) {
        run_case(kernel.clone(), cfg, dist, n_total, p, seed);
    }
    let mut best: Option<RunSummary> = None;
    for _ in 0..bench_reps(default_reps).max(1) {
        let s = run_case(kernel.clone(), cfg, dist, n_total, p, seed);
        if best.as_ref().is_none_or(|b| s.max_eval() < b.max_eval()) {
            best = Some(s);
        }
    }
    best.expect("reps >= 1")
}

/// Per-apply evaluation wall times through a single cached plan
/// (Laplace, uniform cube, one rank). `pooled` reuses the plan-owned
/// [`pfmm_core::EvalWorkspace`] — the zero-allocation steady state;
/// otherwise every timed apply builds and drops a fresh workspace,
/// reproducing the allocate-per-apply behavior a solver loop used to
/// pay. Shared by `ablation_workspace` and the `bench_check` sentinel
/// so both gate the same measurement.
pub fn workspace_apply_secs(
    cfg: FmmConfig,
    n: usize,
    seed: u64,
    warmup: usize,
    applies: usize,
    pooled: bool,
) -> Vec<f64> {
    let f = Fmm::new(Arc::new(Laplace), cfg);
    let pts = Distribution::Uniform.generate(n, seed, 0, 1);
    run(1, |c| {
        let mut plan = f.plan(c, pts.clone());
        let den = vec![0.5f64; plan.num_owned()];
        let mut out = Vec::new();
        // Warm-up always runs pooled: it settles the operator caches and
        // (in pooled mode) every workspace capacity.
        for _ in 0..warmup {
            f.apply_into(c, &mut plan, &den, &mut out);
        }
        (0..applies)
            .map(|_| {
                let t = std::time::Instant::now();
                if pooled {
                    f.apply_into(c, &mut plan, &den, &mut out);
                } else {
                    let mut ws = f.workspace(&plan);
                    f.apply_ws(c, &mut plan, &mut ws, &den, &mut out);
                }
                t.elapsed().as_secs_f64()
            })
            .collect()
    })
    .pop()
    .expect("one rank")
}

/// Repetitions for a measured benchmark: the binary's default, unless
/// the `PFMM_BENCH_REPS` environment variable overrides it (CI smoke
/// runs set 1; precision runs raise it).
///
/// # Panics
/// Panics when the variable is set but not a positive integer — a
/// silently ignored typo would invalidate the numbers.
pub fn bench_reps(default: usize) -> usize {
    env_count("PFMM_BENCH_REPS", default)
}

/// Warm-up passes before measurement, overridable via
/// `PFMM_BENCH_WARMUP` (same contract as [`bench_reps`]; 0 is allowed).
pub fn bench_warmup(default: usize) -> usize {
    match std::env::var("PFMM_BENCH_WARMUP") {
        Err(_) => default,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PFMM_BENCH_WARMUP must be an integer, got '{v}'")),
    }
}

fn env_count(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Err(_) => default,
        Ok(v) => {
            let n: usize = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("{var} must be a positive integer, got '{v}'"));
            assert!(n >= 1, "{var} must be at least 1, got {n}");
            n
        }
    }
}

/// Rank counts to exercise (powers of two up to `max`). `mpisim` ranks
/// are threads, so any count runs on any host; on an oversubscribed host
/// the *wall* clocks time-share, which is why the harness reports modeled
/// per-rank times from the exact flop/byte counters (see
/// [`modeled_rank_secs`]).
pub fn rank_series(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut p = 1;
    while p <= max {
        v.push(p);
        p *= 2;
    }
    v
}

/// Per-rank, per-phase modeled seconds at the paper's 2009 rates: compute
/// phases at the paper's sustained 500 Mflop/s per core (§VI), the Comm
/// phase from this rank's *measured* reduce-and-scatter bytes at
/// Kraken-like latency/bandwidth.
///
/// Every input is an exact counter from the real run — only the
/// *throughputs* are modeled — so load imbalance, list sizes, and the
/// √p communication growth all come from the actual algorithm execution.
pub fn modeled_rank_secs(prof: &Profile, comm: &CommStats, p: usize) -> [f64; 7] {
    const CPU09: f64 = 0.5e9;
    let machine = pfmm_perfmodel::MachineParams::kraken();
    let mut out = [0.0f64; 7];
    for ph in Phase::ALL {
        out[ph as usize] = match ph {
            Phase::Comm => {
                machine.ts * (p as f64).log2().max(0.0) + machine.tw * comm.sent_bytes as f64
            }
            _ => prof.flops(ph) as f64 / CPU09,
        };
    }
    out
}

/// (max over ranks, avg over ranks) of summed modeled phase times.
pub fn modeled_eval_secs(s: &RunSummary) -> (f64, f64) {
    let totals: Vec<f64> = s
        .profiles
        .iter()
        .zip(&s.comm_reduce)
        .map(|(pr, cr)| modeled_rank_secs(pr, cr, s.p).iter().sum())
        .collect();
    let max = totals.iter().copied().fold(0.0, f64::max);
    let avg = totals.iter().sum::<f64>() / totals.len() as f64;
    (max, avg)
}

/// Format seconds in the paper's `x.xxe+yy` style.
pub fn fsec(s: f64) -> String {
    format!("{s:9.2e}")
}

/// A fixed-width table printer for the harness binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table row width");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut w = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &w));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &w));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_kernels::Laplace;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["p", "time"]);
        t.row(vec!["1".into(), "1.23".into()]);
        t.row(vec!["128".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("  1"));
        assert!(s.contains("128"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn rank_series_is_powers_of_two() {
        let v = rank_series(64);
        assert_eq!(v[0], 1);
        for w in v.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn run_case_produces_profiles() {
        let cfg = FmmConfig {
            order: 4,
            q: 40,
            ..Default::default()
        };
        let s = run_case(Arc::new(Laplace), cfg, Distribution::Uniform, 2000, 2, 7);
        assert_eq!(s.p, 2);
        assert_eq!(s.profiles.len(), 2);
        assert!(s.max_eval() > 0.0);
        assert!(s.info.global_leaves > 1);
        let sample = s.to_sample();
        assert!(sample.eval_secs > 0.0);
    }

    #[test]
    fn bench_counts_honor_env_overrides() {
        // One test covers both variables so the env mutations cannot
        // race each other under the parallel test runner.
        assert_eq!(bench_reps(3), 3, "unset: default");
        assert_eq!(bench_warmup(1), 1, "unset: default");
        std::env::set_var("PFMM_BENCH_REPS", "7");
        std::env::set_var("PFMM_BENCH_WARMUP", "0");
        assert_eq!(bench_reps(3), 7, "override wins");
        assert_eq!(bench_warmup(1), 0, "warmup may be zero");
        std::env::remove_var("PFMM_BENCH_REPS");
        std::env::remove_var("PFMM_BENCH_WARMUP");
    }

    #[test]
    fn distributions_generate_requested_counts() {
        for d in [Distribution::Uniform, Distribution::Ellipsoid] {
            let pts = d.generate(100, 3, 50, 3);
            assert_eq!(pts.len(), 100);
            assert_eq!(pts[0].gid, 50);
            assert!(pts.iter().any(|p| p.den[2] != 0.0), "vector densities set");
        }
    }
}
