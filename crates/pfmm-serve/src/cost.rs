//! Admission-control cost estimation, calibrated through
//! `pfmm-perfmodel`.
//!
//! The service needs two numbers per request before it commits queue
//! space: how long the evaluation will run, and how long a cold plan
//! build would add. Both come from the analytic phase model of
//! [`pfmm_perfmodel::FmmModel`], fitted at serve startup against one
//! measured probe (a plan + apply at the serving problem size on this
//! machine, this kernel, this configuration). The model then interpolates
//! across the request sizes the workload actually sends — the same
//! closed forms the scaling study uses, recalibrated to serving scale.

use std::sync::Arc;
use std::time::Instant;

use pfmm_core::{Fmm, FmmPlan};
use pfmm_mpisim::run;
use pfmm_perfmodel::{FmmModel, MachineParams, Sample};
use pfmm_tree::PointRec;

/// Per-request time estimates, µs.
#[derive(Copy, Clone, Debug)]
pub struct CostModel {
    model: FmmModel,
    /// Calibration probe timings, µs (kept for reports).
    pub probe_plan_us: u64,
    /// Measured apply at the probe size, µs.
    pub probe_apply_us: u64,
    /// Probe problem size.
    pub probe_n: usize,
}

impl CostModel {
    /// Calibrate against one probe geometry: build a plan and run one
    /// apply, then fit the perfmodel constants to those two timings at
    /// `p = 1`. The probe plan is returned so the caller can seed its
    /// cache instead of discarding the work.
    pub fn calibrate(fmm: &Fmm, probe: &[PointRec]) -> (CostModel, FmmPlan) {
        let sd = fmm.kernel().source_dim();
        let n = probe.len();
        let t0 = Instant::now();
        let plan = run(1, |c| fmm.plan(c, probe.to_vec()))
            .pop()
            .expect("one rank");
        let plan_secs = t0.elapsed().as_secs_f64();

        let den = vec![1.0; plan.num_owned() * sd];
        let t1 = Instant::now();
        let plan_cell = std::sync::Mutex::new(plan);
        run(1, |c| {
            fmm.apply(c, &mut plan_cell.lock().unwrap(), &den);
        });
        let plan = plan_cell.into_inner().unwrap();
        let apply_secs = t1.elapsed().as_secs_f64();

        let model = FmmModel::fit(
            MachineParams::kraken(),
            &[Sample {
                n: n as f64,
                p: 1.0,
                sort_secs: 0.0,
                setup_rest_secs: plan_secs,
                eval_secs: apply_secs,
                comm_bytes: 0.0,
            }],
        );
        (
            CostModel {
                model,
                probe_plan_us: (plan_secs * 1e6) as u64,
                probe_apply_us: (apply_secs * 1e6) as u64,
                probe_n: n,
            },
            plan,
        )
    }

    /// A model from explicit probe timings (tests, scripted sims).
    pub fn from_probe_us(n: usize, plan_us: u64, apply_us: u64) -> CostModel {
        let model = FmmModel::fit(
            MachineParams::kraken(),
            &[Sample {
                n: n as f64,
                p: 1.0,
                sort_secs: 0.0,
                setup_rest_secs: plan_us as f64 * 1e-6,
                eval_secs: apply_us as f64 * 1e-6,
                comm_bytes: 0.0,
            }],
        );
        CostModel {
            model,
            probe_plan_us: plan_us,
            probe_apply_us: apply_us,
            probe_n: n,
        }
    }

    /// Estimated µs to evaluate one density set over `n` points.
    pub fn eval_us(&self, n: usize) -> u64 {
        (self.model.predict(n as f64, 1.0).eval * 1e6).ceil() as u64
    }

    /// Estimated µs to build a plan for an `n`-point geometry.
    pub fn build_us(&self, n: usize) -> u64 {
        (self.model.predict(n as f64, 1.0).setup() * 1e6).ceil() as u64
    }
}

/// Convenience: a shared [`Fmm`] plus its calibrated cost model.
pub struct Calibrated {
    /// The evaluator.
    pub fmm: Arc<Fmm>,
    /// The fitted estimates.
    pub cost: CostModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_recover_probe_and_scale_linearly() {
        let m = CostModel::from_probe_us(1_000, 50_000, 5_000);
        // At the probe size the model reproduces the probe (eval term is
        // exactly linear in n at p = 1).
        assert_eq!(m.eval_us(1_000), 5_000);
        assert_eq!(m.eval_us(2_000), 10_000);
        // Build scales sublinearly (the (n/p)^{2/3} surface term).
        assert_eq!(m.build_us(1_000), 50_000);
        let b2 = m.build_us(2_000);
        assert!(b2 > 50_000 && b2 < 100_000, "sublinear build: {b2}");
    }

    #[test]
    fn calibrate_probes_a_real_plan_and_apply() {
        use pfmm_core::FmmConfig;
        use pfmm_kernels::Laplace;
        let fmm = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 3,
                q: 40,
                ..Default::default()
            },
        );
        let pts = pfmm_core::distrib::uniform_cube(400, 5, 0);
        let (m, plan) = CostModel::calibrate(&fmm, &pts);
        assert_eq!(plan.num_owned(), 400);
        assert!(m.probe_plan_us > 0 && m.probe_apply_us > 0);
        assert!(m.eval_us(400) > 0 && m.build_us(400) > 0);
    }
}
