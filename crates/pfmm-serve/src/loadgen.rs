//! A deterministic closed-loop/open-loop load generator.
//!
//! The workload is generated entirely from one seed: the geometries, the
//! hot/cold request mix, the arrival offsets, the priorities, and the
//! per-request density seeds are all fixed before the run starts. Two
//! runs with the same [`WorkloadConfig`] therefore offer the *identical*
//! request stream — the property the serve benchmark leans on when it
//! compares warm-cache batched serving against the cold baseline bitwise.
//!
//! Densities are never stored in requests: each request carries only a
//! `density_seed`, and [`densities`] derives the density vector as a pure
//! function of `(gid, seed)`. The same request evaluated through a cached
//! plan or a freshly built plan sees exactly the same input bits.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pfmm_core::{plan_fingerprint, Fmm, FmmPlan, PlanFingerprint};
use pfmm_tree::PointRec;

use crate::service::Request;

/// How requests arrive.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Arrival {
    /// Open loop: requests arrive on a fixed schedule at `rate_per_s`,
    /// independent of service progress (models external clients; this is
    /// the mode that can saturate the service).
    Open {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
    },
    /// Closed loop: at most `concurrency` requests in flight; a new one
    /// is issued only when one resolves (models a fixed client pool).
    Closed {
        /// In-flight cap.
        concurrency: usize,
    },
}

/// Workload shape knobs.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Total requests to issue.
    pub requests: usize,
    /// Points per geometry.
    pub n_points: usize,
    /// Distinct hot geometries shared by the hot fraction of requests.
    pub hot_geometries: usize,
    /// Fraction of requests that hit a never-seen-again cold geometry.
    pub cold_fraction: f64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Relative deadline per request, µs (0 = no deadline).
    pub deadline_us: u64,
    /// Priority levels: each request draws uniformly from `1..=levels`.
    pub priority_levels: u8,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            requests: 64,
            n_points: 500,
            hot_geometries: 3,
            cold_fraction: 0.15,
            arrival: Arrival::Closed { concurrency: 4 },
            deadline_us: 0,
            priority_levels: 3,
        }
    }
}

/// One pre-generated request: everything except its arrival time (open
/// mode fixes `offset_us`; closed mode stamps arrival when a slot frees).
#[derive(Clone, Debug)]
pub struct ReqSpec {
    /// Geometry index into [`Workload::geometries`].
    pub geom: usize,
    /// Plan-cache key of that geometry.
    pub key: PlanFingerprint,
    /// Scheduled arrival offset from run start, µs (open mode).
    pub offset_us: u64,
    /// Shedding priority.
    pub priority: u8,
    /// Seed of the pure density function.
    pub density_seed: u64,
}

/// The fully materialized deterministic workload.
pub struct Workload {
    /// All geometries (hot first, then one per cold request).
    pub geometries: Vec<Vec<PointRec>>,
    /// Requests in issue order.
    pub specs: Vec<ReqSpec>,
    /// The config that generated it.
    pub cfg: WorkloadConfig,
}

impl Workload {
    /// Generate the workload for `fmm` (the fingerprint binds the plan
    /// key to the kernel name and configuration, so the same geometry
    /// under a different kernel never aliases in the cache).
    pub fn generate(cfg: WorkloadConfig, fmm: &Fmm, kernel_name: &str) -> Workload {
        assert!(cfg.hot_geometries >= 1, "need at least one hot geometry");
        assert!(
            (0.0..=1.0).contains(&cfg.cold_fraction),
            "cold_fraction must be a fraction"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut geometries: Vec<Vec<PointRec>> = (0..cfg.hot_geometries)
            .map(|i| {
                pfmm_core::distrib::uniform_cube(cfg.n_points, cfg.seed.wrapping_add(i as u64), 0)
            })
            .collect();
        let keys: Vec<PlanFingerprint> = geometries
            .iter()
            .map(|g| plan_fingerprint(kernel_name, fmm.config(), 1, g))
            .collect();

        let mean_gap_us = match cfg.arrival {
            Arrival::Open { rate_per_s } => {
                assert!(rate_per_s > 0.0, "open arrival needs a positive rate");
                1e6 / rate_per_s
            }
            Arrival::Closed { concurrency } => {
                assert!(concurrency >= 1, "closed arrival needs concurrency >= 1");
                0.0
            }
        };

        let mut specs = Vec::with_capacity(cfg.requests);
        let mut offset = 0.0f64;
        for i in 0..cfg.requests {
            let cold = (rng.random::<f64>()) < cfg.cold_fraction;
            let (geom, key) = if cold {
                // A unique geometry: seeded far away from the hot pool.
                let g = pfmm_core::distrib::uniform_cube(
                    cfg.n_points,
                    cfg.seed.wrapping_add(0x1000_0000 + i as u64),
                    0,
                );
                let k = plan_fingerprint(kernel_name, fmm.config(), 1, &g);
                geometries.push(g);
                (geometries.len() - 1, k)
            } else {
                let h = rng.random_below(cfg.hot_geometries as u64) as usize;
                (h, keys[h])
            };
            // Exponential inter-arrival (open mode): -ln(1-u) · mean.
            offset += -(1.0 - rng.random::<f64>()).ln() * mean_gap_us;
            specs.push(ReqSpec {
                geom,
                key,
                offset_us: offset as u64,
                priority: 1 + (rng.random_below(cfg.priority_levels.max(1) as u64) as u8),
                density_seed: rng.random::<u64>(),
            });
        }
        Workload {
            geometries,
            specs,
            cfg,
        }
    }

    /// Materialize spec `i` as a [`Request`] arriving at `arrive_us`,
    /// with cost estimates filled in by the caller's model.
    pub fn request(
        &self,
        i: usize,
        arrive_us: u64,
        est_cost_us: u64,
        est_build_us: u64,
    ) -> Request {
        let s = &self.specs[i];
        Request {
            id: i as u64,
            key: s.key,
            geom: s.geom,
            n: self.geometries[s.geom].len(),
            arrive_us,
            deadline_us: if self.cfg.deadline_us == 0 {
                u64::MAX
            } else {
                arrive_us.saturating_add(self.cfg.deadline_us)
            },
            priority: s.priority,
            density_seed: s.density_seed,
            est_cost_us,
            est_build_us,
        }
    }
}

/// The pure density function: component `c` of the point with global id
/// `gid`, under `seed`. SplitMix64 finalizer over `(gid, seed, c)` mapped
/// to `[-1, 1)` — deterministic, order-free, and cheap enough to derive
/// on the worker at evaluation time.
pub fn density_at(gid: u64, seed: u64, c: usize) -> f64 {
    let mut z = gid
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed)
        .wrapping_add((c as u64).wrapping_mul(0xD134_2543_DE82_EF95));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
}

/// The density vector a request feeds to [`Fmm::apply`]: one value per
/// owned point per source component, in the plan's owned-gid order.
pub fn densities(plan: &FmmPlan, sd: usize, seed: u64) -> Vec<f64> {
    let gids = plan.owned_gids();
    let mut out = Vec::with_capacity(gids.len() * sd);
    for &gid in gids {
        for c in 0..sd {
            out.push(density_at(gid, seed, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::FmmConfig;
    use pfmm_kernels::Laplace;
    use std::sync::Arc;

    fn fmm() -> Fmm {
        Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 3,
                q: 40,
                ..Default::default()
            },
        )
    }

    #[test]
    fn same_seed_same_workload() {
        let f = fmm();
        let cfg = WorkloadConfig {
            requests: 40,
            n_points: 120,
            arrival: Arrival::Open { rate_per_s: 500.0 },
            ..Default::default()
        };
        let a = Workload::generate(cfg.clone(), &f, "laplace");
        let b = Workload::generate(cfg, &f, "laplace");
        assert_eq!(a.specs.len(), b.specs.len());
        for (x, y) in a.specs.iter().zip(&b.specs) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.offset_us, y.offset_us);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.density_seed, y.density_seed);
        }
    }

    #[test]
    fn hot_requests_share_keys_and_cold_ones_do_not() {
        let f = fmm();
        let w = Workload::generate(
            WorkloadConfig {
                requests: 60,
                n_points: 100,
                hot_geometries: 2,
                cold_fraction: 0.3,
                ..Default::default()
            },
            &f,
            "laplace",
        );
        let hot: Vec<_> = w.specs.iter().filter(|s| s.geom < 2).collect();
        let cold: Vec<_> = w.specs.iter().filter(|s| s.geom >= 2).collect();
        assert!(hot.len() > cold.len(), "mostly hot at 0.3 cold fraction");
        assert!(!cold.is_empty(), "some cold at 0.3 cold fraction");
        // Every cold geometry is unique.
        let mut cold_keys: Vec<_> = cold.iter().map(|s| s.key).collect();
        cold_keys.sort();
        cold_keys.dedup();
        assert_eq!(cold_keys.len(), cold.len());
        // Arrival offsets are non-decreasing.
        assert!(w.specs.windows(2).all(|p| p[0].offset_us <= p[1].offset_us));
        // Priorities stay in band.
        assert!(w.specs.iter().all(|s| (1..=3).contains(&s.priority)));
    }

    #[test]
    fn density_function_is_pure_and_bounded() {
        for gid in [0u64, 1, 77, 1 << 40] {
            for seed in [0u64, 9, u64::MAX] {
                for c in 0..3 {
                    let a = density_at(gid, seed, c);
                    assert_eq!(a.to_bits(), density_at(gid, seed, c).to_bits());
                    assert!((-1.0..1.0).contains(&a));
                }
            }
        }
        // Distinct inputs decorrelate.
        assert_ne!(density_at(1, 2, 0), density_at(2, 1, 0));
        assert_ne!(density_at(1, 2, 0), density_at(1, 2, 1));
    }
}
