//! The evaluation-workspace pool: generation-tagged
//! [`EvalWorkspace`]s checked out per batch so warm steady-state applies
//! allocate nothing.
//!
//! Plans are cached (see [`crate::cache`]); workspaces are *pooled*. The
//! distinction matters because a workspace is mutable scratch — two
//! concurrent batches against the same plan must not share one — while a
//! plan under its lock is shared freely. The pool keys entries by the
//! plan's generation uid ([`pfmm_core::FmmPlan::uid`]) and caps the
//! number of workspaces per plan: a checkout beyond the cap blocks until
//! a peer returns one, which bounds resident scratch memory at
//! `cap × workspace_bytes` per plan no matter how many batches race.
//!
//! Returns are tag-checked: a workspace that no longer matches its
//! plan's uid (the plan was rebuilt or evicted and re-planned) is
//! dropped instead of re-pooled, so stale buffers can never serve a new
//! plan generation. `Fmm::apply_ws` performs the same check on the way
//! in, making a mismatched checkout safe as well — it costs a rebuild,
//! never correctness.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use pfmm_core::EvalWorkspace;
use pfmm_metrics::{Counter, Gauge};

/// Pool counters, mirrored into `pfmm-metrics` when the registry is
/// enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Successful checkouts (hits + misses).
    pub checkouts: u64,
    /// Checkouts that had to build a fresh workspace.
    pub misses: u64,
    /// Workspaces currently pooled (free, across all plans).
    pub pooled: u64,
    /// Bytes held by the pooled (free) workspaces.
    pub pooled_bytes: u64,
}

#[derive(Default)]
struct Entry {
    /// Returned workspaces ready for reuse.
    free: Vec<EvalWorkspace>,
    /// Workspaces currently checked out for this plan.
    outstanding: usize,
}

struct Inner {
    map: HashMap<u64, Entry>,
    checkouts: u64,
    misses: u64,
}

/// A per-plan pool of evaluation workspaces with a per-plan cap.
pub struct WorkspacePool {
    cap: usize,
    inner: Mutex<Inner>,
    cond: Condvar,
    /// Instruments resolved once at construction; updates are single
    /// relaxed atomics, gated on the registry switch.
    m_checkouts: Arc<Counter>,
    m_misses: Arc<Counter>,
    m_bytes: Arc<Gauge>,
}

impl WorkspacePool {
    /// A pool allowing at most `cap` live workspaces per plan
    /// generation (`cap = 1` serializes batches on a plan's scratch,
    /// which the serialization test exploits).
    pub fn new(cap: usize) -> WorkspacePool {
        assert!(cap >= 1, "need at least one workspace per plan");
        let reg = pfmm_metrics::global();
        WorkspacePool {
            cap,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                checkouts: 0,
                misses: 0,
            }),
            cond: Condvar::new(),
            m_checkouts: reg.counter("pfmm_workspace_checkouts_total", &[]),
            m_misses: reg.counter("pfmm_workspace_pool_misses_total", &[]),
            m_bytes: reg.gauge("pfmm_workspace_bytes", &[]),
        }
    }

    /// The per-plan cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Check a workspace out for plan generation `uid`, building one
    /// with `build` when none is pooled and the cap allows another.
    /// Blocks while `cap` workspaces for this uid are already out. The
    /// build runs with no pool lock held.
    pub fn checkout(&self, uid: u64, build: impl FnOnce() -> EvalWorkspace) -> EvalWorkspace {
        let mut g = self.inner.lock().unwrap();
        loop {
            let e = g.map.entry(uid).or_default();
            if let Some(ws) = e.free.pop() {
                e.outstanding += 1;
                g.checkouts += 1;
                drop(g);
                if pfmm_metrics::global().enabled() {
                    self.m_checkouts.inc();
                }
                self.update_bytes();
                return ws;
            }
            if e.outstanding < self.cap {
                e.outstanding += 1;
                g.checkouts += 1;
                g.misses += 1;
                drop(g);
                if pfmm_metrics::global().enabled() {
                    self.m_checkouts.inc();
                    self.m_misses.inc();
                }
                return build();
            }
            g = self.cond.wait(g).unwrap();
        }
    }

    /// Return a workspace checked out for `uid`. A workspace whose tag
    /// no longer matches (rebuilt in place by `Fmm::apply_ws` for a
    /// newer plan generation) is dropped rather than pooled.
    pub fn put_back(&self, uid: u64, ws: EvalWorkspace) {
        {
            let mut g = self.inner.lock().unwrap();
            let e = g.map.entry(uid).or_default();
            e.outstanding = e.outstanding.saturating_sub(1);
            if ws.plan_uid() == uid {
                e.free.push(ws);
            }
        }
        self.update_bytes();
        self.cond.notify_one();
    }

    /// Drop every pooled workspace for `uid` (e.g. after its plan was
    /// evicted). Checked-out ones are dropped on return by the tag
    /// check once their plan is gone — this only reclaims the idle ones.
    pub fn invalidate(&self, uid: u64) {
        {
            let mut g = self.inner.lock().unwrap();
            if let Some(e) = g.map.get_mut(&uid) {
                e.free.clear();
                if e.outstanding == 0 {
                    g.map.remove(&uid);
                }
            }
        }
        self.update_bytes();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkspaceStats {
        let g = self.inner.lock().unwrap();
        let (pooled, pooled_bytes) = g
            .map
            .values()
            .flat_map(|e| e.free.iter())
            .fold((0u64, 0u64), |(n, b), ws| {
                (n + 1, b + ws.memory_bytes() as u64)
            });
        WorkspaceStats {
            checkouts: g.checkouts,
            misses: g.misses,
            pooled,
            pooled_bytes,
        }
    }

    fn update_bytes(&self) {
        if pfmm_metrics::global().enabled() {
            self.m_bytes.set(self.stats().pooled_bytes as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::{Fmm, FmmConfig};
    use pfmm_kernels::Laplace;
    use pfmm_mpisim::run;

    fn plan_and_fmm() -> (Fmm, pfmm_core::FmmPlan) {
        let f = Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 3,
                q: 40,
                ..Default::default()
            },
        );
        let pts = pfmm_core::distrib::uniform_cube(200, 17, 0);
        let plan = run(1, |c| f.plan(c, pts.clone())).pop().expect("one rank");
        (f, plan)
    }

    #[test]
    fn checkout_miss_then_hit_and_byte_accounting() {
        let (f, plan) = plan_and_fmm();
        let pool = WorkspacePool::new(2);
        let ws = pool.checkout(plan.uid(), || f.workspace(&plan));
        assert_eq!(pool.stats().misses, 1);
        assert!(ws.memory_bytes() > 0);
        pool.put_back(plan.uid(), ws);
        let s = pool.stats();
        assert_eq!((s.pooled, s.checkouts), (1, 1));
        assert!(s.pooled_bytes > 0);
        let _ws = pool.checkout(plan.uid(), || panic!("pooled, no build"));
        let s = pool.stats();
        assert_eq!((s.checkouts, s.misses, s.pooled), (2, 1, 0));
    }

    #[test]
    fn stale_generation_is_dropped_not_pooled() {
        let (f, plan) = plan_and_fmm();
        let pool = WorkspacePool::new(1);
        let ws = pool.checkout(plan.uid(), || f.workspace(&plan));
        // Pretend the plan was rebuilt: return under a different uid.
        pool.put_back(plan.uid() + 1, ws);
        assert_eq!(pool.stats().pooled, 0, "tag mismatch drops the entry");
    }

    #[test]
    fn cap_blocks_until_a_peer_returns() {
        let (f, plan) = plan_and_fmm();
        let f = Arc::new(f);
        let uid = plan.uid();
        let pool = Arc::new(WorkspacePool::new(1));
        let ws = pool.checkout(uid, || f.workspace(&plan));
        let waiter = {
            let (pool, f, plan) = (Arc::clone(&pool), Arc::clone(&f), Arc::new(plan));
            std::thread::spawn(move || {
                // Must reuse the returned workspace, not build a second.
                pool.checkout(uid, || f.workspace(&plan)).plan_uid()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.put_back(uid, ws);
        assert_eq!(waiter.join().expect("no panic"), uid);
        let s = pool.stats();
        assert_eq!((s.checkouts, s.misses), (2, 1), "second checkout was a hit");
    }

    #[test]
    fn invalidate_reclaims_idle_entries() {
        let (f, plan) = plan_and_fmm();
        let pool = WorkspacePool::new(2);
        let ws = pool.checkout(plan.uid(), || f.workspace(&plan));
        pool.put_back(plan.uid(), ws);
        assert_eq!(pool.stats().pooled, 1);
        pool.invalidate(plan.uid());
        let s = pool.stats();
        assert_eq!((s.pooled, s.pooled_bytes), (0, 0));
    }
}
