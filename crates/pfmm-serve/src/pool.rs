//! The execution pool: persistent workers draining flushed batches
//! through the existing evaluation machinery.
//!
//! A worker resolves the batch's plan through the [`PlanCache`] (build
//! outside the cache lock on a miss), derives each request's densities
//! from its seed, and drives the whole batch through
//! [`Fmm::apply_batch`] under a single plan lock — which in turn runs the
//! configured executor (`--schedule=barrier` or the `pfmm-sched`
//! dependency-graph executor) exactly as a standalone evaluation would.
//! The serve layer adds no numerical path of its own: a batch of one
//! through a cold plan is bit-for-bit a plain `plan` + `apply`.
//!
//! Each request gets its own trace lane (`tid = TID_REQ_BASE + id`) with
//! three back-to-back spans — `queue-wait`, `batch-assembly`, `execute` —
//! so a request's whole lifecycle reads off one Perfetto row.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use pfmm_core::{Fmm, PlanFingerprint};
use pfmm_mpisim::run;
use pfmm_trace::Tracer;
use pfmm_tree::PointRec;

use crate::cache::PlanCache;
use crate::loadgen::densities;
use crate::service::Batch;
use crate::workspace::WorkspacePool;

/// First trace lane used for request lifecycles (clear of the driver,
/// worker, and GPU lanes used by the evaluation itself).
pub const TID_REQ_BASE: u32 = 4000;

/// One request's outcome.
#[derive(Clone, Debug)]
pub struct ReqDone {
    /// Request id.
    pub id: u64,
    /// Arrival, µs.
    pub arrive_us: u64,
    /// Absolute deadline, µs (`u64::MAX` = none).
    pub deadline_us: u64,
    /// When its batch left the queue, µs.
    pub flushed_us: u64,
    /// When evaluation started (plan resolved, densities built), µs.
    pub exec_start_us: u64,
    /// Completion, µs.
    pub done_us: u64,
    /// Potentials, packed `target_dim` per owned point.
    pub pot: Vec<f64>,
}

/// One batch's outcome.
#[derive(Clone, Debug)]
pub struct BatchDone {
    /// Plan key served.
    pub key: PlanFingerprint,
    /// Backlog charge to return to the service core.
    pub charged_us: u64,
    /// Whether the plan came out of the cache warm.
    pub cache_hit: bool,
    /// Per-request results, batch order.
    pub reqs: Vec<ReqDone>,
}

/// Shared executor state: everything a worker needs to turn a [`Batch`]
/// into a [`BatchDone`].
pub struct Executor {
    /// The evaluator (kernel + config).
    pub fmm: Arc<Fmm>,
    /// The plan cache.
    pub cache: Arc<PlanCache>,
    /// Pooled evaluation workspaces, keyed by plan generation — warm
    /// batches reuse scratch instead of allocating per apply.
    pub workspaces: Arc<WorkspacePool>,
    /// All workload geometries, indexed by `Request::geom`.
    pub geometries: Arc<Vec<Vec<PointRec>>>,
    /// Span sink; its epoch is also the service clock.
    pub tracer: Arc<Tracer>,
    /// Always-armed incident ring; completed lifecycle spans are fed
    /// here regardless of the tracer level.
    pub flight: Option<Arc<pfmm_metrics::FlightRecorder>>,
    /// Artificial extra latency per batch execution, µs — fault
    /// injection so tests/CI can force deadline violations the
    /// admission estimator cannot foresee. 0 in production.
    pub exec_delay_us: u64,
}

impl Executor {
    /// µs since the tracer epoch — the single clock every serve
    /// timestamp shares.
    pub fn now_us(&self) -> u64 {
        self.tracer.now_us() as u64
    }

    /// Run one batch to completion on the calling thread.
    pub fn execute_batch(&self, batch: Batch) -> BatchDone {
        let (plan, hit) = self.cache.get_or_build(batch.key, || {
            let pts = &self.geometries[batch.reqs[0].geom];
            run(1, |c| self.fmm.plan(c, pts.clone()))
                .pop()
                .expect("one rank")
        });

        let sd = self.fmm.kernel().source_dim();
        let dens: Vec<Vec<f64>> = {
            let g = plan.lock().unwrap();
            batch
                .reqs
                .iter()
                .map(|r| densities(&g, sd, r.density_seed))
                .collect()
        };
        let refs: Vec<&[f64]> = dens.iter().map(|d| d.as_slice()).collect();

        let exec_start_us = self.now_us();
        let results = run(1, |c| {
            let mut g = plan.lock().unwrap();
            let uid = g.uid();
            let mut ws = self.workspaces.checkout(uid, || self.fmm.workspace(&g));
            let out = self.fmm.apply_batch_ws(c, &mut g, &mut ws, &refs);
            self.workspaces.put_back(uid, ws);
            out
        })
        .pop()
        .expect("one rank");
        if self.exec_delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.exec_delay_us));
        }
        let done_us = self.now_us();

        let reqs: Vec<ReqDone> = batch
            .reqs
            .iter()
            .zip(results)
            .map(|(r, (pot, _profile))| ReqDone {
                id: r.id,
                arrive_us: r.arrive_us,
                deadline_us: r.deadline_us,
                flushed_us: batch.flushed_us,
                exec_start_us,
                done_us,
                pot,
            })
            .collect();
        for r in &reqs {
            self.trace_request(r);
        }
        BatchDone {
            key: batch.key,
            charged_us: batch.charged_us,
            cache_hit: hit,
            reqs,
        }
    }

    /// Emit the three lifecycle spans on the request's own lane. The
    /// spans are sequential and disjoint, so the lane is trivially
    /// well-nested for the Chrome exporter.
    fn trace_request(&self, r: &ReqDone) {
        let tid = TID_REQ_BASE + (r.id as u32);
        if let Some(f) = &self.flight {
            for (name, t0, t1) in [
                ("queue-wait", r.arrive_us, r.flushed_us),
                ("batch-assembly", r.flushed_us, r.exec_start_us),
                ("execute", r.exec_start_us, r.done_us),
            ] {
                f.record_span(0, tid, name, "serve", t0 as f64, t1 as f64);
            }
        }
        let args = [("req", r.id)];
        self.tracer.record_span(
            0,
            tid,
            "queue-wait",
            "serve",
            r.arrive_us as f64,
            r.flushed_us as f64,
            &args,
        );
        self.tracer.record_span(
            0,
            tid,
            "batch-assembly",
            "serve",
            r.flushed_us as f64,
            r.exec_start_us as f64,
            &args,
        );
        self.tracer.record_span(
            0,
            tid,
            "execute",
            "serve",
            r.exec_start_us as f64,
            r.done_us as f64,
            &args,
        );
    }
}

/// A fixed pool of worker threads executing batches; completions come
/// back through [`ExecPool::drain_done`].
pub struct ExecPool {
    tx: Option<mpsc::Sender<Batch>>,
    done_rx: mpsc::Receiver<BatchDone>,
    workers: Vec<JoinHandle<()>>,
}

impl ExecPool {
    /// Spawn `workers` threads over a shared [`Executor`].
    pub fn new(workers: usize, exec: Arc<Executor>) -> ExecPool {
        assert!(workers >= 1, "need at least one worker");
        let (tx, rx) = mpsc::channel::<Batch>();
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let (done_tx, done_rx) = mpsc::channel::<BatchDone>();
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let done_tx = done_tx.clone();
                let exec = Arc::clone(&exec);
                std::thread::spawn(move || loop {
                    let batch = match rx.lock().unwrap().recv() {
                        Ok(b) => b,
                        Err(_) => return,
                    };
                    // Receiver disconnect means the pool is shutting
                    // down mid-flight; drop the result.
                    let _ = done_tx.send(exec.execute_batch(batch));
                })
            })
            .collect();
        ExecPool {
            tx: Some(tx),
            done_rx,
            workers: handles,
        }
    }

    /// Hand a flushed batch to the workers.
    pub fn submit(&self, batch: Batch) {
        self.tx
            .as_ref()
            .expect("pool open")
            .send(batch)
            .expect("workers alive");
    }

    /// Collect every completion available right now, without blocking.
    pub fn drain_done(&self) -> Vec<BatchDone> {
        let mut out = Vec::new();
        while let Ok(d) = self.done_rx.try_recv() {
            out.push(d);
        }
        out
    }

    /// Close the queue and join the workers, returning any last
    /// completions.
    pub fn shutdown(mut self) -> Vec<BatchDone> {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
        self.drain_done()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::{plan_fingerprint, FmmConfig};
    use pfmm_kernels::Laplace;
    use pfmm_trace::TraceLevel;

    fn executor(level: TraceLevel) -> (Arc<Executor>, PlanFingerprint) {
        let fmm = Arc::new(Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 3,
                q: 40,
                ..Default::default()
            },
        ));
        let pts = pfmm_core::distrib::uniform_cube(200, 11, 0);
        let key = plan_fingerprint("laplace", fmm.config(), 1, &pts);
        let exec = Arc::new(Executor {
            fmm,
            cache: Arc::new(PlanCache::new(1 << 30)),
            workspaces: Arc::new(WorkspacePool::new(2)),
            geometries: Arc::new(vec![pts]),
            tracer: Arc::new(Tracer::new(level)),
            flight: None,
            exec_delay_us: 0,
        });
        (exec, key)
    }

    fn batch(key: PlanFingerprint, ids: &[u64], now: u64) -> Batch {
        Batch {
            key,
            reqs: ids
                .iter()
                .map(|&id| crate::service::Request {
                    id,
                    key,
                    geom: 0,
                    n: 200,
                    arrive_us: now,
                    deadline_us: u64::MAX,
                    priority: 1,
                    density_seed: 100 + id,
                    est_cost_us: 1,
                    est_build_us: 1,
                })
                .collect(),
            opened_us: now,
            flushed_us: now,
            charged_us: 7,
        }
    }

    #[test]
    fn pool_executes_batches_and_reports_done() {
        let (exec, key) = executor(TraceLevel::Off);
        let pool = ExecPool::new(2, Arc::clone(&exec));
        let now = exec.now_us();
        pool.submit(batch(key, &[0, 1], now));
        pool.submit(batch(key, &[2], now));
        let done = pool.shutdown();
        assert_eq!(done.len(), 2);
        let total: usize = done.iter().map(|d| d.reqs.len()).sum();
        assert_eq!(total, 3);
        for d in &done {
            assert_eq!(d.charged_us, 7);
            for r in &d.reqs {
                assert_eq!(r.pot.len(), 200, "one potential per point");
                assert!(r.pot.iter().all(|v| v.is_finite()));
                assert!(r.done_us >= r.exec_start_us);
            }
        }
        // Two lookups on one key: either the second hits, or both missed
        // concurrently and the loser's build was dropped as a race.
        let s = exec.cache.stats();
        assert_eq!(s.hits + s.misses, 2);
        assert_eq!(s.resident_plans, 1);
        assert_eq!(s.build_races, s.misses - 1);
    }

    #[test]
    fn request_lifecycle_spans_are_emitted_per_lane() {
        let (exec, key) = executor(TraceLevel::Phase);
        let done = exec.execute_batch(batch(key, &[0, 1], exec.now_us()));
        assert_eq!(done.reqs.len(), 2);
        let events = exec.tracer.drain();
        for id in [0u32, 1] {
            let lane: Vec<_> = events
                .iter()
                .filter(|e| e.tid == TID_REQ_BASE + id)
                .collect();
            // 3 spans × (Begin + End).
            assert_eq!(lane.len(), 6, "lane {id}: {lane:?}");
            let names: Vec<&str> = lane
                .iter()
                .filter(|e| e.kind == pfmm_trace::EventKind::Begin)
                .map(|e| e.name.as_ref())
                .collect();
            assert_eq!(names, ["queue-wait", "batch-assembly", "execute"]);
        }
    }

    #[test]
    fn same_seed_same_bits_across_batch_shapes() {
        let (exec, key) = executor(TraceLevel::Off);
        let a = exec.execute_batch(batch(key, &[0, 1], 0));
        let b0 = exec.execute_batch(batch(key, &[0], 0));
        let b1 = exec.execute_batch(batch(key, &[1], 0));
        assert_eq!(a.reqs[0].pot, b0.reqs[0].pot, "batching changes no bits");
        assert_eq!(a.reqs[1].pot, b1.reqs[0].pot);
        assert_ne!(a.reqs[0].pot, a.reqs[1].pot, "different seeds differ");
    }
}
