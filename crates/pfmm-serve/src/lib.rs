//! A sans-IO batched evaluation service on top of the pfmm pipeline.
//!
//! The paper's decomposition of an FMM into *setup* (sort, tree, LET,
//! interaction lists, exchange schedules) and *evaluation* (the
//! density-dependent sweeps) is not just a scaling argument — it is a
//! serving opportunity: a solver or client that evaluates many densities
//! against a handful of geometries should pay setup once per geometry,
//! not once per request. This crate is that serving layer:
//!
//! - [`cache`] — [`pfmm_core::FmmPlan`]s keyed by geometry/config
//!   fingerprint, LRU within a byte budget, build-outside-the-lock.
//! - [`service`] — the sans-IO core: deadline admission control against
//!   a cost-model estimate, per-plan batching with size/linger flush,
//!   and watermark load shedding with priority displacement. Pure state
//!   machine; time is injected.
//! - [`cost`] — per-request time estimates from `pfmm-perfmodel`,
//!   calibrated at startup against one measured probe.
//! - [`pool`] — worker threads driving flushed batches through
//!   [`pfmm_core::Fmm::apply_batch`] (and thereby the existing
//!   barrier/graph executors), emitting per-request lifecycle spans.
//! - [`loadgen`] — a seeded open/closed-loop workload generator whose
//!   request stream (geometries, hot/cold mix, densities, priorities)
//!   is a pure function of the seed.
//! - [`sim`] — the driver loop tying it together, reporting latency
//!   histograms ([`pfmm_trace::metrics::Histogram`]), cache/service
//!   counters, and optionally every potential bit for run-to-run
//!   comparison.
//!
//! The serve layer adds no numerical path: a batch of one through a cold
//! cache is bit-for-bit a plain `plan` + `apply`, and the plan-reuse
//! property test pins that equivalence for both executors.

pub mod cache;
pub mod cost;
pub mod loadgen;
pub mod pool;
pub mod service;
pub mod sim;
pub mod workspace;

pub use cache::{CacheStats, PlanCache, SharedPlan};
pub use cost::CostModel;
pub use loadgen::{densities, density_at, Arrival, ReqSpec, Workload, WorkloadConfig};
pub use pool::{BatchDone, ExecPool, Executor, ReqDone, TID_REQ_BASE};
pub use service::{
    Admission, Batch, RejectReason, Rejected, Request, ServiceConfig, ServiceCore, ServiceStats,
};
pub use sim::{run_sim, ObsConfig, ServeReport, SimConfig};
pub use workspace::{WorkspacePool, WorkspaceStats};
