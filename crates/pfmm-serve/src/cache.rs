//! The plan cache: [`FmmPlan`]s keyed by their [`PlanFingerprint`], LRU
//! with byte-accurate accounting against a configurable budget.
//!
//! Plans are the expensive half of an FMM evaluation (tree, LET,
//! interaction lists, exchange schedules — Hu, Gumerov & Duraiswami show
//! data-structure construction dominating evaluation); caching one
//! amortizes that cost over every request against the same geometry.
//! Inserts follow the same *build-outside-the-lock* discipline as the
//! `Ops`/`FftM2l` operator caches in `pfmm-core`: a miss releases the
//! lock, builds the plan (seconds, potentially), then re-checks under the
//! lock so a racing builder's copy wins and the loser's work is dropped —
//! the cache mutex is never held across a build.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pfmm_core::{FmmPlan, PlanFingerprint};

/// A cached plan: callers lock it for the duration of a batch (applies
/// mutate the plan's density workspace, so batches against one plan
/// serialize — which is exactly what batching is for).
pub type SharedPlan = Arc<Mutex<FmmPlan>>;

/// Monotonic counters describing cache behavior since construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident plan.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Plans dropped to fit the byte budget.
    pub evictions: u64,
    /// Builds discarded because a racing thread inserted first.
    pub build_races: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Plans currently resident.
    pub resident_plans: u64,
}

impl CacheStats {
    /// Hits over lookups (0 when nothing has been looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: SharedPlan,
    bytes: usize,
    /// LRU stamp: the cache-wide tick at last touch.
    last_use: u64,
}

struct Inner {
    map: HashMap<PlanFingerprint, Entry>,
    tick: u64,
    bytes: usize,
}

/// An LRU plan cache with a byte budget.
pub struct PlanCache {
    inner: Mutex<Inner>,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    build_races: AtomicU64,
}

impl PlanCache {
    /// A cache that holds at most `budget_bytes` of plan memory
    /// ([`FmmPlan::memory_bytes`] accounting). A budget of 0 caches
    /// nothing — every lookup builds and the result is returned uncached,
    /// which is the cold-baseline mode of the serve benchmark.
    pub fn new(budget_bytes: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            build_races: AtomicU64::new(0),
        }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Whether a plan is resident *now* (no LRU touch — admission control
    /// peeks at warmth without distorting recency).
    pub fn contains(&self, key: &PlanFingerprint) -> bool {
        self.inner.lock().unwrap().map.contains_key(key)
    }

    /// Fetch the plan for `key`, building it with `build` on a miss.
    /// Returns `(plan, hit)`. The build runs with no cache lock held;
    /// when two threads race on the same key, the first insert wins and
    /// the loser's build is dropped (counted in
    /// [`CacheStats::build_races`]).
    pub fn get_or_build(
        &self,
        key: PlanFingerprint,
        build: impl FnOnce() -> FmmPlan,
    ) -> (SharedPlan, bool) {
        if let Some(p) = self.touch(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (p, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = build();
        let bytes = built.memory_bytes();
        let shared: SharedPlan = Arc::new(Mutex::new(built));

        let mut g = self.inner.lock().unwrap();
        if g.map.contains_key(&key) {
            // Double-checked insert: someone built it while we did.
            g.tick += 1;
            let t = g.tick;
            let e = g.map.get_mut(&key).expect("checked above");
            e.last_use = t;
            self.build_races.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(&e.plan), false);
        }
        g.tick += 1;
        let t = g.tick;
        g.map.insert(
            key,
            Entry {
                plan: Arc::clone(&shared),
                bytes,
                last_use: t,
            },
        );
        g.bytes += bytes;
        self.evict_over_budget(&mut g, key);
        (shared, false)
    }

    /// Evict least-recently-used entries until within budget. The entry
    /// just inserted (`keep_last`) is evicted only as a last resort —
    /// when it alone exceeds the budget — so an over-sized plan still
    /// serves its batch, it just doesn't stay resident.
    fn evict_over_budget(&self, g: &mut Inner, keep_last: PlanFingerprint) {
        while g.bytes > self.budget_bytes {
            let victim = g
                .map
                .iter()
                .filter(|(k, _)| **k != keep_last)
                .min_by_key(|(k, e)| (e.last_use, **k))
                .map(|(k, _)| *k);
            let victim = match victim {
                Some(v) => v,
                None => {
                    // Only the fresh insert remains and it is over budget
                    // by itself: drop it too (budget 0 = cache nothing).
                    if let Some(e) = g.map.remove(&keep_last) {
                        g.bytes -= e.bytes;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
            };
            let e = g.map.remove(&victim).expect("victim resident");
            g.bytes -= e.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hit path: bump recency and clone the handle.
    fn touch(&self, key: &PlanFingerprint) -> Option<SharedPlan> {
        let mut g = self.inner.lock().unwrap();
        g.tick += 1;
        let t = g.tick;
        let e = g.map.get_mut(key)?;
        e.last_use = t;
        Some(Arc::clone(&e.plan))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            build_races: self.build_races.load(Ordering::Relaxed),
            resident_bytes: g.bytes as u64,
            resident_plans: g.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::{plan_fingerprint, Fmm, FmmConfig};
    use pfmm_kernels::Laplace;
    use pfmm_mpisim::run;
    use pfmm_tree::PointRec;

    fn fmm() -> Fmm {
        Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 30,
                ..Default::default()
            },
        )
    }

    fn geometry(n: usize, seed: u64) -> Vec<PointRec> {
        pfmm_core::distrib::uniform_cube(n, seed, 0)
    }

    fn build_plan(f: &Fmm, pts: &[PointRec]) -> FmmPlan {
        run(1, |c| f.plan(c, pts.to_vec())).pop().expect("one rank")
    }

    #[test]
    fn hit_after_miss_and_counters() {
        let f = fmm();
        let pts = geometry(300, 3);
        let key = plan_fingerprint("laplace", f.config(), 1, &pts);
        let cache = PlanCache::new(1 << 30);
        let (_, hit) = cache.get_or_build(key, || build_plan(&f, &pts));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(key, || panic!("must not rebuild"));
        assert!(hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident_plans, 1);
        assert!(s.resident_bytes > 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let f = fmm();
        let geos: Vec<Vec<PointRec>> = (0..3).map(|s| geometry(400, 10 + s)).collect();
        let keys: Vec<PlanFingerprint> = geos
            .iter()
            .map(|g| plan_fingerprint("laplace", f.config(), 1, g))
            .collect();
        let one = build_plan(&f, &geos[0]).memory_bytes();
        // Budget fits two plans of this size, not three.
        let cache = PlanCache::new(one * 2 + one / 2);
        cache.get_or_build(keys[0], || build_plan(&f, &geos[0]));
        cache.get_or_build(keys[1], || build_plan(&f, &geos[1]));
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_build(keys[0], || panic!("resident"));
        cache.get_or_build(keys[2], || build_plan(&f, &geos[2]));
        assert!(cache.contains(&keys[0]), "recently touched survives");
        assert!(!cache.contains(&keys[1]), "LRU evicted");
        assert!(cache.contains(&keys[2]), "fresh insert resident");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= cache.budget_bytes() as u64);
    }

    #[test]
    fn zero_budget_caches_nothing_but_still_serves() {
        let f = fmm();
        let pts = geometry(250, 21);
        let key = plan_fingerprint("laplace", f.config(), 1, &pts);
        let cache = PlanCache::new(0);
        let (p, hit) = cache.get_or_build(key, || build_plan(&f, &pts));
        assert!(!hit);
        assert!(p.lock().unwrap().num_owned() == 250);
        assert!(!cache.contains(&key), "nothing stays resident");
        let (_, hit) = cache.get_or_build(key, || build_plan(&f, &pts));
        assert!(!hit, "every lookup is a miss");
        let s = cache.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.resident_bytes, 0);
    }

    #[test]
    fn concurrent_same_key_builds_race_to_one_entry() {
        let f = Arc::new(fmm());
        let pts = Arc::new(geometry(350, 33));
        let key = plan_fingerprint("laplace", f.config(), 1, &pts);
        let cache = Arc::new(PlanCache::new(1 << 30));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (cache, f, pts) = (Arc::clone(&cache), Arc::clone(&f), Arc::clone(&pts));
                s.spawn(move || {
                    let (p, _) = cache.get_or_build(key, || build_plan(&f, &pts));
                    assert_eq!(p.lock().unwrap().num_owned(), 350);
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.resident_plans, 1, "one winner");
        assert_eq!(s.hits + s.misses, 4);
        assert!(s.misses >= 1);
        // Every miss beyond the winner's was a dropped duplicate build.
        assert_eq!(s.build_races, s.misses - 1);
    }
}
