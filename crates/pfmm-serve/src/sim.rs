//! The closed-loop simulator: a real-time shell around the sans-IO core.
//!
//! [`run_sim`] wires the deterministic workload ([`crate::loadgen`]),
//! the sans-IO state machine ([`crate::service`]), the plan cache
//! ([`crate::cache`]) and the worker pool ([`crate::pool`]) into one
//! driver loop, and distills the run into a [`ServeReport`]: latency
//! histograms, cache and service counters, typed rejections, deadline
//! violations, and (optionally) every potential vector for bitwise
//! comparison against another run over the same workload.
//!
//! Only the *timing* of a run is wall-clock dependent; the request
//! stream and every computed bit are functions of the workload seed.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use pfmm_core::Fmm;
use pfmm_trace::metrics::Histogram;
use pfmm_trace::Tracer;

use crate::cache::{CacheStats, PlanCache};
use crate::cost::CostModel;
use crate::loadgen::{Arrival, Workload, WorkloadConfig};
use crate::pool::{ExecPool, Executor};
use crate::service::{Admission, RejectReason, ServiceConfig, ServiceCore, ServiceStats};

/// Everything one simulated serving run needs.
pub struct SimConfig {
    /// The request stream.
    pub workload: WorkloadConfig,
    /// Admission/batching/shedding policy.
    pub service: ServiceConfig,
    /// Plan-cache budget; 0 disables caching (the cold baseline).
    pub cache_budget_bytes: usize,
    /// Keep per-request potentials for bitwise comparison (costs
    /// memory; off for throughput runs).
    pub keep_potentials: bool,
}

/// The distilled outcome of a run.
pub struct ServeReport {
    /// Requests served to completion.
    pub completed: u64,
    /// Completions that finished past their deadline.
    pub deadline_violations: u64,
    /// Typed rejections by reason label.
    pub rejections: BTreeMap<&'static str, u64>,
    /// End-to-end sojourn (arrive → done), µs.
    pub latency_us: Histogram,
    /// Arrive → batch flush, µs.
    pub queue_wait_us: Histogram,
    /// Evaluation span (exec start → done), µs.
    pub execute_us: Histogram,
    /// Completed requests per second of wall clock.
    pub throughput_rps: f64,
    /// Run wall clock, µs.
    pub wall_us: u64,
    /// Plan-cache counters at the end.
    pub cache: CacheStats,
    /// Service counters at the end.
    pub service: ServiceStats,
    /// Calibration probe timings (plan µs, apply µs).
    pub probe_us: (u64, u64),
    /// Potentials by request id (only when `keep_potentials`).
    pub potentials: Option<BTreeMap<u64, Vec<f64>>>,
}

impl ServeReport {
    /// Total rejections across reasons.
    pub fn rejected(&self) -> u64 {
        self.rejections.values().sum()
    }

    /// Whether shedding ever engaged.
    pub fn shed_engaged(&self) -> bool {
        self.service.shed_engagements > 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "completed {} ({:.1} req/s), rejected {}, violations {}, \
             p50/p95/p99 {:.0}/{:.0}/{:.0} µs, cache hit-rate {:.2}, shed {}",
            self.completed,
            self.throughput_rps,
            self.rejected(),
            self.deadline_violations,
            self.latency_us.p50(),
            self.latency_us.p95(),
            self.latency_us.p99(),
            self.cache.hit_rate(),
            if self.shed_engaged() {
                "engaged"
            } else {
                "idle"
            },
        )
    }
}

/// Drive one serving run to completion.
///
/// `tracer` doubles as the run's clock epoch; pass a `TraceLevel::Off`
/// tracer for untraced runs.
pub fn run_sim(
    fmm: Arc<Fmm>,
    kernel_name: &str,
    cfg: SimConfig,
    tracer: Arc<Tracer>,
) -> ServeReport {
    let workload = Workload::generate(cfg.workload.clone(), &fmm, kernel_name);
    let total = workload.specs.len();

    // Calibrate on a throwaway probe geometry (never a workload key, so
    // calibration cannot pre-warm the cache).
    let probe =
        pfmm_core::distrib::uniform_cube(cfg.workload.n_points, cfg.workload.seed ^ 0xC0FF_EE00, 0);
    let (cost, _probe_plan) = CostModel::calibrate(&fmm, &probe);

    let cache = Arc::new(PlanCache::new(cfg.cache_budget_bytes));
    let exec = Arc::new(Executor {
        fmm,
        cache: Arc::clone(&cache),
        geometries: Arc::new(workload.geometries.clone()),
        tracer,
    });
    let pool = ExecPool::new(cfg.service.workers, Arc::clone(&exec));
    let mut core = ServiceCore::new(cfg.service);

    let mut next_spec = 0usize; // next request to issue
    let mut resolved = 0usize; // completed + rejected
    let mut in_flight_reqs = 0usize; // accepted, not yet completed
    let mut batches_out = 0usize; // submitted, not yet drained

    let mut completed = 0u64;
    let mut deadline_violations = 0u64;
    let mut rejections: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut latency_us = Histogram::new();
    let mut queue_wait_us = Histogram::new();
    let mut execute_us = Histogram::new();
    let mut potentials: BTreeMap<u64, Vec<f64>> = BTreeMap::new();

    let reject = |rejections: &mut BTreeMap<&'static str, u64>,
                  resolved: &mut usize,
                  reason: RejectReason| {
        *rejections.entry(reason.label()).or_insert(0) += 1;
        *resolved += 1;
    };

    let t_start = exec.now_us();
    while resolved < total || in_flight_reqs > 0 || batches_out > 0 {
        let now = exec.now_us();

        // 1. Completions.
        for done in pool.drain_done() {
            batches_out -= 1;
            core.on_batch_done(done.charged_us);
            for r in &done.reqs {
                completed += 1;
                resolved += 1;
                in_flight_reqs -= 1;
                if r.done_us > r.deadline_us {
                    deadline_violations += 1;
                }
                latency_us.record((r.done_us - r.arrive_us) as f64);
                queue_wait_us.record((r.flushed_us - r.arrive_us) as f64);
                execute_us.record((r.done_us - r.exec_start_us) as f64);
                if cfg.keep_potentials {
                    potentials.insert(r.id, r.pot.clone());
                }
            }
        }

        // 2. Arrivals due now.
        loop {
            if next_spec >= total {
                break;
            }
            match cfg.workload.arrival {
                Arrival::Open { .. } => {
                    let due = t_start + workload.specs[next_spec].offset_us;
                    if now < due {
                        break;
                    }
                }
                Arrival::Closed { concurrency } => {
                    // In-flight counts accepted work; an arrival slot
                    // frees on completion or rejection.
                    if next_spec - resolved >= concurrency {
                        break;
                    }
                }
            }
            let spec = &workload.specs[next_spec];
            let n = workload.geometries[spec.geom].len();
            let req = workload.request(next_spec, now, cost.eval_us(n), cost.build_us(n));
            next_spec += 1;
            let warm = cache.contains(&req.key);
            match core.offer(req, now, warm) {
                Admission::Accepted { displaced } => {
                    in_flight_reqs += 1;
                    for d in displaced {
                        in_flight_reqs -= 1;
                        reject(&mut rejections, &mut resolved, d.reason);
                    }
                }
                Admission::Rejected(r) => {
                    reject(&mut rejections, &mut resolved, r.reason);
                }
            }
        }

        // 3. Flush due batches to the workers.
        for batch in core.poll(now) {
            batches_out += 1;
            pool.submit(batch);
        }

        std::thread::sleep(Duration::from_micros(200));
    }
    let wall_us = exec.now_us() - t_start;

    for done in pool.shutdown() {
        // The loop condition drained everything; defensive only.
        core.on_batch_done(done.charged_us);
    }

    ServeReport {
        completed,
        deadline_violations,
        rejections,
        latency_us,
        queue_wait_us,
        execute_us,
        throughput_rps: completed as f64 / (wall_us as f64 * 1e-6).max(1e-9),
        wall_us,
        cache: cache.stats(),
        service: core.stats().clone(),
        probe_us: (cost.probe_plan_us, cost.probe_apply_us),
        potentials: if cfg.keep_potentials {
            Some(potentials)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::FmmConfig;
    use pfmm_kernels::Laplace;

    fn fmm() -> Arc<Fmm> {
        Arc::new(Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 3,
                q: 40,
                ..Default::default()
            },
        ))
    }

    fn base_cfg() -> SimConfig {
        SimConfig {
            workload: WorkloadConfig {
                seed: 7,
                requests: 12,
                n_points: 150,
                hot_geometries: 2,
                cold_fraction: 0.2,
                arrival: Arrival::Closed { concurrency: 4 },
                deadline_us: 0,
                priority_levels: 3,
            },
            service: ServiceConfig {
                max_batch: 4,
                max_linger_us: 500,
                workers: 2,
                shed_high_us: u64::MAX,
                shed_low_us: u64::MAX,
            },
            cache_budget_bytes: 1 << 30,
            keep_potentials: true,
        }
    }

    #[test]
    fn closed_loop_run_completes_everything_and_hits_cache() {
        let r = run_sim(fmm(), "laplace", base_cfg(), Arc::new(Tracer::off()));
        assert_eq!(r.completed, 12);
        assert_eq!(r.rejected(), 0);
        assert_eq!(r.deadline_violations, 0);
        assert_eq!(r.latency_us.count(), 12);
        assert!(r.cache.hit_rate() > 0.0, "hot geometries re-hit the cache");
        assert_eq!(r.potentials.as_ref().map(|p| p.len()), Some(12));
        assert!(r.throughput_rps > 0.0);
    }

    #[test]
    fn same_workload_same_bits_cold_vs_warm() {
        let mut cold = base_cfg();
        cold.cache_budget_bytes = 0;
        cold.service.max_batch = 1;
        let a = run_sim(fmm(), "laplace", cold, Arc::new(Tracer::off()));
        let b = run_sim(fmm(), "laplace", base_cfg(), Arc::new(Tracer::off()));
        assert_eq!(a.cache.hits, 0, "budget 0 never hits");
        let (pa, pb) = (a.potentials.unwrap(), b.potentials.unwrap());
        assert_eq!(pa.len(), pb.len());
        for (id, va) in &pa {
            let vb = &pb[id];
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "request {id} differs");
            }
        }
    }

    #[test]
    fn open_overload_without_deadlines_engages_shedding() {
        let mut cfg = base_cfg();
        cfg.workload.requests = 30;
        cfg.workload.arrival = Arrival::Open {
            rate_per_s: 50_000.0,
        };
        cfg.service.shed_high_us = 10_000;
        cfg.service.shed_low_us = 2_000;
        cfg.service.max_linger_us = 200;
        let r = run_sim(fmm(), "laplace", cfg, Arc::new(Tracer::off()));
        assert!(r.shed_engaged(), "overload must cross the high watermark");
        assert!(
            r.rejections.contains_key("shedding") || r.rejections.contains_key("displaced"),
            "typed shed rejections: {:?}",
            r.rejections
        );
        assert_eq!(
            r.completed + r.rejected(),
            30,
            "every request resolves exactly once"
        );
    }

    #[test]
    fn tight_deadlines_reject_up_front_not_late() {
        let mut cfg = base_cfg();
        cfg.workload.requests = 16;
        cfg.workload.deadline_us = 1; // instantly infeasible
        let r = run_sim(fmm(), "laplace", cfg, Arc::new(Tracer::off()));
        assert_eq!(
            r.rejections.get("deadline_infeasible"),
            Some(&16),
            "{:?}",
            r.rejections
        );
        assert_eq!(r.completed, 0);
        assert_eq!(r.deadline_violations, 0, "infeasible work never runs");
    }
}
