//! The closed-loop simulator: a real-time shell around the sans-IO core.
//!
//! [`run_sim`] wires the deterministic workload ([`crate::loadgen`]),
//! the sans-IO state machine ([`crate::service`]), the plan cache
//! ([`crate::cache`]) and the worker pool ([`crate::pool`]) into one
//! driver loop, and distills the run into a [`ServeReport`]: latency
//! histograms, cache and service counters, typed rejections, deadline
//! violations, and (optionally) every potential vector for bitwise
//! comparison against another run over the same workload.
//!
//! Only the *timing* of a run is wall-clock dependent; the request
//! stream and every computed bit are functions of the workload seed.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pfmm_core::Fmm;
use pfmm_metrics::{
    FlightConfig, FlightRecorder, MetricsRegistry, PhaseWatch, SloConfig, SloReport, SloTracker,
};
use pfmm_trace::metrics::Histogram;
use pfmm_trace::Tracer;

use crate::cache::{CacheStats, PlanCache};
use crate::cost::CostModel;
use crate::loadgen::{Arrival, Workload, WorkloadConfig};
use crate::pool::{ExecPool, Executor, TID_REQ_BASE};
use crate::service::{Admission, RejectReason, ServiceConfig, ServiceCore, ServiceStats};

/// Everything one simulated serving run needs.
pub struct SimConfig {
    /// The request stream.
    pub workload: WorkloadConfig,
    /// Admission/batching/shedding policy.
    pub service: ServiceConfig,
    /// Plan-cache budget; 0 disables caching (the cold baseline).
    pub cache_budget_bytes: usize,
    /// Keep per-request potentials for bitwise comparison (costs
    /// memory; off for throughput runs).
    pub keep_potentials: bool,
    /// Observability knobs (metrics registry, SLO, flight recorder,
    /// fault injection); `ObsConfig::default()` = global registry, no
    /// SLO, no recorder.
    pub obs: ObsConfig,
}

/// Observability configuration for one run, kept separate from the
/// serving policy so existing call sites take the defaults.
#[derive(Default)]
pub struct ObsConfig {
    /// Metrics registry to record into; `None` uses the process-global
    /// one. Tests pass a fresh registry for exact accounting.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// SLO error-budget tracking; `None` disables it.
    pub slo: Option<SloConfig>,
    /// Flight recorder; `None` leaves it unarmed.
    pub flight: Option<FlightConfig>,
    /// Injected per-batch execution delay, µs (forces deadline
    /// violations the admission estimator cannot foresee).
    pub exec_delay_us: u64,
}

/// The distilled outcome of a run.
pub struct ServeReport {
    /// Requests served to completion.
    pub completed: u64,
    /// Completions that finished past their deadline.
    pub deadline_violations: u64,
    /// Typed rejections by reason label.
    pub rejections: BTreeMap<&'static str, u64>,
    /// End-to-end sojourn (arrive → done), µs.
    pub latency_us: Histogram,
    /// Arrive → batch flush, µs.
    pub queue_wait_us: Histogram,
    /// Evaluation span (exec start → done), µs.
    pub execute_us: Histogram,
    /// Completed requests per second of wall clock.
    pub throughput_rps: f64,
    /// Run wall clock, µs.
    pub wall_us: u64,
    /// Plan-cache counters at the end.
    pub cache: CacheStats,
    /// Service counters at the end.
    pub service: ServiceStats,
    /// Calibration probe timings (plan µs, apply µs).
    pub probe_us: (u64, u64),
    /// SLO accounting (only when `obs.slo` was set).
    pub slo: Option<SloReport>,
    /// Incident files the flight recorder wrote during the run.
    pub incident_dumps: Vec<PathBuf>,
    /// Potentials by request id (only when `keep_potentials`).
    pub potentials: Option<BTreeMap<u64, Vec<f64>>>,
}

impl ServeReport {
    /// Total rejections across reasons.
    pub fn rejected(&self) -> u64 {
        self.rejections.values().sum()
    }

    /// Whether shedding ever engaged.
    pub fn shed_engaged(&self) -> bool {
        self.service.shed_engagements > 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "completed {} ({:.1} req/s), rejected {}, violations {}, \
             p50/p95/p99 {:.0}/{:.0}/{:.0} µs, cache hit-rate {:.2}, shed {}",
            self.completed,
            self.throughput_rps,
            self.rejected(),
            self.deadline_violations,
            self.latency_us.p50(),
            self.latency_us.p95(),
            self.latency_us.p99(),
            self.cache.hit_rate(),
            if self.shed_engaged() {
                "engaged"
            } else {
                "idle"
            },
        )
    }
}

/// Drive one serving run to completion.
///
/// `tracer` doubles as the run's clock epoch; pass a `TraceLevel::Off`
/// tracer for untraced runs.
pub fn run_sim(
    fmm: Arc<Fmm>,
    kernel_name: &str,
    cfg: SimConfig,
    tracer: Arc<Tracer>,
) -> ServeReport {
    let workload = Workload::generate(cfg.workload.clone(), &fmm, kernel_name);
    let total = workload.specs.len();

    // Calibrate on a throwaway probe geometry (never a workload key, so
    // calibration cannot pre-warm the cache).
    let probe =
        pfmm_core::distrib::uniform_cube(cfg.workload.n_points, cfg.workload.seed ^ 0xC0FF_EE00, 0);
    let (cost, _probe_plan) = CostModel::calibrate(&fmm, &probe);

    let cache = Arc::new(PlanCache::new(cfg.cache_budget_bytes));
    let reg = cfg
        .obs
        .registry
        .clone()
        .unwrap_or_else(|| Arc::clone(pfmm_metrics::global()));
    let metrics_on = reg.enabled();
    let flight = cfg
        .obs
        .flight
        .clone()
        .map(|fc| Arc::new(FlightRecorder::new(fc, Arc::clone(&reg))));
    let mut slo = cfg.obs.slo.clone().map(SloTracker::new);
    // Trailing-median watch over batch execute times (flight-recorder
    // trigger #3); armed only when the recorder is.
    let watch = PhaseWatch::new(3.0, 5);
    let mut incident_dumps: Vec<PathBuf> = Vec::new();
    let mut was_shedding = false;

    // Hot-path instruments, resolved once (registration locks; updates
    // are single relaxed atomics).
    let kl: &[(&str, &str)] = &[("kernel", kernel_name)];
    let m_offered = reg.counter("pfmm_serve_offered_total", kl);
    let m_completed = reg.counter("pfmm_serve_completed_total", kl);
    let m_violations = reg.counter("pfmm_serve_deadline_violations_total", kl);
    let m_latency = reg.histogram("pfmm_serve_latency_us", kl);
    let m_queue = reg.histogram("pfmm_serve_queue_wait_us", kl);
    let m_execute = reg.histogram("pfmm_serve_execute_us", kl);
    let m_backlog = reg.gauge("pfmm_serve_backlog_us", kl);
    let m_inflight = reg.gauge("pfmm_serve_in_flight", kl);

    let exec = Arc::new(Executor {
        fmm,
        cache: Arc::clone(&cache),
        // One workspace per worker is the steady-state sweet spot: every
        // in-flight batch can hold one without blocking, and idle plans
        // pin no extra scratch.
        workspaces: Arc::new(crate::workspace::WorkspacePool::new(
            cfg.service.workers.max(1),
        )),
        geometries: Arc::new(workload.geometries.clone()),
        tracer,
        flight: flight.clone(),
        exec_delay_us: cfg.obs.exec_delay_us,
    });
    let pool = ExecPool::new(cfg.service.workers, Arc::clone(&exec));
    let mut core = ServiceCore::new(cfg.service);

    let mut next_spec = 0usize; // next request to issue
    let mut resolved = 0usize; // completed + rejected
    let mut in_flight_reqs = 0usize; // accepted, not yet completed
    let mut batches_out = 0usize; // submitted, not yet drained

    let mut completed = 0u64;
    let mut deadline_violations = 0u64;
    let mut rejections: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut latency_us = Histogram::new();
    let mut queue_wait_us = Histogram::new();
    let mut execute_us = Histogram::new();
    let mut potentials: BTreeMap<u64, Vec<f64>> = BTreeMap::new();

    let reject = |rejections: &mut BTreeMap<&'static str, u64>,
                  resolved: &mut usize,
                  reason: RejectReason| {
        *rejections.entry(reason.label()).or_insert(0) += 1;
        *resolved += 1;
        if metrics_on {
            reg.counter(
                "pfmm_serve_rejected_total",
                &[("kernel", kernel_name), ("reason", reason.label())],
            )
            .inc();
        }
    };

    let t_start = exec.now_us();
    while resolved < total || in_flight_reqs > 0 || batches_out > 0 {
        let now = exec.now_us();

        // 1. Completions.
        for done in pool.drain_done() {
            batches_out -= 1;
            core.on_batch_done(done.charged_us);
            if let (Some(f), Some(first)) = (&flight, done.reqs.first()) {
                // Trigger #3: this batch's execute time against the
                // trailing median of previous batches.
                let exec_dur = (first.done_us - first.exec_start_us) as f64;
                if watch.observe("execute", exec_dur) {
                    if let Some(d) =
                        f.trigger("phase_anomaly", now as f64, TID_REQ_BASE + first.id as u32)
                    {
                        incident_dumps.push(d.path);
                    }
                }
            }
            for r in &done.reqs {
                completed += 1;
                resolved += 1;
                in_flight_reqs -= 1;
                let violated = r.done_us > r.deadline_us;
                if violated {
                    deadline_violations += 1;
                    // Trigger #1: a request finished past its deadline.
                    if let Some(f) = &flight {
                        if let Some(d) =
                            f.trigger("deadline_violation", now as f64, TID_REQ_BASE + r.id as u32)
                        {
                            incident_dumps.push(d.path);
                        }
                    }
                }
                if let Some(s) = &mut slo {
                    s.record(r.done_us as f64, violated);
                }
                latency_us.record((r.done_us - r.arrive_us) as f64);
                queue_wait_us.record((r.flushed_us - r.arrive_us) as f64);
                execute_us.record((r.done_us - r.exec_start_us) as f64);
                if metrics_on {
                    m_completed.inc();
                    if violated {
                        m_violations.inc();
                    }
                    m_latency.record((r.done_us - r.arrive_us) as f64);
                    m_queue.record((r.flushed_us - r.arrive_us) as f64);
                    m_execute.record((r.done_us - r.exec_start_us) as f64);
                }
                if cfg.keep_potentials {
                    potentials.insert(r.id, r.pot.clone());
                }
            }
        }

        // 2. Arrivals due now.
        loop {
            if next_spec >= total {
                break;
            }
            match cfg.workload.arrival {
                Arrival::Open { .. } => {
                    let due = t_start + workload.specs[next_spec].offset_us;
                    if now < due {
                        break;
                    }
                }
                Arrival::Closed { concurrency } => {
                    // In-flight counts accepted work; an arrival slot
                    // frees on completion or rejection.
                    if next_spec - resolved >= concurrency {
                        break;
                    }
                }
            }
            let spec = &workload.specs[next_spec];
            let n = workload.geometries[spec.geom].len();
            let req = workload.request(next_spec, now, cost.eval_us(n), cost.build_us(n));
            next_spec += 1;
            let warm = cache.contains(&req.key);
            if metrics_on {
                m_offered.inc();
            }
            match core.offer(req, now, warm) {
                Admission::Accepted { displaced } => {
                    in_flight_reqs += 1;
                    for d in displaced {
                        in_flight_reqs -= 1;
                        reject(&mut rejections, &mut resolved, d.reason);
                    }
                }
                Admission::Rejected(r) => {
                    reject(&mut rejections, &mut resolved, r.reason);
                }
            }
        }

        // 3. Flush due batches to the workers.
        for batch in core.poll(now) {
            batches_out += 1;
            pool.submit(batch);
        }

        // 4. Live gauges + shedding edge detection (trigger #2).
        if metrics_on {
            m_backlog.set(core.backlog_us() as f64);
            m_inflight.set(in_flight_reqs as f64);
        }
        let shedding = core.shedding();
        if shedding && !was_shedding {
            if let Some(f) = &flight {
                if let Some(d) = f.trigger("shedding", now as f64, 0) {
                    incident_dumps.push(d.path);
                }
            }
        }
        was_shedding = shedding;

        std::thread::sleep(Duration::from_micros(200));
    }
    let wall_us = exec.now_us() - t_start;

    for done in pool.shutdown() {
        // The loop condition drained everything; defensive only.
        core.on_batch_done(done.charged_us);
    }

    let final_now = exec.now_us() as f64;
    let slo_report = slo.map(|s| s.report(final_now));
    if metrics_on {
        // End-of-run mirrors: cache counters and SLO gauges.
        let cs = cache.stats();
        for (name, v) in [
            ("pfmm_serve_cache_hits_total", cs.hits),
            ("pfmm_serve_cache_misses_total", cs.misses),
            ("pfmm_serve_cache_evictions_total", cs.evictions),
            ("pfmm_serve_cache_build_races_total", cs.build_races),
        ] {
            reg.counter(name, kl).add(v);
        }
        reg.gauge("pfmm_serve_cache_resident_bytes", kl)
            .set(cs.resident_bytes as f64);
        reg.gauge("pfmm_serve_cache_resident_plans", kl)
            .set(cs.resident_plans as f64);
        reg.counter("pfmm_serve_shed_engagements_total", kl)
            .add(core.stats().shed_engagements);
        if let Some(s) = &slo_report {
            reg.gauge("pfmm_slo_budget_remaining", kl)
                .set(s.budget_remaining);
            reg.gauge("pfmm_slo_max_burn", kl).set(s.max_burn());
        }
    }

    ServeReport {
        completed,
        deadline_violations,
        rejections,
        latency_us,
        queue_wait_us,
        execute_us,
        throughput_rps: completed as f64 / (wall_us as f64 * 1e-6).max(1e-9),
        wall_us,
        cache: cache.stats(),
        service: core.stats().clone(),
        probe_us: (cost.probe_plan_us, cost.probe_apply_us),
        slo: slo_report,
        incident_dumps,
        potentials: if cfg.keep_potentials {
            Some(potentials)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::FmmConfig;
    use pfmm_kernels::Laplace;

    fn fmm() -> Arc<Fmm> {
        Arc::new(Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 3,
                q: 40,
                ..Default::default()
            },
        ))
    }

    fn base_cfg() -> SimConfig {
        SimConfig {
            workload: WorkloadConfig {
                seed: 7,
                requests: 12,
                n_points: 150,
                hot_geometries: 2,
                cold_fraction: 0.2,
                arrival: Arrival::Closed { concurrency: 4 },
                deadline_us: 0,
                priority_levels: 3,
            },
            service: ServiceConfig {
                max_batch: 4,
                max_linger_us: 500,
                workers: 2,
                shed_high_us: u64::MAX,
                shed_low_us: u64::MAX,
            },
            cache_budget_bytes: 1 << 30,
            keep_potentials: true,
            obs: ObsConfig::default(),
        }
    }

    #[test]
    fn closed_loop_run_completes_everything_and_hits_cache() {
        let r = run_sim(fmm(), "laplace", base_cfg(), Arc::new(Tracer::off()));
        assert_eq!(r.completed, 12);
        assert_eq!(r.rejected(), 0);
        assert_eq!(r.deadline_violations, 0);
        assert_eq!(r.latency_us.count(), 12);
        assert!(r.cache.hit_rate() > 0.0, "hot geometries re-hit the cache");
        assert_eq!(r.potentials.as_ref().map(|p| p.len()), Some(12));
        assert!(r.throughput_rps > 0.0);
    }

    #[test]
    fn same_workload_same_bits_cold_vs_warm() {
        let mut cold = base_cfg();
        cold.cache_budget_bytes = 0;
        cold.service.max_batch = 1;
        let a = run_sim(fmm(), "laplace", cold, Arc::new(Tracer::off()));
        let b = run_sim(fmm(), "laplace", base_cfg(), Arc::new(Tracer::off()));
        assert_eq!(a.cache.hits, 0, "budget 0 never hits");
        let (pa, pb) = (a.potentials.unwrap(), b.potentials.unwrap());
        assert_eq!(pa.len(), pb.len());
        for (id, va) in &pa {
            let vb = &pb[id];
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "request {id} differs");
            }
        }
    }

    #[test]
    fn open_overload_without_deadlines_engages_shedding() {
        let mut cfg = base_cfg();
        cfg.workload.requests = 30;
        cfg.workload.arrival = Arrival::Open {
            rate_per_s: 50_000.0,
        };
        cfg.service.shed_high_us = 10_000;
        cfg.service.shed_low_us = 2_000;
        cfg.service.max_linger_us = 200;
        let r = run_sim(fmm(), "laplace", cfg, Arc::new(Tracer::off()));
        assert!(r.shed_engaged(), "overload must cross the high watermark");
        assert!(
            r.rejections.contains_key("shedding") || r.rejections.contains_key("displaced"),
            "typed shed rejections: {:?}",
            r.rejections
        );
        assert_eq!(
            r.completed + r.rejected(),
            30,
            "every request resolves exactly once"
        );
    }

    #[test]
    fn tight_deadlines_reject_up_front_not_late() {
        let mut cfg = base_cfg();
        cfg.workload.requests = 16;
        cfg.workload.deadline_us = 1; // instantly infeasible
        let r = run_sim(fmm(), "laplace", cfg, Arc::new(Tracer::off()));
        assert_eq!(
            r.rejections.get("deadline_infeasible"),
            Some(&16),
            "{:?}",
            r.rejections
        );
        assert_eq!(r.completed, 0);
        assert_eq!(r.deadline_violations, 0, "infeasible work never runs");
    }
}
