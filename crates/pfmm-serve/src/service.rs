//! The sans-IO service core: admission control, batching, and load
//! shedding as a pure state machine.
//!
//! [`ServiceCore`] never reads a clock, spawns a thread, or touches a
//! socket — every entry point takes the current time as a `u64`
//! microsecond count supplied by the caller. The real-time shells
//! ([`crate::sim`], [`crate::pool`]) inject wall-clock time; tests inject
//! scripted time and get bit-for-bit reproducible schedules.
//!
//! The state machine has three responsibilities:
//!
//! 1. **Admission** — a request is rejected up front
//!    ([`RejectReason::DeadlineInfeasible`]) when the cost-model estimate
//!    of its finish time (now + backlog drained across the workers +
//!    plan build if the plan is cold + its own evaluation) already
//!    overruns its deadline. Work that cannot succeed never occupies the
//!    queue.
//! 2. **Batching** — accepted requests coalesce per plan fingerprint.
//!    A pending batch flushes when it reaches `max_batch` requests or
//!    has lingered `max_linger_us` since it was opened, whichever comes
//!    first: bounded latency, amortized plan locking.
//! 3. **Shedding** — a hysteresis watermark pair over the estimated
//!    backlog. Crossing `shed_high_us` engages shedding; only dropping
//!    back below `shed_low_us` disengages it. While engaged, a new
//!    request is admitted only by displacing a strictly lower-priority
//!    queued request ([`RejectReason::Shedding`] otherwise), so overload
//!    sheds the lowest-value work instead of the most recent.

use std::collections::BTreeMap;

use pfmm_core::PlanFingerprint;

/// A unit of work: evaluate one density set against one cached geometry.
///
/// Requests are data, not handles — the density vector itself is derived
/// on the worker from `density_seed` (see [`crate::loadgen::densities`]),
/// which keeps queued requests tiny and lets two runs over the same
/// request stream be compared bitwise.
#[derive(Clone, Debug)]
pub struct Request {
    /// Unique id within a run.
    pub id: u64,
    /// Plan-cache key of the geometry this request evaluates against.
    pub key: PlanFingerprint,
    /// Index of the geometry in the workload (for the executor).
    pub geom: usize,
    /// Points in the geometry.
    pub n: usize,
    /// Arrival time, µs.
    pub arrive_us: u64,
    /// Absolute deadline, µs (`u64::MAX` = none).
    pub deadline_us: u64,
    /// Higher = more important; shedding displaces lower first.
    pub priority: u8,
    /// Seed of the pure density generator for this request.
    pub density_seed: u64,
    /// Cost-model estimate of this request's evaluation, µs.
    pub est_cost_us: u64,
    /// Cost-model estimate of a cold plan build for its geometry, µs.
    pub est_build_us: u64,
}

/// Why a request was not served.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The finish-time estimate already overran the deadline at offer.
    DeadlineInfeasible,
    /// The shedding watermark was engaged and no lower-priority victim
    /// existed to displace.
    Shedding,
    /// A higher-priority request displaced this one while queued.
    Displaced,
}

impl RejectReason {
    /// Stable label for reports/JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::DeadlineInfeasible => "deadline_infeasible",
            RejectReason::Shedding => "shedding",
            RejectReason::Displaced => "displaced",
        }
    }
}

/// A typed rejection: the request id and why.
#[derive(Clone, Debug)]
pub struct Rejected {
    /// Id of the rejected request.
    pub id: u64,
    /// Why.
    pub reason: RejectReason,
    /// When, µs.
    pub at_us: u64,
}

/// The outcome of [`ServiceCore::offer`].
#[derive(Debug)]
pub enum Admission {
    /// Queued. Any displaced lower-priority requests ride along so the
    /// caller can record their typed rejections.
    Accepted {
        /// Requests displaced to make room (shedding mode only).
        displaced: Vec<Rejected>,
    },
    /// Not queued.
    Rejected(Rejected),
}

/// A flushed batch: same-plan requests to evaluate in one plan lock.
#[derive(Clone, Debug)]
pub struct Batch {
    /// The shared plan-cache key.
    pub key: PlanFingerprint,
    /// The coalesced requests, admission order.
    pub reqs: Vec<Request>,
    /// When the first request opened the batch, µs.
    pub opened_us: u64,
    /// When the batch left the queue, µs.
    pub flushed_us: u64,
    /// Backlog µs charged for this batch; return via
    /// [`ServiceCore::on_batch_done`].
    pub charged_us: u64,
}

/// Service policy knobs.
#[derive(Copy, Clone, Debug)]
pub struct ServiceConfig {
    /// Flush a pending batch at this many requests.
    pub max_batch: usize,
    /// Flush a pending batch this long after it opened, µs.
    pub max_linger_us: u64,
    /// Executor parallelism assumed when estimating backlog drain.
    pub workers: usize,
    /// Backlog µs at which shedding engages.
    pub shed_high_us: u64,
    /// Backlog µs at which shedding disengages (must be ≤ high).
    pub shed_low_us: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 8,
            max_linger_us: 2_000,
            workers: 2,
            shed_high_us: 2_000_000,
            shed_low_us: 1_000_000,
        }
    }
}

/// Monotonic service counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Typed rejections at offer time: infeasible deadline.
    pub rejected_deadline: u64,
    /// Typed rejections at offer time: shedding, no victim.
    pub rejected_shed: u64,
    /// Queued requests displaced by higher-priority arrivals.
    pub displaced: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Requests flushed inside those batches.
    pub batched_reqs: u64,
    /// Times shedding engaged (low→high crossings).
    pub shed_engagements: u64,
    /// Peak estimated backlog seen, µs.
    pub max_backlog_us: u64,
}

struct QueuedReq {
    req: Request,
    /// Backlog µs this request added (cost + build share); subtracted
    /// exactly on displacement so accounting never drifts.
    charged_us: u64,
}

struct Pending {
    reqs: Vec<QueuedReq>,
    opened_us: u64,
}

/// The sans-IO admission/batching/shedding state machine.
pub struct ServiceCore {
    cfg: ServiceConfig,
    /// Pending batches by plan key. `BTreeMap` so iteration order — and
    /// therefore flush order and victim choice among equals — is
    /// deterministic ([`PlanFingerprint`] is `Ord`).
    queue: BTreeMap<PlanFingerprint, Pending>,
    /// Estimated µs of admitted-but-unfinished work (queued + running).
    backlog_us: u64,
    shedding: bool,
    stats: ServiceStats,
}

impl ServiceCore {
    /// An empty core with the given policy.
    pub fn new(cfg: ServiceConfig) -> ServiceCore {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.workers >= 1, "workers must be at least 1");
        assert!(
            cfg.shed_low_us <= cfg.shed_high_us,
            "shed_low_us must not exceed shed_high_us"
        );
        ServiceCore {
            cfg,
            queue: BTreeMap::new(),
            backlog_us: 0,
            shedding: false,
            stats: ServiceStats::default(),
        }
    }

    /// Estimated µs of admitted-but-unfinished work.
    pub fn backlog_us(&self) -> u64 {
        self.backlog_us
    }

    /// Whether the shedding watermark is currently engaged.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// Requests currently queued (not yet flushed).
    pub fn queued(&self) -> usize {
        self.queue.values().map(|p| p.reqs.len()).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// What a request would add to the backlog: its evaluation, plus the
    /// plan build when the plan is cold *and* no queued batch is already
    /// paying for that build.
    fn charge_for(&self, req: &Request, plan_warm: bool) -> u64 {
        let build = if plan_warm || self.queue.contains_key(&req.key) {
            0
        } else {
            req.est_build_us
        };
        req.est_cost_us + build
    }

    /// Offer a request at time `now_us`. `plan_warm` is the caller's
    /// cache peek ([`crate::cache::PlanCache::contains`]).
    pub fn offer(&mut self, req: Request, now_us: u64, plan_warm: bool) -> Admission {
        let charge = self.charge_for(&req, plan_warm);

        // Admission: estimated finish vs deadline. Backlog drains across
        // the workers; this request's own charge does not parallelize
        // with itself.
        let est_finish = now_us + self.backlog_us / self.cfg.workers as u64 + charge;
        if est_finish > req.deadline_us {
            self.stats.rejected_deadline += 1;
            return Admission::Rejected(Rejected {
                id: req.id,
                reason: RejectReason::DeadlineInfeasible,
                at_us: now_us,
            });
        }

        self.update_shedding();
        let mut displaced = Vec::new();
        if self.shedding {
            match self.displace_victim(req.priority, now_us) {
                Some(victim) => displaced.push(victim),
                None => {
                    self.stats.rejected_shed += 1;
                    return Admission::Rejected(Rejected {
                        id: req.id,
                        reason: RejectReason::Shedding,
                        at_us: now_us,
                    });
                }
            }
        }

        self.backlog_us += charge;
        self.stats.max_backlog_us = self.stats.max_backlog_us.max(self.backlog_us);
        self.stats.accepted += 1;
        let pending = self.queue.entry(req.key).or_insert_with(|| Pending {
            reqs: Vec::new(),
            opened_us: now_us,
        });
        pending.reqs.push(QueuedReq {
            req,
            charged_us: charge,
        });
        self.update_shedding();
        Admission::Accepted { displaced }
    }

    /// Remove the lowest-priority queued request strictly below
    /// `than_priority` (newest among equals, so older low-priority work
    /// keeps its place). Returns its typed rejection.
    fn displace_victim(&mut self, than_priority: u8, now_us: u64) -> Option<Rejected> {
        let mut best: Option<(u8, u64, PlanFingerprint, usize)> = None;
        for (key, pending) in &self.queue {
            for (i, q) in pending.reqs.iter().enumerate() {
                if q.req.priority >= than_priority {
                    continue;
                }
                let cand = (q.req.priority, u64::MAX - q.req.id, *key, i);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        let (_, _, key, idx) = best?;
        let pending = self.queue.get_mut(&key).expect("victim batch resident");
        let victim = pending.reqs.remove(idx);
        if pending.reqs.is_empty() {
            self.queue.remove(&key);
        }
        self.backlog_us = self.backlog_us.saturating_sub(victim.charged_us);
        self.stats.displaced += 1;
        Some(Rejected {
            id: victim.req.id,
            reason: RejectReason::Displaced,
            at_us: now_us,
        })
    }

    /// Flush every pending batch that is full (`max_batch`) or has
    /// lingered past `max_linger_us`. Batches keep their backlog charge
    /// until [`Self::on_batch_done`].
    pub fn poll(&mut self, now_us: u64) -> Vec<Batch> {
        let due: Vec<PlanFingerprint> = self
            .queue
            .iter()
            .filter(|(_, p)| {
                p.reqs.len() >= self.cfg.max_batch
                    || now_us.saturating_sub(p.opened_us) >= self.cfg.max_linger_us
            })
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::with_capacity(due.len());
        for key in due {
            let mut pending = self.queue.remove(&key).expect("due batch resident");
            // A batch never exceeds max_batch; the overflow (arrivals
            // between polls) stays queued as a fresh batch.
            let keep = pending
                .reqs
                .split_off(pending.reqs.len().min(self.cfg.max_batch));
            if !keep.is_empty() {
                self.queue.insert(
                    key,
                    Pending {
                        reqs: keep,
                        opened_us: now_us,
                    },
                );
            }
            let charged_us = pending.reqs.iter().map(|q| q.charged_us).sum();
            self.stats.batches += 1;
            self.stats.batched_reqs += pending.reqs.len() as u64;
            out.push(Batch {
                key,
                reqs: pending.reqs.into_iter().map(|q| q.req).collect(),
                opened_us: pending.opened_us,
                flushed_us: now_us,
                charged_us,
            });
        }
        out
    }

    /// Return a finished batch's charge to the backlog estimate.
    pub fn on_batch_done(&mut self, charged_us: u64) {
        self.backlog_us = self.backlog_us.saturating_sub(charged_us);
        self.update_shedding();
    }

    /// Hysteresis: engage at high, disengage at low.
    fn update_shedding(&mut self) {
        if !self.shedding && self.backlog_us >= self.cfg.shed_high_us {
            self.shedding = true;
            self.stats.shed_engagements += 1;
        } else if self.shedding && self.backlog_us <= self.cfg.shed_low_us {
            self.shedding = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u128) -> PlanFingerprint {
        PlanFingerprint(b)
    }

    fn req(id: u64, k: u128, cost: u64) -> Request {
        Request {
            id,
            key: key(k),
            geom: 0,
            n: 100,
            arrive_us: 0,
            deadline_us: u64::MAX,
            priority: 1,
            density_seed: id,
            est_cost_us: cost,
            est_build_us: 10 * cost,
        }
    }

    #[test]
    fn batches_flush_on_size_and_linger() {
        let mut s = ServiceCore::new(ServiceConfig {
            max_batch: 3,
            max_linger_us: 1_000,
            ..Default::default()
        });
        for i in 0..3 {
            assert!(matches!(
                s.offer(req(i, 7, 100), 0, true),
                Admission::Accepted { .. }
            ));
        }
        // Full batch flushes immediately regardless of linger.
        let b = s.poll(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].reqs.len(), 3);
        assert_eq!(b[0].key, key(7));

        // A lone request waits out the linger window...
        s.offer(req(3, 9, 100), 10, true);
        assert!(s.poll(500).is_empty());
        // ...then flushes.
        let b = s.poll(10 + 1_000);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].reqs[0].id, 3);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn overflow_beyond_max_batch_stays_queued() {
        let mut s = ServiceCore::new(ServiceConfig {
            max_batch: 2,
            max_linger_us: 1_000_000,
            ..Default::default()
        });
        for i in 0..5 {
            s.offer(req(i, 7, 100), 0, true);
        }
        let b = s.poll(0);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].reqs.len(), 2);
        assert_eq!(s.queued(), 3, "overflow requeued");
        let b2 = s.poll(0);
        assert_eq!(b2[0].reqs.len(), 2);
        assert_eq!(b2[0].reqs[0].id, 2, "FIFO across splits");
    }

    #[test]
    fn deadline_admission_accounts_backlog_and_cold_build() {
        let cfg = ServiceConfig {
            workers: 1,
            ..Default::default()
        };
        let mut s = ServiceCore::new(cfg);
        // Cold plan: charge = cost + build = 1_100.
        let mut r = req(0, 1, 100);
        r.deadline_us = 1_000;
        match s.offer(r, 0, false) {
            Admission::Rejected(rej) => {
                assert_eq!(rej.reason, RejectReason::DeadlineInfeasible)
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Warm plan: charge = 100, fits.
        let mut r = req(1, 1, 100);
        r.deadline_us = 1_000;
        assert!(matches!(s.offer(r, 0, true), Admission::Accepted { .. }));
        assert_eq!(s.backlog_us(), 100);
        // Backlog pushes the next one over its deadline.
        let mut r = req(2, 1, 100);
        r.deadline_us = 150;
        assert!(matches!(s.offer(r, 0, true), Admission::Rejected(_)));
        let st = s.stats();
        assert_eq!(st.rejected_deadline, 2);
        assert_eq!(st.accepted, 1);
    }

    #[test]
    fn build_charged_once_per_cold_key() {
        let mut s = ServiceCore::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        s.offer(req(0, 1, 100), 0, false);
        assert_eq!(s.backlog_us(), 1_100, "cold: cost + build");
        s.offer(req(1, 1, 100), 0, false);
        assert_eq!(
            s.backlog_us(),
            1_200,
            "second request shares the queued build"
        );
    }

    #[test]
    fn shedding_hysteresis_and_priority_displacement() {
        let mut s = ServiceCore::new(ServiceConfig {
            max_batch: 100,
            max_linger_us: u64::MAX,
            workers: 1,
            shed_high_us: 1_000,
            shed_low_us: 400,
        });
        // Fill to the high watermark.
        for i in 0..10 {
            assert!(matches!(
                s.offer(req(i, 1, 100), 0, true),
                Admission::Accepted { .. }
            ));
        }
        assert!(s.shedding(), "high watermark engages");

        // Same priority: no victim, typed shed rejection.
        match s.offer(req(10, 1, 100), 0, true) {
            Admission::Rejected(rej) => assert_eq!(rej.reason, RejectReason::Shedding),
            other => panic!("expected shed, got {other:?}"),
        }

        // Higher priority displaces the newest lowest-priority request.
        let mut vip = req(11, 1, 100);
        vip.priority = 5;
        match s.offer(vip, 0, true) {
            Admission::Accepted { displaced } => {
                assert_eq!(displaced.len(), 1);
                assert_eq!(displaced[0].id, 9, "newest among lowest priority");
                assert_eq!(displaced[0].reason, RejectReason::Displaced);
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(s.backlog_us(), 1_000, "displacement refunds the victim");

        // Draining to the low watermark disengages; between the marks it
        // stays engaged (hysteresis).
        s.on_batch_done(400);
        assert!(s.shedding(), "between watermarks: still shedding");
        s.on_batch_done(300);
        assert!(!s.shedding(), "below low: disengaged");
        let st = s.stats();
        assert_eq!(st.shed_engagements, 1);
        assert_eq!(st.displaced, 1);
        assert_eq!(st.rejected_shed, 1);
    }

    #[test]
    fn poll_then_done_returns_exact_charge() {
        let mut s = ServiceCore::new(ServiceConfig {
            max_batch: 2,
            workers: 1,
            ..Default::default()
        });
        s.offer(req(0, 1, 100), 0, false); // 1_100 (cold)
        s.offer(req(1, 1, 100), 0, false); // 100 (build already queued)
        let b = s.poll(0);
        assert_eq!(b[0].charged_us, 1_200);
        assert_eq!(s.backlog_us(), 1_200, "charge held while running");
        s.on_batch_done(b[0].charged_us);
        assert_eq!(s.backlog_us(), 0);
    }
}
