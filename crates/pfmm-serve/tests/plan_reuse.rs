//! The cache-correctness keystone: re-evaluating a cached [`FmmPlan`]
//! with fresh densities is *bitwise* identical to planning from scratch
//! and evaluating once.
//!
//! This is the property that makes plan caching a pure optimization.
//! `Fmm::plan` is deterministic for a fixed geometry (same tree, same
//! LET, same lists, same operator pseudo-inverses), and `Fmm::apply`
//! fixes every floating-point accumulation order, so a plan that has
//! already served other densities must produce the same bits for a new
//! density set as a freshly planned evaluation of it — under both the
//! barrier and the dependency-graph executor, for a scalar (Laplace) and
//! a vector (Stokes) kernel.

use std::sync::{Arc, Mutex};

use pfmm_core::{Fmm, FmmConfig, Schedule};
use pfmm_kernels::{Kernel, Laplace, Stokes};
use pfmm_mpisim::run;
use pfmm_serve::{densities, density_at};
use proptest::prelude::*;

fn config(schedule: Schedule) -> FmmConfig {
    FmmConfig {
        order: 3,
        q: 30,
        schedule,
        ..Default::default()
    }
}

/// Plan once, serve `pre_applies` other density sets through the plan
/// (dirtying every workspace), then evaluate `seed`'s densities — and
/// compare against a from-scratch plan+apply of the same request.
fn reused_equals_fresh(
    kernel: Arc<dyn Kernel>,
    schedule: Schedule,
    n: usize,
    geom_seed: u64,
    density_seed: u64,
    pre_applies: usize,
) {
    let fmm = Fmm::new(kernel, config(schedule));
    let sd = fmm.kernel().source_dim();
    let pts = pfmm_core::distrib::uniform_cube(n, geom_seed, 0);

    // The cached path: one plan, several applies, ours last.
    let cached_plan = run(1, |c| fmm.plan(c, pts.clone())).pop().unwrap();
    let cached_plan = Mutex::new(cached_plan);
    let reused = run(1, |c| {
        let mut plan = cached_plan.lock().unwrap();
        for k in 0..pre_applies {
            let other = densities(&plan, sd, density_seed ^ (0xA5A5_0000 + k as u64));
            fmm.apply(c, &mut plan, &other);
        }
        let den = densities(&plan, sd, density_seed);
        fmm.apply(c, &mut plan, &den).0
    })
    .pop()
    .unwrap();

    // The fresh path: plan and evaluate this request alone.
    let fresh_plan = Mutex::new(run(1, |c| fmm.plan(c, pts.clone())).pop().unwrap());
    let fresh = run(1, |c| {
        let mut plan = fresh_plan.lock().unwrap();
        let den = densities(&plan, sd, density_seed);
        fmm.apply(c, &mut plan, &den).0
    })
    .pop()
    .unwrap();

    assert_eq!(reused.len(), fresh.len());
    for (i, (a, b)) in reused.iter().zip(&fresh).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "component {i} differs: reused {a:e} vs fresh {b:e} \
             (schedule {schedule:?}, n {n}, geom {geom_seed}, density {density_seed})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn laplace_cached_plan_is_bitwise_fresh(
        n in 150usize..400,
        geom_seed in 0u64..1000,
        density_seed in 0u64..1000,
        pre_applies in 0usize..3,
    ) {
        for schedule in [Schedule::Barrier, Schedule::Graph] {
            reused_equals_fresh(
                Arc::new(Laplace),
                schedule,
                n,
                geom_seed,
                density_seed,
                pre_applies,
            );
        }
    }

    #[test]
    fn stokes_cached_plan_is_bitwise_fresh(
        n in 120usize..250,
        geom_seed in 0u64..1000,
        density_seed in 0u64..1000,
        pre_applies in 0usize..2,
    ) {
        for schedule in [Schedule::Barrier, Schedule::Graph] {
            reused_equals_fresh(
                Arc::new(Stokes::default()),
                schedule,
                n,
                geom_seed,
                density_seed,
                pre_applies,
            );
        }
    }
}

/// The same property through the serve stack proper: the `Executor`
/// serving a request out of a warm, already-used cache entry matches a
/// standalone plan+apply bit for bit.
#[test]
fn warm_cache_service_matches_standalone_evaluation() {
    use pfmm_core::plan_fingerprint;
    use pfmm_serve::{Batch, Executor, PlanCache, Request};
    use pfmm_trace::Tracer;

    let fmm = Arc::new(Fmm::new(Arc::new(Laplace), config(Schedule::Barrier)));
    let pts = pfmm_core::distrib::uniform_cube(300, 77, 0);
    let key = plan_fingerprint("laplace", fmm.config(), 1, &pts);
    let exec = Executor {
        fmm: Arc::clone(&fmm),
        cache: Arc::new(PlanCache::new(1 << 30)),
        workspaces: Arc::new(pfmm_serve::WorkspacePool::new(2)),
        geometries: Arc::new(vec![pts.clone()]),
        tracer: Arc::new(Tracer::off()),
        flight: None,
        exec_delay_us: 0,
    };
    let mk_batch = |ids: &[u64]| Batch {
        key,
        reqs: ids
            .iter()
            .map(|&id| Request {
                id,
                key,
                geom: 0,
                n: 300,
                arrive_us: 0,
                deadline_us: u64::MAX,
                priority: 1,
                density_seed: 5000 + id,
                est_cost_us: 1,
                est_build_us: 1,
            })
            .collect(),
        opened_us: 0,
        flushed_us: 0,
        charged_us: 0,
    };
    // Warm the cache with two unrelated requests, then serve ours.
    exec.execute_batch(mk_batch(&[0, 1]));
    let served = exec.execute_batch(mk_batch(&[2]));
    assert!(exec.cache.stats().hits >= 1, "second batch must hit");

    let plan = Mutex::new(run(1, |c| fmm.plan(c, pts.clone())).pop().unwrap());
    let standalone = run(1, |c| {
        let mut plan = plan.lock().unwrap();
        let den: Vec<f64> = plan
            .owned_gids()
            .iter()
            .map(|&g| density_at(g, 5002, 0))
            .collect();
        fmm.apply(c, &mut plan, &den).0
    })
    .pop()
    .unwrap();

    assert_eq!(served.reqs[0].pot.len(), standalone.len());
    for (a, b) in served.reqs[0].pot.iter().zip(&standalone) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Two batches racing on one plan through a workspace pool of size 1:
/// the checkouts serialize (the pool cap blocks the loser until the
/// winner returns its workspace) and both batches stay bitwise identical
/// to unraced executions of the same requests.
#[test]
fn pool_of_one_serializes_concurrent_batches_bitwise() {
    use pfmm_core::plan_fingerprint;
    use pfmm_serve::{Batch, Executor, PlanCache, Request, WorkspacePool};
    use pfmm_trace::Tracer;

    let fmm = Arc::new(Fmm::new(Arc::new(Laplace), config(Schedule::Barrier)));
    let pts = pfmm_core::distrib::uniform_cube(250, 91, 0);
    let key = plan_fingerprint("laplace", fmm.config(), 1, &pts);
    let mk_exec = |pool_cap: usize| Executor {
        fmm: Arc::clone(&fmm),
        cache: Arc::new(PlanCache::new(1 << 30)),
        workspaces: Arc::new(WorkspacePool::new(pool_cap)),
        geometries: Arc::new(vec![pts.clone()]),
        tracer: Arc::new(Tracer::off()),
        flight: None,
        exec_delay_us: 0,
    };
    let mk_batch = |ids: &[u64]| Batch {
        key,
        reqs: ids
            .iter()
            .map(|&id| Request {
                id,
                key,
                geom: 0,
                n: 250,
                arrive_us: 0,
                deadline_us: u64::MAX,
                priority: 1,
                density_seed: 9000 + id,
                est_cost_us: 1,
                est_build_us: 1,
            })
            .collect(),
        opened_us: 0,
        flushed_us: 0,
        charged_us: 0,
    };

    // Race two batches through a pool capped at one workspace.
    let exec = Arc::new(mk_exec(1));
    // Warm plan and workspace so both racers contend on checkout.
    exec.execute_batch(mk_batch(&[99]));
    let (a, b) = std::thread::scope(|s| {
        let ea = Arc::clone(&exec);
        let eb = Arc::clone(&exec);
        let ha = s.spawn(move || ea.execute_batch(mk_batch(&[0, 1])));
        let hb = s.spawn(move || eb.execute_batch(mk_batch(&[2, 3])));
        (ha.join().expect("batch a"), hb.join().expect("batch b"))
    });
    let s = exec.workspaces.stats();
    assert_eq!(s.checkouts, 3, "warm-up + both racers checked out");
    assert_eq!(s.misses, 1, "cap 1: one workspace ever built");
    assert_eq!(s.pooled, 1, "returned after the race");

    // Unraced reference runs through a fresh executor.
    let fresh = mk_exec(1);
    let ra = fresh.execute_batch(mk_batch(&[0, 1]));
    let rb = fresh.execute_batch(mk_batch(&[2, 3]));
    for (got, want) in [(&a, &ra), (&b, &rb)] {
        for (g, w) in got.reqs.iter().zip(&want.reqs) {
            assert_eq!(g.pot.len(), w.pot.len());
            for (x, y) in g.pot.iter().zip(&w.pot) {
                assert_eq!(x.to_bits(), y.to_bits(), "req {}", g.id);
            }
        }
    }
}
