//! Request conservation for the serve telemetry (DESIGN.md §14).
//!
//! Every request offered to the service must be accounted for exactly
//! once at drain: `pfmm_serve_offered_total` equals completions plus
//! the sum of every typed rejection (deadline_infeasible / shedding /
//! displaced), with nothing in flight. Holds under both the barrier
//! and graph executors, and metrics recording must leave the computed
//! potentials bitwise identical.

use std::sync::Arc;

use pfmm_core::{Fmm, FmmConfig, Schedule};
use pfmm_kernels::Laplace;
use pfmm_metrics::MetricsRegistry;
use pfmm_serve::{run_sim, Arrival, ObsConfig, ServiceConfig, SimConfig, WorkloadConfig};
use pfmm_trace::Tracer;

fn fmm(schedule: Schedule) -> Arc<Fmm> {
    Arc::new(Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 3,
            q: 40,
            schedule,
            ..Default::default()
        },
    ))
}

fn cfg(deadline_us: u64, reg: &Arc<MetricsRegistry>) -> SimConfig {
    SimConfig {
        workload: WorkloadConfig {
            seed: 42,
            requests: 24,
            n_points: 150,
            hot_geometries: 2,
            cold_fraction: 0.2,
            arrival: Arrival::Closed { concurrency: 4 },
            deadline_us,
            priority_levels: 2,
        },
        service: ServiceConfig {
            max_batch: 4,
            max_linger_us: 500,
            workers: 2,
            shed_high_us: u64::MAX,
            shed_low_us: u64::MAX,
        },
        cache_budget_bytes: 64 << 20,
        keep_potentials: true,
        obs: ObsConfig {
            registry: Some(Arc::clone(reg)),
            ..ObsConfig::default()
        },
    }
}

fn balance_holds(schedule: Schedule, deadline_us: u64) -> (u64, u64) {
    let reg = Arc::new(MetricsRegistry::new());
    let report = run_sim(
        fmm(schedule),
        "laplace",
        cfg(deadline_us, &reg),
        Arc::new(Tracer::off()),
    );
    let kl: &[(&str, &str)] = &[("kernel", "laplace")];
    let offered = reg
        .counter_value("pfmm_serve_offered_total", kl)
        .expect("offered counter exists");
    assert_eq!(
        offered,
        report.completed + report.rejected(),
        "at drain every offered request completed or was rejected \
         ({schedule:?}, deadline {deadline_us})"
    );
    assert_eq!(
        reg.counter_value("pfmm_serve_completed_total", kl),
        Some(report.completed),
        "completed counter mirrors the report"
    );
    for (reason, n) in &report.rejections {
        assert_eq!(
            reg.counter_value(
                "pfmm_serve_rejected_total",
                &[("kernel", "laplace"), ("reason", reason)],
            ),
            Some(*n),
            "typed rejection counter mirrors the report ({reason})"
        );
    }
    (report.completed, report.rejected())
}

#[test]
fn offered_equals_completed_plus_rejected_barrier() {
    let (completed, _) = balance_holds(Schedule::Barrier, 0);
    assert_eq!(completed, 24, "no deadline: everything completes");
    // A 1 µs relative deadline is infeasible for every request, so the
    // balance must hold entirely through the rejection side too.
    let (completed, rejected) = balance_holds(Schedule::Barrier, 1);
    assert_eq!(completed, 0, "1 µs deadline admits nothing");
    assert_eq!(rejected, 24);
}

#[test]
fn offered_equals_completed_plus_rejected_graph() {
    let (completed, _) = balance_holds(Schedule::Graph, 0);
    assert_eq!(completed, 24, "no deadline: everything completes");
    let (completed, rejected) = balance_holds(Schedule::Graph, 1);
    assert_eq!(completed, 0, "1 µs deadline admits nothing");
    assert_eq!(rejected, 24);
}

#[test]
fn potentials_bitwise_identical_with_metrics_enabled() {
    for schedule in [Schedule::Barrier, Schedule::Graph] {
        let on = Arc::new(MetricsRegistry::new());
        let off = Arc::new(MetricsRegistry::new());
        off.set_enabled(false);
        let a = run_sim(
            fmm(schedule),
            "laplace",
            cfg(0, &on),
            Arc::new(Tracer::off()),
        );
        let b = run_sim(
            fmm(schedule),
            "laplace",
            cfg(0, &off),
            Arc::new(Tracer::off()),
        );
        assert!(!on.is_empty(), "enabled registry recorded instruments");
        let (pa, pb) = (
            a.potentials.as_ref().expect("kept"),
            b.potentials.as_ref().expect("kept"),
        );
        assert_eq!(pa.len(), pb.len());
        for (id, va) in pa {
            let vb = &pb[id];
            assert_eq!(va.len(), vb.len(), "request {id} length ({schedule:?})");
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "request {id}: metrics changed bits ({schedule:?})"
                );
            }
        }
    }
}
