//! Fast Fourier transforms for the FFT-diagonalized V-list translation.
//!
//! The KIFMM's V-list (M2L) operator is a convolution on the regular grid
//! carrying the equivalent densities; diagonalizing it requires a 3-D FFT
//! (paper §IV: "It is based on a Fast Fourier Transform-based
//! diagonalization of the T operator"). No external FFT crate is used —
//! this substrate implements an iterative radix-2 transform with a
//! Bluestein fallback for arbitrary lengths, plus the 3-D tensor transform
//! built from 1-D passes.

pub mod complex;
pub mod fft1d;
pub mod fft3d;
pub mod rfft;

pub use complex::Complex;
pub use fft1d::{FftPlan, FftScratch};
pub use fft3d::Fft3;
pub use rfft::{RFft3, RFftScratch, RealFftPlan};
