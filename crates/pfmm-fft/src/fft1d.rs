//! 1-D FFT: iterative radix-2 with a Bluestein fallback for arbitrary
//! lengths. Plans cache twiddle factors so repeated transforms of the same
//! size (the per-octant M2L grids) pay setup once.

use crate::complex::Complex;

/// Reusable scratch for [`FftPlan::forward_with`] / [`FftPlan::inverse_with`].
///
/// The Bluestein path needs one padded work vector per transform; owning
/// it here lets a caller amortize that allocation across many transforms
/// (the zero-allocation steady state of the batched M2L). A default
/// (empty) scratch works for any plan — buffers grow on first use and
/// are then reused.
#[derive(Default)]
pub struct FftScratch {
    a: Vec<Complex>,
}

impl FftScratch {
    /// Heap bytes held, by allocated capacity.
    pub fn memory_bytes(&self) -> usize {
        self.a.capacity() * std::mem::size_of::<Complex>()
    }
}

/// A cached transform plan for a fixed length.
///
/// ```
/// use pfmm_fft::{Complex, FftPlan};
///
/// let plan = FftPlan::new(12); // non-power-of-two: Bluestein path
/// let x: Vec<Complex> = (0..12).map(|i| Complex::real(i as f64)).collect();
/// let mut y = x.clone();
/// plan.forward(&mut y);
/// plan.inverse(&mut y);
/// for (a, b) in x.iter().zip(&y) {
///     assert!((*a - *b).abs() < 1e-10);
/// }
/// ```
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

enum PlanKind {
    /// Power-of-two length: iterative Cooley–Tukey with cached twiddles.
    Radix2 { twiddles: Vec<Complex> },
    /// Arbitrary length via Bluestein's chirp-z: two radix-2 transforms of
    /// padded length `m`.
    Bluestein {
        m: usize,
        chirp: Vec<Complex>,
        /// Forward transform of the zero-padded conjugate chirp.
        bhat: Vec<Complex>,
        inner: Box<FftPlan>,
    },
}

impl FftPlan {
    /// Plan a transform of length `n` (`n >= 1`).
    pub fn new(n: usize) -> FftPlan {
        assert!(n >= 1, "FFT length must be positive");
        if n.is_power_of_two() {
            // Twiddles for all stages: w_m^k for m = 2,4,...,n.
            let mut twiddles = Vec::with_capacity(n.max(1));
            let mut m = 2;
            while m <= n {
                for k in 0..m / 2 {
                    twiddles.push(Complex::cis(
                        -2.0 * std::f64::consts::PI * k as f64 / m as f64,
                    ));
                }
                m <<= 1;
            }
            FftPlan {
                n,
                kind: PlanKind::Radix2 { twiddles },
            }
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let mut chirp = Vec::with_capacity(n);
            for k in 0..n {
                // w_k = e^{-iπ k² / n}; k² mod 2n keeps the argument small.
                let kk = (k * k) % (2 * n);
                chirp.push(Complex::cis(-std::f64::consts::PI * kk as f64 / n as f64));
            }
            let inner = Box::new(FftPlan::new(m));
            let mut b = vec![Complex::ZERO; m];
            b[0] = chirp[0].conj();
            for k in 1..n {
                b[k] = chirp[k].conj();
                b[m - k] = chirp[k].conj();
            }
            inner.forward(&mut b);
            FftPlan {
                n,
                kind: PlanKind::Bluestein {
                    m,
                    chirp,
                    bhat: b,
                    inner,
                },
            }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plan length is zero (never: lengths are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward DFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}`.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        self.forward_with(data, &mut FftScratch::default());
    }

    /// [`Self::forward`] reusing caller-owned scratch: alloc-free once
    /// the scratch has warmed to this plan's size. Bitwise identical to
    /// [`Self::forward`] (the Bluestein work vector starts all-zero
    /// either way).
    pub fn forward_with(&self, data: &mut [Complex], sc: &mut FftScratch) {
        assert_eq!(data.len(), self.n, "plan/buffer length mismatch");
        match &self.kind {
            PlanKind::Radix2 { twiddles } => radix2(data, twiddles),
            PlanKind::Bluestein {
                m,
                chirp,
                bhat,
                inner,
            } => {
                let n = self.n;
                sc.a.clear();
                sc.a.resize(*m, Complex::ZERO);
                let a = &mut sc.a;
                for k in 0..n {
                    a[k] = data[k] * chirp[k];
                }
                // `inner` is the padded power-of-two plan: always the
                // radix-2 (in-place, scratch-free) path, never recursive.
                inner.forward(a);
                for (x, b) in a.iter_mut().zip(bhat) {
                    *x *= *b;
                }
                inner.inverse(a);
                for k in 0..n {
                    data[k] = a[k] * chirp[k];
                }
            }
        }
    }

    /// In-place inverse DFT (normalized by `1/n`).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.inverse_with(data, &mut FftScratch::default());
    }

    /// [`Self::inverse`] reusing caller-owned scratch (see
    /// [`Self::forward_with`]).
    pub fn inverse_with(&self, data: &mut [Complex], sc: &mut FftScratch) {
        assert_eq!(data.len(), self.n, "plan/buffer length mismatch");
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward_with(data, sc);
        let inv = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.conj().scale(inv);
        }
    }
}

/// Iterative radix-2 Cooley–Tukey, decimation in time.
fn radix2(data: &mut [Complex], twiddles: &[Complex]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages; twiddles for stage of width m start at offset m/2-1.
    let mut m = 2;
    let mut toff = 0;
    while m <= n {
        let half = m / 2;
        let stage = &twiddles[toff..toff + half];
        let mut start = 0;
        while start < n {
            for k in 0..half {
                let w = stage[k];
                let u = data[start + k];
                let t = data[start + k + half] * w;
                data[start + k] = u + t;
                data[start + k + half] = u - t;
            }
            start += m;
        }
        toff += half;
        m <<= 1;
    }
}

/// Reference DFT used by tests (O(n²)).
#[doc(hidden)]
pub fn naive_dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &v) in x.iter().enumerate() {
                acc +=
                    v * Complex::cis(-2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Small deterministic LCG; avoids pulling rand into this substrate.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                Complex::new(a, b)
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = rand_signal(n, n as u64);
            let mut y = x.clone();
            FftPlan::new(n).forward(&mut y);
            assert_close(&y, &naive_dft(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary() {
        for n in [3usize, 5, 6, 7, 12, 15, 31] {
            let x = rand_signal(n, 100 + n as u64);
            let mut y = x.clone();
            FftPlan::new(n).forward(&mut y);
            assert_close(&y, &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [8usize, 10, 27, 32] {
            let plan = FftPlan::new(n);
            let x = rand_signal(n, 7 * n as u64);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert_close(&y, &x, 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 16;
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        FftPlan::new(n).forward(&mut x);
        for v in x {
            assert!((v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 32;
        let x = rand_signal(n, 5);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x;
        FftPlan::new(n).forward(&mut y);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }
}
