//! 3-D FFT on a cubic grid, built from 1-D passes along each axis.
//!
//! Layout: `data[(ix * n + iy) * n + iz]` — z fastest, matching the grid
//! embedding used by the M2L convolution.

use crate::complex::Complex;
use crate::fft1d::FftPlan;

/// A cached 3-D transform plan for an `n×n×n` grid.
pub struct Fft3 {
    n: usize,
    plan: FftPlan,
}

impl Fft3 {
    /// Plan transforms for an `n×n×n` grid.
    pub fn new(n: usize) -> Fft3 {
        Fft3 {
            n,
            plan: FftPlan::new(n),
        }
    }

    /// Grid side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of grid points (`n³`).
    pub fn len(&self) -> usize {
        self.n * self.n * self.n
    }

    /// True when the grid is empty (never: sides are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward 3-D DFT.
    ///
    /// # Panics
    /// Panics if `data.len() != n³`.
    pub fn forward(&self, data: &mut [Complex]) {
        self.transform(data, true);
    }

    /// In-place inverse 3-D DFT (normalized by `1/n³`).
    ///
    /// # Panics
    /// Panics if `data.len() != n³`.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.transform(data, false);
    }

    fn transform(&self, data: &mut [Complex], fwd: bool) {
        let n = self.n;
        assert_eq!(data.len(), n * n * n, "grid size mismatch");
        let mut line = vec![Complex::ZERO; n];
        let run = |line: &mut [Complex]| {
            if fwd {
                self.plan.forward(line);
            } else {
                self.plan.inverse(line);
            }
        };
        // z lines are contiguous.
        for xy in 0..n * n {
            run(&mut data[xy * n..(xy + 1) * n]);
        }
        // y lines: stride n.
        for ix in 0..n {
            for iz in 0..n {
                for iy in 0..n {
                    line[iy] = data[(ix * n + iy) * n + iz];
                }
                run(&mut line);
                for iy in 0..n {
                    data[(ix * n + iy) * n + iz] = line[iy];
                }
            }
        }
        // x lines: stride n².
        for iy in 0..n {
            for iz in 0..n {
                for ix in 0..n {
                    line[ix] = data[(ix * n + iy) * n + iz];
                }
                run(&mut line);
                for ix in 0..n {
                    data[(ix * n + iy) * n + iz] = line[ix];
                }
            }
        }
    }
}

/// Circular 3-D convolution via FFT: returns `a ⊛ b` on the `n×n×n` torus.
///
/// Used by tests and by the M2L operator verification; production M2L keeps
/// `b` (the kernel grid) pre-transformed.
pub fn convolve3(fft: &Fft3, a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    let mut ah = a.to_vec();
    let mut bh = b.to_vec();
    fft.forward(&mut ah);
    fft.forward(&mut bh);
    for (x, y) in ah.iter_mut().zip(&bh) {
        *x *= *y;
    }
    fft.inverse(&mut ah);
    ah
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(n: usize, x: usize, y: usize, z: usize) -> usize {
        (x * n + y) * n + z
    }

    #[test]
    fn roundtrip() {
        let n = 4;
        let fft = Fft3::new(n);
        let x: Vec<Complex> = (0..n * n * n)
            .map(|i| Complex::new((i % 7) as f64 - 3.0, (i % 5) as f64))
            .collect();
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_is_flat_spectrum() {
        let n = 4;
        let fft = Fft3::new(n);
        let mut x = vec![Complex::ZERO; n * n * n];
        x[0] = Complex::ONE;
        fft.forward(&mut x);
        for v in x {
            assert!((v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_with_shifted_impulse_shifts() {
        let n = 4;
        let fft = Fft3::new(n);
        let mut a = vec![Complex::ZERO; n * n * n];
        a[idx(n, 1, 2, 3)] = Complex::real(2.0);
        let mut b = vec![Complex::ZERO; n * n * n];
        b[idx(n, 1, 0, 0)] = Complex::ONE; // shift by +1 in x
        let c = convolve3(&fft, &a, &b);
        for (i, v) in c.iter().enumerate() {
            let want = if i == idx(n, 2, 2, 3) { 2.0 } else { 0.0 };
            assert!((v.re - want).abs() < 1e-10 && v.im.abs() < 1e-10, "at {i}");
        }
    }

    #[test]
    fn convolution_matches_direct_sum() {
        let n = 3;
        let fft = Fft3::new(n);
        let a: Vec<Complex> = (0..27).map(|i| Complex::real((i % 4) as f64)).collect();
        let b: Vec<Complex> = (0..27)
            .map(|i| Complex::real(((i * 3) % 5) as f64))
            .collect();
        let c = convolve3(&fft, &a, &b);
        // Direct circular convolution.
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let mut want = 0.0;
                    for i in 0..n {
                        for j in 0..n {
                            for k in 0..n {
                                let ai = idx(n, i, j, k);
                                let bi = idx(n, (x + n - i) % n, (y + n - j) % n, (z + n - k) % n);
                                want += a[ai].re * b[bi].re;
                            }
                        }
                    }
                    let got = c[idx(n, x, y, z)];
                    assert!((got.re - want).abs() < 1e-9 && got.im.abs() < 1e-9);
                }
            }
        }
    }
}
