//! Real-input transforms exploiting Hermitian symmetry.
//!
//! The M2L grids are real in physical space, so their spectra satisfy
//! `X[k] = conj(X[n − k])` and only half of the frequencies are
//! independent. These plans store (and the batched Hadamard multiplies)
//! only `kz ∈ 0..=n/2` — `n³/2 + O(n²)` entries instead of `n³` — which
//! halves both spectrum memory and the per-interaction flops of the
//! V-list translation.
//!
//! Conventions match [`crate::FftPlan`] / [`crate::Fft3`]: the forward
//! transform is unnormalized, the inverse carries the `1/n` (or `1/n³`)
//! factor, so `inverse(forward(x)) == x`.

use crate::complex::Complex;
use crate::fft1d::{FftPlan, FftScratch};

/// Reusable scratch for the `_with` variants of [`RealFftPlan`] and
/// [`RFft3`]: the packed half-length signal, one complex line for the
/// 3-D y/x passes, and the inner [`FftScratch`] for Bluestein lengths.
/// A default (empty) scratch works for any plan; buffers warm on first
/// use and are then reused allocation-free.
#[derive(Default)]
pub struct RFftScratch {
    z: Vec<Complex>,
    line: Vec<Complex>,
    fs: FftScratch,
}

impl RFftScratch {
    /// Heap bytes held, by allocated capacity.
    pub fn memory_bytes(&self) -> usize {
        (self.z.capacity() + self.line.capacity()) * std::mem::size_of::<Complex>()
            + self.fs.memory_bytes()
    }
}

/// 1-D real-to-complex / complex-to-real transform plan for even `n`.
///
/// The forward pass packs adjacent real pairs into a length-`n/2`
/// complex signal, runs one half-length complex FFT, and untangles the
/// even/odd sub-spectra — the classic trick that makes a real transform
/// cost about half a complex one.
pub struct RealFftPlan {
    n: usize,
    half: FftPlan,
    /// `e^{-2πik/n}` for `k ∈ 0..=n/2` (forward untangling twiddles).
    tw: Vec<Complex>,
}

impl RealFftPlan {
    /// Plan a real transform of even length `n >= 2`.
    pub fn new(n: usize) -> RealFftPlan {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "real FFT length must be even"
        );
        let tw = (0..=n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        RealFftPlan {
            n,
            half: FftPlan::new(n / 2),
            tw,
        }
    }

    /// Transform length (the real side).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plan length is zero (never: lengths are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Independent spectrum entries: `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward DFT of a real signal: writes `X[k]` for `k ∈ 0..=n/2`
    /// into `spec` (the remaining frequencies are `conj(X[n − k])`).
    ///
    /// # Panics
    /// Panics if `x.len() != n` or `spec.len() != n/2 + 1`.
    pub fn forward(&self, x: &[f64], spec: &mut [Complex]) {
        self.forward_with(x, spec, &mut RFftScratch::default());
    }

    /// [`Self::forward`] reusing caller-owned scratch: alloc-free once
    /// warmed, bitwise identical results.
    pub fn forward_with(&self, x: &[f64], spec: &mut [Complex], sc: &mut RFftScratch) {
        let n = self.n;
        let m = n / 2;
        assert_eq!(x.len(), n, "real input length");
        assert_eq!(spec.len(), m + 1, "half-spectrum length");
        sc.z.clear();
        sc.z.extend((0..m).map(|j| Complex::new(x[2 * j], x[2 * j + 1])));
        let z = &mut sc.z;
        self.half.forward_with(z, &mut sc.fs);
        for k in 0..=m {
            let zk = z[k % m];
            let zc = z[(m - k) % m].conj();
            let ze = (zk + zc).scale(0.5);
            let d = zk - zc;
            // Zo = d / (2i) = (d.im − i·d.re) / 2.
            let zo = Complex::new(d.im, -d.re).scale(0.5);
            spec[k] = ze + self.tw[k] * zo;
        }
    }

    /// Inverse DFT onto a real signal from its half spectrum
    /// (normalized by `1/n`, the counterpart of [`Self::forward`]).
    ///
    /// # Panics
    /// Panics if `spec.len() != n/2 + 1` or `x.len() != n`.
    pub fn inverse(&self, spec: &[Complex], x: &mut [f64]) {
        self.inverse_with(spec, x, &mut RFftScratch::default());
    }

    /// [`Self::inverse`] reusing caller-owned scratch (see
    /// [`Self::forward_with`]).
    pub fn inverse_with(&self, spec: &[Complex], x: &mut [f64], sc: &mut RFftScratch) {
        let n = self.n;
        let m = n / 2;
        assert_eq!(spec.len(), m + 1, "half-spectrum length");
        assert_eq!(x.len(), n, "real output length");
        sc.z.clear();
        sc.z.resize(m, Complex::ZERO);
        let z = &mut sc.z;
        for (k, zk) in z.iter_mut().enumerate() {
            let xk = spec[k];
            let xc = spec[m - k].conj();
            let ze = (xk + xc).scale(0.5);
            // conj of the forward twiddle: e^{+2πik/n}.
            let zo = self.tw[k].conj() * (xk - xc).scale(0.5);
            *zk = ze + Complex::new(-zo.im, zo.re);
        }
        self.half.inverse_with(z, &mut sc.fs);
        for (j, v) in z.iter().enumerate() {
            x[2 * j] = v.re;
            x[2 * j + 1] = v.im;
        }
    }
}

/// 3-D real transform on an `n×n×n` grid, half spectrum along z.
///
/// Real layout matches [`crate::Fft3`]: `data[(ix·n + iy)·n + iz]`, z
/// fastest. The spectrum keeps `kz ∈ 0..=n/2`:
/// `spec[(kx·n + ky)·h + kz]` with `h = n/2 + 1` — `n²·(n/2+1)` entries.
/// The discarded half is recovered from Hermitian symmetry
/// `X[kx,ky,kz] = conj(X[−kx,−ky,−kz mod n])` by the inverse.
pub struct RFft3 {
    n: usize,
    /// Half-spectrum z extent (`n/2 + 1`).
    h: usize,
    rplan: RealFftPlan,
    cplan: FftPlan,
}

impl RFft3 {
    /// Plan transforms for an `n×n×n` grid (`n` even).
    pub fn new(n: usize) -> RFft3 {
        RFft3 {
            n,
            h: n / 2 + 1,
            rplan: RealFftPlan::new(n),
            cplan: FftPlan::new(n),
        }
    }

    /// Grid side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Real grid points (`n³`).
    pub fn len(&self) -> usize {
        self.n * self.n * self.n
    }

    /// True when the grid is empty (never: sides are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Half-spectrum entries (`n²·(n/2 + 1)`).
    pub fn spectrum_len(&self) -> usize {
        self.n * self.n * self.h
    }

    /// Forward transform of a real grid into its half spectrum.
    ///
    /// # Panics
    /// Panics if `real.len() != n³` or `spec.len() != spectrum_len()`.
    pub fn forward(&self, real: &[f64], spec: &mut [Complex]) {
        self.forward_with(real, spec, &mut RFftScratch::default());
    }

    /// [`Self::forward`] reusing caller-owned scratch: alloc-free once
    /// warmed, bitwise identical results.
    pub fn forward_with(&self, real: &[f64], spec: &mut [Complex], sc: &mut RFftScratch) {
        let (n, h) = (self.n, self.h);
        assert_eq!(real.len(), n * n * n, "real grid size");
        assert_eq!(spec.len(), self.spectrum_len(), "spectrum size");
        // z: real-to-complex per contiguous row.
        for xy in 0..n * n {
            self.rplan.forward_with(
                &real[xy * n..(xy + 1) * n],
                &mut spec[xy * h..(xy + 1) * h],
                sc,
            );
        }
        // y and x: full complex passes per retained kz plane.
        sc.line.clear();
        sc.line.resize(n, Complex::ZERO);
        let RFftScratch { line, fs, .. } = sc;
        for ix in 0..n {
            for kz in 0..h {
                for iy in 0..n {
                    line[iy] = spec[(ix * n + iy) * h + kz];
                }
                self.cplan.forward_with(line, fs);
                for iy in 0..n {
                    spec[(ix * n + iy) * h + kz] = line[iy];
                }
            }
        }
        for iy in 0..n {
            for kz in 0..h {
                for ix in 0..n {
                    line[ix] = spec[(ix * n + iy) * h + kz];
                }
                self.cplan.forward_with(line, fs);
                for ix in 0..n {
                    spec[(ix * n + iy) * h + kz] = line[ix];
                }
            }
        }
    }

    /// Inverse transform of a half spectrum onto a real grid (normalized
    /// by `1/n³`). `spec` is consumed as scratch (overwritten with
    /// intermediate passes).
    ///
    /// # Panics
    /// Panics if `spec.len() != spectrum_len()` or `real.len() != n³`.
    pub fn inverse(&self, spec: &mut [Complex], real: &mut [f64]) {
        self.inverse_with(spec, real, &mut RFftScratch::default());
    }

    /// [`Self::inverse`] reusing caller-owned scratch (see
    /// [`Self::forward_with`]).
    pub fn inverse_with(&self, spec: &mut [Complex], real: &mut [f64], sc: &mut RFftScratch) {
        let (n, h) = (self.n, self.h);
        assert_eq!(spec.len(), self.spectrum_len(), "spectrum size");
        assert_eq!(real.len(), n * n * n, "real grid size");
        sc.line.clear();
        sc.line.resize(n, Complex::ZERO);
        {
            let RFftScratch { line, fs, .. } = sc;
            for iy in 0..n {
                for kz in 0..h {
                    for ix in 0..n {
                        line[ix] = spec[(ix * n + iy) * h + kz];
                    }
                    self.cplan.inverse_with(line, fs);
                    for ix in 0..n {
                        spec[(ix * n + iy) * h + kz] = line[ix];
                    }
                }
            }
            for ix in 0..n {
                for kz in 0..h {
                    for iy in 0..n {
                        line[iy] = spec[(ix * n + iy) * h + kz];
                    }
                    self.cplan.inverse_with(line, fs);
                    for iy in 0..n {
                        spec[(ix * n + iy) * h + kz] = line[iy];
                    }
                }
            }
        }
        for xy in 0..n * n {
            self.rplan.inverse_with(
                &spec[xy * h..(xy + 1) * h],
                &mut real[xy * n..(xy + 1) * n],
                sc,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft3d::Fft3;

    fn rand_real(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    /// The 1-D half spectrum must equal the first n/2+1 entries of the
    /// full complex DFT of the same (real) signal.
    #[test]
    fn r2c_matches_full_complex_dft() {
        for n in [2usize, 4, 8, 12, 16, 20] {
            let x = rand_real(n, n as u64);
            let plan = RealFftPlan::new(n);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.forward(&x, &mut spec);
            let full: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
            let want = crate::fft1d::naive_dft(&full);
            for k in 0..=n / 2 {
                assert!(
                    (spec[k] - want[k]).abs() < 1e-10 * n as f64,
                    "n={n} k={k}: {:?} vs {:?}",
                    spec[k],
                    want[k]
                );
            }
            // The discarded frequencies really are redundant.
            for k in n / 2 + 1..n {
                assert!((want[k] - want[n - k].conj()).abs() < 1e-10 * n as f64);
            }
        }
    }

    #[test]
    fn r2c_roundtrip_1d() {
        for n in [2usize, 4, 6, 8, 12, 24] {
            let x = rand_real(n, 7 * n as u64);
            let plan = RealFftPlan::new(n);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.forward(&x, &mut spec);
            let mut back = vec![0.0; n];
            plan.inverse(&spec, &mut back);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-12, "n={n}: {a} vs {b}");
            }
        }
    }

    /// 3-D half spectrum vs the full complex transform, and the 3-D
    /// round trip — the property pair the batched M2L relies on.
    #[test]
    fn rfft3_matches_full_transform_and_roundtrips() {
        for n in [4usize, 8, 12] {
            let x = rand_real(n * n * n, 31 + n as u64);
            let r = RFft3::new(n);
            let mut spec = vec![Complex::ZERO; r.spectrum_len()];
            r.forward(&x, &mut spec);

            let full = Fft3::new(n);
            let mut want: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
            full.forward(&mut want);
            let h = n / 2 + 1;
            for kx in 0..n {
                for ky in 0..n {
                    for kz in 0..h {
                        let got = spec[(kx * n + ky) * h + kz];
                        let w = want[(kx * n + ky) * n + kz];
                        assert!(
                            (got - w).abs() < 1e-9 * n as f64,
                            "n={n} ({kx},{ky},{kz}): {got:?} vs {w:?}"
                        );
                    }
                }
            }

            let mut back = vec![0.0; n * n * n];
            r.inverse(&mut spec, &mut back);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-11, "n={n}: {a} vs {b}");
            }
        }
    }

    /// Pointwise products of half spectra + c2r inverse must reproduce
    /// the full complex circular convolution — the Hadamard identity the
    /// batched V-list uses.
    #[test]
    fn half_spectrum_convolution_matches_complex_path() {
        let n = 8;
        let a = rand_real(n * n * n, 3);
        let b = rand_real(n * n * n, 5);
        let r = RFft3::new(n);
        let mut ah = vec![Complex::ZERO; r.spectrum_len()];
        let mut bh = vec![Complex::ZERO; r.spectrum_len()];
        r.forward(&a, &mut ah);
        r.forward(&b, &mut bh);
        for (x, y) in ah.iter_mut().zip(&bh) {
            *x *= *y;
        }
        let mut got = vec![0.0; n * n * n];
        r.inverse(&mut ah, &mut got);

        let full = Fft3::new(n);
        let ac: Vec<Complex> = a.iter().map(|&v| Complex::real(v)).collect();
        let bc: Vec<Complex> = b.iter().map(|&v| Complex::real(v)).collect();
        let want = crate::fft3d::convolve3(&full, &ac, &bc);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w.re).abs() < 1e-10 && w.im.abs() < 1e-10);
        }
    }
}
