//! A minimal complex number type.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number as a complex.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn cis_and_conj() {
        let w = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((w.re).abs() < 1e-15 && (w.im - 1.0).abs() < 1e-15);
        assert_eq!(w.conj().im, -w.im);
        assert!((w.abs() - 1.0).abs() < 1e-15);
    }
}
