//! Property-based tests of the FFT substrate.

use proptest::prelude::*;

use pfmm_fft::{Complex, Fft3, FftPlan};

fn arb_signal(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n..=n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Forward∘inverse is the identity for any length (radix-2 and
    /// Bluestein paths both covered by the range).
    #[test]
    fn roundtrip_any_length(n in 1usize..70, seed in 0u64..1000) {
        let plan = FftPlan::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = (i as f64 + seed as f64) * 0.7;
                Complex::new(t.sin(), t.cos())
            })
            .collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// The DFT is linear: F(αx + y) == αF(x) + F(y).
    #[test]
    fn linearity(x in arb_signal(24), y in arb_signal(24), alpha in -3.0f64..3.0) {
        let plan = FftPlan::new(24);
        let mut lhs: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| a.scale(alpha) + *b)
            .collect();
        plan.forward(&mut lhs);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);
        for ((l, a), b) in lhs.iter().zip(&fx).zip(&fy) {
            let want = a.scale(alpha) + *b;
            prop_assert!((*l - want).abs() < 1e-9);
        }
    }

    /// Parseval: energy is conserved up to the 1/n normalization.
    #[test]
    fn parseval(x in arb_signal(32)) {
        let plan = FftPlan::new(32);
        let te: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x;
        plan.forward(&mut y);
        let fe: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((te - fe).abs() < 1e-9 * te.max(1.0));
    }

    /// A time shift multiplies the spectrum by a unit-modulus phase —
    /// magnitudes are invariant.
    #[test]
    fn shift_preserves_magnitudes(x in arb_signal(16), shift in 1usize..16) {
        let plan = FftPlan::new(16);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut shifted: Vec<Complex> = x[shift..].to_vec();
        shifted.extend_from_slice(&x[..shift]);
        plan.forward(&mut shifted);
        for (a, b) in fx.iter().zip(&shifted) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-9);
        }
    }

    /// 3-D roundtrip on small grids.
    #[test]
    fn fft3_roundtrip(n in 2usize..7, seed in 0u64..100) {
        let fft = Fft3::new(n);
        let x: Vec<Complex> = (0..n * n * n)
            .map(|i| Complex::new(((i as f64 + seed as f64) * 0.31).sin(), 0.2))
            .collect();
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }
}
