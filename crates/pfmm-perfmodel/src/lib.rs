//! Analytic scaling model — the bridge from laptop-scale measured runs to
//! the paper's 512–65,536-rank figures.
//!
//! The paper's §III-D gives the complexity of each phase:
//!
//! - sort: `O(n/p · log(n/p) + p log p)` (sample + bitonic sort)
//! - LET/ghost exchange and the up-density reduce-and-scatter:
//!   `O(√p · m)` with `m = (n/p)^{2/3}` shared octants (uniform), times
//!   the per-octant payload, plus `t_s log p` latency
//! - local evaluation: `O(n/p)`
//!
//! [`FmmModel::fit`] calibrates the constants of those terms against
//! measured small-`p` runs (least squares per term), and
//! [`FmmModel::predict`] evaluates the same closed forms at any `(n, p)` —
//! reproducing the *shape* of Figures 3 and 4 and the extrapolated
//! Table II column at the paper's scales.

/// Interconnect/throughput parameters of the modeled machine.
#[derive(Copy, Clone, Debug)]
pub struct MachineParams {
    /// Message latency, seconds (the `t_s` of §III-C).
    pub ts: f64,
    /// Per-byte transfer time, seconds (the `t_w`).
    pub tw: f64,
}

impl MachineParams {
    /// Cray XT5 (Kraken)-era SeaStar2+ interconnect: ≈6 µs latency,
    /// ≈2 GB/s usable per-link bandwidth.
    pub fn kraken() -> MachineParams {
        MachineParams {
            ts: 6e-6,
            tw: 0.5e-9,
        }
    }

    /// Dell cluster (Lincoln)-era InfiniBand SDR: ≈5 µs latency,
    /// ≈1 GB/s usable bandwidth (the paper's GPU machine).
    pub fn lincoln() -> MachineParams {
        MachineParams {
            ts: 5e-6,
            tw: 1.0e-9,
        }
    }
}

/// One measured run used for calibration.
#[derive(Copy, Clone, Debug)]
pub struct Sample {
    /// Global point count.
    pub n: f64,
    /// Ranks.
    pub p: f64,
    /// Seconds in the parallel sort.
    pub sort_secs: f64,
    /// Seconds in the rest of setup (tree, LET, lists, balance).
    pub setup_rest_secs: f64,
    /// Seconds of local evaluation (all compute phases).
    pub eval_secs: f64,
    /// Bytes sent by the busiest rank during the reduce-and-scatter.
    pub comm_bytes: f64,
}

/// Per-phase prediction at some `(n, p)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Prediction {
    /// Parallel sort seconds.
    pub sort: f64,
    /// Remaining setup seconds.
    pub setup_rest: f64,
    /// Local evaluation seconds.
    pub eval: f64,
    /// Reduce-and-scatter seconds.
    pub comm: f64,
}

impl Prediction {
    /// Setup total.
    pub fn setup(&self) -> f64 {
        self.sort + self.setup_rest
    }

    /// Evaluation total (compute + communication).
    pub fn evaluation(&self) -> f64 {
        self.eval + self.comm
    }

    /// Wall-clock total.
    pub fn total(&self) -> f64 {
        self.setup() + self.evaluation()
    }
}

/// The calibrated model.
#[derive(Copy, Clone, Debug)]
pub struct FmmModel {
    machine: MachineParams,
    /// Seconds per `n/p · log2(n/p)` sort unit.
    c_sort: f64,
    /// Seconds per `(n/p)^{2/3}` setup-exchange unit.
    c_setup: f64,
    /// Seconds per local point evaluated.
    c_eval: f64,
    /// Reduce-and-scatter bytes per `(n/p)^{2/3} · (3√p − 2)` unit.
    c_comm_bytes: f64,
}

impl FmmModel {
    /// Least-squares fit of the per-term constants from measured runs.
    ///
    /// Each constant has a single closed-form complexity term, so the fit
    /// is four independent one-parameter regressions (`c = Σ y·x / Σ x²`).
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn fit(machine: MachineParams, samples: &[Sample]) -> FmmModel {
        assert!(!samples.is_empty(), "need at least one calibration sample");
        fn fit1(xy: impl Iterator<Item = (f64, f64)>) -> f64 {
            let (mut sxy, mut sxx) = (0.0, 0.0);
            for (x, y) in xy {
                sxy += x * y;
                sxx += x * x;
            }
            if sxx > 0.0 {
                sxy / sxx
            } else {
                0.0
            }
        }
        let c_sort = fit1(samples.iter().map(|s| (sort_term(s.n, s.p), s.sort_secs)));
        let c_setup = fit1(
            samples
                .iter()
                .map(|s| (setup_term(s.n, s.p), s.setup_rest_secs)),
        );
        let c_eval = fit1(samples.iter().map(|s| (s.n / s.p, s.eval_secs)));
        let c_comm_bytes = fit1(
            samples
                .iter()
                .filter(|s| s.p > 1.0)
                .map(|s| (comm_term(s.n, s.p), s.comm_bytes)),
        );
        FmmModel {
            machine,
            c_sort,
            c_setup,
            c_eval,
            c_comm_bytes,
        }
    }

    /// Build a model from explicit constants (tests, what-if studies).
    pub fn from_constants(
        machine: MachineParams,
        c_sort: f64,
        c_setup: f64,
        c_eval: f64,
        c_comm_bytes: f64,
    ) -> FmmModel {
        FmmModel {
            machine,
            c_sort,
            c_setup,
            c_eval,
            c_comm_bytes,
        }
    }

    /// Predict phase times for `n` points on `p` ranks.
    pub fn predict(&self, n: f64, p: f64) -> Prediction {
        let log2p = p.log2().max(0.0);
        let comm_bytes = self.c_comm_bytes * comm_term(n, p);
        Prediction {
            sort: self.c_sort * sort_term(n, p) + self.machine.ts * p.sqrt().max(1.0) * log2p,
            setup_rest: self.c_setup * setup_term(n, p) + self.machine.ts * log2p,
            eval: self.c_eval * (n / p),
            comm: self.machine.ts * log2p + self.machine.tw * comm_bytes,
        }
    }

    /// Parallel efficiency of a strong-scaling run relative to `p0` ranks.
    pub fn strong_efficiency(&self, n: f64, p0: f64, p: f64) -> f64 {
        (self.predict(n, p0).total() * p0) / (self.predict(n, p).total() * p)
    }
}

/// `n/p · log2(n/p)` — the local-sort term.
fn sort_term(n: f64, p: f64) -> f64 {
    let local = (n / p).max(2.0);
    local * local.log2()
}

/// `(n/p)^{2/3}` — the surface-octant term of the setup exchanges.
fn setup_term(n: f64, p: f64) -> f64 {
    (n / p).powf(2.0 / 3.0)
}

/// `(n/p)^{2/3} · (3√p − 2)` — the reduce-and-scatter traffic bound of
/// §III-C.
fn comm_term(n: f64, p: f64) -> f64 {
    (n / p).powf(2.0 / 3.0) * (3.0 * p.sqrt() - 2.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> FmmModel {
        FmmModel::from_constants(MachineParams::kraken(), 2e-8, 1e-6, 2e-6, 100.0)
    }

    #[test]
    fn fit_recovers_constants() {
        let samples: Vec<Sample> = [(1e6, 1.0), (1e6, 4.0), (4e6, 8.0), (2e6, 16.0)]
            .iter()
            .map(|&(n, p)| Sample {
                n,
                p,
                sort_secs: 2e-8 * sort_term(n, p),
                setup_rest_secs: 1e-6 * setup_term(n, p),
                eval_secs: 2e-6 * (n / p),
                comm_bytes: 100.0 * comm_term(n, p),
            })
            .collect();
        let fitted = FmmModel::fit(MachineParams::kraken(), &samples);
        assert!((fitted.c_sort - 2e-8).abs() < 1e-12);
        assert!((fitted.c_setup - 1e-6).abs() < 1e-10);
        assert!((fitted.c_eval - 2e-6).abs() < 1e-10);
        assert!((fitted.c_comm_bytes - 100.0).abs() < 1e-6);
    }

    #[test]
    fn weak_scaling_eval_is_flat() {
        let m = toy_model();
        let per_rank = 1e5;
        let t16 = m.predict(per_rank * 16.0, 16.0);
        let t65536 = m.predict(per_rank * 65536.0, 65536.0);
        assert!(
            (t16.eval - t65536.eval).abs() < 1e-9,
            "local eval constant in weak scaling"
        );
        // Communication grows like sqrt(p): the paper's observed 1.5x
        // creep from 16 to 64k cores comes from this term.
        assert!(t65536.comm > t16.comm);
        let growth = t65536.comm / t16.comm.max(1e-30);
        assert!(growth > 10.0 && growth < 200.0, "sqrt(p) growth: {growth}");
    }

    #[test]
    fn strong_scaling_efficiency_decays_gracefully() {
        let m = toy_model();
        let n = 1e8;
        let e2 = m.strong_efficiency(n, 512.0, 1024.0);
        let e16 = m.strong_efficiency(n, 512.0, 8192.0);
        assert!(e2 > 0.8 && e2 <= 1.01, "doubling stays efficient: {e2}");
        assert!(e16 > 0.4, "the paper's 80-90% band at 8k: {e16}");
        assert!(e16 < e2, "efficiency decays with p");
    }

    #[test]
    fn comm_term_matches_paper_bound() {
        // 3·√p − 2 at p = 4 is 4, exactly the Σ min(2^{d−i−1}, 2^i) of
        // the paper's derivation.
        assert!((comm_term(1e6, 4.0) / (1e6f64 / 4.0).powf(2.0 / 3.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn predictions_positive_and_finite() {
        let m = toy_model();
        for &(n, p) in &[(1e4, 1.0), (3e10, 65536.0), (2e8, 512.0)] {
            let pr = m.predict(n, p);
            for v in [pr.sort, pr.setup_rest, pr.eval, pr.comm] {
                assert!(v.is_finite() && v >= 0.0);
            }
            assert!(pr.total() > 0.0);
        }
    }

    #[test]
    fn table2_scale_sanity() {
        // At the paper's Table II point (150k pts/rank × 65536 ranks,
        // Stokes) a model with paper-like constants lands in tens of
        // seconds, not milliseconds or hours.
        let m = FmmModel::from_constants(MachineParams::kraken(), 2e-8, 5e-6, 6e-4, 2000.0);
        let pr = m.predict(150_000.0 * 65536.0, 65536.0);
        assert!(
            pr.evaluation() > 10.0 && pr.evaluation() < 1000.0,
            "{:?}",
            pr
        );
    }
}
