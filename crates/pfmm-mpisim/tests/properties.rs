//! Property-based tests of the message-passing runtime and collectives.

use proptest::prelude::*;

use pfmm_mpisim::collectives::{allgatherv, allreduce, alltoallv, bcast, exscan_sum_u64};
use pfmm_mpisim::run;

proptest! {
    // Each case spawns rank threads; keep the case count modest.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// alltoallv is a transpose: received[src][..] == what src sent to us.
    #[test]
    fn alltoallv_transposes(p in 1usize..6, seed in 0u64..1000) {
        let outs = run(p, |c| {
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|dest| {
                    let len = ((seed as usize + c.rank() * 3 + dest) % 5) + 1;
                    (0..len).map(|i| (c.rank() * 1000 + dest * 100 + i) as u64).collect()
                })
                .collect();
            (outgoing.clone(), alltoallv(c, outgoing))
        });
        for (rank, (_, received)) in outs.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                prop_assert_eq!(buf, &outs[src].0[rank]);
            }
        }
    }

    /// allreduce(sum) equals the local fold of everyone's values, on
    /// every rank.
    #[test]
    fn allreduce_equals_fold(p in 1usize..7, vals in prop::collection::vec(-100i64..100, 6)) {
        let outs = run(p, |c| allreduce(c, vec![vals[c.rank() % vals.len()]], |a, b| a + b));
        let want: i64 = (0..p).map(|r| vals[r % vals.len()]).sum();
        for o in outs {
            prop_assert_eq!(o, vec![want]);
        }
    }

    /// allgatherv concatenates in rank order, preserving every element.
    #[test]
    fn allgatherv_concatenates(p in 1usize..6, base in 0u32..100) {
        let outs = run(p, |c| {
            let mine: Vec<u32> = (0..c.rank() + 1).map(|i| base + (c.rank() * 10 + i) as u32).collect();
            allgatherv(c, &mine)
        });
        let mut want = Vec::new();
        for r in 0..p {
            want.extend((0..r + 1).map(|i| base + (r * 10 + i) as u32));
        }
        for o in outs {
            prop_assert_eq!(&o, &want);
        }
    }

    /// Exclusive scan is the prefix of the reduction.
    #[test]
    fn exscan_prefix(p in 1usize..8, v in 1u64..50) {
        let outs = run(p, |c| exscan_sum_u64(c, v + c.rank() as u64));
        for (r, o) in outs.iter().enumerate() {
            let want: u64 = (0..r).map(|k| v + k as u64).sum();
            prop_assert_eq!(*o, want);
        }
    }

    /// Broadcast delivers rank 0's payload everywhere, any size.
    #[test]
    fn bcast_delivers(p in 1usize..9, data in prop::collection::vec(-1.0f64..1.0, 0..20)) {
        let outs = run(p, |c| {
            let mine = if c.rank() == 0 { data.clone() } else { Vec::new() };
            bcast(c, mine)
        });
        for o in outs {
            prop_assert_eq!(&o, &data);
        }
    }

    /// Point-to-point FIFO ordering per (source, tag) holds under
    /// interleaved tags.
    #[test]
    fn p2p_fifo_per_tag(n_msgs in 1usize..30) {
        let outs = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..n_msgs {
                    c.send(1, (i % 3) as u32, &[i as u64]);
                }
                Vec::new()
            } else {
                // Drain per tag: each tag's stream must be increasing.
                let mut got: Vec<Vec<u64>> = vec![Vec::new(); 3];
                for tag in 0..3u32 {
                    let count = (n_msgs + 2 - tag as usize) / 3;
                    for _ in 0..count {
                        got[tag as usize].extend(c.recv::<u64>(0, tag));
                    }
                }
                got.into_iter().flatten().collect()
            }
        });
        let mut seen = outs[1].clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_msgs as u64).collect::<Vec<_>>());
    }
}
