//! An in-process message-passing runtime — the reproduction's stand-in for
//! MPI.
//!
//! The paper runs on 65,536 MPI processes; this crate provides the same
//! programming model at laptop scale: an SPMD [`run`] launcher where every
//! *rank* is an OS thread, tagged point-to-point [`Comm::send`] /
//! [`Comm::recv`] with per-pair FIFO ordering, and the collectives the
//! paper's algorithms use (barrier, allgather(v), alltoallv, allreduce,
//! exclusive scan). Sends are buffered (unbounded channels), so the
//! communication patterns of the paper — pairwise LET exchanges, hypercube
//! rounds — cannot deadlock on rendezvous.
//!
//! Every rank records message and byte counters ([`CommStats`]); the
//! scaling harnesses read them to verify the paper's communication-volume
//! claims (e.g. the `O(√p)` growth of shared-octant traffic) for real.

pub mod collectives;
pub mod comm;
pub mod obs;

pub use comm::{
    run, CollectiveKind, Comm, CommMatrix, CommStats, PeerStats, RecvReq, SendReq, Wire,
};
