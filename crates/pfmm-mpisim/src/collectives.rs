//! Collective operations built from the point-to-point layer.
//!
//! These mirror the MPI collectives the paper's algorithms call out:
//! `MPI_AllGather` for the geometric partition boundaries, `alltoallv` for
//! point redistribution, reductions/scans for the load-balancing prefix
//! sums. Reductions and broadcasts use binomial trees (`O(log p)` rounds);
//! the hypercube reduce-scatter of the paper's Algorithm 3 is *not* here —
//! it is FMM-specific and lives in `pfmm-core::reduce`.

use crate::comm::{CollectiveKind, Comm, Wire};

/// Tag space reserved for collectives (user code must stay below this).
const TAG_COLL: u32 = 0x8000_0000;
const TAG_REDUCE: u32 = TAG_COLL;
const TAG_BCAST: u32 = TAG_COLL + 1;
const TAG_GATHER: u32 = TAG_COLL + 2;
const TAG_A2A: u32 = TAG_COLL + 3;
const TAG_BARRIER: u32 = TAG_COLL + 4;

/// Synchronize all ranks.
pub fn barrier(c: &Comm) {
    c.collective(CollectiveKind::Barrier, || {
        // Empty-payload reduce-to-0 followed by broadcast.
        reduce_vec::<u8>(c, Vec::new(), TAG_BARRIER, |_, _| {
            unreachable!("empty payload")
        });
        bcast_vec::<u8>(c, Vec::new(), TAG_BARRIER);
    });
}

/// Broadcast `data` from rank 0 to all ranks; every rank returns the
/// root's vector.
pub fn bcast<T: Wire>(c: &Comm, data: Vec<T>) -> Vec<T> {
    c.collective(CollectiveKind::Bcast, || bcast_vec(c, data, TAG_BCAST))
}

fn bcast_vec<T: Wire>(c: &Comm, data: Vec<T>, tag: u32) -> Vec<T> {
    let p = c.size();
    let r = c.rank();
    let mut buf = data;
    let mut top = 1usize;
    while top < p {
        top <<= 1;
    }
    let mut step = top >> 1;
    while step >= 1 {
        if r.is_multiple_of(2 * step) {
            if r + step < p {
                c.send(r + step, tag, &buf);
            }
        } else if r % (2 * step) == step {
            buf = c.recv::<T>(r - step, tag);
        }
        step >>= 1;
    }
    buf
}

/// Elementwise reduction of equal-length vectors to rank 0 (binomial
/// tree); other ranks return an empty vector.
fn reduce_vec<T: Wire>(c: &Comm, data: Vec<T>, tag: u32, op: impl Fn(T, T) -> T) -> Vec<T> {
    let p = c.size();
    let r = c.rank();
    let mut acc = data;
    let mut step = 1usize;
    while step < p {
        if r % (2 * step) == step {
            c.send_vec(r - step, tag, acc);
            return Vec::new();
        } else if r.is_multiple_of(2 * step) && r + step < p {
            let other = c.recv::<T>(r + step, tag);
            debug_assert_eq!(other.len(), acc.len(), "reduce length mismatch");
            for (a, b) in acc.iter_mut().zip(other) {
                *a = op(*a, b);
            }
        }
        step <<= 1;
    }
    acc
}

/// Elementwise all-reduce: every rank gets the reduction of all ranks'
/// equal-length vectors.
pub fn allreduce<T: Wire>(c: &Comm, data: Vec<T>, op: impl Fn(T, T) -> T) -> Vec<T> {
    c.collective(CollectiveKind::Reduce, || {
        let reduced = reduce_vec(c, data, TAG_REDUCE, op);
        bcast_vec(c, reduced, TAG_REDUCE)
    })
}

/// All-reduce of a single value.
pub fn allreduce_one<T: Wire>(c: &Comm, v: T, op: impl Fn(T, T) -> T) -> T {
    allreduce(c, vec![v], op)[0]
}

/// Sum all-reduce for a single `u64`.
pub fn allreduce_sum_u64(c: &Comm, v: u64) -> u64 {
    allreduce_one(c, v, |a, b| a + b)
}

/// Max all-reduce for a single `f64`.
pub fn allreduce_max_f64(c: &Comm, v: f64) -> f64 {
    allreduce_one(c, v, f64::max)
}

/// Gather variable-length contributions to every rank, concatenated in
/// rank order (MPI_Allgatherv).
pub fn allgatherv<T: Wire>(c: &Comm, data: &[T]) -> Vec<T> {
    c.collective(CollectiveKind::Allgather, || {
        let p = c.size();
        let r = c.rank();
        // Gather to root.
        let mut all: Vec<Vec<T>> = Vec::new();
        if r == 0 {
            all = Vec::with_capacity(p);
            all.push(data.to_vec());
            for src in 1..p {
                all.push(c.recv::<T>(src, TAG_GATHER));
            }
        } else {
            c.send(0, TAG_GATHER, data);
        }
        let flat: Vec<T> = if r == 0 { all.concat() } else { Vec::new() };
        bcast_vec(c, flat, TAG_GATHER)
    })
}

/// Fixed-length allgather: every rank contributes one value; returns the
/// values in rank order.
pub fn allgather_one<T: Wire>(c: &Comm, v: T) -> Vec<T> {
    allgatherv(c, &[v])
}

/// Per-rank segment lengths of an `allgatherv` (needed when the caller
/// must know which elements came from which rank).
pub fn allgatherv_counts<T: Wire>(c: &Comm, data: &[T]) -> (Vec<T>, Vec<usize>) {
    let counts: Vec<u64> = allgather_one(c, data.len() as u64);
    let flat = allgatherv(c, data);
    (flat, counts.into_iter().map(|v| v as usize).collect())
}

/// Personalized all-to-all with variable counts: `outgoing[k]` goes to
/// rank `k`; returns the vectors received, indexed by source rank.
///
/// # Panics
/// Panics if `outgoing.len() != size`.
pub fn alltoallv<T: Wire>(c: &Comm, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
    c.collective(CollectiveKind::Alltoall, || {
        let p = c.size();
        assert_eq!(outgoing.len(), p, "one outgoing buffer per rank");
        for (dest, buf) in outgoing.into_iter().enumerate() {
            c.send_vec(dest, TAG_A2A, buf);
        }
        (0..p).map(|src| c.recv::<T>(src, TAG_A2A)).collect()
    })
}

/// Exclusive prefix sum over one `u64` per rank (MPI_Exscan): rank k
/// returns the sum of values on ranks `0..k` (0 on rank 0).
pub fn exscan_sum_u64(c: &Comm, v: u64) -> u64 {
    c.collective(CollectiveKind::Scan, || {
        let all = allgather_one(c, v);
        all[..c.rank()].iter().sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn bcast_from_root() {
        for p in [1, 2, 3, 4, 7, 8] {
            let out = run(p, |c| {
                let data = if c.rank() == 0 {
                    vec![3.5f64, 4.5]
                } else {
                    Vec::new()
                };
                bcast(c, data)
            });
            for v in out {
                assert_eq!(v, vec![3.5, 4.5], "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for p in 1..=9 {
            let out = run(p, |c| allreduce_sum_u64(c, c.rank() as u64 + 1));
            let want = (p * (p + 1) / 2) as u64;
            assert!(out.iter().all(|v| *v == want), "p={p}");
        }
    }

    #[test]
    fn allreduce_vector_min() {
        let out = run(4, |c| {
            let v = vec![c.rank() as i64, -(c.rank() as i64)];
            allreduce(c, v, i64::min)
        });
        for v in out {
            assert_eq!(v, vec![0, -3]);
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let out = run(4, |c| {
            let mine: Vec<u32> = (0..c.rank() as u32).collect();
            allgatherv(c, &mine)
        });
        let want = vec![0u32, 0, 1, 0, 1, 2];
        for v in out {
            assert_eq!(v, want);
        }
    }

    #[test]
    fn allgatherv_counts_match() {
        let out = run(3, |c| {
            let mine = vec![c.rank() as u8; c.rank() + 1];
            allgatherv_counts(c, &mine)
        });
        for (flat, counts) in out {
            assert_eq!(counts, vec![1, 2, 3]);
            assert_eq!(flat, vec![0u8, 1, 1, 2, 2, 2]);
        }
    }

    #[test]
    fn alltoallv_transpose() {
        let p = 4;
        let out = run(p, |c| {
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|dest| vec![(c.rank() * 10 + dest) as u64])
                .collect();
            alltoallv(c, outgoing)
        });
        for (rank, recvd) in out.iter().enumerate() {
            for (src, buf) in recvd.iter().enumerate() {
                assert_eq!(buf, &vec![(src * 10 + rank) as u64]);
            }
        }
    }

    #[test]
    fn exscan_prefix() {
        let out = run(5, |c| exscan_sum_u64(c, 2));
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn barrier_completes() {
        // Smoke test: a barrier between two phases does not deadlock and
        // phases stay ordered per rank.
        let out = run(6, |c| {
            let a = allreduce_sum_u64(c, 1);
            barrier(c);
            let b = allreduce_sum_u64(c, 2);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!((a, b), (6, 12));
        }
    }
}
