//! Mirror of [`CommStats`](crate::CommStats) into the always-on
//! telemetry registry.
//!
//! The simulated MPI layer already keeps authoritative per-rank and
//! per-`(peer, collective)` traffic totals; this module re-publishes
//! them as monotonic counters so a live scrape sees communication
//! volume without draining a trace. Recording happens once per
//! evaluation (cold path), mirroring the *same* `CommStats` value the
//! caller stores in its result — the conservation test in `pfmm-core`
//! holds the two equal cell for cell.

use crate::comm::CommStats;
use pfmm_metrics::MetricsRegistry;

/// Add `stats` (a per-run delta or an end-of-run total from a fresh
/// communicator) onto rank-labelled comm counters:
///
/// - `pfmm_comm_{sent,recv}_{msgs,bytes}_total{rank}` — rank totals;
/// - `pfmm_comm_peer_{sent,recv}_{msgs,bytes}_total{rank,peer,collective}`
///   — the per-`(peer, collective)` cells.
pub fn record_comm(reg: &MetricsRegistry, rank: usize, stats: &CommStats) {
    if !reg.enabled() {
        return;
    }
    let r = rank.to_string();
    let rl: &[(&str, &str)] = &[("rank", &r)];
    reg.counter("pfmm_comm_sent_msgs_total", rl)
        .add(stats.sent_msgs);
    reg.counter("pfmm_comm_sent_bytes_total", rl)
        .add(stats.sent_bytes);
    reg.counter("pfmm_comm_recv_msgs_total", rl)
        .add(stats.recv_msgs);
    reg.counter("pfmm_comm_recv_bytes_total", rl)
        .add(stats.recv_bytes);
    for (&(peer, kind), ps) in &stats.by_peer {
        let p = peer.to_string();
        let labels: &[(&str, &str)] = &[("rank", &r), ("peer", &p), ("collective", kind.label())];
        reg.counter("pfmm_comm_peer_sent_msgs_total", labels)
            .add(ps.sent_msgs);
        reg.counter("pfmm_comm_peer_sent_bytes_total", labels)
            .add(ps.sent_bytes);
        reg.counter("pfmm_comm_peer_recv_msgs_total", labels)
            .add(ps.recv_msgs);
        reg.counter("pfmm_comm_peer_recv_bytes_total", labels)
            .add(ps.recv_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::PeerStats;
    use crate::CollectiveKind;

    #[test]
    fn mirror_matches_stats_cell_for_cell() {
        let mut stats = CommStats {
            sent_msgs: 3,
            sent_bytes: 300,
            recv_msgs: 2,
            recv_bytes: 200,
            ..Default::default()
        };
        stats.by_peer.insert(
            (1, CollectiveKind::P2p),
            PeerStats {
                sent_msgs: 2,
                sent_bytes: 180,
                recv_msgs: 1,
                recv_bytes: 90,
            },
        );
        stats.by_peer.insert(
            (0, CollectiveKind::Reduce),
            PeerStats {
                sent_msgs: 1,
                sent_bytes: 120,
                recv_msgs: 1,
                recv_bytes: 110,
            },
        );
        let reg = MetricsRegistry::new();
        record_comm(&reg, 7, &stats);
        record_comm(&reg, 7, &stats); // counters accumulate across runs
        assert_eq!(
            reg.counter_value("pfmm_comm_sent_bytes_total", &[("rank", "7")]),
            Some(600)
        );
        assert_eq!(
            reg.counter_value(
                "pfmm_comm_peer_sent_bytes_total",
                &[("rank", "7"), ("peer", "1"), ("collective", "p2p")]
            ),
            Some(360)
        );
        assert_eq!(
            reg.counter_value(
                "pfmm_comm_peer_recv_bytes_total",
                &[("rank", "7"), ("peer", "0"), ("collective", "reduce")]
            ),
            Some(220)
        );
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(false);
        record_comm(&reg, 0, &CommStats::default());
        assert!(reg.is_empty());
    }
}
