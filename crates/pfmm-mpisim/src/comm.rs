//! Ranks, tagged point-to-point messaging, and the SPMD launcher.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Types that can travel between ranks.
///
/// `Copy + Send` mirrors MPI's plain-old-data buffers: messages are slices
/// of `Wire` elements, and byte accounting is `len * size_of::<T>()`.
pub trait Wire: Copy + Send + 'static {}
impl<T: Copy + Send + 'static> Wire for T {}

struct Envelope {
    src: usize,
    tag: u32,
    /// The payload is a `Vec<T>` boxed as `Any`; element size is recorded
    /// for the byte counters at the receiving side.
    payload: Box<dyn Any + Send>,
    bytes: usize,
}

/// Per-rank communication counters.
///
/// `bytes` counts payload bytes only (as a real MPI byte count would,
/// modulo headers); collectives count the point-to-point traffic they are
/// built from.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub sent_msgs: u64,
    /// Payload bytes sent by this rank.
    pub sent_bytes: u64,
    /// Messages received by this rank.
    pub recv_msgs: u64,
    /// Payload bytes received by this rank.
    pub recv_bytes: u64,
}

/// A rank's endpoint in the simulated communicator.
///
/// One `Comm` lives on each rank thread; it is not `Sync` (like an MPI
/// communicator, it is used from its own rank only).
pub struct Comm {
    rank: usize,
    size: usize,
    peers: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages that arrived before a matching `recv` was posted.
    pending: RefCell<VecDeque<Envelope>>,
    sent_msgs: Cell<u64>,
    sent_bytes: Cell<u64>,
    recv_msgs: Cell<u64>,
    recv_bytes: Cell<u64>,
}

impl Comm {
    /// This rank's id (0-based).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> CommStats {
        CommStats {
            sent_msgs: self.sent_msgs.get(),
            sent_bytes: self.sent_bytes.get(),
            recv_msgs: self.recv_msgs.get(),
            recv_bytes: self.recv_bytes.get(),
        }
    }

    /// Send a slice of `T` to `dest` with a tag. Buffered: never blocks.
    ///
    /// Self-sends are allowed (the message loops through this rank's own
    /// inbox), matching MPI's buffered-send semantics.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send<T: Wire>(&self, dest: usize, tag: u32, data: &[T]) {
        assert!(dest < self.size, "rank {dest} out of range");
        let bytes = std::mem::size_of_val(data);
        let env = Envelope {
            src: self.rank,
            tag,
            payload: Box::new(data.to_vec()),
            bytes,
        };
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_bytes.set(self.sent_bytes.get() + bytes as u64);
        self.peers[dest]
            .send(env)
            .expect("peer rank hung up before communicator teardown");
    }

    /// Send an owned vector (avoids the copy of [`Comm::send`]).
    pub fn send_vec<T: Wire>(&self, dest: usize, tag: u32, data: Vec<T>) {
        assert!(dest < self.size, "rank {dest} out of range");
        let bytes = std::mem::size_of_val(data.as_slice());
        let env = Envelope { src: self.rank, tag, payload: Box::new(data), bytes };
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_bytes.set(self.sent_bytes.get() + bytes as u64);
        self.peers[dest]
            .send(env)
            .expect("peer rank hung up before communicator teardown");
    }

    /// Blocking receive of a `Vec<T>` from `src` with the given tag.
    ///
    /// Messages from the same source with the same tag are delivered in
    /// send order (MPI's non-overtaking rule). Out-of-order arrivals from
    /// other sources/tags are parked until their own `recv` is posted.
    ///
    /// # Panics
    /// Panics if the matching message has a different element type than
    /// `T` (a programming error a real MPI would surface as corruption).
    pub fn recv<T: Wire>(&self, src: usize, tag: u32) -> Vec<T> {
        let env = self.take_matching(src, tag);
        self.recv_msgs.set(self.recv_msgs.get() + 1);
        self.recv_bytes.set(self.recv_bytes.get() + env.bytes as u64);
        *env
            .payload
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("type mismatch on recv from {src} tag {tag}"))
    }

    fn take_matching(&self, src: usize, tag: u32) -> Envelope {
        let mut pending = self.pending.borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
            return pending.remove(pos).expect("position just found");
        }
        loop {
            let env = self
                .inbox
                .recv()
                .expect("all peers dropped while a recv was outstanding");
            if env.src == src && env.tag == tag {
                return env;
            }
            pending.push_back(env);
        }
    }

    /// Paired exchange with a partner rank (both sides call this).
    pub fn sendrecv<T: Wire>(&self, partner: usize, tag: u32, data: &[T]) -> Vec<T> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }
}

/// Run an SPMD program on `p` ranks (one OS thread each) and collect the
/// per-rank return values in rank order.
///
/// ```
/// let totals = pfmm_mpisim::run(4, |c| {
///     // Everyone tells everyone their rank; each rank sums.
///     pfmm_mpisim::collectives::allgather_one(c, c.rank() as u64)
///         .into_iter()
///         .sum::<u64>()
/// });
/// assert_eq!(totals, vec![6, 6, 6, 6]);
/// ```
///
/// # Panics
/// Propagates a panic from any rank thread.
pub fn run<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let f = &f;
    let mut comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size: p,
            peers: senders.as_ref().clone(),
            inbox,
            pending: RefCell::new(VecDeque::new()),
            sent_msgs: Cell::new(0),
            sent_bytes: Cell::new(0),
            recv_msgs: Cell::new(0),
            recv_bytes: Cell::new(0),
        })
        .collect();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .drain(..)
            .map(|comm| scope.spawn(move |_| f(&comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
    .expect("mpisim scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |c| c.rank() + c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass() {
        let p = 5;
        let out = run(p, |c| {
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, 7, &[c.rank() as u64]);
            c.recv::<u64>(prev, 7)[0]
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v as usize, (r + p - 1) % p);
        }
    }

    #[test]
    fn tag_matching_reorders() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[10u32]);
                c.send(1, 2, &[20u32]);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv::<u32>(0, 2)[0];
                let a = c.recv::<u32>(0, 1)[0];
                (a + b) as usize
            }
        });
        assert_eq!(out[1], 30);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 3, &[i]);
                }
                vec![]
            } else {
                (0..100).map(|_| c.recv::<u32>(0, 3)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn self_send() {
        let out = run(1, |c| {
            c.send(0, 9, &[42u8, 43]);
            c.recv::<u8>(0, 9)
        });
        assert_eq!(out[0], vec![42, 43]);
    }

    #[test]
    fn stats_count_bytes() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, &[0u64; 10]);
            } else {
                let _ = c.recv::<u64>(0, 0);
            }
            c.stats()
        });
        assert_eq!(out[0].sent_bytes, 80);
        assert_eq!(out[0].sent_msgs, 1);
        assert_eq!(out[1].recv_bytes, 80);
        assert_eq!(out[1].recv_msgs, 1);
    }

    #[test]
    fn sendrecv_swaps() {
        let out = run(2, |c| {
            let partner = 1 - c.rank();
            c.sendrecv(partner, 5, &[c.rank() as u32 * 100])[0]
        });
        assert_eq!(out, vec![100, 0]);
    }
}
