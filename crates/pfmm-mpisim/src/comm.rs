//! Ranks, tagged point-to-point messaging, and the SPMD launcher.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Types that can travel between ranks.
///
/// `Copy + Send` mirrors MPI's plain-old-data buffers: messages are slices
/// of `Wire` elements, and byte accounting is `len * size_of::<T>()`.
pub trait Wire: Copy + Send + 'static {}
impl<T: Copy + Send + 'static> Wire for T {}

struct Envelope {
    src: usize,
    tag: u32,
    /// The payload is a `Vec<T>` boxed as `Any`; element size is recorded
    /// for the byte counters at the receiving side.
    payload: Box<dyn Any + Send>,
    bytes: usize,
    /// The sender's collective scope at send time; the receiver charges
    /// its per-peer counters to the same class so per-kind sent and
    /// received volumes agree globally.
    kind: CollectiveKind,
    /// Trace flow id linking this send to its matching recv (0 = the
    /// sender was not tracing at `comm` level).
    flow: u64,
}

/// The tag class a message is charged to: the collective (or FMM-specific
/// exchange) it was sent under, or plain [`CollectiveKind::P2p`] traffic.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CollectiveKind {
    /// Plain point-to-point traffic outside any collective scope.
    #[default]
    P2p,
    /// Barrier synchronization.
    Barrier,
    /// Broadcast from a root.
    Bcast,
    /// Reduce / allreduce (binomial tree + broadcast).
    Reduce,
    /// Allgather(v) rounds.
    Allgather,
    /// Personalized all-to-all exchanges.
    Alltoall,
    /// Prefix scans.
    Scan,
    /// The paper's Algorithm 3 hypercube reduce-scatter of up densities
    /// (lives in `pfmm-core::reduce`, which opens this scope itself).
    HypercubeReduce,
}

impl CollectiveKind {
    /// Every kind, in reporting order.
    pub const ALL: [CollectiveKind; 8] = [
        CollectiveKind::P2p,
        CollectiveKind::Barrier,
        CollectiveKind::Bcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allgather,
        CollectiveKind::Alltoall,
        CollectiveKind::Scan,
        CollectiveKind::HypercubeReduce,
    ];

    /// Short display name.
    pub fn label(&self) -> &'static str {
        match self {
            CollectiveKind::P2p => "p2p",
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Scan => "scan",
            CollectiveKind::HypercubeReduce => "hypercube",
        }
    }

    /// Stable numeric code (used as a trace arg payload).
    pub fn code(&self) -> u64 {
        CollectiveKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("kind in ALL") as u64
    }
}

/// Message/byte counters for one `(peer, kind)` cell of the breakdown.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Messages sent to the peer under this kind.
    pub sent_msgs: u64,
    /// Payload bytes sent to the peer under this kind.
    pub sent_bytes: u64,
    /// Messages received from the peer under this kind.
    pub recv_msgs: u64,
    /// Payload bytes received from the peer under this kind.
    pub recv_bytes: u64,
}

/// Per-rank communication counters.
///
/// `bytes` counts payload bytes only (as a real MPI byte count would,
/// modulo headers); collectives count the point-to-point traffic they are
/// built from. The four total fields are charged on exactly the same
/// events as the `by_peer` breakdown, so the breakdown always sums back
/// to the totals (asserted by [`CommStats::check_consistent`] in tests).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub sent_msgs: u64,
    /// Payload bytes sent by this rank.
    pub sent_bytes: u64,
    /// Messages received by this rank.
    pub recv_msgs: u64,
    /// Payload bytes received by this rank.
    pub recv_bytes: u64,
    /// Per-`(peer, collective)` breakdown of the same traffic.
    pub by_peer: HashMap<(usize, CollectiveKind), PeerStats>,
}

impl CommStats {
    /// Counters accumulated since `before` was snapshotted (both
    /// snapshots must come from the same rank, in order).
    pub fn delta_since(&self, before: &CommStats) -> CommStats {
        let mut by_peer = HashMap::new();
        for (k, a) in &self.by_peer {
            let b = before.by_peer.get(k).copied().unwrap_or_default();
            let d = PeerStats {
                sent_msgs: a.sent_msgs - b.sent_msgs,
                sent_bytes: a.sent_bytes - b.sent_bytes,
                recv_msgs: a.recv_msgs - b.recv_msgs,
                recv_bytes: a.recv_bytes - b.recv_bytes,
            };
            if d != PeerStats::default() {
                by_peer.insert(*k, d);
            }
        }
        CommStats {
            sent_msgs: self.sent_msgs - before.sent_msgs,
            sent_bytes: self.sent_bytes - before.sent_bytes,
            recv_msgs: self.recv_msgs - before.recv_msgs,
            recv_bytes: self.recv_bytes - before.recv_bytes,
            by_peer,
        }
    }

    /// Sum the breakdown over peers for one collective kind.
    pub fn kind_totals(&self, kind: CollectiveKind) -> PeerStats {
        let mut acc = PeerStats::default();
        for ((_, k), v) in &self.by_peer {
            if *k == kind {
                acc.sent_msgs += v.sent_msgs;
                acc.sent_bytes += v.sent_bytes;
                acc.recv_msgs += v.recv_msgs;
                acc.recv_bytes += v.recv_bytes;
            }
        }
        acc
    }

    /// Sum the breakdown over kinds for one peer.
    pub fn peer_totals(&self, peer: usize) -> PeerStats {
        let mut acc = PeerStats::default();
        for ((p, _), v) in &self.by_peer {
            if *p == peer {
                acc.sent_msgs += v.sent_msgs;
                acc.sent_bytes += v.sent_bytes;
                acc.recv_msgs += v.recv_msgs;
                acc.recv_bytes += v.recv_bytes;
            }
        }
        acc
    }

    /// Verify the per-peer breakdown sums exactly to the four totals.
    ///
    /// # Errors
    /// Returns which counter disagrees, with both values.
    pub fn check_consistent(&self) -> Result<(), String> {
        let mut sum = PeerStats::default();
        for v in self.by_peer.values() {
            sum.sent_msgs += v.sent_msgs;
            sum.sent_bytes += v.sent_bytes;
            sum.recv_msgs += v.recv_msgs;
            sum.recv_bytes += v.recv_bytes;
        }
        let checks = [
            ("sent_msgs", sum.sent_msgs, self.sent_msgs),
            ("sent_bytes", sum.sent_bytes, self.sent_bytes),
            ("recv_msgs", sum.recv_msgs, self.recv_msgs),
            ("recv_bytes", sum.recv_bytes, self.recv_bytes),
        ];
        for (name, got, want) in checks {
            if got != want {
                return Err(format!(
                    "{name}: breakdown sums to {got}, totals say {want}"
                ));
            }
        }
        Ok(())
    }
}

/// A p×p traffic matrix assembled from every rank's [`CommStats`]
/// breakdown (sender side: row = source rank, column = destination).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommMatrix {
    /// Number of ranks (matrix side).
    pub p: usize,
    /// `msgs[src * p + dst]`.
    pub msgs: Vec<u64>,
    /// `bytes[src * p + dst]`.
    pub bytes: Vec<u64>,
}

impl CommMatrix {
    /// Build from per-rank stats, `stats[r]` being rank r's counters.
    /// Peers outside `0..p` (never produced by `Comm`) are ignored.
    pub fn from_stats(stats: &[CommStats]) -> CommMatrix {
        let p = stats.len();
        let mut msgs = vec![0u64; p * p];
        let mut bytes = vec![0u64; p * p];
        for (src, s) in stats.iter().enumerate() {
            for ((peer, _), v) in &s.by_peer {
                if *peer < p {
                    msgs[src * p + peer] += v.sent_msgs;
                    bytes[src * p + peer] += v.sent_bytes;
                }
            }
        }
        CommMatrix { p, msgs, bytes }
    }

    /// Total messages over all (src, dst) pairs.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total bytes over all (src, dst) pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Render the byte matrix as a p×p table with row/column sums.
    pub fn render(&self) -> String {
        let p = self.p;
        let mut s = String::new();
        let _ = write!(s, "{:>8}", "src\\dst");
        for d in 0..p {
            let _ = write!(s, " {d:>10}");
        }
        let _ = writeln!(s, " {:>10}", "sum");
        for r in 0..p {
            let _ = write!(s, "{r:>8}");
            let mut row = 0u64;
            for d in 0..p {
                let b = self.bytes[r * p + d];
                row += b;
                let _ = write!(s, " {b:>10}");
            }
            let _ = writeln!(s, " {row:>10}");
        }
        let _ = write!(s, "{:>8}", "sum");
        for d in 0..p {
            let col: u64 = (0..p).map(|r| self.bytes[r * p + d]).sum();
            let _ = write!(s, " {col:>10}");
        }
        let _ = writeln!(s, " {:>10}", self.total_bytes());
        s
    }
}

/// A rank's endpoint in the simulated communicator.
///
/// One `Comm` lives on each rank thread; it is not `Sync` (like an MPI
/// communicator, it is used from its own rank only).
pub struct Comm {
    rank: usize,
    size: usize,
    peers: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages that arrived before a matching `recv` was posted.
    pending: RefCell<VecDeque<Envelope>>,
    sent_msgs: Cell<u64>,
    sent_bytes: Cell<u64>,
    recv_msgs: Cell<u64>,
    recv_bytes: Cell<u64>,
    /// Per-`(peer, kind)` breakdown of the same counters.
    by_peer: RefCell<HashMap<(usize, CollectiveKind), PeerStats>>,
    /// The collective scope sends are currently charged to.
    kind: Cell<CollectiveKind>,
    /// Optional per-rank trace buffer recording send/recv events.
    tracer: RefCell<Option<pfmm_trace::Local>>,
}

impl Comm {
    /// This rank's id (0-based).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> CommStats {
        CommStats {
            sent_msgs: self.sent_msgs.get(),
            sent_bytes: self.sent_bytes.get(),
            recv_msgs: self.recv_msgs.get(),
            recv_bytes: self.recv_bytes.get(),
            by_peer: self.by_peer.borrow().clone(),
        }
    }

    /// Run `f` with sends/recvs charged to collective class `kind`.
    /// Scopes nest with the *outermost* class winning (an `exscan` built
    /// on an allgather stays charged to the scan, the way an MPI profiler
    /// attributes by the user-facing call); the previous class is
    /// restored on return.
    pub fn collective<R>(&self, kind: CollectiveKind, f: impl FnOnce() -> R) -> R {
        let prev = self.kind.get();
        if prev == CollectiveKind::P2p {
            self.kind.set(kind);
        }
        let out = f();
        self.kind.set(prev);
        out
    }

    /// The collective class sends are currently charged to.
    pub fn current_kind(&self) -> CollectiveKind {
        self.kind.get()
    }

    /// Attach a per-rank trace buffer; send/recv hooks record `comm`-level
    /// instants and cross-rank flow events through it. The buffer flushes
    /// into its tracer when the `Comm` is dropped (end of the rank
    /// closure).
    pub fn set_tracer(&self, local: pfmm_trace::Local) {
        *self.tracer.borrow_mut() = Some(local);
    }

    /// Charge a send of `bytes` to `dest`; returns the flow id to stamp
    /// on the envelope (0 when not tracing at comm level).
    fn charge_send(&self, dest: usize, tag: u32, bytes: usize) -> u64 {
        let kind = self.kind.get();
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_bytes.set(self.sent_bytes.get() + bytes as u64);
        {
            let mut m = self.by_peer.borrow_mut();
            let e = m.entry((dest, kind)).or_default();
            e.sent_msgs += 1;
            e.sent_bytes += bytes as u64;
        }
        let mut flow = 0;
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            if t.enabled(pfmm_trace::TraceLevel::Comm) {
                flow = t.tracer().alloc_flow();
                let args = [
                    ("peer", dest as u64),
                    ("bytes", bytes as u64),
                    ("tag", tag as u64),
                    ("kind", kind.code()),
                ];
                t.instant("send", "comm", &args);
                t.flow_start("msg", "comm", flow, &[]);
            }
        }
        flow
    }

    /// Charge a received envelope (kind attribution follows the sender's
    /// scope so per-kind volumes agree globally).
    fn charge_recv(&self, env: &Envelope) {
        self.recv_msgs.set(self.recv_msgs.get() + 1);
        self.recv_bytes
            .set(self.recv_bytes.get() + env.bytes as u64);
        {
            let mut m = self.by_peer.borrow_mut();
            let e = m.entry((env.src, env.kind)).or_default();
            e.recv_msgs += 1;
            e.recv_bytes += env.bytes as u64;
        }
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            if t.enabled(pfmm_trace::TraceLevel::Comm) {
                let args = [
                    ("peer", env.src as u64),
                    ("bytes", env.bytes as u64),
                    ("tag", env.tag as u64),
                    ("kind", env.kind.code()),
                ];
                t.instant("recv", "comm", &args);
                if env.flow != 0 {
                    t.flow_end("msg", "comm", env.flow, &[]);
                }
            }
        }
    }

    /// Send a slice of `T` to `dest` with a tag. Buffered: never blocks.
    ///
    /// Self-sends are allowed (the message loops through this rank's own
    /// inbox), matching MPI's buffered-send semantics.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send<T: Wire>(&self, dest: usize, tag: u32, data: &[T]) {
        self.send_vec(dest, tag, data.to_vec());
    }

    /// Send an owned vector (avoids the copy of [`Comm::send`]).
    pub fn send_vec<T: Wire>(&self, dest: usize, tag: u32, data: Vec<T>) {
        assert!(dest < self.size, "rank {dest} out of range");
        let bytes = std::mem::size_of_val(data.as_slice());
        let flow = self.charge_send(dest, tag, bytes);
        let env = Envelope {
            src: self.rank,
            tag,
            payload: Box::new(data),
            bytes,
            kind: self.kind.get(),
            flow,
        };
        self.peers[dest]
            .send(env)
            .expect("peer rank hung up before communicator teardown");
    }

    /// Blocking receive of a `Vec<T>` from `src` with the given tag.
    ///
    /// Messages from the same source with the same tag are delivered in
    /// send order (MPI's non-overtaking rule). Out-of-order arrivals from
    /// other sources/tags are parked until their own `recv` is posted.
    ///
    /// # Panics
    /// Panics if the matching message has a different element type than
    /// `T` (a programming error a real MPI would surface as corruption).
    pub fn recv<T: Wire>(&self, src: usize, tag: u32) -> Vec<T> {
        let env = self.take_matching(src, tag);
        self.charge_recv(&env);
        *env.payload
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("type mismatch on recv from {src} tag {tag}"))
    }

    fn take_matching(&self, src: usize, tag: u32) -> Envelope {
        let mut pending = self.pending.borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
            return pending.remove(pos).expect("position just found");
        }
        loop {
            let env = self
                .inbox
                .recv()
                .expect("all peers dropped while a recv was outstanding");
            if env.src == src && env.tag == tag {
                return env;
            }
            pending.push_back(env);
        }
    }

    /// Non-blocking variant of [`Comm::take_matching`]: drains everything
    /// currently in the inbox into the pending queue (the "progress
    /// engine" of a real MPI) and returns the matching envelope if one
    /// has arrived.
    fn try_take_matching(&self, src: usize, tag: u32) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
            return Some(pending.remove(pos).expect("position just found"));
        }
        while let Ok(env) = self.inbox.try_recv() {
            if env.src == src && env.tag == tag {
                return Some(env);
            }
            pending.push_back(env);
        }
        None
    }

    /// Paired exchange with a partner rank (both sides call this).
    pub fn sendrecv<T: Wire>(&self, partner: usize, tag: u32, data: &[T]) -> Vec<T> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Non-blocking send of an owned vector.
    ///
    /// Sends in this simulator are buffered and never block, so the
    /// request is complete on return; the handle exists so communication
    /// code can be written against the standard `isend`/`test`/`wait`
    /// protocol. Counters are charged here, exactly once.
    pub fn isend<T: Wire>(&self, dest: usize, tag: u32, data: Vec<T>) -> SendReq {
        self.send_vec(dest, tag, data);
        SendReq(())
    }

    /// Post a non-blocking receive for a message from `src` with `tag`.
    ///
    /// Nothing is reserved: the returned [`RecvReq`] is a matching ticket
    /// polled with [`RecvReq::test`] or finished with [`RecvReq::wait`].
    /// Posting several requests for the same `(src, tag)` completes them
    /// in send order (the non-overtaking rule applies per posted ticket).
    pub fn irecv<T: Wire>(&self, src: usize, tag: u32) -> RecvReq<T> {
        assert!(src < self.size, "rank {src} out of range");
        RecvReq {
            src,
            tag,
            done: false,
            _elem: std::marker::PhantomData,
        }
    }
}

/// Completed-on-creation handle of a buffered [`Comm::isend`].
#[must_use = "a request should be tested or waited on"]
pub struct SendReq(());

impl SendReq {
    /// Always true: buffered sends complete immediately.
    pub fn test(&self) -> bool {
        true
    }

    /// No-op: the send already completed.
    pub fn wait(self) {}
}

/// Handle to a posted non-blocking receive (see [`Comm::irecv`]).
#[must_use = "a request should be tested or waited on"]
pub struct RecvReq<T: Wire> {
    src: usize,
    tag: u32,
    done: bool,
    _elem: std::marker::PhantomData<T>,
}

impl<T: Wire> RecvReq<T> {
    /// Poll for completion: `Some(payload)` once the message has arrived,
    /// `None` while it is still in flight. Completing consumes the
    /// logical request — `test` after completion panics (use-after-wait
    /// is a programming error a real MPI would also trap).
    ///
    /// # Panics
    /// Panics if the request already completed, or on element-type
    /// mismatch with the arriving message.
    pub fn test(&mut self, c: &Comm) -> Option<Vec<T>> {
        assert!(!self.done, "RecvReq::test after completion");
        let env = c.try_take_matching(self.src, self.tag)?;
        self.done = true;
        c.charge_recv(&env);
        Some(*env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!("type mismatch on irecv from {} tag {}", self.src, self.tag)
        }))
    }

    /// Block until the message arrives and return it.
    ///
    /// # Panics
    /// Panics if the request already completed.
    pub fn wait(mut self, c: &Comm) -> Vec<T> {
        assert!(!self.done, "RecvReq::wait after completion");
        self.done = true;
        c.recv(self.src, self.tag)
    }
}

/// Run an SPMD program on `p` ranks (one OS thread each) and collect the
/// per-rank return values in rank order.
///
/// ```
/// let totals = pfmm_mpisim::run(4, |c| {
///     // Everyone tells everyone their rank; each rank sums.
///     pfmm_mpisim::collectives::allgather_one(c, c.rank() as u64)
///         .into_iter()
///         .sum::<u64>()
/// });
/// assert_eq!(totals, vec![6, 6, 6, 6]);
/// ```
///
/// # Panics
/// Propagates a panic from any rank thread.
pub fn run<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let f = &f;
    let mut comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size: p,
            peers: senders.as_ref().clone(),
            inbox,
            pending: RefCell::new(VecDeque::new()),
            sent_msgs: Cell::new(0),
            sent_bytes: Cell::new(0),
            recv_msgs: Cell::new(0),
            recv_bytes: Cell::new(0),
            by_peer: RefCell::new(HashMap::new()),
            kind: Cell::new(CollectiveKind::P2p),
            tracer: RefCell::new(None),
        })
        .collect();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .drain(..)
            .map(|comm| scope.spawn(move |_| f(&comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
    .expect("mpisim scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |c| c.rank() + c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass() {
        let p = 5;
        let out = run(p, |c| {
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, 7, &[c.rank() as u64]);
            c.recv::<u64>(prev, 7)[0]
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v as usize, (r + p - 1) % p);
        }
    }

    #[test]
    fn tag_matching_reorders() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[10u32]);
                c.send(1, 2, &[20u32]);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv::<u32>(0, 2)[0];
                let a = c.recv::<u32>(0, 1)[0];
                (a + b) as usize
            }
        });
        assert_eq!(out[1], 30);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 3, &[i]);
                }
                vec![]
            } else {
                (0..100).map(|_| c.recv::<u32>(0, 3)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn self_send() {
        let out = run(1, |c| {
            c.send(0, 9, &[42u8, 43]);
            c.recv::<u8>(0, 9)
        });
        assert_eq!(out[0], vec![42, 43]);
    }

    #[test]
    fn stats_count_bytes() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, &[0u64; 10]);
            } else {
                let _ = c.recv::<u64>(0, 0);
            }
            c.stats()
        });
        assert_eq!(out[0].sent_bytes, 80);
        assert_eq!(out[0].sent_msgs, 1);
        assert_eq!(out[1].recv_bytes, 80);
        assert_eq!(out[1].recv_msgs, 1);
    }

    #[test]
    fn per_peer_breakdown_sums_to_totals() {
        let p = 4;
        let out = run(p, |c| {
            // A mix of p2p and collective traffic.
            let next = (c.rank() + 1) % p;
            c.send(next, 1, &[0u64; 8]);
            let _ = c.recv::<u64>((c.rank() + p - 1) % p, 1);
            let _ = crate::collectives::allgather_one(c, c.rank() as u64);
            let _ = crate::collectives::allreduce_sum_u64(c, 1);
            crate::collectives::barrier(c);
            c.stats()
        });
        for (r, s) in out.iter().enumerate() {
            s.check_consistent()
                .unwrap_or_else(|e| panic!("rank {r}: {e}"));
            assert!(s.by_peer.keys().any(|(_, k)| *k == CollectiveKind::P2p));
        }
        // Global conservation: every byte sent is received under the same
        // kind class.
        for kind in CollectiveKind::ALL {
            let sent: u64 = out.iter().map(|s| s.kind_totals(kind).sent_bytes).sum();
            let recv: u64 = out.iter().map(|s| s.kind_totals(kind).recv_bytes).sum();
            assert_eq!(sent, recv, "kind {}", kind.label());
        }
    }

    #[test]
    fn collective_scopes_attribute_kinds() {
        let out = run(2, |c| {
            c.send(1 - c.rank(), 3, &[1u8, 2, 3]);
            let _ = c.recv::<u8>(1 - c.rank(), 3);
            let _ = crate::collectives::allgather_one(c, 9u64);
            c.stats()
        });
        for s in &out {
            assert_eq!(s.kind_totals(CollectiveKind::P2p).sent_bytes, 3);
            assert!(
                s.kind_totals(CollectiveKind::Allgather).sent_msgs > 0
                    || s.kind_totals(CollectiveKind::Allgather).recv_msgs > 0
            );
            assert_eq!(
                s.kind_totals(CollectiveKind::Alltoall),
                PeerStats::default()
            );
        }
    }

    #[test]
    fn nested_scope_outermost_wins() {
        let out = run(2, |c| {
            let _ = crate::collectives::exscan_sum_u64(c, 5);
            c.stats()
        });
        let sent: u64 = out
            .iter()
            .map(|s| s.kind_totals(CollectiveKind::Scan).sent_bytes)
            .sum();
        assert!(sent > 0, "exscan traffic charged to Scan, not Allgather");
        for s in &out {
            assert_eq!(
                s.kind_totals(CollectiveKind::Allgather),
                PeerStats::default()
            );
        }
    }

    #[test]
    fn comm_matrix_render_and_sums() {
        let p = 3;
        let stats = run(p, |c| {
            // rank r sends r+1 u64s to each other rank.
            for d in 0..p {
                if d != c.rank() {
                    c.send(d, 2, &vec![0u64; c.rank() + 1]);
                }
            }
            for s in 0..p {
                if s != c.rank() {
                    let _ = c.recv::<u64>(s, 2);
                }
            }
            c.stats()
        });
        let m = CommMatrix::from_stats(&stats);
        assert_eq!(m.p, p);
        // Row sums equal each rank's sent totals; grand total matches.
        for (r, s) in stats.iter().enumerate() {
            let row: u64 = (0..p).map(|d| m.bytes[r * p + d]).sum();
            assert_eq!(row, s.sent_bytes);
            let rmsgs: u64 = (0..p).map(|d| m.msgs[r * p + d]).sum();
            assert_eq!(rmsgs, s.sent_msgs);
        }
        assert_eq!(
            m.total_bytes(),
            stats.iter().map(|s| s.sent_bytes).sum::<u64>()
        );
        assert_eq!(m.bytes[p], 16); // rank 1 -> rank 0: 2 u64s
        let table = m.render();
        assert!(table.contains("src\\dst"), "{table}");
        // One line per rank plus header and sum row.
        assert_eq!(table.lines().count(), p + 2, "{table}");
    }

    #[test]
    fn delta_since_subtracts_breakdown() {
        let out = run(2, |c| {
            c.send(1 - c.rank(), 1, &[0u8; 4]);
            let _ = c.recv::<u8>(1 - c.rank(), 1);
            let before = c.stats();
            c.send(1 - c.rank(), 1, &[0u8; 10]);
            let _ = c.recv::<u8>(1 - c.rank(), 1);
            c.stats().delta_since(&before)
        });
        for s in &out {
            assert_eq!(s.sent_msgs, 1);
            assert_eq!(s.sent_bytes, 10);
            s.check_consistent().unwrap();
            assert_eq!(
                s.peer_totals(1).sent_bytes + s.peer_totals(0).sent_bytes,
                10
            );
        }
    }

    #[test]
    fn traced_sends_pair_flows() {
        use pfmm_trace::{chrome, EventKind, TraceLevel, Tracer};
        use std::sync::Arc;
        let tracer = Arc::new(Tracer::new(TraceLevel::Comm));
        let t2 = Arc::clone(&tracer);
        run(2, move |c| {
            c.set_tracer(t2.local(c.rank() as u32, 0));
            c.send(1 - c.rank(), 7, &[0u32; 5]);
            let _ = c.recv::<u32>(1 - c.rank(), 7);
        });
        let evs = tracer.drain();
        let starts = evs
            .iter()
            .filter(|e| e.kind == EventKind::FlowStart)
            .count();
        let ends = evs.iter().filter(|e| e.kind == EventKind::FlowEnd).count();
        assert_eq!(starts, 2);
        assert_eq!(ends, 2);
        chrome::validate(&evs).unwrap();
        // Each flow starts on the sender's rank and ends on the other.
        for e in evs.iter().filter(|e| e.kind == EventKind::FlowStart) {
            let end = evs
                .iter()
                .find(|f| f.kind == EventKind::FlowEnd && f.flow == e.flow)
                .unwrap();
            assert_ne!(end.rank, e.rank);
        }
    }

    #[test]
    fn untraced_sends_record_nothing() {
        use pfmm_trace::{TraceLevel, Tracer};
        use std::sync::Arc;
        let tracer = Arc::new(Tracer::new(TraceLevel::Phase)); // below comm
        let t2 = Arc::clone(&tracer);
        run(2, move |c| {
            c.set_tracer(t2.local(c.rank() as u32, 0));
            c.send(1 - c.rank(), 7, &[0u32; 5]);
            let _ = c.recv::<u32>(1 - c.rank(), 7);
        });
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn sendrecv_swaps() {
        let out = run(2, |c| {
            let partner = 1 - c.rank();
            c.sendrecv(partner, 5, &[c.rank() as u32 * 100])[0]
        });
        assert_eq!(out, vec![100, 0]);
    }

    #[test]
    fn irecv_polls_to_completion() {
        // Rank 1 posts the irecv before rank 0 sends (it may poll None a
        // few times), then receives exactly the payload.
        let out = run(2, |c| {
            if c.rank() == 0 {
                // Give rank 1 a chance to observe the not-yet-arrived state.
                std::thread::sleep(std::time::Duration::from_millis(10));
                c.isend(1, 4, vec![7u64, 8, 9]).wait();
                Vec::new()
            } else {
                let mut req = c.irecv::<u64>(0, 4);
                loop {
                    if let Some(v) = req.test(c) {
                        return v;
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(out[1], vec![7, 8, 9]);
    }

    #[test]
    fn irecv_wait_blocks_until_arrival() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                c.send(1, 6, &[42u32]);
                0
            } else {
                c.irecv::<u32>(0, 6).wait(c)[0]
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn irecv_counts_traffic_once() {
        let stats = run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 2, vec![0u8; 16]).wait();
            } else {
                let mut req = c.irecv::<u8>(0, 2);
                while req.test(c).is_none() {
                    std::thread::yield_now();
                }
            }
            c.stats()
        });
        assert_eq!(stats[0].sent_msgs, 1);
        assert_eq!(stats[0].sent_bytes, 16);
        assert_eq!(stats[1].recv_msgs, 1);
        assert_eq!(stats[1].recv_bytes, 16);
    }

    #[test]
    fn irecv_does_not_steal_other_tags() {
        // A pending irecv for tag 9 must leave tag-8 traffic for the
        // blocking recv, in order.
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 8, &[1u32]);
                c.send(1, 9, &[2u32]);
                c.send(1, 8, &[3u32]);
                Vec::new()
            } else {
                let mut req = c.irecv::<u32>(0, 9);
                let a = c.recv::<u32>(0, 8)[0];
                let b = loop {
                    if let Some(v) = req.test(c) {
                        break v[0];
                    }
                };
                let d = c.recv::<u32>(0, 8)[0];
                vec![a, b, d]
            }
        });
        assert_eq!(out[1], vec![1, 2, 3]);
    }
}
