//! Ranks, tagged point-to-point messaging, and the SPMD launcher.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Types that can travel between ranks.
///
/// `Copy + Send` mirrors MPI's plain-old-data buffers: messages are slices
/// of `Wire` elements, and byte accounting is `len * size_of::<T>()`.
pub trait Wire: Copy + Send + 'static {}
impl<T: Copy + Send + 'static> Wire for T {}

struct Envelope {
    src: usize,
    tag: u32,
    /// The payload is a `Vec<T>` boxed as `Any`; element size is recorded
    /// for the byte counters at the receiving side.
    payload: Box<dyn Any + Send>,
    bytes: usize,
}

/// Per-rank communication counters.
///
/// `bytes` counts payload bytes only (as a real MPI byte count would,
/// modulo headers); collectives count the point-to-point traffic they are
/// built from.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub sent_msgs: u64,
    /// Payload bytes sent by this rank.
    pub sent_bytes: u64,
    /// Messages received by this rank.
    pub recv_msgs: u64,
    /// Payload bytes received by this rank.
    pub recv_bytes: u64,
}

/// A rank's endpoint in the simulated communicator.
///
/// One `Comm` lives on each rank thread; it is not `Sync` (like an MPI
/// communicator, it is used from its own rank only).
pub struct Comm {
    rank: usize,
    size: usize,
    peers: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages that arrived before a matching `recv` was posted.
    pending: RefCell<VecDeque<Envelope>>,
    sent_msgs: Cell<u64>,
    sent_bytes: Cell<u64>,
    recv_msgs: Cell<u64>,
    recv_bytes: Cell<u64>,
}

impl Comm {
    /// This rank's id (0-based).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> CommStats {
        CommStats {
            sent_msgs: self.sent_msgs.get(),
            sent_bytes: self.sent_bytes.get(),
            recv_msgs: self.recv_msgs.get(),
            recv_bytes: self.recv_bytes.get(),
        }
    }

    /// Send a slice of `T` to `dest` with a tag. Buffered: never blocks.
    ///
    /// Self-sends are allowed (the message loops through this rank's own
    /// inbox), matching MPI's buffered-send semantics.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send<T: Wire>(&self, dest: usize, tag: u32, data: &[T]) {
        assert!(dest < self.size, "rank {dest} out of range");
        let bytes = std::mem::size_of_val(data);
        let env = Envelope {
            src: self.rank,
            tag,
            payload: Box::new(data.to_vec()),
            bytes,
        };
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_bytes.set(self.sent_bytes.get() + bytes as u64);
        self.peers[dest]
            .send(env)
            .expect("peer rank hung up before communicator teardown");
    }

    /// Send an owned vector (avoids the copy of [`Comm::send`]).
    pub fn send_vec<T: Wire>(&self, dest: usize, tag: u32, data: Vec<T>) {
        assert!(dest < self.size, "rank {dest} out of range");
        let bytes = std::mem::size_of_val(data.as_slice());
        let env = Envelope {
            src: self.rank,
            tag,
            payload: Box::new(data),
            bytes,
        };
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_bytes.set(self.sent_bytes.get() + bytes as u64);
        self.peers[dest]
            .send(env)
            .expect("peer rank hung up before communicator teardown");
    }

    /// Blocking receive of a `Vec<T>` from `src` with the given tag.
    ///
    /// Messages from the same source with the same tag are delivered in
    /// send order (MPI's non-overtaking rule). Out-of-order arrivals from
    /// other sources/tags are parked until their own `recv` is posted.
    ///
    /// # Panics
    /// Panics if the matching message has a different element type than
    /// `T` (a programming error a real MPI would surface as corruption).
    pub fn recv<T: Wire>(&self, src: usize, tag: u32) -> Vec<T> {
        let env = self.take_matching(src, tag);
        self.recv_msgs.set(self.recv_msgs.get() + 1);
        self.recv_bytes
            .set(self.recv_bytes.get() + env.bytes as u64);
        *env.payload
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("type mismatch on recv from {src} tag {tag}"))
    }

    fn take_matching(&self, src: usize, tag: u32) -> Envelope {
        let mut pending = self.pending.borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
            return pending.remove(pos).expect("position just found");
        }
        loop {
            let env = self
                .inbox
                .recv()
                .expect("all peers dropped while a recv was outstanding");
            if env.src == src && env.tag == tag {
                return env;
            }
            pending.push_back(env);
        }
    }

    /// Non-blocking variant of [`Comm::take_matching`]: drains everything
    /// currently in the inbox into the pending queue (the "progress
    /// engine" of a real MPI) and returns the matching envelope if one
    /// has arrived.
    fn try_take_matching(&self, src: usize, tag: u32) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
            return Some(pending.remove(pos).expect("position just found"));
        }
        while let Ok(env) = self.inbox.try_recv() {
            if env.src == src && env.tag == tag {
                return Some(env);
            }
            pending.push_back(env);
        }
        None
    }

    /// Paired exchange with a partner rank (both sides call this).
    pub fn sendrecv<T: Wire>(&self, partner: usize, tag: u32, data: &[T]) -> Vec<T> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Non-blocking send of an owned vector.
    ///
    /// Sends in this simulator are buffered and never block, so the
    /// request is complete on return; the handle exists so communication
    /// code can be written against the standard `isend`/`test`/`wait`
    /// protocol. Counters are charged here, exactly once.
    pub fn isend<T: Wire>(&self, dest: usize, tag: u32, data: Vec<T>) -> SendReq {
        self.send_vec(dest, tag, data);
        SendReq(())
    }

    /// Post a non-blocking receive for a message from `src` with `tag`.
    ///
    /// Nothing is reserved: the returned [`RecvReq`] is a matching ticket
    /// polled with [`RecvReq::test`] or finished with [`RecvReq::wait`].
    /// Posting several requests for the same `(src, tag)` completes them
    /// in send order (the non-overtaking rule applies per posted ticket).
    pub fn irecv<T: Wire>(&self, src: usize, tag: u32) -> RecvReq<T> {
        assert!(src < self.size, "rank {src} out of range");
        RecvReq {
            src,
            tag,
            done: false,
            _elem: std::marker::PhantomData,
        }
    }
}

/// Completed-on-creation handle of a buffered [`Comm::isend`].
#[must_use = "a request should be tested or waited on"]
pub struct SendReq(());

impl SendReq {
    /// Always true: buffered sends complete immediately.
    pub fn test(&self) -> bool {
        true
    }

    /// No-op: the send already completed.
    pub fn wait(self) {}
}

/// Handle to a posted non-blocking receive (see [`Comm::irecv`]).
#[must_use = "a request should be tested or waited on"]
pub struct RecvReq<T: Wire> {
    src: usize,
    tag: u32,
    done: bool,
    _elem: std::marker::PhantomData<T>,
}

impl<T: Wire> RecvReq<T> {
    /// Poll for completion: `Some(payload)` once the message has arrived,
    /// `None` while it is still in flight. Completing consumes the
    /// logical request — `test` after completion panics (use-after-wait
    /// is a programming error a real MPI would also trap).
    ///
    /// # Panics
    /// Panics if the request already completed, or on element-type
    /// mismatch with the arriving message.
    pub fn test(&mut self, c: &Comm) -> Option<Vec<T>> {
        assert!(!self.done, "RecvReq::test after completion");
        let env = c.try_take_matching(self.src, self.tag)?;
        self.done = true;
        c.recv_msgs.set(c.recv_msgs.get() + 1);
        c.recv_bytes.set(c.recv_bytes.get() + env.bytes as u64);
        Some(*env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!("type mismatch on irecv from {} tag {}", self.src, self.tag)
        }))
    }

    /// Block until the message arrives and return it.
    ///
    /// # Panics
    /// Panics if the request already completed.
    pub fn wait(mut self, c: &Comm) -> Vec<T> {
        assert!(!self.done, "RecvReq::wait after completion");
        self.done = true;
        c.recv(self.src, self.tag)
    }
}

/// Run an SPMD program on `p` ranks (one OS thread each) and collect the
/// per-rank return values in rank order.
///
/// ```
/// let totals = pfmm_mpisim::run(4, |c| {
///     // Everyone tells everyone their rank; each rank sums.
///     pfmm_mpisim::collectives::allgather_one(c, c.rank() as u64)
///         .into_iter()
///         .sum::<u64>()
/// });
/// assert_eq!(totals, vec![6, 6, 6, 6]);
/// ```
///
/// # Panics
/// Propagates a panic from any rank thread.
pub fn run<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let f = &f;
    let mut comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size: p,
            peers: senders.as_ref().clone(),
            inbox,
            pending: RefCell::new(VecDeque::new()),
            sent_msgs: Cell::new(0),
            sent_bytes: Cell::new(0),
            recv_msgs: Cell::new(0),
            recv_bytes: Cell::new(0),
        })
        .collect();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .drain(..)
            .map(|comm| scope.spawn(move |_| f(&comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
    .expect("mpisim scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |c| c.rank() + c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass() {
        let p = 5;
        let out = run(p, |c| {
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, 7, &[c.rank() as u64]);
            c.recv::<u64>(prev, 7)[0]
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v as usize, (r + p - 1) % p);
        }
    }

    #[test]
    fn tag_matching_reorders() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[10u32]);
                c.send(1, 2, &[20u32]);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv::<u32>(0, 2)[0];
                let a = c.recv::<u32>(0, 1)[0];
                (a + b) as usize
            }
        });
        assert_eq!(out[1], 30);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 3, &[i]);
                }
                vec![]
            } else {
                (0..100).map(|_| c.recv::<u32>(0, 3)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn self_send() {
        let out = run(1, |c| {
            c.send(0, 9, &[42u8, 43]);
            c.recv::<u8>(0, 9)
        });
        assert_eq!(out[0], vec![42, 43]);
    }

    #[test]
    fn stats_count_bytes() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, &[0u64; 10]);
            } else {
                let _ = c.recv::<u64>(0, 0);
            }
            c.stats()
        });
        assert_eq!(out[0].sent_bytes, 80);
        assert_eq!(out[0].sent_msgs, 1);
        assert_eq!(out[1].recv_bytes, 80);
        assert_eq!(out[1].recv_msgs, 1);
    }

    #[test]
    fn sendrecv_swaps() {
        let out = run(2, |c| {
            let partner = 1 - c.rank();
            c.sendrecv(partner, 5, &[c.rank() as u32 * 100])[0]
        });
        assert_eq!(out, vec![100, 0]);
    }

    #[test]
    fn irecv_polls_to_completion() {
        // Rank 1 posts the irecv before rank 0 sends (it may poll None a
        // few times), then receives exactly the payload.
        let out = run(2, |c| {
            if c.rank() == 0 {
                // Give rank 1 a chance to observe the not-yet-arrived state.
                std::thread::sleep(std::time::Duration::from_millis(10));
                c.isend(1, 4, vec![7u64, 8, 9]).wait();
                Vec::new()
            } else {
                let mut req = c.irecv::<u64>(0, 4);
                loop {
                    if let Some(v) = req.test(c) {
                        return v;
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(out[1], vec![7, 8, 9]);
    }

    #[test]
    fn irecv_wait_blocks_until_arrival() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                c.send(1, 6, &[42u32]);
                0
            } else {
                c.irecv::<u32>(0, 6).wait(c)[0]
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn irecv_counts_traffic_once() {
        let stats = run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 2, vec![0u8; 16]).wait();
            } else {
                let mut req = c.irecv::<u8>(0, 2);
                while req.test(c).is_none() {
                    std::thread::yield_now();
                }
            }
            c.stats()
        });
        assert_eq!(stats[0].sent_msgs, 1);
        assert_eq!(stats[0].sent_bytes, 16);
        assert_eq!(stats[1].recv_msgs, 1);
        assert_eq!(stats[1].recv_bytes, 16);
    }

    #[test]
    fn irecv_does_not_steal_other_tags() {
        // A pending irecv for tag 9 must leave tag-8 traffic for the
        // blocking recv, in order.
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 8, &[1u32]);
                c.send(1, 9, &[2u32]);
                c.send(1, 8, &[3u32]);
                Vec::new()
            } else {
                let mut req = c.irecv::<u32>(0, 9);
                let a = c.recv::<u32>(0, 8)[0];
                let b = loop {
                    if let Some(v) = req.test(c) {
                        break v[0];
                    }
                };
                let d = c.recv::<u32>(0, 8)[0];
                vec![a, b, d]
            }
        });
        assert_eq!(out[1], vec![1, 2, 3]);
    }
}
